// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// Bellman-Ford (1-D and lexicographic 2-D), the constraint solver, the four
// fusion algorithms, dependence analysis and the cache simulator.
//
// In addition to the usual google-benchmark output, the binary writes a
// machine-readable solver summary (per-solver ns/op plus SolverStats
// aggregates) to BENCH_solver.json -- override the path with
// --solver_json=<path>, or pass --solver_json= (empty) to skip it.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/dependence.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "fusion/hyperplane.hpp"
#include "fusion/llofra.hpp"
#include "graph/bellman_ford.hpp"
#include "ir/parser.hpp"
#include "graph/spfa.hpp"
#include "sim/cache.hpp"
#include "support/json.hpp"
#include "support/vecn.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace lf;

std::vector<WeightedEdge<std::int64_t>> random_edges_1d(int nodes, int edges, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<WeightedEdge<std::int64_t>> out;
    out.reserve(static_cast<std::size_t>(edges));
    for (int k = 0; k < edges; ++k) {
        out.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                       static_cast<int>(rng.uniform(0, nodes - 1)), rng.uniform(0, 20)});
    }
    return out;
}

void BM_BellmanFord1D(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const auto edges = random_edges_1d(nodes, nodes * 4, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<std::int64_t>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord1D)->Range(16, 1024)->Complexity();

void BM_BellmanFord2DLexicographic(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<WeightedEdge<Vec2>> edges;
    for (int k = 0; k < nodes * 4; ++k) {
        edges.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                         static_cast<int>(rng.uniform(0, nodes - 1)),
                         Vec2{rng.uniform(0, 5), rng.uniform(-5, 5)}});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<Vec2>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord2DLexicographic)->Range(16, 1024)->Complexity();

Mldg random_graph(int nodes, std::uint64_t seed) {
    Rng rng(seed);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = nodes;
    opt.forward_edge_prob = 6.0 / nodes;
    opt.backward_edge_prob = 2.0 / nodes;
    return workloads::random_legal_mldg(rng, opt);
}

void BM_Llofra(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) benchmark::DoNotOptimize(llofra(g));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Llofra)->Range(16, 512)->Complexity();

void BM_AcyclicDoall(benchmark::State& state) {
    Rng rng(13);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = static_cast<int>(state.range(0));
    opt.forward_edge_prob = 6.0 / opt.num_nodes;
    opt.backward_edge_prob = 0;
    opt.self_edge_prob = 0;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    for (auto _ : state) benchmark::DoNotOptimize(acyclic_doall_fusion(g));
}
BENCHMARK(BM_AcyclicDoall)->Range(16, 512);

void BM_CyclicDoall(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 17);
    for (auto _ : state) benchmark::DoNotOptimize(cyclic_doall_fusion(g));
}
BENCHMARK(BM_CyclicDoall)->Range(16, 512);

void BM_HyperplaneFusion(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 19);
    for (auto _ : state) benchmark::DoNotOptimize(hyperplane_fusion(g));
}
BENCHMARK(BM_HyperplaneFusion)->Range(16, 512);

void BM_PlanFusionFig2(benchmark::State& state) {
    const Mldg g = workloads::fig2_graph();
    for (auto _ : state) benchmark::DoNotOptimize(plan_fusion(g));
}
BENCHMARK(BM_PlanFusionFig2);

void BM_DependenceAnalysis(benchmark::State& state) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_dependences(p));
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ParseFig2(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(ir::parse_program(workloads::sources::kFig2));
    }
}
BENCHMARK(BM_ParseFig2);

void BM_CacheSimSweep(benchmark::State& state) {
    sim::CacheSim cache(sim::CacheConfig{8, 64, 4});
    std::int64_t address = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(address));
        address = (address + 7) % 100000;
    }
}
BENCHMARK(BM_CacheSimSweep);

// ---- Machine-readable solver summary (BENCH_solver.json) ----
//
// Each entry runs one solver `solves` times on a fixed random instance with
// SolverStats attached; ns/op is wall_ns / solves from the stats themselves,
// so the JSON numbers are exactly what the telemetry pipeline reports.

void write_solver_entry(json::Writer& w, const char* name, const SolverStats& st) {
    w.begin_object();
    w.kv("solver", name);
    w.kv("ns_per_op", st.solves == 0 ? std::uint64_t{0} : st.wall_ns / st.solves);
    w.key("stats").begin_object();
    w.kv("solves", st.solves);
    w.kv("edge_scans", st.edge_scans);
    w.kv("relaxations", st.relaxations);
    w.kv("iterations", st.iterations);
    w.kv("queue_pushes", st.queue_pushes);
    w.kv("queue_pops", st.queue_pops);
    w.kv("guard_steps", st.guard_steps);
    w.kv("overflow_near_misses", st.overflow_near_misses);
    w.kv("wall_ns", st.wall_ns);
    w.end_object();
    w.end_object();
}

bool write_solver_json(const std::string& path) {
    constexpr int kNodes = 64;
    constexpr int kSolves = 50;

    const auto edges_1d = random_edges_1d(kNodes, kNodes * 4, 42);
    SolverStats bf1d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            bellman_ford_all_sources<std::int64_t>(kNodes, edges_1d, nullptr, &bf1d));
    }
    SolverStats spfa1d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            spfa_all_sources<std::int64_t>(kNodes, edges_1d, nullptr, &spfa1d));
    }

    Rng rng2(7);
    std::vector<WeightedEdge<Vec2>> edges_2d;
    for (int k = 0; k < kNodes * 4; ++k) {
        edges_2d.push_back({static_cast<int>(rng2.uniform(0, kNodes - 1)),
                            static_cast<int>(rng2.uniform(0, kNodes - 1)),
                            Vec2{rng2.uniform(0, 5), rng2.uniform(-5, 5)}});
    }
    SolverStats bf2d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            bellman_ford_all_sources<Vec2>(kNodes, edges_2d, nullptr, &bf2d));
    }

    constexpr int kDim = 3;
    Rng rngn(23);
    std::vector<WeightedEdge<VecN>> edges_nd;
    for (int k = 0; k < kNodes * 4; ++k) {
        VecN wgt = VecN::zeros(kDim);
        wgt[0] = rngn.uniform(0, 5);
        for (int d = 1; d < kDim; ++d) wgt[d] = rngn.uniform(-5, 5);
        edges_nd.push_back({static_cast<int>(rngn.uniform(0, kNodes - 1)),
                            static_cast<int>(rngn.uniform(0, kNodes - 1)), std::move(wgt)});
    }
    SolverStats bfnd;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<VecN>(
            kNodes, edges_nd, nullptr, &bfnd, WeightTraits<VecN>(kDim)));
    }

    json::Writer w;
    w.begin_object();
    w.kv("nodes", kNodes);
    w.kv("edges", kNodes * 4);
    w.key("solvers").begin_array();
    write_solver_entry(w, "bellman_ford.int64", bf1d);
    write_solver_entry(w, "bellman_ford.vec2", bf2d);
    write_solver_entry(w, "bellman_ford.vecn_dim3", bfnd);
    write_solver_entry(w, "spfa.int64", spfa1d);
    w.end_array();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    std::string solver_json = "BENCH_solver.json";
    // Peel off our flag before google-benchmark sees the argument list.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        constexpr const char* kFlag = "--solver_json=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
            solver_json = argv[i] + std::strlen(kFlag);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!solver_json.empty()) {
        if (!write_solver_json(solver_json)) {
            std::cerr << "bench_micro: could not write " << solver_json << '\n';
            return 1;
        }
        std::cout << "wrote " << solver_json << '\n';
    }
    return 0;
}
