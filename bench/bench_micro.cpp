// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// Bellman-Ford (1-D and lexicographic 2-D), the constraint solver, the four
// fusion algorithms, dependence analysis and the cache simulator.

#include <benchmark/benchmark.h>

#include "analysis/dependence.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "fusion/hyperplane.hpp"
#include "fusion/llofra.hpp"
#include "graph/bellman_ford.hpp"
#include "ir/parser.hpp"
#include "sim/cache.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace lf;

std::vector<WeightedEdge<std::int64_t>> random_edges_1d(int nodes, int edges, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<WeightedEdge<std::int64_t>> out;
    out.reserve(static_cast<std::size_t>(edges));
    for (int k = 0; k < edges; ++k) {
        out.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                       static_cast<int>(rng.uniform(0, nodes - 1)), rng.uniform(0, 20)});
    }
    return out;
}

void BM_BellmanFord1D(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const auto edges = random_edges_1d(nodes, nodes * 4, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<std::int64_t>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord1D)->Range(16, 1024)->Complexity();

void BM_BellmanFord2DLexicographic(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<WeightedEdge<Vec2>> edges;
    for (int k = 0; k < nodes * 4; ++k) {
        edges.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                         static_cast<int>(rng.uniform(0, nodes - 1)),
                         Vec2{rng.uniform(0, 5), rng.uniform(-5, 5)}});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<Vec2>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord2DLexicographic)->Range(16, 1024)->Complexity();

Mldg random_graph(int nodes, std::uint64_t seed) {
    Rng rng(seed);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = nodes;
    opt.forward_edge_prob = 6.0 / nodes;
    opt.backward_edge_prob = 2.0 / nodes;
    return workloads::random_legal_mldg(rng, opt);
}

void BM_Llofra(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) benchmark::DoNotOptimize(llofra(g));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Llofra)->Range(16, 512)->Complexity();

void BM_AcyclicDoall(benchmark::State& state) {
    Rng rng(13);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = static_cast<int>(state.range(0));
    opt.forward_edge_prob = 6.0 / opt.num_nodes;
    opt.backward_edge_prob = 0;
    opt.self_edge_prob = 0;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    for (auto _ : state) benchmark::DoNotOptimize(acyclic_doall_fusion(g));
}
BENCHMARK(BM_AcyclicDoall)->Range(16, 512);

void BM_CyclicDoall(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 17);
    for (auto _ : state) benchmark::DoNotOptimize(cyclic_doall_fusion(g));
}
BENCHMARK(BM_CyclicDoall)->Range(16, 512);

void BM_HyperplaneFusion(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 19);
    for (auto _ : state) benchmark::DoNotOptimize(hyperplane_fusion(g));
}
BENCHMARK(BM_HyperplaneFusion)->Range(16, 512);

void BM_PlanFusionFig2(benchmark::State& state) {
    const Mldg g = workloads::fig2_graph();
    for (auto _ : state) benchmark::DoNotOptimize(plan_fusion(g));
}
BENCHMARK(BM_PlanFusionFig2);

void BM_DependenceAnalysis(benchmark::State& state) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_dependences(p));
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ParseFig2(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(ir::parse_program(workloads::sources::kFig2));
    }
}
BENCHMARK(BM_ParseFig2);

void BM_CacheSimSweep(benchmark::State& state) {
    sim::CacheSim cache(sim::CacheConfig{8, 64, 4});
    std::int64_t address = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(address));
        address = (address + 7) % 100000;
    }
}
BENCHMARK(BM_CacheSimSweep);

}  // namespace

BENCHMARK_MAIN();
