// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// Bellman-Ford (1-D and lexicographic 2-D), the constraint solver, the four
// fusion algorithms, dependence analysis and the cache simulator.
//
// In addition to the usual google-benchmark output, the binary writes two
// machine-readable summaries:
//
//   BENCH_solver.json  per-solver ns/op plus SolverStats aggregates
//                      (--solver_json=<path>; empty skips it);
//   BENCH_plan.json    end-to-end planning throughput over the full 2-D
//                      gallery and an N-D fixture set, in five modes --
//                      cold (fresh allocations per plan), warm (reused
//                      PlannerWorkspace, steady-state allocation-free),
//                      batch (the set as one try_plan_fusion_batch call,
//                      lockstep skeleton lanes), delta (warm-started from
//                      cached feasible distances, the near-miss re-plan
//                      ceiling) and cache-hit (content-addressed plan
//                      cache + certify re-check) -- with allocations/plan
//                      from the workspace's counting allocator and the
//                      computed speedups over cold
//                      (--plan_json=<path>; empty skips it).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <thread>

#include "analysis/dependence.hpp"
#include "exec/compile.hpp"
#include "exec/native.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/certify.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/compact.hpp"
#include "fusion/driver.hpp"
#include "fusion/hyperplane.hpp"
#include "fusion/ladder.hpp"
#include "fusion/llofra.hpp"
#include "fusion/multidim.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/solver_workspace.hpp"
#include "ir/parser.hpp"
#include "graph/spfa.hpp"
#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "sim/cache.hpp"
#include "support/cemit.hpp"
#include "support/json.hpp"
#include "support/lexvec.hpp"
#include "svc/manifest.hpp"
#include "svc/plancache.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"
#include "transform/fused_program.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace lf;

std::vector<WeightedEdge<std::int64_t>> random_edges_1d(int nodes, int edges, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<WeightedEdge<std::int64_t>> out;
    out.reserve(static_cast<std::size_t>(edges));
    for (int k = 0; k < edges; ++k) {
        out.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                       static_cast<int>(rng.uniform(0, nodes - 1)), rng.uniform(0, 20)});
    }
    return out;
}

void BM_BellmanFord1D(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const auto edges = random_edges_1d(nodes, nodes * 4, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<std::int64_t>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord1D)->Range(16, 1024)->Complexity();

void BM_BellmanFord2DLexicographic(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<WeightedEdge<Vec2>> edges;
    for (int k = 0; k < nodes * 4; ++k) {
        edges.push_back({static_cast<int>(rng.uniform(0, nodes - 1)),
                         static_cast<int>(rng.uniform(0, nodes - 1)),
                         Vec2{rng.uniform(0, 5), rng.uniform(-5, 5)}});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<Vec2>(nodes, edges));
    }
    state.SetComplexityN(nodes);
}
BENCHMARK(BM_BellmanFord2DLexicographic)->Range(16, 1024)->Complexity();

Mldg random_graph(int nodes, std::uint64_t seed) {
    Rng rng(seed);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = nodes;
    opt.forward_edge_prob = 6.0 / nodes;
    opt.backward_edge_prob = 2.0 / nodes;
    return workloads::random_legal_mldg(rng, opt);
}

void BM_Llofra(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) benchmark::DoNotOptimize(llofra(g));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Llofra)->Range(16, 512)->Complexity();

void BM_AcyclicDoall(benchmark::State& state) {
    Rng rng(13);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = static_cast<int>(state.range(0));
    opt.forward_edge_prob = 6.0 / opt.num_nodes;
    opt.backward_edge_prob = 0;
    opt.self_edge_prob = 0;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    for (auto _ : state) benchmark::DoNotOptimize(acyclic_doall_fusion(g));
}
BENCHMARK(BM_AcyclicDoall)->Range(16, 512);

void BM_CyclicDoall(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 17);
    for (auto _ : state) benchmark::DoNotOptimize(cyclic_doall_fusion(g));
}
BENCHMARK(BM_CyclicDoall)->Range(16, 512);

void BM_HyperplaneFusion(benchmark::State& state) {
    const Mldg g = random_graph(static_cast<int>(state.range(0)), 19);
    for (auto _ : state) benchmark::DoNotOptimize(hyperplane_fusion(g));
}
BENCHMARK(BM_HyperplaneFusion)->Range(16, 512);

void BM_PlanFusionFig2(benchmark::State& state) {
    const Mldg g = workloads::fig2_graph();
    for (auto _ : state) benchmark::DoNotOptimize(plan_fusion(g));
}
BENCHMARK(BM_PlanFusionFig2);

void BM_DependenceAnalysis(benchmark::State& state) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_dependences(p));
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ParseFig2(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(ir::parse_program(workloads::sources::kFig2));
    }
}
BENCHMARK(BM_ParseFig2);

void BM_CacheSimSweep(benchmark::State& state) {
    sim::CacheSim cache(sim::CacheConfig{8, 64, 4});
    std::int64_t address = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(address));
        address = (address + 7) % 100000;
    }
}
BENCHMARK(BM_CacheSimSweep);

// ---- End-to-end planning benchmarks (full ladder, gallery inputs) ----
//
// The 2-D inputs are the service's own job manifest (paper gallery +
// extended workloads), so these numbers measure exactly what one service
// job pays minus gate/replay overhead. The N-D fixtures mirror the golden
// differential suite's shapes.

std::vector<Mldg> gallery_graphs() {
    std::vector<Mldg> graphs;
    for (const auto& job : svc::full_gallery_jobs()) graphs.push_back(job.graph);
    return graphs;
}

/// Gallery plus larger random legal MLDGs: the gallery shapes are paper-scale
/// (3-6 loops), where per-plan fixed costs dominate; the stress sizes are
/// where the ladder's all-sources solves actually bite.
std::vector<Mldg> planning_input_set() {
    std::vector<Mldg> graphs = gallery_graphs();
    for (const int nodes : {64, 128, 256}) {
        graphs.push_back(random_graph(nodes, 29 + static_cast<std::uint64_t>(nodes)));
    }
    return graphs;
}

std::vector<MldgN> nd_fixture_graphs() {
    std::vector<MldgN> graphs;
    {
        MldgN g(3);  // cyclic 3-D stencil with a hard fusion-preventing edge
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        const int c = g.add_node("C");
        g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 0, 1}});
        g.add_edge(b, c, {VecN{0, 1, -1}});
        g.add_edge(c, a, {VecN{1, -1, 0}});
        g.add_edge(c, c, {VecN{1, 0, 2}});
        graphs.push_back(std::move(g));
    }
    {
        MldgN g(3);  // acyclic chain: outermost-DOALL fusion succeeds
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        const int c = g.add_node("C");
        g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 3, 1}});
        g.add_edge(b, c, {VecN{0, 2, -5}});
        g.add_edge(a, c, {VecN{2, 0, 0}});
        graphs.push_back(std::move(g));
    }
    {
        MldgN g(4);  // 4-D wavefront chain
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        g.add_edge(a, b, {VecN{0, 0, 0, -1}});
        g.add_edge(b, a, {VecN{1, 0, -1, 0}});
        graphs.push_back(std::move(g));
    }
    return graphs;
}

void BM_PlanLadderGalleryCold(benchmark::State& state) {
    const auto graphs = gallery_graphs();
    for (auto _ : state) {
        for (const Mldg& g : graphs) benchmark::DoNotOptimize(try_plan_fusion(g));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(graphs.size()));
}
BENCHMARK(BM_PlanLadderGalleryCold);

void BM_PlanLadderGalleryWarm(benchmark::State& state) {
    const auto graphs = gallery_graphs();
    PlannerWorkspace ws;
    TryPlanOptions opts;
    opts.workspace = &ws;
    for (auto _ : state) {
        for (const Mldg& g : graphs) benchmark::DoNotOptimize(try_plan_fusion(g, opts));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(graphs.size()));
}
BENCHMARK(BM_PlanLadderGalleryWarm);

void BM_PlanCacheHit(benchmark::State& state) {
    const auto graphs = gallery_graphs();
    svc::PlanCache cache(graphs.size());
    std::vector<std::uint64_t> keys;
    for (const Mldg& g : graphs) {
        const std::uint64_t key = svc::PlanCache::key_of(g, PlanOptions{}, true);
        auto plan = try_plan_fusion(g);
        if (plan.ok()) cache.insert(key, *plan);
        keys.push_back(key);
    }
    // Steady-state hit path: hash + lookup + the gate's certify re-check.
    for (auto _ : state) {
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            const std::uint64_t key = svc::PlanCache::key_of(graphs[i], PlanOptions{}, true);
            benchmark::DoNotOptimize(key == keys[i]);
            auto hit = cache.lookup(key);
            if (hit) benchmark::DoNotOptimize(certify_plan(graphs[i], *hit));
        }
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(graphs.size()));
}
BENCHMARK(BM_PlanCacheHit);

void BM_PlanFusionNdWarm(benchmark::State& state) {
    const auto graphs = nd_fixture_graphs();
    PlannerWorkspace ws;
    for (auto _ : state) {
        for (const MldgN& g : graphs) benchmark::DoNotOptimize(plan_fusion_nd(g, &ws));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(graphs.size()));
}
BENCHMARK(BM_PlanFusionNdWarm);

// ---- Machine-readable planning summary (BENCH_plan.json) ----
//
// Timed with std::chrono over `kPlanReps` passes of the whole input set;
// allocations/plan comes from the PlannerWorkspace counting allocator and
// is measured over the steady state only (the first pass, which grows the
// arena, is excluded) -- the acceptance target is 0.

struct PlanModeSummary {
    std::uint64_t plans = 0;
    std::uint64_t wall_ns = 0;
    double allocations_per_plan = 0.0;  // meaningful for warm modes only

    [[nodiscard]] double ns_per_plan() const {
        return plans == 0 ? 0.0 : static_cast<double>(wall_ns) / static_cast<double>(plans);
    }
    [[nodiscard]] double plans_per_sec() const {
        return wall_ns == 0 ? 0.0
                            : static_cast<double>(plans) * 1e9 / static_cast<double>(wall_ns);
    }
};

void write_plan_mode(json::Writer& w, const char* mode, const PlanModeSummary& s) {
    w.begin_object();
    w.kv("mode", mode);
    w.kv("plans", s.plans);
    w.kv("wall_ns", s.wall_ns);
    w.kv("ns_per_plan", s.ns_per_plan());
    w.kv("plans_per_sec", s.plans_per_sec());
    w.kv("allocations_per_plan", s.allocations_per_plan);
    w.end_object();
}

/// Best of three timed trials of `reps` passes each -- the minimum is the
/// standard robust estimator against scheduler noise and frequency drift.
template <typename Fn>
PlanModeSummary time_plan_mode(int reps, std::uint64_t plans_per_rep, Fn&& pass) {
    PlanModeSummary s;
    s.plans = plans_per_rep * static_cast<std::uint64_t>(reps);
    s.wall_ns = ~std::uint64_t{0};
    for (int trial = 0; trial < 3; ++trial) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) pass();
        const auto t1 = std::chrono::steady_clock::now();
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
        if (ns < s.wall_ns) s.wall_ns = ns;
    }
    return s;
}

bool write_plan_json(const std::string& path) {
    constexpr int kPlanReps = 40;
    const auto graphs = planning_input_set();
    const auto nd_graphs = nd_fixture_graphs();
    const auto n2d = static_cast<std::uint64_t>(graphs.size());
    const auto nnd = static_cast<std::uint64_t>(nd_graphs.size());

    // 2-D cold: a fresh solve allocates everything per plan (pre-workspace
    // behaviour; also what a service run pays on its very first job).
    const PlanModeSummary cold = time_plan_mode(kPlanReps, n2d, [&] {
        for (const Mldg& g : graphs) benchmark::DoNotOptimize(try_plan_fusion(g));
    });

    // 2-D warm: one reused workspace; first pass grows the arena, the timed
    // + allocation-counted passes are pure steady state.
    PlannerWorkspace ws;
    TryPlanOptions warm_opts;
    warm_opts.workspace = &ws;
    for (const Mldg& g : graphs) benchmark::DoNotOptimize(try_plan_fusion(g, warm_opts));
    ws.reset_counters();
    PlanModeSummary warm = time_plan_mode(kPlanReps, n2d, [&] {
        for (const Mldg& g : graphs) benchmark::DoNotOptimize(try_plan_fusion(g, warm_opts));
    });
    // The counter ran over all 3 trials, not just the best one.
    warm.allocations_per_plan =
        warm.plans == 0 ? 0.0
                        : static_cast<double>(ws.total_allocations()) /
                              (3.0 * static_cast<double>(warm.plans));

    // Cache hit: content hash + LRU lookup + certify re-check (exactly the
    // service's hit path; the ladder never runs).
    svc::PlanCache cache(graphs.size());
    for (const Mldg& g : graphs) {
        auto plan = try_plan_fusion(g, warm_opts);
        if (plan.ok()) cache.insert(svc::PlanCache::key_of(g, PlanOptions{}, true), *plan);
    }
    const PlanModeSummary hit = time_plan_mode(kPlanReps, n2d, [&] {
        for (const Mldg& g : graphs) {
            auto cached = cache.lookup(svc::PlanCache::key_of(g, PlanOptions{}, true));
            if (cached) benchmark::DoNotOptimize(certify_plan(g, *cached));
        }
    });

    // 2-D batched: the whole input set planned as ONE try_plan_fusion_batch
    // call (what the service worker prepass does per chunk) -- jobs sharing
    // a constraint-graph skeleton relax in lockstep lanes over shared
    // adjacency, everything else runs as a batch of one.
    PlannerWorkspace ws_batch;
    TryPlanOptions batch_opts;
    batch_opts.workspace = &ws_batch;
    const PlanModeSummary batch = time_plan_mode(kPlanReps, n2d, [&] {
        std::vector<BatchPlanJob> jobs(graphs.size());
        for (std::size_t i = 0; i < graphs.size(); ++i) jobs[i].graph = &graphs[i];
        try_plan_fusion_batch(std::span<BatchPlanJob>(jobs), batch_opts);
        benchmark::DoNotOptimize(jobs.data());
    });

    // 2-D delta: every plan warm-started from its own previous feasible
    // distances -- the ideal case of the plan cache's near-miss hints (a
    // structural neighbor whose differing edges reset nothing). Measures
    // the ceiling of delta re-planning throughput.
    std::vector<LadderArtifacts> seeds(graphs.size());
    std::vector<LadderWarmHints> hints(graphs.size());
    {
        TryPlanOptions seed_opts;
        seed_opts.workspace = &ws;
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            seed_opts.artifacts = &seeds[i];
            benchmark::DoNotOptimize(try_plan_fusion(graphs[i], seed_opts));
            hints[i].phase1 = seeds[i].phase1;
            hints[i].acyclic = seeds[i].acyclic;
            hints[i].llofra = seeds[i].llofra;
        }
    }
    const PlanModeSummary delta = time_plan_mode(kPlanReps, n2d, [&] {
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            TryPlanOptions o;
            o.workspace = &ws;
            o.warm_hints = &hints[i];
            benchmark::DoNotOptimize(try_plan_fusion(graphs[i], o));
        }
    });

    // N-D planner, cold vs warm (no cache: the service only plans 2-D jobs).
    const PlanModeSummary nd_cold = time_plan_mode(kPlanReps, nnd, [&] {
        for (const MldgN& g : nd_graphs) benchmark::DoNotOptimize(plan_fusion_nd(g));
    });
    PlannerWorkspace ws_nd;
    for (const MldgN& g : nd_graphs) benchmark::DoNotOptimize(plan_fusion_nd(g, &ws_nd));
    ws_nd.reset_counters();
    PlanModeSummary nd_warm = time_plan_mode(kPlanReps, nnd, [&] {
        for (const MldgN& g : nd_graphs) benchmark::DoNotOptimize(plan_fusion_nd(g, &ws_nd));
    });
    nd_warm.allocations_per_plan =
        nd_warm.plans == 0 ? 0.0
                           : static_cast<double>(ws_nd.total_allocations()) /
                                 (3.0 * static_cast<double>(nd_warm.plans));

    const auto speedup = [](const PlanModeSummary& base, const PlanModeSummary& fast) {
        return fast.wall_ns == 0 || base.plans == 0
                   ? 0.0
                   : base.ns_per_plan() / fast.ns_per_plan();
    };

    json::Writer w;
    w.begin_object();
    w.kv("gallery_workloads", n2d);
    w.kv("nd_fixtures", nnd);
    w.kv("reps", kPlanReps);
    w.key("modes").begin_array();
    write_plan_mode(w, "ladder_2d.cold", cold);
    write_plan_mode(w, "ladder_2d.warm", warm);
    write_plan_mode(w, "ladder_2d.batch", batch);
    write_plan_mode(w, "ladder_2d.delta", delta);
    write_plan_mode(w, "cache_hit", hit);
    write_plan_mode(w, "ladder_nd.cold", nd_cold);
    write_plan_mode(w, "ladder_nd.warm", nd_warm);
    w.end_array();
    w.kv("batch_plans_per_sec", batch.plans_per_sec());
    w.kv("delta_plans_per_sec", delta.plans_per_sec());
    w.key("speedups").begin_object();
    w.kv("warm_vs_cold", speedup(cold, warm));
    w.kv("batch_vs_cold", speedup(cold, batch));
    w.kv("delta_vs_cold", speedup(cold, delta));
    w.kv("cache_hit_vs_cold", speedup(cold, hit));
    w.kv("nd_warm_vs_cold", speedup(nd_cold, nd_warm));
    w.end_object();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

// ---- Machine-readable solver summary (BENCH_solver.json) ----
//
// Each entry runs one solver `solves` times on a fixed random instance with
// SolverStats attached; ns/op is wall_ns / solves from the stats themselves,
// so the JSON numbers are exactly what the telemetry pipeline reports.

void write_solver_entry(json::Writer& w, const char* name, const SolverStats& st) {
    w.begin_object();
    w.kv("solver", name);
    w.kv("ns_per_op", st.solves == 0 ? std::uint64_t{0} : st.wall_ns / st.solves);
    w.key("stats").begin_object();
    w.kv("solves", st.solves);
    w.kv("edge_scans", st.edge_scans);
    w.kv("relaxations", st.relaxations);
    w.kv("iterations", st.iterations);
    w.kv("queue_pushes", st.queue_pushes);
    w.kv("queue_pops", st.queue_pops);
    w.kv("guard_steps", st.guard_steps);
    w.kv("overflow_near_misses", st.overflow_near_misses);
    w.kv("wall_ns", st.wall_ns);
    w.end_object();
    w.end_object();
}

bool write_solver_json(const std::string& path) {
    constexpr int kNodes = 64;
    constexpr int kSolves = 50;

    const auto edges_1d = random_edges_1d(kNodes, kNodes * 4, 42);
    SolverStats bf1d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            bellman_ford_all_sources<std::int64_t>(kNodes, edges_1d, nullptr, &bf1d));
    }
    SolverStats spfa1d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            spfa_all_sources<std::int64_t>(kNodes, edges_1d, nullptr, &spfa1d));
    }

    Rng rng2(7);
    std::vector<WeightedEdge<Vec2>> edges_2d;
    for (int k = 0; k < kNodes * 4; ++k) {
        edges_2d.push_back({static_cast<int>(rng2.uniform(0, kNodes - 1)),
                            static_cast<int>(rng2.uniform(0, kNodes - 1)),
                            Vec2{rng2.uniform(0, 5), rng2.uniform(-5, 5)}});
    }
    SolverStats bf2d;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(
            bellman_ford_all_sources<Vec2>(kNodes, edges_2d, nullptr, &bf2d));
    }

    constexpr int kDim = 3;
    Rng rngn(23);
    std::vector<WeightedEdge<VecN>> edges_nd;
    for (int k = 0; k < kNodes * 4; ++k) {
        VecN wgt = VecN::zeros(kDim);
        wgt[0] = rngn.uniform(0, 5);
        for (int d = 1; d < kDim; ++d) wgt[d] = rngn.uniform(-5, 5);
        edges_nd.push_back({static_cast<int>(rngn.uniform(0, kNodes - 1)),
                            static_cast<int>(rngn.uniform(0, kNodes - 1)), std::move(wgt)});
    }
    SolverStats bfnd;
    for (int k = 0; k < kSolves; ++k) {
        benchmark::DoNotOptimize(bellman_ford_all_sources<VecN>(
            kNodes, edges_nd, nullptr, &bfnd, WeightTraits<VecN>(kDim)));
    }

    json::Writer w;
    w.begin_object();
    w.kv("nodes", kNodes);
    w.kv("edges", kNodes * 4);
    w.key("solvers").begin_array();
    write_solver_entry(w, "bellman_ford.int64", bf1d);
    write_solver_entry(w, "bellman_ford.vec2", bf2d);
    write_solver_entry(w, "bellman_ford.vecn_dim3", bfnd);
    write_solver_entry(w, "spfa.int64", spfa1d);
    w.end_array();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

// ---- Machine-readable native-kernel summary (BENCH_exec.json) ----
//
// Compiles every replayable gallery workload (plus a depth-3 pipeline)
// through the crash-contained native backend and reports the fused vs
// unfused wall time of the *emitted C*, best of `kExecTrials` sandboxed
// runs per kernel. Each run also differentially checks the native checksum
// against the interpreter: a kernel only appears as "verified" if every
// trial reproduced the interpreter's result bit-for-bit. Domains are sized
// so locality (not parallelism: the sandbox runs without OpenMP here) makes
// the fused form win -- the acceptance bar is fused_ns <= unfused_ns on
// every gallery kernel.
//
// When no C compiler is on PATH the summary is written with
// compiler_available=false and an empty kernel array, so report-only CI
// diffs degrade gracefully instead of failing the build.

struct ExecKernelRow {
    std::string name;
    std::string outcome;        // exec::to_string of the worst trial
    std::int64_t unfused_ns = 0;
    std::int64_t fused_ns = 0;
};

/// Folds one native check into the row: keeps the minimum per-form wall
/// time over trials, and the first non-verified outcome (if any) wins.
void fold_trial(ExecKernelRow& row, const exec::NativeCheck& nc) {
    if (!nc.verified()) {
        if (row.outcome.empty() || row.outcome == "verified") {
            row.outcome = std::string(exec::to_string(nc.outcome)) +
                          (nc.detail.empty() ? "" : ": " + nc.detail);
        }
        return;
    }
    if (row.outcome.empty()) row.outcome = "verified";
    if (row.unfused_ns == 0 || nc.ns_original < row.unfused_ns) {
        row.unfused_ns = nc.ns_original;
    }
    if (row.fused_ns == 0 || nc.ns_fused < row.fused_ns) row.fused_ns = nc.ns_fused;
}

bool write_exec_json(const std::string& path) {
    constexpr int kExecTrials = 7;
    const Domain dom2d{1024, 1024};

    exec::KernelCompiler compiler;  // fresh mkdtemp cache; objects reused across trials
    std::vector<ExecKernelRow> rows;

    if (compiler.available()) {
        struct GalleryEntry {
            const char* name;
            std::string_view source;
        };
        const GalleryEntry gallery[] = {
            {"fig2", workloads::sources::kFig2},
            {"fig8", workloads::sources::kFig8},
            {"jacobi", workloads::sources::kJacobiPair},
            {"iir", workloads::sources::kIirChain},
        };
        exec::SandboxLimits limits;
        limits.wall_ms = 60'000;  // 1024x1024 x 6 arrays is well under this
        for (const auto& entry : gallery) {
            ExecKernelRow row;
            row.name = entry.name;
            const ir::Program p = ir::parse_program(entry.source);
            const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
            for (int t = 0; t < kExecTrials; ++t) {
                fold_trial(row, exec::native_check(p, plan, dom2d, compiler, limits));
            }
            rows.push_back(std::move(row));
        }
        {
            ExecKernelRow row;
            row.name = "volume3d";
            const auto p = front::parse_basic_program<VecN>(workloads::sources::kVolume3d);
            const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(p));
            exec::MdDomain mdom;
            mdom.ext = {96, 96, 96};
            for (int t = 0; t < kExecTrials; ++t) {
                fold_trial(row, exec::native_check_nd(p, plan, mdom, compiler, limits));
            }
            rows.push_back(std::move(row));
        }
    }

    json::Writer w;
    w.begin_object();
    w.kv("compiler_available", compiler.available());
    w.kv("trials", kExecTrials);
    w.key("domain_2d").begin_array();
    w.value(dom2d.n);
    w.value(dom2d.m);
    w.end_array();
    w.key("kernels").begin_array();
    for (const ExecKernelRow& row : rows) {
        w.begin_object();
        w.kv("kernel", row.name);
        w.kv("native", row.outcome);
        w.kv("unfused_ns", row.unfused_ns);
        w.kv("fused_ns", row.fused_ns);
        w.kv("ratio", row.unfused_ns == 0
                          ? 0.0
                          : static_cast<double>(row.fused_ns) /
                                static_cast<double>(row.unfused_ns));
        w.end_object();
    }
    w.end_array();
    const exec::CompileStats cs = compiler.stats();
    w.key("compile").begin_object();
    w.kv("compiles", cs.compiles);
    w.kv("cache_hits", cs.cache_hits);
    w.kv("failures", cs.failures);
    w.end_object();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

// ---- Speedup-vs-threads curves for the parallel entry (BENCH_exec_par.json) ----
//
// Compiles each gallery kernel library once (the object is content-addressed,
// so every thread count shares the same .so) and runs the ABI v2 entry
// `lf_kernel_run_par` at 1/2/4/8 lanes through the forked sandbox. The
// 1-lane run doubles as the serial baseline: lf_run_fused_par degrades to
// the plain fused scan at a single lane, so speedup_tN = ns(1) / ns(N).
//
// Every run must report zero bitwise mismatches against the original form,
// and the fused checksum must be bit-identical across all thread counts
// (the same thread-count-invariance rule exec/native.cpp enforces at
// admission); any variance poisons the row's "native" field instead of
// producing a speedup. The 2-D domain stays at BENCH_exec's 1024x1024:
// the gallery kernels' values grow superexponentially with the domain and
// overflow to NaN past ~1536, where bitwise comparison of the two forms
// breaks down (NaN payloads differ under commuted operands). 1024 rows of
// 1024 iterations is already far above any sane serial cutoff.
//
// Speedup > 1 is only reachable on multi-core hosts -- on a 1-CPU container
// the lanes time-slice one core and the curve is flat or worse. The writer
// records host_cpus so tools/bench_diff.py can gate its --require
// assertion on the measuring host, not on wherever CI happens to run.

struct ExecParRow {
    std::string name;
    std::string outcome;            // "verified" or the first failure, verbatim
    std::vector<std::int64_t> ns;   // best fused wall ns per thread step
};

bool write_exec_par_json(const std::string& path) {
    constexpr int kParTrials = 3;
    constexpr int kThreadSteps[] = {1, 2, 4, 8};
    const Domain dom2d{1024, 1024};

    exec::KernelCompiler compiler;
    std::vector<ExecParRow> rows;

    if (compiler.available()) {
        struct ParEntry {
            const char* name;
            std::string source;  // emitted kernel-library C
        };
        struct GalleryEntry {
            const char* name;
            std::string_view source;
        };
        const GalleryEntry gallery[] = {
            {"fig2", workloads::sources::kFig2},
            {"fig8", workloads::sources::kFig8},
            {"jacobi", workloads::sources::kJacobiPair},
            {"iir", workloads::sources::kIirChain},
        };
        std::vector<ParEntry> entries;
        for (const auto& [name, text] : gallery) {
            const ir::Program p = ir::parse_program(text);
            const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
            const transform::FusedProgram fp = transform::fuse_program(p, plan);
            entries.push_back({name, transform::emit_c_kernel_library(p, fp, dom2d)});
        }
        {
            const auto p = front::parse_basic_program<VecN>(workloads::sources::kVolume3d);
            const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(p));
            exec::MdDomain mdom;
            mdom.ext = {128, 128, 128};
            entries.push_back({"volume3d", transform::emit_md_c_kernel_library(p, plan, mdom)});
        }

        exec::SandboxLimits limits;
        limits.wall_ms = 120'000;  // 8 lanes time-slicing one core is slow
        for (auto& entry : entries) {
            ExecParRow row;
            row.name = entry.name;
            const auto compiled = compiler.compile(entry.source);
            if (!compiled.ok()) {
                row.outcome = "compile failed: " + compiled.status().message();
                rows.push_back(std::move(row));
                continue;
            }
            double ref_checksum = 0.0;
            bool have_ref = false;
            for (const int threads : kThreadSteps) {
                std::int64_t best = 0;
                std::string bad;
                for (int t = 0; t < kParTrials && bad.empty(); ++t) {
                    exec::KernelParams params;
                    params.threads = threads;
                    const exec::RunOutcome run =
                        exec::run_kernel_par(compiled.value().path, params, limits);
                    if (!run.ok()) {
                        bad = std::string(exec::to_string(run.state)) +
                              (run.detail.empty() ? "" : ": " + run.detail);
                    } else if (run.result.mismatches != 0) {
                        bad = "fused/original mismatch at " + std::to_string(threads) +
                              " threads";
                    } else if (!have_ref) {
                        ref_checksum = run.result.checksum_fused;
                        have_ref = true;
                    } else if (std::memcmp(&run.result.checksum_fused, &ref_checksum,
                                           sizeof(double)) != 0) {
                        bad = "thread count changed the result at " +
                              std::to_string(threads) + " threads";
                    }
                    if (bad.empty() &&
                        (best == 0 || run.result.ns_fused < best)) {
                        best = run.result.ns_fused;
                    }
                }
                if (!bad.empty()) {
                    row.outcome = bad;
                    break;
                }
                row.ns.push_back(best);
            }
            if (row.outcome.empty()) row.outcome = "verified";
            rows.push_back(std::move(row));
        }
    }

    json::Writer w;
    w.begin_object();
    w.kv("compiler_available", compiler.available());
    w.kv("host_cpus",
         static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    w.kv("trials", kParTrials);
    w.key("threads").begin_array();
    for (const int t : kThreadSteps) w.value(t);
    w.end_array();
    w.key("domain_2d").begin_array();
    w.value(dom2d.n);
    w.value(dom2d.m);
    w.end_array();
    w.key("speedups").begin_array();
    for (const ExecParRow& row : rows) {
        w.begin_object();
        w.kv("kernel", row.name);
        w.kv("native", row.outcome);
        for (std::size_t i = 0; i < row.ns.size(); ++i) {
            w.kv("ns_t" + std::to_string(kThreadSteps[i]), row.ns[i]);
        }
        for (std::size_t i = 1; i < row.ns.size(); ++i) {
            w.kv("speedup_t" + std::to_string(kThreadSteps[i]),
                 row.ns[i] == 0 ? 0.0
                                : static_cast<double>(row.ns[0]) /
                                      static_cast<double>(row.ns[i]));
        }
        w.end_object();
    }
    w.end_array();
    const exec::CompileStats cs = compiler.stats();
    w.key("compile").begin_object();
    w.kv("compiles", cs.compiles);
    w.kv("cache_hits", cs.cache_hits);
    w.kv("failures", cs.failures);
    w.end_object();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

// ---- Emitted-code size under a planning objective (BENCH_codesize.json) ----
//
// Measures what PlanPolicy::SmallestCode buys: per-kernel emitted C bytes
// and lines, cold-compile wall time, total retiming magnitude, and fringe
// trip counts. The checked-in baseline (bench/baselines/BENCH_codesize.json)
// was generated with --codesize_policy=fastest; CI regenerates under
// --codesize_policy=smallest (the default here), so the report-only diff
// shows the realized reduction in bytes and compile time.
//
// compile_ns is the minimum over kCodesizeReps compiles, each through a
// FRESH KernelCompiler -- a fresh mkdtemp object cache per rep -- so every
// rep pays the true cold-compile cost instead of hitting the content-
// addressed cache. Size fields are deterministic; when no C compiler is on
// PATH they are still written, with compiler_available=false and
// compile_ns=0, so report-only CI diffs degrade gracefully.

struct CodesizeRow {
    std::string name;
    std::string source;                    // emitted kernel-library C
    std::int64_t retiming_magnitude = 0;
    std::int64_t prologue_iters = 0;       // summed across loop dimensions
    std::int64_t epilogue_iters = 0;
    std::int64_t compile_ns = 0;
};

/// Sums prologue/epilogue widths over per-dimension shift vectors, through
/// the same fringe model the emitters use (widths are domain-independent,
/// so extent 0 serves).
void fold_fringes(CodesizeRow& row, std::span<const std::vector<std::int64_t>> dims) {
    for (const auto& shifts : dims) {
        const cemit::FringeBounds b = cemit::fringe_bounds(shifts, 0);
        row.prologue_iters += b.prologue();
        row.epilogue_iters += b.epilogue();
    }
}

bool write_codesize_json(const std::string& path, PlanPolicy policy) {
    constexpr int kCodesizeReps = 3;
    const Domain dom2d{1024, 1024};

    std::vector<CodesizeRow> rows;
    {
        struct GalleryEntry {
            const char* name;
            std::string_view source;
        };
        const GalleryEntry gallery[] = {
            {"fig2", workloads::sources::kFig2},
            {"fig8", workloads::sources::kFig8},
            {"jacobi", workloads::sources::kJacobiPair},
            {"iir", workloads::sources::kIirChain},
        };
        PlanOptions popts;
        popts.policy = policy;
        for (const auto& entry : gallery) {
            CodesizeRow row;
            row.name = entry.name;
            const ir::Program p = ir::parse_program(entry.source);
            const FusionPlan plan = plan_fusion(analysis::build_mldg(p), popts);
            const transform::FusedProgram fp = transform::fuse_program(p, plan);
            row.source = transform::emit_c_kernel_library(p, fp, dom2d);
            row.retiming_magnitude = retiming_magnitude(plan.retiming);
            const int n = plan.retimed.num_nodes();
            std::vector<std::vector<std::int64_t>> dims(2);
            for (int v = 0; v < n; ++v) {
                dims[0].push_back(plan.retiming.of(v).x);
                dims[1].push_back(plan.retiming.of(v).y);
            }
            fold_fringes(row, dims);
            rows.push_back(std::move(row));
        }
        {
            CodesizeRow row;
            row.name = "volume3d";
            const auto p = front::parse_basic_program<VecN>(workloads::sources::kVolume3d);
            const MldgN g = analysis::build_mldg_nd(p);
            const NdFusionPlan plan = plan_fusion_nd(g, nullptr, policy);
            exec::MdDomain mdom;
            mdom.ext = {96, 96, 96};
            row.source = transform::emit_md_c_kernel_library(p, plan, mdom);
            row.retiming_magnitude = retiming_magnitude_nd(plan.retiming);
            std::vector<std::vector<std::int64_t>> dims(
                static_cast<std::size_t>(g.dim()));
            for (int v = 0; v < g.num_nodes(); ++v) {
                for (int k = 0; k < g.dim(); ++k) {
                    dims[static_cast<std::size_t>(k)].push_back(plan.retiming.of(v)[k]);
                }
            }
            fold_fringes(row, dims);
            rows.push_back(std::move(row));
        }
    }

    bool compiler_available = false;
    for (CodesizeRow& row : rows) {
        for (int rep = 0; rep < kCodesizeReps; ++rep) {
            exec::KernelCompiler cold;  // fresh mkdtemp cache: no reuse across reps
            if (!cold.available()) break;
            compiler_available = true;
            const auto t0 = std::chrono::steady_clock::now();
            const auto compiled = cold.compile(row.source);
            const auto t1 = std::chrono::steady_clock::now();
            if (!compiled.ok()) break;
            const std::int64_t ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
            if (row.compile_ns == 0 || ns < row.compile_ns) row.compile_ns = ns;
        }
    }

    json::Writer w;
    w.begin_object();
    w.kv("compiler_available", compiler_available);
    w.kv("reps", kCodesizeReps);
    w.kv("policy", to_string(policy));
    w.key("domain_2d").begin_array();
    w.value(dom2d.n);
    w.value(dom2d.m);
    w.end_array();
    w.key("codesize").begin_array();
    for (const CodesizeRow& row : rows) {
        w.begin_object();
        w.kv("kernel", row.name);
        w.kv("source_bytes", static_cast<std::int64_t>(row.source.size()));
        w.kv("source_lines", static_cast<std::int64_t>(
                                 std::count(row.source.begin(), row.source.end(), '\n')));
        w.kv("compile_ns", row.compile_ns);
        w.kv("retiming_magnitude", row.retiming_magnitude);
        w.kv("prologue_iters", row.prologue_iters);
        w.kv("epilogue_iters", row.epilogue_iters);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    std::ofstream out(path);
    if (!out.good()) return false;
    out << w.str() << '\n';
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    std::string solver_json = "BENCH_solver.json";
    std::string plan_json = "BENCH_plan.json";
    std::string exec_json;      // native runs need a C compiler: opt-in
    std::string exec_par_json;  // parallel speedup curves: opt-in
    std::string codesize_json;  // emitted-code size summary: opt-in
    lf::PlanPolicy codesize_policy = lf::PlanPolicy::SmallestCode;
    // Peel off our flags before google-benchmark sees the argument list.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        constexpr const char* kSolverFlag = "--solver_json=";
        constexpr const char* kPlanFlag = "--plan_json=";
        constexpr const char* kExecFlag = "--exec_json=";
        constexpr const char* kExecParFlag = "--exec_par_json=";
        constexpr const char* kCodesizeFlag = "--codesize_json=";
        constexpr const char* kCodesizePolicyFlag = "--codesize_policy=";
        if (std::strncmp(argv[i], kSolverFlag, std::strlen(kSolverFlag)) == 0) {
            solver_json = argv[i] + std::strlen(kSolverFlag);
        } else if (std::strncmp(argv[i], kPlanFlag, std::strlen(kPlanFlag)) == 0) {
            plan_json = argv[i] + std::strlen(kPlanFlag);
        } else if (std::strncmp(argv[i], kExecParFlag, std::strlen(kExecParFlag)) == 0) {
            exec_par_json = argv[i] + std::strlen(kExecParFlag);
        } else if (std::strncmp(argv[i], kExecFlag, std::strlen(kExecFlag)) == 0) {
            exec_json = argv[i] + std::strlen(kExecFlag);
        } else if (std::strncmp(argv[i], kCodesizePolicyFlag,
                                std::strlen(kCodesizePolicyFlag)) == 0) {
            const char* name = argv[i] + std::strlen(kCodesizePolicyFlag);
            const std::optional<lf::PlanPolicy> parsed = lf::parse_plan_policy(name);
            if (!parsed.has_value()) {
                std::cerr << "bench_micro: unknown plan policy '" << name
                          << "' (fastest|smallest)\n";
                return 1;
            }
            codesize_policy = *parsed;
        } else if (std::strncmp(argv[i], kCodesizeFlag, std::strlen(kCodesizeFlag)) == 0) {
            codesize_json = argv[i] + std::strlen(kCodesizeFlag);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!solver_json.empty()) {
        if (!write_solver_json(solver_json)) {
            std::cerr << "bench_micro: could not write " << solver_json << '\n';
            return 1;
        }
        std::cout << "wrote " << solver_json << '\n';
    }
    if (!plan_json.empty()) {
        if (!write_plan_json(plan_json)) {
            std::cerr << "bench_micro: could not write " << plan_json << '\n';
            return 1;
        }
        std::cout << "wrote " << plan_json << '\n';
    }
    if (!exec_json.empty()) {
        if (!write_exec_json(exec_json)) {
            std::cerr << "bench_micro: could not write " << exec_json << '\n';
            return 1;
        }
        std::cout << "wrote " << exec_json << '\n';
    }
    if (!exec_par_json.empty()) {
        if (!write_exec_par_json(exec_par_json)) {
            std::cerr << "bench_micro: could not write " << exec_par_json << '\n';
            return 1;
        }
        std::cout << "wrote " << exec_par_json << '\n';
    }
    if (!codesize_json.empty()) {
        if (!write_codesize_json(codesize_json, codesize_policy)) {
            std::cerr << "bench_micro: could not write " << codesize_json << '\n';
            return 1;
        }
        std::cout << "wrote " << codesize_json << '\n';
    }
    return 0;
}
