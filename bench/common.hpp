#pragma once
// Shared helpers for the table/figure harnesses: fixed-width table printing
// and workload access.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "workloads/gallery.hpp"

namespace lf::bench {

/// Prints one row of '|'-separated cells with the given column widths.
inline void print_row(const std::vector<int>& widths, const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t k = 0; k < widths.size(); ++k) {
        std::string cell = k < cells.size() ? cells[k] : "";
        const int w = widths[k];
        if (static_cast<int>(cell.size()) > w) cell = cell.substr(0, static_cast<std::size_t>(w));
        line += " " + cell + std::string(static_cast<std::size_t>(w) - cell.size(), ' ') + " |";
    }
    std::cout << line << '\n';
}

inline void print_rule(const std::vector<int>& widths) {
    std::string line = "+";
    for (const int w : widths) line += std::string(static_cast<std::size_t>(w) + 2, '-') + "+";
    std::cout << line << '\n';
}

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt(std::int64_t v) { return std::to_string(v); }

/// Parses the workload's DSL source; only valid for executable workloads.
inline ir::Program parse_workload(const workloads::Workload& w) {
    return ir::parse_program(w.dsl_source);
}

}  // namespace lf::bench
