// Ablation figure -- measuring the contribution of the paper's design
// choices (the refinements DESIGN.md calls out):
//
//   A1. Selective hard-edge handling in Algorithm 4 vs forcing *every* edge
//       outer-carried: success rate and prologue depth on random cyclic
//       legal 2LDGs.
//   A2. Algorithm 3's y-zeroing vs keeping the 2-D solution: inner peels
//       paid per row on random acyclic 2LDGs.
//   A3. Fused-body reordering: fraction of schedulable graphs whose LLOFRA
//       retiming lands a (0,0) dependence against program order (i.e. a
//       naive program-order fused body would be WRONG).
//   A4. Prologue-spread optimality: an independent spread-bounded search
//       confirms the plain Bellman-Ford retimings are spread-minimal.

#include "common.hpp"
#include "fusion/ablation.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/compact.hpp"
#include "fusion/llofra.hpp"
#include "workloads/generators.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    const int kTrials = 300;

    // ---- A1: hard-edge selectivity in Algorithm 4. ----
    {
        int both = 0, selective_only = 0, allhard_only = 0, neither = 0;
        std::int64_t prologue_selective = 0, prologue_allhard = 0;
        int compared = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            Rng rng(1000 + static_cast<std::uint64_t>(trial));
            const Mldg g = workloads::random_legal_mldg(rng);
            const auto paper = cyclic_doall_fusion(g);
            const auto allhard = ablation::cyclic_doall_all_hard(g);
            if (paper.retiming && allhard) {
                ++both;
                prologue_selective += ablation::prologue_rows(*paper.retiming);
                prologue_allhard += ablation::prologue_rows(*allhard);
                ++compared;
            } else if (paper.retiming) {
                ++selective_only;  // all-hard over-constrains phase 1
            } else if (allhard) {
                ++allhard_only;    // rescues a phase-2 failure (the driver's
                                   // forced-carry extension exploits this)
            } else {
                ++neither;
            }
        }
        std::cout << "A1: Algorithm 4 hard-edge selectivity (" << kTrials
                  << " random legal 2LDGs)\n";
        const std::vector<int> widths{34, 10};
        print_rule(widths);
        print_row(widths, {"outcome", "count"});
        print_rule(widths);
        print_row(widths, {"both variants succeed", fmt(static_cast<std::int64_t>(both))});
        print_row(widths, {"only selective (paper) succeeds",
                           fmt(static_cast<std::int64_t>(selective_only))});
        print_row(widths, {"only all-hard succeeds (rescue)",
                           fmt(static_cast<std::int64_t>(allhard_only))});
        print_row(widths, {"both fail (-> Algorithm 5)", fmt(static_cast<std::int64_t>(neither))});
        print_rule(widths);
        if (compared > 0) {
            std::cout << "mean prologue rows when both succeed: selective "
                      << fmt(static_cast<double>(prologue_selective) / compared, 2)
                      << " vs all-hard "
                      << fmt(static_cast<double>(prologue_allhard) / compared, 2) << "\n\n";
        }
    }

    // ---- A2: Algorithm 3's y-zeroing. ----
    {
        std::int64_t peels_zeroed = 0, peels_kept = 0, rows_zeroed = 0, rows_kept = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            Rng rng(2000 + static_cast<std::uint64_t>(trial));
            workloads::RandomGraphOptions opt;
            opt.backward_edge_prob = 0;
            opt.self_edge_prob = 0;
            const Mldg g = workloads::random_legal_mldg(rng, opt);
            const Retiming zeroed = acyclic_doall_fusion(g);
            const Retiming kept = ablation::acyclic_doall_keep_y(g);
            peels_zeroed += ablation::inner_peels(zeroed);
            peels_kept += ablation::inner_peels(kept);
            rows_zeroed += ablation::prologue_rows(zeroed);
            rows_kept += ablation::prologue_rows(kept);
        }
        std::cout << "A2: Algorithm 3 y-zeroing (" << kTrials << " random acyclic 2LDGs)\n";
        std::cout << "  mean inner peels per row: with zeroing "
                  << fmt(static_cast<double>(peels_zeroed) / kTrials, 2) << " vs without "
                  << fmt(static_cast<double>(peels_kept) / kTrials, 2) << '\n';
        std::cout << "  mean prologue rows (unchanged by the step): "
                  << fmt(static_cast<double>(rows_zeroed) / kTrials, 2) << " vs "
                  << fmt(static_cast<double>(rows_kept) / kTrials, 2) << "\n\n";
    }

    // ---- A4: prologue compaction (extension). ----
    {
        std::int64_t plain_rows = 0, compact_rows = 0;
        int improved = 0, succeeded = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            Rng rng(4000 + static_cast<std::uint64_t>(trial));
            workloads::RandomGraphOptions opt;
            opt.num_nodes = 10;
            opt.forward_edge_prob = 0.15;  // sparse graphs leave slack to recover
            opt.backward_edge_prob = 0.08;
            const Mldg g = workloads::random_legal_mldg(rng, opt);
            const auto plain = cyclic_doall_fusion(g);
            const auto compact = cyclic_doall_fusion_compact(g);
            if (!plain.retiming || !compact) continue;
            ++succeeded;
            plain_rows += ablation::prologue_rows(*plain.retiming);
            compact_rows += ablation::prologue_rows(*compact);
            if (ablation::prologue_rows(*compact) < ablation::prologue_rows(*plain.retiming)) {
                ++improved;
            }
        }
        std::cout << "A4: prologue-spread optimality check (sparse random 2LDGs, " << succeeded
                  << " DOALL-fusable)\n";
        std::cout << "  mean prologue rows: plain "
                  << fmt(static_cast<double>(plain_rows) / std::max(succeeded, 1), 2)
                  << " vs spread-bounded search "
                  << fmt(static_cast<double>(compact_rows) / std::max(succeeded, 1), 2) << "  ("
                  << improved << " improved -- 0 expected: the plain Bellman-Ford\n"
                  << "  solution is provably spread-minimal, see fusion/compact.hpp)\n\n";
    }

    // ---- A3: body reordering necessity. ----
    {
        int needs_reorder = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            Rng rng(3000 + static_cast<std::uint64_t>(trial));
            const Mldg g = workloads::random_schedulable_mldg(rng);
            const Mldg gr = llofra(g).apply(g);
            if (ablation::program_order_body_would_be_wrong(gr)) ++needs_reorder;
        }
        std::cout << "A3: fused-body reordering (" << kTrials
                  << " random schedulable 2LDGs): " << needs_reorder << " ("
                  << fmt(100.0 * needs_reorder / kTrials, 1)
                  << "%) would be mis-fused by a program-order body\n";
    }
    return 0;
}
