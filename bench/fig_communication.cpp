// Communication figure -- inter-processor messages and volume per outer
// iteration under block partitioning of the DOALL dimension, plus the
// shift-and-peel overhead crossover the paper cites ("when the number of
// peeled iterations exceeds the number of iterations per processor, this
// method is not efficient").
//
// Shape being checked: fusion keeps the communication *volume* but divides
// the *message count* by ~|V| (messages aggregate per fused barrier);
// shift-and-peel's fixed serial peel makes it lose to retimed fusion as the
// per-processor share m/P shrinks.

#include "baselines/shift_and_peel.hpp"
#include "common.hpp"
#include "ldg/legality.hpp"
#include "sim/communication.hpp"
#include "sim/machine.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    const Domain dom{500, 1000};

    std::cout << "COMMUNICATION per outer iteration (block partition, P = 16)\n";
    {
        const std::vector<int> widths{8, 11, 11, 11, 11};
        print_rule(widths);
        print_row(widths, {"example", "msgs-orig", "msgs-fused", "vol-orig", "vol-fused"});
        print_rule(widths);
        for (const auto& w : workloads::paper_workloads()) {
            const FusionPlan plan = plan_fusion(w.graph);
            const auto orig = sim::estimate_communication_original(w.graph, dom, 16);
            const auto fused = sim::estimate_communication_fused(w.graph, plan, dom, 16);
            print_row(widths, {w.id, fmt(orig.messages), fmt(fused.messages), fmt(orig.volume),
                               fmt(fused.volume)});
        }
        print_rule(widths);
    }

    std::cout << "\nSHIFT-AND-PEEL overhead crossover (workload fig2, sigma = 200, n = "
              << dom.n << ")\n";
    {
        const auto& w = workloads::paper_workloads()[1];  // fig2
        const FusionPlan plan = plan_fusion(w.graph);
        const auto sp = baselines::shift_and_peel_fusion(w.graph);
        const std::vector<int> widths{7, 8, 12, 14, 14, 12};
        print_rule(widths);
        print_row(widths, {"m", "m/P", "peel", "S&P time", "ours time", "ours-vs-S&P"});
        print_rule(widths);
        for (const std::int64_t m : {4096LL, 1024LL, 256LL, 64LL, 16LL}) {
            const Domain d{dom.n, m};
            const sim::MachineConfig machine{16, 200};
            const auto sp_est = sim::estimate_shift_and_peel(w.graph, sp.peel, d, machine);
            const auto ours = sim::estimate_fused(w.graph, plan, d, machine);
            print_row(widths, {fmt(m), fmt((m + 1) / 16), fmt(sp.peel), fmt(sp_est.total_time),
                               fmt(ours.total_time), fmt(ours.speedup_over(sp_est), 2) + "x"});
        }
        print_rule(widths);
        std::cout << "(the shift-and-peel column also pays its serial peel when rows shrink;\n"
                 " retimed fusion has no serial term, so its advantage grows as m/P -> peel)\n";
    }
    return 0;
}
