// Figures 7, 13 and 16 -- iteration spaces after retiming and fusion.
//
// Each grid cell shows the index of the parallel *phase* in which that fused
// point executes (points sharing a phase run concurrently):
//   * Figure 7  : fig2 after LLOFRA only -- same-row dependences remain, so
//                 rows are serial (we print the intra-row dependence count);
//   * Figure 13 : fig2 after Algorithm 4 -- phase = row index, rows DOALL;
//   * Figure 16 : fig14 after Algorithm 5 -- phase = hyperplane index.

#include <algorithm>
#include <map>

#include "common.hpp"
#include "fusion/llofra.hpp"

namespace {

using namespace lf;

/// Counts retimed dependences that connect two points of the same phase
/// (phase(p) = s.p): nonzero means the phases are NOT parallel.
std::int64_t intra_phase_dependences(const Mldg& retimed, const Vec2& s) {
    std::int64_t count = 0;
    for (const auto& e : retimed.edges()) {
        for (const Vec2& d : e.vectors) {
            if (!d.is_zero() && s.dot(d) == 0) ++count;
        }
    }
    return count;
}

void print_phase_grid(const char* title, const Vec2& s, std::int64_t rows, std::int64_t cols) {
    std::cout << title << "  (phase = " << s.x << "*i + " << s.y << "*j, normalized)\n";
    // Normalize phases to start at zero within the printed window.
    std::int64_t tmin = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) tmin = std::min(tmin, s.x * i + s.y * j);
    }
    for (std::int64_t i = rows - 1; i >= 0; --i) {  // paper draws i upward
        std::cout << "  i=" << i << " |";
        for (std::int64_t j = 0; j < cols; ++j) {
            std::printf(" %3lld", static_cast<long long>(s.x * i + s.y * j - tmin));
        }
        std::cout << '\n';
    }
    std::cout << "        +" << std::string(static_cast<std::size_t>(cols) * 4, '-') << "  (j ->)\n\n";
}

}  // namespace

int main() {
    const std::int64_t rows = 4, cols = 8;

    // Figure 7: fig2 after LLOFRA only.
    {
        const Mldg g = workloads::fig2_graph();
        const Mldg gr = llofra(g).apply(g);
        std::cout << "=== Figure 7: fig2 after LLOFRA + fusion (rows are SERIAL) ===\n";
        std::cout << "intra-row dependences per point pattern: "
                  << intra_phase_dependences(gr, Vec2{1, 0})
                  << " (nonzero -> the row schedule (1,0) is not strict)\n";
        print_phase_grid("execution order within a row is forced left-to-right", Vec2{0, 1},
                         rows, cols);
    }

    // Figure 13: fig2 after Algorithm 4.
    {
        const FusionPlan plan = plan_fusion(workloads::fig2_graph());
        std::cout << "=== Figure 13: fig2 after Algorithm 4 + fusion (rows DOALL) ===\n";
        std::cout << "intra-row dependences: "
                  << intra_phase_dependences(plan.retimed, Vec2{1, 0}) << '\n';
        print_phase_grid("all points of a row share one phase", Vec2{1, 0}, rows, cols);
    }

    // Figure 16: fig14 after Algorithm 5.
    {
        const FusionPlan plan = plan_fusion(workloads::fig14_graph());
        std::cout << "=== Figure 16: fig14 after Algorithm 5 (hyperplanes DOALL) ===\n";
        std::cout << "schedule s = " << plan.schedule.str() << ", hyperplane h = "
                  << plan.hyperplane.str() << '\n';
        std::cout << "intra-hyperplane dependences: "
                  << intra_phase_dependences(plan.retimed, plan.schedule) << '\n';
        print_phase_grid("points with equal phase run concurrently", plan.schedule, rows, cols);
    }
    return 0;
}
