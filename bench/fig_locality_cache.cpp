// Locality figure -- the data-locality half of the paper's motivation
// ("because of array reuse, fusion reduces the references to main memory"),
// measured two ways on the executable workloads:
//
//   (a) register forwarding: flow dependences retimed to (0,0) let the
//       consumer reuse the just-computed value without touching memory;
//   (b) cache misses: simulated set-associative LRU cache over the real
//       address traces, comparing the original schedule against the
//       inner-aligned (shift-and-peel shifts) and fully-retimed fused
//       schedules across cache sizes.
//
// Shape being checked: inner alignment strictly reduces misses once the
// cache is smaller than a row's working set; full x-retiming trades some of
// that locality for row parallelism (an honest tradeoff the paper does not
// quantify -- see EXPERIMENTS.md).

#include "baselines/shift_and_peel.hpp"
#include "common.hpp"
#include "exec/engines.hpp"
#include "ldg/legality.hpp"
#include "sim/cache.hpp"
#include "sim/metrics.hpp"
#include "transform/fused_program.hpp"

namespace {

using namespace lf;

transform::FusedProgram make_plan_program(const ir::Program& p, const FusionPlan& plan) {
    return transform::fuse_program(p, plan);
}

/// Fused program with a y-only alignment (the shift-and-peel shifts).
transform::FusedProgram make_aligned_program(const ir::Program& p, const Mldg& g) {
    const auto sp = baselines::shift_and_peel_fusion(g);
    FusionPlan plan;
    plan.retiming = Retiming(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
        plan.retiming.of(v) = Vec2{0, sp.shift[static_cast<std::size_t>(v)]};
    }
    plan.retimed = plan.retiming.apply(g);
    plan.body_order = *fused_body_order(plan.retimed);
    plan.level = ParallelismLevel::Hyperplane;  // rows serial; rowwise engine is fine
    return transform::fuse_program(p, plan);
}

std::int64_t misses(const std::vector<exec::TraceEntry>& trace, std::int64_t cache_elements) {
    sim::CacheSim cache(sim::CacheConfig{8, static_cast<int>(cache_elements / (8 * 4)), 4});
    cache.access_trace(trace);
    return cache.stats().misses;
}

}  // namespace

int main() {
    using namespace lf::bench;

    const Domain dom{30, 1500};

    std::cout << "(a) REGISTER FORWARDING (loads eliminable by (0,0)-retimed flow deps),\n"
                 "    n=" << dom.n << ", m=" << dom.m << "\n";
    {
        const std::vector<int> widths{8, 12, 14, 16, 10};
        print_rule(widths);
        print_row(widths, {"example", "total loads", "forwardable", "deps at (0,0)", "fraction"});
        print_rule(widths);
        for (const auto& w : workloads::paper_workloads()) {
            if (w.dsl_source.empty()) continue;
            const ir::Program p = parse_workload(w);
            const auto info = analysis::analyze_dependences(p);
            const FusionPlan plan = plan_fusion(info.graph);
            const auto reuse = sim::forwarding_reuse(p, info, plan.retiming, dom);
            print_row(widths, {w.id, fmt(reuse.total_loads), fmt(reuse.forwardable_loads),
                               fmt(reuse.forwardable_dependences), fmt(reuse.fraction(), 3)});
        }
        print_rule(widths);
    }

    std::cout << "\n(b) CACHE MISSES vs cache size (4-way LRU, 8-element lines),\n"
                 "    n=" << dom.n << ", m=" << dom.m << " (one row = " << dom.cols()
              << " elements)\n";
    for (const auto& w : workloads::paper_workloads()) {
        if (w.dsl_source.empty()) continue;
        const ir::Program p = parse_workload(w);
        const Mldg g = analysis::build_mldg(p);
        const FusionPlan plan = plan_fusion(g);

        exec::ArrayStore orig_store(p, dom);
        orig_store.enable_tracing();
        (void)exec::run_original(p, dom, orig_store);

        exec::ArrayStore aligned_store(p, dom);
        aligned_store.enable_tracing();
        (void)exec::run_fused_rowwise(make_aligned_program(p, g), dom, aligned_store);

        exec::ArrayStore fused_store(p, dom);
        fused_store.enable_tracing();
        (void)exec::run_fused_rowwise(make_plan_program(p, plan), dom, fused_store);

        std::cout << "\n" << w.id << " (accesses: " << orig_store.trace().size() << ")\n";
        const std::vector<int> widths{10, 12, 14, 14};
        print_rule(widths);
        print_row(widths, {"cache(el)", "original", "y-aligned", "fully-retimed"});
        print_rule(widths);
        for (const std::int64_t size : {256LL, 512LL, 1024LL, 2048LL, 4096LL, 16384LL}) {
            print_row(widths, {fmt(size), fmt(misses(orig_store.trace(), size)),
                               fmt(misses(aligned_store.trace(), size)),
                               fmt(misses(fused_store.trace(), size))});
        }
        print_rule(widths);
    }

    std::cout << "\n(c) PRIVATE per-processor caches (P = 8, block partition of j);\n"
                 "    total misses across processors. The fused block's working set is\n"
                 "    ~|V|x a single loop's, so the private cache must be large enough to\n"
                 "    hold it -- below that capacity fusion loses, above it fusion wins:\n";
    {
        const int P = 8;
        const std::vector<int> widths{8, 12, 14, 12, 14};
        print_rule(widths);
        print_row(widths, {"example", "original", "y-aligned", "original", "y-aligned"});
        print_row(widths, {"", "(256 el)", "(256 el)", "(2048 el)", "(2048 el)"});
        print_rule(widths);
        for (const auto& w : workloads::paper_workloads()) {
            if (w.dsl_source.empty()) continue;
            const ir::Program p = parse_workload(w);
            const Mldg g = analysis::build_mldg(p);

            exec::ArrayStore orig(p, dom);
            orig.enable_tracing();
            (void)exec::run_original_blocked(p, dom, orig, P);

            exec::ArrayStore aligned(p, dom);
            aligned.enable_tracing();
            (void)exec::run_fused_blocked(make_aligned_program(p, g), dom, aligned, P);

            const sim::CacheConfig small{8, 8, 4};    // 256 elements
            const sim::CacheConfig large{8, 64, 4};   // 2048 elements
            print_row(widths,
                      {w.id,
                       fmt(sim::total_misses(sim::simulate_private_caches(orig.trace(), P, small))),
                       fmt(sim::total_misses(
                           sim::simulate_private_caches(aligned.trace(), P, small))),
                       fmt(sim::total_misses(sim::simulate_private_caches(orig.trace(), P, large))),
                       fmt(sim::total_misses(
                           sim::simulate_private_caches(aligned.trace(), P, large)))});
        }
        print_rule(widths);
    }
    return 0;
}
