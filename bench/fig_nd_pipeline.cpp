// n-D extension figure -- the general MLDG of Definition 2.2 end-to-end on
// a 3-D volume pipeline (time x plane x column): dependence analysis,
// n-D planning (LLOFRA + generalized Lemma 4.3 schedule), wavefront
// execution with golden verification, and barrier counts vs the original
// loop-by-loop schedule.

#include "common.hpp"
#include "analysis/dependence.hpp"
#include "exec/engines_nd.hpp"
#include "front/parse.hpp"

namespace {

constexpr std::string_view kVolume3d = R"(
program volume dim 3 {
  loop Smooth {
    s[i1][i2][j] = 0.25 * (v[i1-1][i2][j-1] + v[i1-1][i2][j+1])
                 + 0.5 * s[i1-1][i2+1][j];
  }
  loop Gradient {
    g[i1][i2][j] = s[i1][i2][j-1] - s[i1][i2][j+1];
  }
  loop Volume {
    v[i1][i2][j] = g[i1][i2-1][j-2] + g[i1][i2-1][j+2] + 0.1 * v[i1-1][i2][j];
  }
}
)";

}  // namespace

int main() {
    using namespace lf;
    using namespace lf::bench;

    const front::BasicProgram<VecN> program = front::parse_basic_program<VecN>(kVolume3d);
    const MldgN g = analysis::build_mldg_nd(program);
    std::cout << "3-D volume pipeline:\n" << g.summary() << '\n';

    const NdFusionPlan plan = plan_fusion_nd(g);
    std::cout << "plan: "
              << (plan.level == NdParallelism::OutermostCarried ? "outermost-carried DOALL"
                                                                : "DOALL hyperplane")
              << ", schedule s = " << plan.schedule.str() << '\n';
    for (int v = 0; v < g.num_nodes(); ++v) {
        std::cout << "  r(" << g.node(v).name << ") = " << plan.retiming.of(v).str() << '\n';
    }

    std::cout << "\nbarriers and verification vs cube size:\n";
    const std::vector<int> widths{12, 12, 14, 10, 10};
    print_rule(widths);
    print_row(widths, {"extent", "original", "wavefront", "verified", "ratio"});
    print_rule(widths);
    for (const std::int64_t e : {4LL, 8LL, 12LL, 16LL}) {
        const exec::MdDomain dom{{e, e, e}};
        const auto result = exec::verify_md_fusion(program, dom);
        print_row(widths,
                  {fmt(e) + "^3", fmt(result.original.barriers), fmt(result.transformed.barriers),
                   result.equivalent ? "YES" : "NO",
                   fmt(static_cast<double>(result.original.barriers) /
                           static_cast<double>(result.transformed.barriers),
                       2) + "x"});
    }
    print_rule(widths);
    std::cout << "(original pays |V| barriers per (time, plane) point; the wavefront pays\n"
                 " one per hyperplane of s -- each a fully parallel set of 3-D points)\n";
    return 0;
}
