// Figures 3/6/10/12/15 -- the retimed graphs and transformed codes for the
// paper's three examples, regenerated:
//   * Figure 6  : fig2 after LLOFRA (legal fusion, serial rows),
//   * Figure 12 : fig2 after Algorithm 4 (DOALL rows) + transformed code,
//   * Figure 10 : fig8 after Algorithm 3,
//   * Figure 15 : fig14 after Algorithm 5 + schedule vector.

#include "common.hpp"
#include "fusion/llofra.hpp"
#include "transform/codegen.hpp"
#include "transform/fused_program.hpp"

namespace {

void show_plan(const lf::workloads::Workload& w) {
    using namespace lf;
    std::cout << "==== " << w.id << ": " << w.title << " ====\n";
    std::cout << "original:\n" << w.graph.summary();
    const FusionPlan plan = plan_fusion(w.graph);
    std::cout << plan.describe(w.graph);
    std::cout << "retimed:\n" << plan.retimed.summary() << '\n';

    if (!w.dsl_source.empty()) {
        const ir::Program p = bench::parse_workload(w);
        const auto fp = transform::fuse_program(p, plan);
        std::cout << "transformed code (n=m symbolic, domain 1000x1000 for peels):\n"
                  << transform::emit_transformed(fp, Domain{1000, 1000}) << '\n';
    }
}

}  // namespace

int main() {
    using namespace lf;

    // Figure 6: fig2 under plain LLOFRA (before the parallelism fix).
    {
        const Mldg g = workloads::fig2_graph();
        const Retiming r = llofra(g);
        std::cout << "==== fig2 under LLOFRA alone (paper Figure 6) ====\n";
        std::cout << "retiming: " << r.str(g) << '\n';
        std::cout << r.apply(g).summary();
        std::cout << "(rows are serial: A->C retimed to (0,3) stays inside a row; cf. Fig. 7)\n\n";
    }

    for (const auto& w : workloads::paper_workloads()) show_plan(w);

    std::cout << "Graphviz (retimed fig2, paper Figure 12(a)):\n";
    const FusionPlan plan = plan_fusion(workloads::fig2_graph());
    std::cout << plan.retimed.to_dot("fig2_retimed");
    return 0;
}
