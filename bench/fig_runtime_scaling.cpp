// Runtime-scaling figure -- the polynomial-time claim in the paper's title.
//
// All algorithms reduce to O(|V| * |E|) Bellman-Ford passes; we time the
// complete fusion planner on random legal 2LDGs of growing size and report
// time / (|V| * |E|), which should stay roughly flat.

#include <chrono>

#include "common.hpp"
#include "workloads/generators.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;
    using clock = std::chrono::steady_clock;

    std::cout << "RUNTIME SCALING of plan_fusion on random legal 2LDGs\n";
    const std::vector<int> widths{6, 8, 10, 12, 16};
    print_rule(widths);
    print_row(widths, {"|V|", "|E|", "runs", "time (ms)", "us / (V*E/1000)"});
    print_rule(widths);

    for (const int v : {8, 16, 32, 64, 128, 256, 512}) {
        workloads::RandomGraphOptions opt;
        opt.num_nodes = v;
        // Keep average degree constant so |E| grows linearly with |V|.
        opt.forward_edge_prob = 4.0 / v;
        opt.backward_edge_prob = 2.0 / v;

        Rng rng(static_cast<std::uint64_t>(v) * 31 + 7);
        const int runs = v <= 64 ? 50 : 10;
        std::int64_t total_edges = 0;
        double total_ms = 0.0;
        for (int run = 0; run < runs; ++run) {
            const Mldg g = workloads::random_legal_mldg(rng, opt);
            total_edges += g.num_edges();
            const auto start = clock::now();
            const FusionPlan plan = plan_fusion(g);
            const auto stop = clock::now();
            (void)plan;
            total_ms += std::chrono::duration<double, std::milli>(stop - start).count();
        }
        const double avg_edges = static_cast<double>(total_edges) / runs;
        const double avg_ms = total_ms / runs;
        const double normalized = avg_ms * 1000.0 / (static_cast<double>(v) * avg_edges / 1000.0);
        print_row(widths, {fmt(static_cast<std::int64_t>(v)),
                           fmt(static_cast<std::int64_t>(avg_edges)),
                           fmt(static_cast<std::int64_t>(runs)), fmt(avg_ms, 3),
                           fmt(normalized, 2)});
    }
    print_rule(widths);
    std::cout << "A roughly flat last column confirms the O(|V|*|E|) bound.\n";
    return 0;
}
