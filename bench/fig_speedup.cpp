// Speedup figure -- simulated parallel execution time of the original,
// grouped-baseline and fused schedules on the multiprocessor cost model,
// as processor count and barrier cost vary.
//
// Shape being checked: fusion wins everywhere; the win grows with the
// barrier cost sigma and with P (barriers are the serial fraction); the
// grouped baseline sits between the two.

#include "baselines/kennedy_mckinley.hpp"
#include "common.hpp"
#include "ldg/legality.hpp"
#include "sim/machine.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    const Domain dom{500, 1000};

    std::cout << "SPEEDUP vs processors (sigma = 200, n=" << dom.n << ", m=" << dom.m << ")\n";
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan plan = plan_fusion(w.graph);
        std::cout << "\n" << w.id << " [" << to_string(plan.level) << "]\n";
        const std::vector<int> widths{5, 13, 13, 13, 12, 12};
        print_rule(widths);
        print_row(widths, {"P", "original", "KM-grouped", "fused(ours)", "ours-vs-org",
                           "ours-vs-KM"});
        print_rule(widths);
        for (const int p : {1, 2, 4, 8, 16, 32, 64}) {
            const sim::MachineConfig machine{p, 200};
            const auto orig = sim::estimate_original(w.graph, dom, machine);
            const auto ours = sim::estimate_fused(w.graph, plan, dom, machine);
            std::string km_time = "n/a", km_ratio = "n/a";
            if (is_legal_mldg(w.graph)) {
                const auto groups = baselines::kennedy_mckinley_fusion(w.graph);
                const auto km = sim::estimate_grouped(w.graph, groups.groups,
                                                      groups.group_is_doall, dom, machine);
                km_time = fmt(km.total_time);
                km_ratio = fmt(ours.speedup_over(km), 2) + "x";
            }
            print_row(widths, {fmt(static_cast<std::int64_t>(p)), fmt(orig.total_time), km_time,
                               fmt(ours.total_time), fmt(ours.speedup_over(orig), 2) + "x",
                               km_ratio});
        }
        print_rule(widths);
    }

    std::cout << "\nSPEEDUP vs barrier cost (P = 16), workload fig2\n";
    {
        const auto& w = workloads::paper_workloads()[1];
        const FusionPlan plan = plan_fusion(w.graph);
        const std::vector<int> widths{8, 13, 13, 12};
        print_rule(widths);
        print_row(widths, {"sigma", "original", "fused(ours)", "speedup"});
        print_rule(widths);
        for (const std::int64_t sigma : {0LL, 10LL, 100LL, 1000LL, 10000LL}) {
            const sim::MachineConfig machine{16, sigma};
            const auto orig = sim::estimate_original(w.graph, dom, machine);
            const auto ours = sim::estimate_fused(w.graph, plan, dom, machine);
            print_row(widths, {fmt(sigma), fmt(orig.total_time), fmt(ours.total_time),
                               fmt(ours.speedup_over(orig), 2) + "x"});
        }
        print_rule(widths);
    }
    return 0;
}
