// Synchronization-count figure -- measured barrier counts as the outer trip
// count n grows (the paper's "7n synchronizations -> n-2" argument of
// Section 4.2, generalized to all five workloads and to the grouped
// baseline).
//
// Shape being checked: original = |V|*(n+1); Kennedy-McKinley = groups*(n+1);
// ours = n + O(1) for DOALL plans and #hyperplanes for Algorithm 5 plans.

#include "baselines/kennedy_mckinley.hpp"
#include "common.hpp"
#include "ldg/legality.hpp"
#include "sim/machine.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    const std::int64_t m = 1000;
    const sim::MachineConfig machine{1, 0};

    for (const auto& w : workloads::paper_workloads()) {
        std::cout << "barriers(" << w.id << "), m=" << m << ":\n";
        const std::vector<int> widths{8, 12, 14, 12, 10};
        print_rule(widths);
        print_row(widths, {"n", "original", "KM-grouped", "this paper", "reduction"});
        print_rule(widths);
        for (const std::int64_t n : {10LL, 100LL, 1000LL, 10000LL}) {
            const Domain dom{n, m};
            const FusionPlan plan = plan_fusion(w.graph);
            const auto orig = sim::estimate_original(w.graph, dom, machine);
            const auto ours = sim::estimate_fused(w.graph, plan, dom, machine);
            std::string km = "n/a";
            if (is_legal_mldg(w.graph)) {
                const auto groups = baselines::kennedy_mckinley_fusion(w.graph);
                km = fmt(static_cast<std::int64_t>(groups.num_groups()) * dom.rows());
            }
            print_row(widths, {fmt(n), fmt(orig.barriers), km, fmt(ours.barriers),
                               fmt(static_cast<double>(orig.barriers) /
                                       static_cast<double>(ours.barriers),
                                   2) + "x"});
        }
        print_rule(widths);
        std::cout << '\n';
    }
    std::cout << "Note: hyperplane plans (fig14, iir) trade barrier count for parallelism --\n"
                 "their barriers grow with s.x * n + m, but each barrier closes a fully\n"
                 "parallel phase, unlike the serial rows every baseline leaves behind.\n";
    return 0;
}
