// Table 1 -- fusion summary over the five experiment MLDGs (the paper's
// Section 5 set): structure, algorithm applied, resulting parallelism, and
// synchronization counts before/after fusion at n = m = 1000.
//
// Paper claims being checked: every workload fuses legally; acyclic ->
// Algorithm 3, cyclic satisfying Theorem 4.2 -> Algorithm 4 (both giving a
// DOALL inner loop, |V| barriers/iteration -> 1), the rest -> Algorithm 5
// (DOALL hyperplanes).

#include "analysis/dependence.hpp"
#include "common.hpp"
#include "ir/parser.hpp"
#include "sim/machine.hpp"
#include "workloads/extra.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    const Domain dom{1000, 1000};
    const sim::MachineConfig machine{1, 0};  // barriers counted, not priced

    std::cout << "TABLE 1: fusion summary over the Section-5 workloads (n=m=" << dom.n << ")\n";
    const std::vector<int> widths{8, 4, 4, 5, 7, 5, 26, 17, 11, 11, 9};
    print_rule(widths);
    print_row(widths, {"example", "|V|", "|E|", "|D_L|", "cyclic", "hard", "algorithm",
                       "parallelism", "syncs-pre", "syncs-post", "reduction"});
    print_rule(widths);

    for (const auto& w : workloads::paper_workloads()) {
        const Mldg& g = w.graph;
        const FusionPlan plan = plan_fusion(g);

        int hard = 0;
        for (const auto& e : g.edges()) hard += e.is_hard() ? 1 : 0;

        const auto before = sim::estimate_original(g, dom, machine);
        const auto after = sim::estimate_fused(g, plan, dom, machine);

        print_row(widths,
                  {w.id, fmt(static_cast<std::int64_t>(g.num_nodes())),
                   fmt(static_cast<std::int64_t>(g.num_edges())),
                   fmt(static_cast<std::int64_t>(g.total_vectors())),
                   g.is_acyclic() ? "no" : "yes", fmt(static_cast<std::int64_t>(hard)),
                   to_string(plan.algorithm), to_string(plan.level), fmt(before.barriers),
                   fmt(after.barriers),
                   fmt(static_cast<double>(before.barriers) / static_cast<double>(after.barriers),
                       2) + "x"});
    }
    print_rule(widths);

    std::cout << "\nEXTENDED SET (literature-style kernels, see workloads/extra.hpp)\n";
    print_rule(widths);
    for (const auto& w : workloads::extra_workloads()) {
        const Mldg g = analysis::build_mldg(ir::parse_program(w.dsl_source));
        const FusionPlan plan = plan_fusion(g);
        int hard = 0;
        for (const auto& e : g.edges()) hard += e.is_hard() ? 1 : 0;
        const auto before = sim::estimate_original(g, dom, machine);
        const auto after = sim::estimate_fused(g, plan, dom, machine);
        print_row(widths,
                  {w.id, fmt(static_cast<std::int64_t>(g.num_nodes())),
                   fmt(static_cast<std::int64_t>(g.num_edges())),
                   fmt(static_cast<std::int64_t>(g.total_vectors())),
                   g.is_acyclic() ? "no" : "yes", fmt(static_cast<std::int64_t>(hard)),
                   to_string(plan.algorithm), to_string(plan.level), fmt(before.barriers),
                   fmt(after.barriers),
                   fmt(static_cast<double>(before.barriers) / static_cast<double>(after.barriers),
                       2) + "x"});
    }
    print_rule(widths);

    std::cout << "\nRetimings and schedules:\n";
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan plan = plan_fusion(w.graph);
        std::cout << "  " << w.id << ": " << plan.retiming.str(w.graph) << "; s = "
                  << plan.schedule.str() << ", h = " << plan.hyperplane.str() << '\n';
    }
    return 0;
}
