// Table 2 -- comparison against the prior fusion techniques the paper's
// Section 1 discusses: naive direct fusion, Kennedy-McKinley-style greedy
// legal grouping, and Manjikian-Abdelrahman shift-and-peel.
//
// Paper claims being checked: prior techniques either reject the fusion
// (fusion-preventing dependences), need several fused groups (extra
// barriers), or fuse without full parallelism; the retiming-based method
// always fuses with a fully parallel inner loop or hyperplane.

#include "baselines/kennedy_mckinley.hpp"
#include "baselines/naive.hpp"
#include "baselines/shift_and_peel.hpp"
#include "common.hpp"
#include "ldg/legality.hpp"

int main() {
    using namespace lf;
    using namespace lf::bench;

    std::cout << "TABLE 2: baseline comparison (per outer iteration: groups == barriers)\n";
    const std::vector<int> widths{8, 13, 16, 22, 26};
    print_rule(widths);
    print_row(widths, {"example", "naive", "Kennedy-McKinley", "shift-and-peel", "this paper"});
    print_rule(widths);

    for (const auto& w : workloads::paper_workloads()) {
        const Mldg& g = w.graph;
        const bool program_model = is_legal_mldg(g);

        std::string naive_cell = "illegal";
        {
            const auto r = baselines::naive_fusion(g);
            if (r.legal) naive_cell = r.inner_doall ? "legal, DOALL" : "legal, serial";
        }

        std::string km_cell = "n/a (model)";
        if (program_model) {
            const auto r = baselines::kennedy_mckinley_fusion(g);
            km_cell = std::to_string(r.num_groups()) + " groups" +
                      (r.all_doall() ? "" : ", serial row");
        }

        std::string sp_cell = "n/a (model)";
        if (program_model) {
            const auto r = baselines::shift_and_peel_fusion(g);
            if (!r.feasible) {
                sp_cell = "infeasible";
            } else {
                sp_cell = "peel " + std::to_string(r.peel) +
                          (r.inner_doall ? ", DOALL" : ", serial row");
            }
        }

        const FusionPlan plan = plan_fusion(g);
        const std::string ours = std::string("1 group, ") + to_string(plan.level);

        print_row(widths, {w.id, naive_cell, km_cell, sp_cell, ours});
    }
    print_rule(widths);
    std::cout << "\nReading guide: 'serial row' = fused but the innermost loop is not DOALL;\n"
                 "'n/a (model)' = the technique presumes an executable loop sequence, which\n"
                 "fig14 (a dataflow specification) is not.\n";
    return 0;
}
