file(REMOVE_RECURSE
  "CMakeFiles/fig_communication.dir/fig_communication.cpp.o"
  "CMakeFiles/fig_communication.dir/fig_communication.cpp.o.d"
  "fig_communication"
  "fig_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
