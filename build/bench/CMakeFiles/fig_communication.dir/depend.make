# Empty dependencies file for fig_communication.
# This may be replaced when dependencies are built.
