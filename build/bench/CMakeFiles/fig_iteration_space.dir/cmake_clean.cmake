file(REMOVE_RECURSE
  "CMakeFiles/fig_iteration_space.dir/fig_iteration_space.cpp.o"
  "CMakeFiles/fig_iteration_space.dir/fig_iteration_space.cpp.o.d"
  "fig_iteration_space"
  "fig_iteration_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_iteration_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
