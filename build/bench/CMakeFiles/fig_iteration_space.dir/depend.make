# Empty dependencies file for fig_iteration_space.
# This may be replaced when dependencies are built.
