file(REMOVE_RECURSE
  "CMakeFiles/fig_locality_cache.dir/fig_locality_cache.cpp.o"
  "CMakeFiles/fig_locality_cache.dir/fig_locality_cache.cpp.o.d"
  "fig_locality_cache"
  "fig_locality_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_locality_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
