# Empty dependencies file for fig_locality_cache.
# This may be replaced when dependencies are built.
