file(REMOVE_RECURSE
  "CMakeFiles/fig_nd_pipeline.dir/fig_nd_pipeline.cpp.o"
  "CMakeFiles/fig_nd_pipeline.dir/fig_nd_pipeline.cpp.o.d"
  "fig_nd_pipeline"
  "fig_nd_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_nd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
