# Empty compiler generated dependencies file for fig_nd_pipeline.
# This may be replaced when dependencies are built.
