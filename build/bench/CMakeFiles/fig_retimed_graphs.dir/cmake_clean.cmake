file(REMOVE_RECURSE
  "CMakeFiles/fig_retimed_graphs.dir/fig_retimed_graphs.cpp.o"
  "CMakeFiles/fig_retimed_graphs.dir/fig_retimed_graphs.cpp.o.d"
  "fig_retimed_graphs"
  "fig_retimed_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_retimed_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
