# Empty dependencies file for fig_retimed_graphs.
# This may be replaced when dependencies are built.
