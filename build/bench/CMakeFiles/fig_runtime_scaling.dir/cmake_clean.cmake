file(REMOVE_RECURSE
  "CMakeFiles/fig_runtime_scaling.dir/fig_runtime_scaling.cpp.o"
  "CMakeFiles/fig_runtime_scaling.dir/fig_runtime_scaling.cpp.o.d"
  "fig_runtime_scaling"
  "fig_runtime_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_runtime_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
