# Empty dependencies file for fig_runtime_scaling.
# This may be replaced when dependencies are built.
