file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup.dir/fig_speedup.cpp.o"
  "CMakeFiles/fig_speedup.dir/fig_speedup.cpp.o.d"
  "fig_speedup"
  "fig_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
