file(REMOVE_RECURSE
  "CMakeFiles/fig_sync_counts.dir/fig_sync_counts.cpp.o"
  "CMakeFiles/fig_sync_counts.dir/fig_sync_counts.cpp.o.d"
  "fig_sync_counts"
  "fig_sync_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sync_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
