# Empty compiler generated dependencies file for fig_sync_counts.
# This may be replaced when dependencies are built.
