# Empty dependencies file for table1_fusion_summary.
# This may be replaced when dependencies are built.
