# Empty dependencies file for table2_baseline_comparison.
# This may be replaced when dependencies are built.
