file(REMOVE_RECURSE
  "CMakeFiles/example_dsl_driver.dir/dsl_driver.cpp.o"
  "CMakeFiles/example_dsl_driver.dir/dsl_driver.cpp.o.d"
  "example_dsl_driver"
  "example_dsl_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dsl_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
