# Empty dependencies file for example_dsl_driver.
# This may be replaced when dependencies are built.
