file(REMOVE_RECURSE
  "CMakeFiles/example_emit_c.dir/emit_c.cpp.o"
  "CMakeFiles/example_emit_c.dir/emit_c.cpp.o.d"
  "example_emit_c"
  "example_emit_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_emit_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
