# Empty compiler generated dependencies file for example_emit_c.
# This may be replaced when dependencies are built.
