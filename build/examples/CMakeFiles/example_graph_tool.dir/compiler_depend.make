# Empty compiler generated dependencies file for example_graph_tool.
# This may be replaced when dependencies are built.
