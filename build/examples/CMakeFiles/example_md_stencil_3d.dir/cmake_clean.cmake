file(REMOVE_RECURSE
  "CMakeFiles/example_md_stencil_3d.dir/md_stencil_3d.cpp.o"
  "CMakeFiles/example_md_stencil_3d.dir/md_stencil_3d.cpp.o.d"
  "example_md_stencil_3d"
  "example_md_stencil_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_md_stencil_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
