# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_md_stencil_3d.
