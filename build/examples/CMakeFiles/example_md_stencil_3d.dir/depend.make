# Empty dependencies file for example_md_stencil_3d.
# This may be replaced when dependencies are built.
