file(REMOVE_RECURSE
  "CMakeFiles/example_weather_stencil.dir/weather_stencil.cpp.o"
  "CMakeFiles/example_weather_stencil.dir/weather_stencil.cpp.o.d"
  "example_weather_stencil"
  "example_weather_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_weather_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
