# Empty dependencies file for example_weather_stencil.
# This may be replaced when dependencies are built.
