# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/example_image_pipeline")
set_tests_properties(example_image_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_weather_stencil "/root/repo/build/examples/example_weather_stencil")
set_tests_properties(example_weather_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_md_stencil_3d "/root/repo/build/examples/example_md_stencil_3d")
set_tests_properties(example_md_stencil_3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_tool "/root/repo/build/examples/example_graph_tool" "--builtin" "fig14" "--dot" "--svg" "fig14" "--n" "50" "--m" "50")
set_tests_properties(example_graph_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_emit_c "/root/repo/build/examples/example_emit_c" "--n" "8" "--m" "8")
set_tests_properties(example_emit_c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dsl_driver "/root/repo/build/examples/example_dsl_driver" "--help")
set_tests_properties(example_dsl_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
