
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cpp" "src/CMakeFiles/loopfusion.dir/analysis/dependence.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/analysis/dependence.cpp.o.d"
  "/root/repo/src/baselines/kennedy_mckinley.cpp" "src/CMakeFiles/loopfusion.dir/baselines/kennedy_mckinley.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/baselines/kennedy_mckinley.cpp.o.d"
  "/root/repo/src/baselines/naive.cpp" "src/CMakeFiles/loopfusion.dir/baselines/naive.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/baselines/naive.cpp.o.d"
  "/root/repo/src/baselines/shift_and_peel.cpp" "src/CMakeFiles/loopfusion.dir/baselines/shift_and_peel.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/baselines/shift_and_peel.cpp.o.d"
  "/root/repo/src/exec/engines.cpp" "src/CMakeFiles/loopfusion.dir/exec/engines.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/exec/engines.cpp.o.d"
  "/root/repo/src/exec/equivalence.cpp" "src/CMakeFiles/loopfusion.dir/exec/equivalence.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/exec/equivalence.cpp.o.d"
  "/root/repo/src/exec/store.cpp" "src/CMakeFiles/loopfusion.dir/exec/store.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/exec/store.cpp.o.d"
  "/root/repo/src/fusion/ablation.cpp" "src/CMakeFiles/loopfusion.dir/fusion/ablation.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/ablation.cpp.o.d"
  "/root/repo/src/fusion/acyclic_doall.cpp" "src/CMakeFiles/loopfusion.dir/fusion/acyclic_doall.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/acyclic_doall.cpp.o.d"
  "/root/repo/src/fusion/certify.cpp" "src/CMakeFiles/loopfusion.dir/fusion/certify.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/certify.cpp.o.d"
  "/root/repo/src/fusion/compact.cpp" "src/CMakeFiles/loopfusion.dir/fusion/compact.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/compact.cpp.o.d"
  "/root/repo/src/fusion/cyclic_doall.cpp" "src/CMakeFiles/loopfusion.dir/fusion/cyclic_doall.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/cyclic_doall.cpp.o.d"
  "/root/repo/src/fusion/driver.cpp" "src/CMakeFiles/loopfusion.dir/fusion/driver.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/driver.cpp.o.d"
  "/root/repo/src/fusion/hyperplane.cpp" "src/CMakeFiles/loopfusion.dir/fusion/hyperplane.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/hyperplane.cpp.o.d"
  "/root/repo/src/fusion/llofra.cpp" "src/CMakeFiles/loopfusion.dir/fusion/llofra.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/llofra.cpp.o.d"
  "/root/repo/src/fusion/multidim.cpp" "src/CMakeFiles/loopfusion.dir/fusion/multidim.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/fusion/multidim.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/loopfusion.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/constraint_system.cpp" "src/CMakeFiles/loopfusion.dir/graph/constraint_system.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/graph/constraint_system.cpp.o.d"
  "/root/repo/src/graph/constraint_system_nd.cpp" "src/CMakeFiles/loopfusion.dir/graph/constraint_system_nd.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/graph/constraint_system_nd.cpp.o.d"
  "/root/repo/src/ir/ast.cpp" "src/CMakeFiles/loopfusion.dir/ir/ast.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ir/ast.cpp.o.d"
  "/root/repo/src/ir/lexer.cpp" "src/CMakeFiles/loopfusion.dir/ir/lexer.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ir/lexer.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/loopfusion.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/sema.cpp" "src/CMakeFiles/loopfusion.dir/ir/sema.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ir/sema.cpp.o.d"
  "/root/repo/src/ldg/legality.cpp" "src/CMakeFiles/loopfusion.dir/ldg/legality.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ldg/legality.cpp.o.d"
  "/root/repo/src/ldg/mldg.cpp" "src/CMakeFiles/loopfusion.dir/ldg/mldg.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ldg/mldg.cpp.o.d"
  "/root/repo/src/ldg/mldg_nd.cpp" "src/CMakeFiles/loopfusion.dir/ldg/mldg_nd.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ldg/mldg_nd.cpp.o.d"
  "/root/repo/src/ldg/retiming.cpp" "src/CMakeFiles/loopfusion.dir/ldg/retiming.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ldg/retiming.cpp.o.d"
  "/root/repo/src/ldg/serialization.cpp" "src/CMakeFiles/loopfusion.dir/ldg/serialization.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/ldg/serialization.cpp.o.d"
  "/root/repo/src/mdir/analysis.cpp" "src/CMakeFiles/loopfusion.dir/mdir/analysis.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/mdir/analysis.cpp.o.d"
  "/root/repo/src/mdir/ast.cpp" "src/CMakeFiles/loopfusion.dir/mdir/ast.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/mdir/ast.cpp.o.d"
  "/root/repo/src/mdir/codegen_c.cpp" "src/CMakeFiles/loopfusion.dir/mdir/codegen_c.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/mdir/codegen_c.cpp.o.d"
  "/root/repo/src/mdir/exec.cpp" "src/CMakeFiles/loopfusion.dir/mdir/exec.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/mdir/exec.cpp.o.d"
  "/root/repo/src/mdir/parser.cpp" "src/CMakeFiles/loopfusion.dir/mdir/parser.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/mdir/parser.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/loopfusion.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/communication.cpp" "src/CMakeFiles/loopfusion.dir/sim/communication.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/sim/communication.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/loopfusion.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/loopfusion.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/support/vec2.cpp" "src/CMakeFiles/loopfusion.dir/support/vec2.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/support/vec2.cpp.o.d"
  "/root/repo/src/support/vecn.cpp" "src/CMakeFiles/loopfusion.dir/support/vecn.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/support/vecn.cpp.o.d"
  "/root/repo/src/transform/codegen.cpp" "src/CMakeFiles/loopfusion.dir/transform/codegen.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/transform/codegen.cpp.o.d"
  "/root/repo/src/transform/codegen_c.cpp" "src/CMakeFiles/loopfusion.dir/transform/codegen_c.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/transform/codegen_c.cpp.o.d"
  "/root/repo/src/transform/distribution.cpp" "src/CMakeFiles/loopfusion.dir/transform/distribution.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/transform/distribution.cpp.o.d"
  "/root/repo/src/transform/fused_program.cpp" "src/CMakeFiles/loopfusion.dir/transform/fused_program.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/transform/fused_program.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/loopfusion.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/viz/svg.cpp.o.d"
  "/root/repo/src/workloads/extra.cpp" "src/CMakeFiles/loopfusion.dir/workloads/extra.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/workloads/extra.cpp.o.d"
  "/root/repo/src/workloads/gallery.cpp" "src/CMakeFiles/loopfusion.dir/workloads/gallery.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/workloads/gallery.cpp.o.d"
  "/root/repo/src/workloads/generators.cpp" "src/CMakeFiles/loopfusion.dir/workloads/generators.cpp.o" "gcc" "src/CMakeFiles/loopfusion.dir/workloads/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
