file(REMOVE_RECURSE
  "libloopfusion.a"
)
