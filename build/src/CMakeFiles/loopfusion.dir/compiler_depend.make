# Empty compiler generated dependencies file for loopfusion.
# This may be replaced when dependencies are built.
