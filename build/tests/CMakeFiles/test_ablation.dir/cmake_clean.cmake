file(REMOVE_RECURSE
  "CMakeFiles/test_ablation.dir/test_ablation.cpp.o"
  "CMakeFiles/test_ablation.dir/test_ablation.cpp.o.d"
  "test_ablation"
  "test_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
