file(REMOVE_RECURSE
  "CMakeFiles/test_certify.dir/test_certify.cpp.o"
  "CMakeFiles/test_certify.dir/test_certify.cpp.o.d"
  "test_certify"
  "test_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
