file(REMOVE_RECURSE
  "CMakeFiles/test_mdir.dir/test_mdir.cpp.o"
  "CMakeFiles/test_mdir.dir/test_mdir.cpp.o.d"
  "test_mdir"
  "test_mdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
