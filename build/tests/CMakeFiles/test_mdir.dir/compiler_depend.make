# Empty compiler generated dependencies file for test_mdir.
# This may be replaced when dependencies are built.
