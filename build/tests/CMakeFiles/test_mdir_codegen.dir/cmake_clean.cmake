file(REMOVE_RECURSE
  "CMakeFiles/test_mdir_codegen.dir/test_mdir_codegen.cpp.o"
  "CMakeFiles/test_mdir_codegen.dir/test_mdir_codegen.cpp.o.d"
  "test_mdir_codegen"
  "test_mdir_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdir_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
