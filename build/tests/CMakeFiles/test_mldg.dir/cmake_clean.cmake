file(REMOVE_RECURSE
  "CMakeFiles/test_mldg.dir/test_mldg.cpp.o"
  "CMakeFiles/test_mldg.dir/test_mldg.cpp.o.d"
  "test_mldg"
  "test_mldg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mldg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
