# Empty compiler generated dependencies file for test_mldg.
# This may be replaced when dependencies are built.
