// Command-line driver: run the whole toolchain on a .loop DSL file.
//
//   example_dsl_driver <file.loop> [--n N] [--m M] [--dot] [--emit] [--verify]
//
// With no file argument, reads the program from stdin. --dot prints the
// MLDG in Graphviz format; --emit prints original + transformed code;
// --verify executes both forms and checks golden equivalence.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "exec/equivalence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen.hpp"

namespace {

struct Options {
    std::string file;
    std::int64_t n = 100;
    std::int64_t m = 100;
    bool dot = false;
    bool emit = false;
    bool verify = false;
};

Options parse_args(int argc, char** argv) {
    Options o;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t k = 0; k < args.size(); ++k) {
        const std::string& a = args[k];
        if (a == "--dot") {
            o.dot = true;
        } else if (a == "--emit") {
            o.emit = true;
        } else if (a == "--verify") {
            o.verify = true;
        } else if (a == "--n" && k + 1 < args.size()) {
            o.n = std::stoll(args[++k]);
        } else if (a == "--m" && k + 1 < args.size()) {
            o.m = std::stoll(args[++k]);
        } else if (a == "--help") {
            std::cout << "usage: example_dsl_driver <file.loop> [--n N] [--m M] "
                         "[--dot] [--emit] [--verify]\n";
            std::exit(0);
        } else {
            o.file = a;
        }
    }
    if (!o.dot && !o.emit && !o.verify) o.emit = o.verify = true;  // sensible default
    return o;
}

std::string read_source(const Options& o) {
    if (o.file.empty()) {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        return buffer.str();
    }
    std::ifstream in(o.file);
    lf::check(in.good(), "cannot open '" + o.file + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace lf;
    try {
        // Argument parsing sits inside the try block: std::stoll throws
        // std::invalid_argument/std::out_of_range on bad numeric flags, and a
        // CLI tool must turn that into a clean one-line error, not a crash.
        const Options options = parse_args(argc, argv);
        const ir::Program program = ir::parse_program(read_source(options));
        const analysis::DependenceInfo info = analysis::analyze_dependences(program);
        const Domain dom{options.n, options.m};

        std::cout << "program '" << program.name << "': " << info.graph.summary() << '\n';

        if (options.dot) {
            std::cout << info.graph.to_dot(program.name) << '\n';
        }

        const FusionPlan plan = plan_fusion(info.graph);
        std::cout << plan.describe(info.graph) << '\n';

        if (options.emit) {
            const auto fused = transform::fuse_program(program, plan);
            std::cout << "--- original ---\n" << transform::emit_original(program);
            std::cout << "--- transformed ---\n" << transform::emit_transformed(fused, dom);
        }

        if (options.verify) {
            const auto result = exec::verify_fusion(program, dom, exec::EngineKind::FusedRowwise);
            std::cout << "--- verification (n=" << dom.n << ", m=" << dom.m << ") ---\n";
            std::cout << "equivalent: " << (result.equivalent ? "YES" : "NO") << '\n';
            if (!result.equivalent) {
                std::cout << "first difference: " << result.detail << '\n';
                return 1;
            }
            std::cout << "barriers: " << result.original.barriers << " -> "
                      << result.transformed.barriers << '\n';
        }
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
