// Example: emit -- and optionally compile, sandbox and verify -- the C form
// of a loop nest.
//
//   example_emit_c [file.loop] [--n N] [--m M] > fused.c
//   cc -O2 -fopenmp -o fused fused.c && ./fused     # prints "OK <checksum>"
//
//   example_emit_c --workload jacobi --run          # compile + run natively
//   example_emit_c --workload volume3d --run        # depth-3 pipeline
//   example_emit_c --drill crash                    # containment drill
//
// With no file argument the paper's Figure 2 program is used. The emitted
// file contains the original nest, the fused nest (with an OpenMP pragma on
// DOALL rows) and a bit-exact comparison of the two.
//
// --run hands the kernel to the crash-contained native backend: the emitted
// C is compiled into a cached shared object, executed in a forked sandbox
// under rlimits and a wall-clock watchdog, and its checksum differentially
// checked against the interpreter. Exit status: 0 if the kernel verified,
// 2 if the backend contained a failure (crash, timeout, mismatch, compile
// error), 1 on harness errors (bad arguments, no workload, parse failure).
//
// --drill crash|spin|oom pushes a deliberately broken kernel through the
// same backend and exits 0 only if the failure was contained as the
// documented typed outcome while this process survived.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/dependence.hpp"
#include "exec/compile.hpp"
#include "exec/native.hpp"
#include "exec/runner.hpp"
#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"
#include "ir/parser.hpp"
#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace lf;

struct Workload {
    const char* name;
    std::string_view source;
    bool nd;
};

constexpr Workload kWorkloads[] = {
    {"fig2", workloads::sources::kFig2, false},
    {"fig8", workloads::sources::kFig8, false},
    {"jacobi", workloads::sources::kJacobiPair, false},
    {"iir", workloads::sources::kIirChain, false},
    {"volume3d", workloads::sources::kVolume3d, true},
    {"hyper4d", workloads::sources::kHyper4d, true},
};

const Workload* find_workload(const std::string& name) {
    for (const auto& w : kWorkloads) {
        if (name == w.name) return &w;
    }
    return nullptr;
}

void print_check(const char* what, const exec::NativeCheck& nc) {
    std::cerr << what << ": " << to_string(nc.outcome);
    if (!nc.detail.empty()) std::cerr << " -- " << nc.detail;
    if (nc.verified()) {
        std::cerr << " (original " << nc.ns_original << "ns, fused " << nc.ns_fused
                  << "ns" << (nc.from_cache ? ", cached object" : "") << ")";
    }
    std::cerr << '\n';
}

/// Exit status for a finished native check, per the documented contract.
int check_exit_code(const exec::NativeCheck& nc) {
    if (nc.verified()) return 0;
    if (exec::is_native_failure(nc.outcome)) return 2;
    return 1;  // Skipped / Unavailable / NotRun: nothing was actually proven
}

/// --drill: compile a kernel that is broken in a known way and confirm the
/// sandbox reports the documented typed outcome while we stay alive.
int run_drill(const std::string& mode, bool openmp) {
    std::string body;
    exec::RunState expect;
    exec::SandboxLimits limits;
    if (mode == "crash") {
        body = "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    volatile long long* p = (volatile long long*)0;\n"
               "    *p = 42;\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Crashed;
    } else if (mode == "spin") {
        body = "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    volatile int spin = 1;\n"
               "    while (spin) {}\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Timeout;
        limits.wall_ms = 1500;
        limits.term_grace_ms = 200;
    } else if (mode == "oom") {
        body = "#include <stdlib.h>\n"
               "#include <string.h>\n"
               "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    for (;;) {\n"
               "        void* p = malloc(16u << 20);\n"
               "        if (p == NULL) abort();\n"
               "        memset(p, 0xab, 16u << 20);\n"
               "    }\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Crashed;
        limits.address_space_bytes = 256ll << 20;
        limits.wall_ms = 30'000;
    } else {
        std::cerr << "error: unknown drill '" << mode << "' (crash|spin|oom)\n";
        return 1;
    }

    exec::CompileOptions copts;
    copts.openmp = openmp;
    exec::KernelCompiler compiler(copts);
    if (!compiler.compiler_available()) {
        std::cerr << "drill skipped: no C compiler on PATH\n";
        return 1;
    }
    const Result<exec::CompiledKernel> compiled = compiler.compile(body);
    if (!compiled.ok()) {
        std::cerr << "drill harness error: " << compiled.status().message() << '\n';
        return 1;
    }
    const exec::RunOutcome out = exec::run_kernel(compiled.value().path, limits);
    std::cerr << "drill " << mode << ": " << to_string(out.state);
    if (!out.detail.empty()) std::cerr << " -- " << out.detail;
    std::cerr << '\n';
    if (out.state != expect) {
        std::cerr << "drill FAILED: expected " << to_string(expect) << '\n';
        return 1;
    }
    std::cerr << "drill contained; parent survived\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace lf;
    try {
        // Argument parsing sits inside the try block: std::stoll throws on
        // non-numeric --n/--m values and must exit cleanly, not crash.
        std::string source(workloads::sources::kFig2);
        bool nd = false;
        bool run = false;
        bool openmp = false;
        std::string drill;
        Domain dom{100, 100};
        for (int k = 1; k < argc; ++k) {
            const std::string arg = argv[k];
            if (arg == "--n" && k + 1 < argc) {
                dom.n = std::stoll(argv[++k]);
            } else if (arg == "--m" && k + 1 < argc) {
                dom.m = std::stoll(argv[++k]);
            } else if (arg == "--workload" && k + 1 < argc) {
                const std::string name = argv[++k];
                const Workload* w = find_workload(name);
                if (w == nullptr) {
                    std::cerr << "error: unknown workload '" << name << "' (";
                    for (const auto& cand : kWorkloads) std::cerr << cand.name << ' ';
                    std::cerr << ")\n";
                    return 1;
                }
                source = std::string(w->source);
                nd = w->nd;
            } else if (arg == "--drill" && k + 1 < argc) {
                drill = argv[++k];
            } else if (arg == "--run") {
                run = true;
            } else if (arg == "--openmp") {
                openmp = true;
            } else {
                std::ifstream in(arg);
                if (!in.good()) {
                    std::cerr << "error: cannot open '" << arg << "'\n";
                    return 1;
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                source = buf.str();
                nd = false;
            }
        }

        if (!drill.empty()) return run_drill(drill, openmp);

        exec::CompileOptions copts;
        copts.openmp = openmp;
        exec::KernelCompiler compiler(copts);

        if (nd) {
            const auto program = front::parse_basic_program<VecN>(source);
            const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(program));
            exec::MdDomain mdom;
            mdom.ext.assign(static_cast<std::size_t>(program.dim), 24);
            std::cerr << "plan: "
                      << (plan.level == NdParallelism::OutermostCarried
                              ? "outermost-carried"
                              : "hyperplane")
                      << "\nexpected output: OK "
                      << transform::expected_md_c_checksum(program, mdom) << '\n';
            if (run) {
                const exec::NativeCheck nc =
                    exec::native_check_nd(program, plan, mdom, compiler);
                print_check("native", nc);
                return check_exit_code(nc);
            }
            std::cout << transform::emit_md_c_program(program, plan, mdom);
            return 0;
        }

        const ir::Program program = ir::parse_program(source);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(program));
        const transform::FusedProgram fused = transform::fuse_program(program, plan);
        std::cerr << "plan: " << to_string(plan.algorithm) << " -> " << to_string(plan.level)
                  << "\nexpected output: OK " << transform::expected_c_checksum(program, dom)
                  << '\n';
        if (run) {
            const exec::NativeCheck nc = exec::native_check(program, plan, dom, compiler);
            print_check("native", nc);
            return check_exit_code(nc);
        }
        std::cout << transform::emit_c_program(program, fused, dom);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
