// Example: emit -- and optionally compile, sandbox and verify -- the C form
// of a loop nest.
//
//   example_emit_c [file.loop] [--n N] [--m M] > fused.c
//   cc -O2 -fopenmp -o fused fused.c && ./fused     # prints "OK <checksum>"
//
//   example_emit_c --workload jacobi --run          # compile + run natively
//   example_emit_c --workload volume3d --run        # depth-3 pipeline
//   example_emit_c --workload iir --run --threads 4 # + ABI v2 parallel check
//   example_emit_c --workload iir --stats           # code-size + fringe stats
//   example_emit_c --plan-policy smallest --stats   # objective-aware plan
//   example_emit_c --drill crash                    # containment drill
//   example_emit_c --drill par-crash                # lane crash mid-wavefront
//
// --plan-policy fastest|smallest selects the planning objective
// (fusion/driver.hpp): `fastest` (default) reproduces the classic planner
// bit for bit; `smallest` re-solves for the smallest-magnitude feasible
// retiming before emission. --stats prints the emitted-C line/byte counts
// and the per-level prologue/steady/epilogue trip counts to stdout instead
// of the program itself.
//
// With no file argument the paper's Figure 2 program is used. The emitted
// file contains the original nest, the fused nest (with an OpenMP pragma on
// DOALL rows) and a bit-exact comparison of the two.
//
// --run hands the kernel to the crash-contained native backend: the emitted
// C is compiled into a cached shared object, executed in a forked sandbox
// under rlimits and a wall-clock watchdog, and its checksum differentially
// checked against the interpreter. Exit status: 0 if the kernel verified,
// 2 if the backend contained a failure (crash, timeout, mismatch, compile
// error), 1 on harness errors (bad arguments, no workload, parse failure).
//
// --drill crash|spin|oom pushes a deliberately broken kernel through the
// same backend and exits 0 only if the failure was contained as the
// documented typed outcome while this process survived.
//
// --drill par-crash|par-spin does the same through the ABI v2 parallel
// entry: the kernel starts worker lanes and one lane segfaults (par-crash)
// or spins forever while its peers wait at the wavefront barrier
// (par-spin). Containment must be identical to the serial drills -- the
// whole child dies with a typed RunState (Crashed / Timeout) and the
// parent survives; a wedged lane can never wedge the service.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/dependence.hpp"
#include "exec/compile.hpp"
#include "exec/native.hpp"
#include "exec/runner.hpp"
#include "fusion/compact.hpp"
#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"
#include "support/cemit.hpp"
#include "ir/parser.hpp"
#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace lf;

struct Workload {
    const char* name;
    std::string_view source;
    bool nd;
};

constexpr Workload kWorkloads[] = {
    {"fig2", workloads::sources::kFig2, false},
    {"fig8", workloads::sources::kFig8, false},
    {"jacobi", workloads::sources::kJacobiPair, false},
    {"iir", workloads::sources::kIirChain, false},
    {"volume3d", workloads::sources::kVolume3d, true},
    {"hyper4d", workloads::sources::kHyper4d, true},
};

const Workload* find_workload(const std::string& name) {
    for (const auto& w : kWorkloads) {
        if (name == w.name) return &w;
    }
    return nullptr;
}

void print_check(const char* what, const exec::NativeCheck& nc) {
    std::cerr << what << ": " << to_string(nc.outcome);
    if (!nc.detail.empty()) std::cerr << " -- " << nc.detail;
    if (nc.verified()) {
        std::cerr << " (original " << nc.ns_original << "ns, fused " << nc.ns_fused
                  << "ns" << (nc.from_cache ? ", cached object" : "") << ")";
        if (nc.par_threads > 0) {
            std::cerr << " parallel x" << nc.par_threads << ": fused "
                      << nc.ns_fused_par << "ns, thread-count invariant";
        }
    }
    std::cerr << '\n';
}

/// --stats: one line per loop level plus emitted-source totals, printed to
/// stdout in place of the C program. `shifts[k]` holds every body's retiming
/// component for level k; trip counts come from the shared fringe model
/// (support/cemit.hpp), so they match what the emitters actually generate.
void print_stats(const std::string& c_source, const char* const* level_names,
                 const std::vector<std::vector<std::int64_t>>& shifts,
                 const std::vector<std::int64_t>& extents, std::int64_t magnitude) {
    std::int64_t lines = 0;
    for (char c : c_source) lines += c == '\n' ? 1 : 0;
    std::cout << "emitted lines: " << lines << '\n';
    std::cout << "emitted bytes: " << c_source.size() << '\n';
    for (std::size_t k = 0; k < shifts.size(); ++k) {
        const cemit::FringeBounds b = cemit::fringe_bounds(shifts[k], extents[k]);
        const std::int64_t steady = b.nonempty_interior() ? b.in_hi - b.in_lo + 1 : 0;
        std::cout << level_names[k] << ": prologue " << b.prologue() << " steady " << steady
                  << " epilogue " << b.epilogue() << '\n';
    }
    std::cout << "retiming magnitude: " << magnitude << '\n';
}

/// Exit status for a finished native check, per the documented contract.
int check_exit_code(const exec::NativeCheck& nc) {
    if (nc.verified()) return 0;
    if (exec::is_native_failure(nc.outcome)) return 2;
    return 1;  // Skipped / Unavailable / NotRun: nothing was actually proven
}

/// --drill: compile a kernel that is broken in a known way and confirm the
/// sandbox reports the documented typed outcome while we stay alive.
int run_drill(const std::string& mode, bool openmp) {
    std::string body;
    exec::RunState expect;
    exec::SandboxLimits limits;
    if (mode == "crash") {
        body = "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    volatile long long* p = (volatile long long*)0;\n"
               "    *p = 42;\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Crashed;
    } else if (mode == "spin") {
        body = "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    volatile int spin = 1;\n"
               "    while (spin) {}\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Timeout;
        limits.wall_ms = 1500;
        limits.term_grace_ms = 200;
    } else if (mode == "oom") {
        body = "#include <stdlib.h>\n"
               "#include <string.h>\n"
               "int lf_kernel_run(void* out) {\n"
               "    (void)out;\n"
               "    for (;;) {\n"
               "        void* p = malloc(16u << 20);\n"
               "        if (p == NULL) abort();\n"
               "        memset(p, 0xab, 16u << 20);\n"
               "    }\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Crashed;
        limits.address_space_bytes = 256ll << 20;
        limits.wall_ms = 30'000;
    } else if (mode == "par-crash") {
        // Lane 1 of the pool segfaults mid-round while its peers run: the
        // signal kills the whole child (threads share the address space),
        // so containment is identical to the serial crash drill.
        body = "#include <pthread.h>\n"
               "#include <stddef.h>\n"
               "typedef struct { int threads; int tile; long long cutoff; }"
               " lf_kernel_params;\n"
               "static void* lf_lane(void* arg) {\n"
               "    if ((long)arg == 1) {\n"
               "        volatile long long* p = (volatile long long*)0;\n"
               "        *p = 42;\n"
               "    }\n"
               "    return NULL;\n"
               "}\n"
               "int lf_kernel_run(void* out) { (void)out; return 0; }\n"
               "int lf_kernel_run_par(const lf_kernel_params* params, void* out) {\n"
               "    (void)out;\n"
               "    long lanes = params->threads < 8 ? params->threads : 8;\n"
               "    pthread_t tid[8];\n"
               "    for (long i = 1; i < lanes; ++i)\n"
               "        pthread_create(&tid[i], NULL, lf_lane, (void*)i);\n"
               "    for (long i = 1; i < lanes; ++i) pthread_join(tid[i], NULL);\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Crashed;
    } else if (mode == "par-spin") {
        // One lane never reaches the barrier: the caller blocks in join
        // forever (a wedged wavefront) and the watchdog must fire.
        body = "#include <pthread.h>\n"
               "#include <stddef.h>\n"
               "typedef struct { int threads; int tile; long long cutoff; }"
               " lf_kernel_params;\n"
               "static void* lf_lane(void* arg) {\n"
               "    (void)arg;\n"
               "    volatile int spin = 1;\n"
               "    while (spin) {}\n"
               "    return NULL;\n"
               "}\n"
               "int lf_kernel_run(void* out) { (void)out; return 0; }\n"
               "int lf_kernel_run_par(const lf_kernel_params* params, void* out) {\n"
               "    (void)params; (void)out;\n"
               "    pthread_t tid;\n"
               "    pthread_create(&tid, NULL, lf_lane, NULL);\n"
               "    pthread_join(tid, NULL);\n"
               "    return 0;\n"
               "}\n";
        expect = exec::RunState::Timeout;
        limits.wall_ms = 1500;
        limits.term_grace_ms = 200;
    } else {
        std::cerr << "error: unknown drill '" << mode
                  << "' (crash|spin|oom|par-crash|par-spin)\n";
        return 1;
    }
    const bool parallel = mode.rfind("par-", 0) == 0;

    exec::CompileOptions copts;
    copts.openmp = openmp;
    exec::KernelCompiler compiler(copts);
    if (!compiler.available()) {
        std::cerr << "drill skipped: no C compiler on PATH\n";
        return 1;
    }
    const Result<exec::CompiledKernel> compiled = compiler.compile(body);
    if (!compiled.ok()) {
        std::cerr << "drill harness error: " << compiled.status().message() << '\n';
        return 1;
    }
    exec::KernelParams params;
    params.threads = 4;
    const exec::RunOutcome out =
        parallel ? exec::run_kernel_par(compiled.value().path, params, limits)
                 : exec::run_kernel(compiled.value().path, limits);
    std::cerr << "drill " << mode << ": " << to_string(out.state);
    if (!out.detail.empty()) std::cerr << " -- " << out.detail;
    std::cerr << '\n';
    if (out.state != expect) {
        std::cerr << "drill FAILED: expected " << to_string(expect) << '\n';
        return 1;
    }
    std::cerr << "drill contained; parent survived\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace lf;
    try {
        // Argument parsing sits inside the try block: std::stoll throws on
        // non-numeric --n/--m values and must exit cleanly, not crash.
        std::string source(workloads::sources::kFig2);
        bool nd = false;
        bool run = false;
        bool openmp = false;
        bool stats = false;
        PlanPolicy policy = PlanPolicy::FastestSchedule;
        std::string drill;
        exec::KernelParams params;
        Domain dom{100, 100};
        for (int k = 1; k < argc; ++k) {
            const std::string arg = argv[k];
            if (arg == "--n" && k + 1 < argc) {
                dom.n = std::stoll(argv[++k]);
            } else if (arg == "--m" && k + 1 < argc) {
                dom.m = std::stoll(argv[++k]);
            } else if (arg == "--threads" && k + 1 < argc) {
                params.threads = std::stoi(argv[++k]);
            } else if (arg == "--workload" && k + 1 < argc) {
                const std::string name = argv[++k];
                const Workload* w = find_workload(name);
                if (w == nullptr) {
                    std::cerr << "error: unknown workload '" << name << "' (";
                    for (const auto& cand : kWorkloads) std::cerr << cand.name << ' ';
                    std::cerr << ")\n";
                    return 1;
                }
                source = std::string(w->source);
                nd = w->nd;
            } else if (arg == "--drill" && k + 1 < argc) {
                drill = argv[++k];
            } else if (arg == "--plan-policy" && k + 1 < argc) {
                const std::string name = argv[++k];
                const std::optional<PlanPolicy> parsed = parse_plan_policy(name);
                if (!parsed.has_value()) {
                    std::cerr << "error: unknown plan policy '" << name
                              << "' (fastest|smallest)\n";
                    return 1;
                }
                policy = *parsed;
            } else if (arg == "--run") {
                run = true;
            } else if (arg == "--stats") {
                stats = true;
            } else if (arg == "--openmp") {
                openmp = true;
            } else {
                std::ifstream in(arg);
                if (!in.good()) {
                    std::cerr << "error: cannot open '" << arg << "'\n";
                    return 1;
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                source = buf.str();
                nd = false;
            }
        }

        if (!drill.empty()) return run_drill(drill, openmp);

        exec::CompileOptions copts;
        copts.openmp = openmp;
        exec::KernelCompiler compiler(copts);

        if (nd) {
            const auto program = front::parse_basic_program<VecN>(source);
            const NdFusionPlan plan =
                plan_fusion_nd(analysis::build_mldg_nd(program), nullptr, policy);
            exec::MdDomain mdom;
            mdom.ext.assign(static_cast<std::size_t>(program.dim), 24);
            std::cerr << "plan: "
                      << (plan.level == NdParallelism::OutermostCarried
                              ? "outermost-carried"
                              : "hyperplane")
                      << "\nexpected output: OK "
                      << transform::expected_md_c_checksum(program, mdom) << '\n';
            if (run) {
                const exec::NativeCheck nc =
                    exec::native_check_nd(program, plan, mdom, compiler, {}, params);
                print_check("native", nc);
                return check_exit_code(nc);
            }
            if (stats) {
                const int dim = plan.retiming.num_nodes() > 0 ? plan.retiming.of(0).dim()
                                                              : program.dim;
                std::vector<std::vector<std::int64_t>> shifts(static_cast<std::size_t>(dim));
                std::vector<std::int64_t> extents(mdom.ext.begin(), mdom.ext.end());
                std::vector<std::string> names;
                std::vector<const char*> name_ptrs;
                for (int k = 0; k < dim; ++k) {
                    for (int v = 0; v < plan.retiming.num_nodes(); ++v) {
                        shifts[static_cast<std::size_t>(k)].push_back(plan.retiming.of(v)[k]);
                    }
                    names.push_back("dim " + std::to_string(k));
                }
                for (const auto& n : names) name_ptrs.push_back(n.c_str());
                print_stats(transform::emit_md_c_program(program, plan, mdom),
                            name_ptrs.data(), shifts, extents,
                            retiming_magnitude_nd(plan.retiming));
                return 0;
            }
            std::cout << transform::emit_md_c_program(program, plan, mdom);
            return 0;
        }

        const ir::Program program = ir::parse_program(source);
        PlanOptions popts;
        popts.policy = policy;
        const FusionPlan plan = plan_fusion(analysis::build_mldg(program), popts);
        const transform::FusedProgram fused = transform::fuse_program(program, plan);
        std::cerr << "plan: " << to_string(plan.algorithm) << " -> " << to_string(plan.level)
                  << "\nexpected output: OK " << transform::expected_c_checksum(program, dom)
                  << '\n';
        if (run) {
            const exec::NativeCheck nc =
                exec::native_check(program, plan, dom, compiler, {}, params);
            print_check("native", nc);
            return check_exit_code(nc);
        }
        if (stats) {
            std::vector<std::vector<std::int64_t>> shifts(2);
            for (int v = 0; v < plan.retiming.num_nodes(); ++v) {
                shifts[0].push_back(plan.retiming.of(v).x);
                shifts[1].push_back(plan.retiming.of(v).y);
            }
            static const char* const kLevels[] = {"i", "j"};
            print_stats(transform::emit_c_program(program, fused, dom), kLevels, shifts,
                        {dom.n, dom.m}, retiming_magnitude(plan.retiming));
            return 0;
        }
        std::cout << transform::emit_c_program(program, fused, dom);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
