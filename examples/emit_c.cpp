// Example: emit a stand-alone, self-verifying C program for a loop nest.
//
//   example_emit_c [file.loop] [--n N] [--m M] > fused.c
//   cc -O2 -fopenmp -o fused fused.c && ./fused     # prints "OK <checksum>"
//
// With no file argument the paper's Figure 2 program is used. The emitted
// file contains the original nest, the fused nest (with an OpenMP pragma on
// DOALL rows) and a bit-exact comparison of the two.

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen_c.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

int main(int argc, char** argv) {
    using namespace lf;
    try {
        // Argument parsing sits inside the try block: std::stoll throws on
        // non-numeric --n/--m values and must exit cleanly, not crash.
        std::string source(workloads::sources::kFig2);
        Domain dom{100, 100};
        for (int k = 1; k < argc; ++k) {
            const std::string arg = argv[k];
            if (arg == "--n" && k + 1 < argc) {
                dom.n = std::stoll(argv[++k]);
            } else if (arg == "--m" && k + 1 < argc) {
                dom.m = std::stoll(argv[++k]);
            } else {
                std::ifstream in(arg);
                if (!in.good()) {
                    std::cerr << "error: cannot open '" << arg << "'\n";
                    return 1;
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                source = buf.str();
            }
        }
        const ir::Program program = ir::parse_program(source);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(program));
        const transform::FusedProgram fused = transform::fuse_program(program, plan);
        std::cerr << "plan: " << to_string(plan.algorithm) << " -> " << to_string(plan.level)
                  << "\nexpected output: OK " << transform::expected_c_checksum(program, dom)
                  << '\n';
        std::cout << transform::emit_c_program(program, fused, dom);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
