// fusion_server: the fusion service behind a TCP wire (net/server.hpp).
//
// Binds a loopback TCP endpoint speaking the length-prefixed frame protocol
// (net/frame.hpp, spec in docs/service.md), feeds admitted requests into
// svc::FusionService in batches, and defends every edge: per-tenant quotas,
// queue-depth shedding, slow-loris timeouts, bounded connections, and the
// net.* fault points for drills. With --store the plan cache gains its
// crash-safe persistent tier, so a kill -9 loses no admitted plan.
//
// Examples:
//   fusion_server --port 0 --port-file /tmp/port --store /tmp/plans
//   LF_FAULT=net.torn_response fusion_server --port 7070
//   fusion_server --selftest            # in-process loopback smoke, exit 0
//
// Runs until SIGINT/SIGTERM, then stops gracefully and prints a stats JSON
// to stdout. Exit code 0 on a clean stop.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "support/json.hpp"
#include "workloads/sources.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
    std::cout <<
        "usage: fusion_server [options]\n"
        "  --host A           IPv4 address to bind (default 127.0.0.1)\n"
        "  --port N           TCP port; 0 = kernel-assigned (default 0)\n"
        "  --port-file FILE   write the bound port here (for scripts)\n"
        "  --workers N        service worker threads (default 4)\n"
        "  --store DIR        persistent plan-tier directory (default: off)\n"
        "  --checkpoint FILE  service checkpoint manifest (default: off)\n"
        "  --cache N          plan-cache capacity (default 128)\n"
        "  --plan-batch N     jobs per worker pull, batch-planned together (default 8)\n"
        "  --delta K          delta re-plan against cached graphs differing on <= K\n"
        "                     edges; 0 disables (default 4)\n"
        "  --plan-policy P    planning objective: fastest (default) or smallest\n"
        "  --deadline-ms D    service-wide per-job deadline (default unlimited)\n"
        "  --max-conns N      connection cap (default 64)\n"
        "  --max-inflight N   admitted-job cap before shedding (default 256)\n"
        "  --batch-max N      jobs per service batch (default 16)\n"
        "  --quota-rate R     per-tenant tokens/sec; 0 disables quotas (default 0)\n"
        "  --quota-burst B    per-tenant burst size (default 8)\n"
        "  --idle-ms T        idle connection timeout (default 5000)\n"
        "  --read-ms T        mid-frame slow-read timeout (default 2000)\n"
        "  --selftest         start, exercise loopback round trips, stop, exit\n"
        "  --help             this text\n";
}

void print_stats(const lf::net::Server& server) {
    const lf::net::ServerStats s = server.stats();
    const lf::svc::PlanCacheStats pc = server.plancache_stats();
    lf::json::Writer w;
    w.begin_object();
    w.key("server").begin_object();
    w.kv("accepted", s.accepted);
    w.kv("accept_faults", s.accept_faults);
    w.kv("rejected_connections", s.rejected_connections);
    w.kv("frames_in", s.frames_in);
    w.kv("pings", s.pings);
    w.kv("requests", s.requests);
    w.kv("responses_sent", s.responses_sent);
    w.kv("wire_errors", s.wire_errors);
    w.kv("bad_payloads", s.bad_payloads);
    w.kv("shed_quota", s.shed_quota);
    w.kv("shed_queue", s.shed_queue);
    w.kv("idle_timeouts", s.idle_timeouts);
    w.kv("read_timeouts", s.read_timeouts);
    w.kv("read_faults", s.read_faults);
    w.kv("write_faults", s.write_faults);
    w.kv("torn_responses", s.torn_responses);
    w.kv("jobs_verified", s.jobs_verified);
    w.kv("jobs_quarantined", s.jobs_quarantined);
    w.end_object();
    w.key("plancache").begin_object();
    w.kv("hits", pc.hits);
    w.kv("misses", pc.misses);
    w.kv("insertions", pc.insertions);
    w.kv("disk_hits", pc.disk_hits);
    w.kv("disk_misses", pc.disk_misses);
    w.kv("disk_writes", pc.disk_writes);
    w.kv("disk_write_failures", pc.disk_write_failures);
    w.kv("disk_quarantined", pc.disk_quarantined);
    w.end_object();
    w.end_object();
    std::cout << w.str() << "\n";
}

/// In-process loopback exercise used as the CI smoke test: a DSL request,
/// a cache-hit repeat, a graph-only request, a ping, and a garbage frame
/// must all produce the documented outcomes.
int selftest(lf::net::Server& server) {
    using lf::net::BlockingClient;
    using lf::net::Frame;
    using lf::net::FrameType;
    using lf::net::PayloadKind;

    BlockingClient client;
    if (!client.connect("127.0.0.1", server.port())) {
        std::cerr << "selftest: connect failed: " << client.last_error() << "\n";
        return 1;
    }
    // Ping / pong.
    Frame ping;
    ping.type = FrameType::Ping;
    ping.request_id = 1;
    if (!client.send(ping)) return 1;
    auto r = client.recv();
    if (r.status != BlockingClient::RecvStatus::Ok || r.frame.type != FrameType::Pong) {
        std::cerr << "selftest: expected pong, got " << to_string(r.status) << "\n";
        return 1;
    }
    // Two identical DSL requests: both must verify; the repeat may be
    // served by the plan cache but the verdict is what matters here.
    for (int i = 0; i < 2; ++i) {
        Frame req;
        req.type = FrameType::Request;
        req.aux = static_cast<std::uint16_t>(PayloadKind::Dsl);
        req.request_id = 10 + static_cast<std::uint64_t>(i);
        req.tenant = "selftest";
        req.payload = std::string(lf::workloads::sources::kFig2);
        if (!client.send(req)) return 1;
        r = client.recv(30000);
        if (r.status != BlockingClient::RecvStatus::Ok || r.frame.type != FrameType::Response ||
            r.frame.aux != 1) {
            std::cerr << "selftest: request " << i << ": expected verified response, got "
                      << to_string(r.status) << " aux "
                      << (r.status == BlockingClient::RecvStatus::Ok ? r.frame.aux : 0) << "\n";
            return 1;
        }
    }
    // A request with an unknown payload kind must come back as a typed
    // Error frame, not a hang or a dropped connection without a word.
    Frame bad_kind;
    bad_kind.type = FrameType::Request;
    bad_kind.aux = 0;  // no such PayloadKind
    bad_kind.request_id = 99;
    BlockingClient bad;
    if (!bad.connect("127.0.0.1", server.port())) return 1;
    if (!bad.send(bad_kind)) return 1;
    r = bad.recv(30000);
    if (r.status != BlockingClient::RecvStatus::Ok || r.frame.type != FrameType::Error) {
        std::cerr << "selftest: bad payload kind should earn a typed Error frame\n";
        return 1;
    }
    std::cout << "selftest: ok\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    lf::net::ServerConfig config;
    std::string port_file;
    bool run_selftest = false;

    auto next_arg = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--help") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(a, "--host") == 0) {
            config.host = next_arg(i);
        } else if (std::strcmp(a, "--port") == 0) {
            config.port = static_cast<std::uint16_t>(std::stoi(next_arg(i)));
        } else if (std::strcmp(a, "--port-file") == 0) {
            port_file = next_arg(i);
        } else if (std::strcmp(a, "--workers") == 0) {
            config.service.workers = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--store") == 0) {
            config.service.plan_store_dir = next_arg(i);
        } else if (std::strcmp(a, "--checkpoint") == 0) {
            config.service.checkpoint_path = next_arg(i);
        } else if (std::strcmp(a, "--cache") == 0) {
            config.service.plan_cache_capacity = static_cast<std::size_t>(std::stoul(next_arg(i)));
        } else if (std::strcmp(a, "--plan-batch") == 0) {
            config.service.plan_batch = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--delta") == 0) {
            config.service.delta_max_edges = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--plan-policy") == 0) {
            const std::string name = next_arg(i);
            const std::optional<lf::PlanPolicy> parsed = lf::parse_plan_policy(name);
            if (!parsed.has_value()) {
                std::cerr << "error: unknown plan policy '" << name << "' (fastest|smallest)\n";
                return 1;
            }
            config.service.plan_policy = *parsed;
        } else if (std::strcmp(a, "--deadline-ms") == 0) {
            config.service.retry.deadline_ms = std::stoll(next_arg(i));
        } else if (std::strcmp(a, "--max-conns") == 0) {
            config.max_connections = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--max-inflight") == 0) {
            config.max_inflight = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--batch-max") == 0) {
            config.batch_max = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--quota-rate") == 0) {
            config.quota.refill_per_sec = std::stod(next_arg(i));
        } else if (std::strcmp(a, "--quota-burst") == 0) {
            config.quota.burst = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--idle-ms") == 0) {
            config.idle_timeout_ms = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--read-ms") == 0) {
            config.read_timeout_ms = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--selftest") == 0) {
            run_selftest = true;
        } else {
            std::cerr << "unknown option '" << a << "' (see --help)\n";
            return 2;
        }
    }

    lf::net::Server server(config);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "fusion_server: " << error << "\n";
        return 1;
    }
    std::cerr << "fusion_server: listening on " << config.host << ":" << server.port() << "\n";
    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << server.port() << "\n";
    }

    if (run_selftest) {
        const int rc = selftest(server);
        server.stop();
        print_stats(server);
        return rc;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "fusion_server: stopping\n";
    server.stop();
    print_stats(server);
    return 0;
}
