// fusion_service: batch fusion-as-a-service over the workload gallery.
//
// Drives svc::FusionService across the full gallery (paper + extended
// workloads), plus any --mldg / --dsl files, and writes the structured JSON
// run report. Two modes:
//
//   default      one service run (LF_FAULT from the environment applies,
//                as everywhere else in the repo);
//   --storm      one service run per compiled-in fault point, arming each
//                in turn -- the robustness acceptance drill: every job of
//                every run must end Verified or Quarantined-with-trace,
//                and the process must never crash.
//
// Examples:
//   fusion_service --workers 8 --report run.json --checkpoint run.ckpt
//   fusion_service --storm --workers 2 --report storm.json
//   LF_FAULT=solver.spfa fusion_service --attempts 4
//
// Exit code: 0 when every job of every run reached a terminal state
// (Verified | Quarantined with a non-empty trace); 1 otherwise.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "support/faultpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/report.hpp"
#include "svc/service.hpp"

namespace {

void usage() {
    std::cout <<
        "usage: fusion_service [options]\n"
        "  --workers N        worker threads (default 4)\n"
        "  --attempts K       planning attempts per job (default 3)\n"
        "  --steps S          first-attempt step budget (default 16384)\n"
        "  --escalation F     budget multiplier per retry (default 8)\n"
        "  --deadline-ms D    per-job wall-clock deadline (default unlimited)\n"
        "  --breaker-k K      consecutive failures that open a breaker (default 3)\n"
        "  --probe P          probe every P-th open-breaker admission (default 4)\n"
        "  --checkpoint FILE  checkpoint manifest (resume: rerun with the same file)\n"
        "  --cache N          plan-cache capacity in plans; 0 disables (default 128)\n"
        "  --batch N          jobs per worker pull, batch-planned together (default 8)\n"
        "  --delta K          delta re-plan against cached graphs differing on <= K\n"
        "                     edges; 0 disables (default 4)\n"
        "  --plan-policy P    planning objective: fastest (default; classic plans,\n"
        "                     bit-identical) or smallest (smallest-magnitude retiming)\n"
        "  --report FILE      write the JSON run report here (default: stdout)\n"
        "  --no-timings       omit wall-clock fields from the report\n"
        "  --mldg FILE        add a graph-only job from serialized MLDG text\n"
        "  --dsl FILE         add a replayable job from DSL program text\n"
        "  --domain N M       replay domain (default 12 12)\n"
        "  --exec             compile + run emitted kernels natively before Verified\n"
        "  --exec-cache DIR   compiled-object cache directory (default: per-run temp,\n"
        "                     or <store>/objects when --store is set)\n"
        "  --exec-wall-ms W   native sandbox wall-clock budget (default 10000)\n"
        "  --exec-threads T   also run the ABI v2 parallel kernel entry with T lanes\n"
        "                     and quarantine on any thread-count variance (default 1)\n"
        "  --exec-tile N      parallel scheduler tile in iterations (default: auto)\n"
        "  --exec-cutoff C    rounds narrower than C stay serial (default 0)\n"
        "  --store DIR        persistent plan tier; admitted plans and compiled\n"
        "                     objects survive restarts under this directory\n"
        "  --storm            run once per compiled-in fault point, arming each in turn\n"
        "  --help             this text\n";
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in.good()) throw std::runtime_error("cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string stem_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
    return name;
}

/// The terminal-state invariant the storm drill asserts: every job ended
/// Verified or Quarantined, and every quarantined job carries a trace.
bool report_terminal(const lf::svc::RunReport& report, std::string& why) {
    for (const auto& job : report.jobs) {
        if (job.status == lf::svc::JobStatus::Verified) continue;
        if (job.status != lf::svc::JobStatus::Quarantined) {
            why = "job '" + job.id + "' ended non-terminal: " + lf::svc::to_string(job.status);
            return false;
        }
        if (job.final_trace().empty()) {
            why = "job '" + job.id + "' quarantined without a StageReport trace";
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    lf::svc::ServiceConfig config;
    std::string report_path;
    bool include_timings = true;
    bool storm = false;
    lf::Domain domain{12, 12};
    std::vector<std::string> mldg_files;
    std::vector<std::string> dsl_files;

    auto next_arg = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "fusion_service: missing value for " << argv[i] << "\n";
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg == "--workers") config.workers = std::stoi(next_arg(i));
            else if (arg == "--attempts") config.retry.max_attempts = std::stoi(next_arg(i));
            else if (arg == "--steps") config.retry.initial_steps = std::stoull(next_arg(i));
            else if (arg == "--escalation") config.retry.escalation = std::stoi(next_arg(i));
            else if (arg == "--deadline-ms") config.retry.deadline_ms = std::stoll(next_arg(i));
            else if (arg == "--breaker-k") config.breaker.failure_threshold = std::stoi(next_arg(i));
            else if (arg == "--probe") config.breaker.probe_interval = std::stoi(next_arg(i));
            else if (arg == "--checkpoint") config.checkpoint_path = next_arg(i);
            else if (arg == "--cache") config.plan_cache_capacity = std::stoull(next_arg(i));
            else if (arg == "--batch") config.plan_batch = std::stoi(next_arg(i));
            else if (arg == "--delta") config.delta_max_edges = std::stoi(next_arg(i));
            else if (arg == "--plan-policy") {
                const std::string name = next_arg(i);
                const std::optional<lf::PlanPolicy> parsed = lf::parse_plan_policy(name);
                if (!parsed.has_value()) {
                    std::cerr << "error: unknown plan policy '" << name
                              << "' (fastest|smallest)\n";
                    return 1;
                }
                config.plan_policy = *parsed;
            }
            else if (arg == "--report") report_path = next_arg(i);
            else if (arg == "--no-timings") include_timings = false;
            else if (arg == "--mldg") mldg_files.push_back(next_arg(i));
            else if (arg == "--dsl") dsl_files.push_back(next_arg(i));
            else if (arg == "--domain") {
                domain.n = std::stoll(next_arg(i));
                domain.m = std::stoll(next_arg(i));
            } else if (arg == "--exec") config.native_exec = true;
            else if (arg == "--exec-cache") config.native_cache_dir = next_arg(i);
            else if (arg == "--exec-wall-ms") config.native_wall_ms = std::stoll(next_arg(i));
            else if (arg == "--exec-threads") config.exec_threads = std::stoi(next_arg(i));
            else if (arg == "--exec-tile") config.exec_tile = std::stoi(next_arg(i));
            else if (arg == "--exec-cutoff") config.exec_serial_cutoff = std::stoll(next_arg(i));
            else if (arg == "--store") config.plan_store_dir = next_arg(i);
            else if (arg == "--storm") storm = true;
            else if (arg == "--help" || arg == "-h") { usage(); return 0; }
            else {
                std::cerr << "fusion_service: unknown option '" << arg << "'\n";
                usage();
                return 2;
            }
        } catch (const std::exception& e) {
            std::cerr << "fusion_service: bad value for " << arg << ": " << e.what() << "\n";
            return 2;
        }
    }

    try {
        std::vector<lf::svc::JobSpec> jobs = lf::svc::full_gallery_jobs(domain);
        {
            // Depth-d source jobs ride every run (and every storm pass), so
            // the N-D pipeline is exercised under the same fault drills.
            std::vector<lf::svc::JobSpec> nd = lf::svc::nd_jobs();
            jobs.insert(jobs.end(), std::make_move_iterator(nd.begin()),
                        std::make_move_iterator(nd.end()));
        }
        for (const auto& path : mldg_files) {
            jobs.push_back(lf::svc::job_from_mldg_text("mldg-" + stem_of(path), read_file(path)));
        }
        for (const auto& path : dsl_files) {
            jobs.push_back(lf::svc::job_from_dsl_text("dsl-" + stem_of(path), read_file(path),
                                                      "dsl", domain));
        }

        std::ostringstream out;
        bool all_terminal = true;

        auto summarize = [&](const lf::svc::RunReport& report, const std::string& label) {
            const lf::svc::RunCounts counts = report.counts();
            std::cout << (label.empty() ? std::string("run") : "fault " + label) << ": "
                      << counts.verified << " verified, " << counts.quarantined
                      << " quarantined";
            if (counts.short_circuited > 0) {
                std::cout << ", " << counts.short_circuited << " short-circuited";
            }
            if (config.native_exec) {
                std::cout << ", native " << counts.native_verified << " verified/"
                          << counts.native_contained << " contained/"
                          << counts.native_skipped << " skipped";
            }
            std::cout << " (" << report.jobs.size() << " jobs)\n";
            std::string why;
            if (!report_terminal(report, why)) {
                std::cerr << "fusion_service: TERMINAL-STATE VIOLATION: " << why << "\n";
                all_terminal = false;
            }
        };

        if (storm) {
            // One run per compiled-in fault point, each against a fresh
            // service (breakers reset with the fault).
            out << "{\n  \"storm\": [";
            bool first = true;
            for (const std::string& point : lf::faultpoint::known_points()) {
                lf::faultpoint::reset();
                lf::faultpoint::arm(point);
                lf::svc::FusionService service(config);
                const lf::svc::RunReport report = service.run(jobs);
                summarize(report, point);
                if (!first) out << ",";
                first = false;
                std::istringstream body(lf::svc::report_to_json(report, include_timings));
                out << "\n    {\n      \"fault\": \"" << point << "\",\n      \"report\": ";
                std::string line;
                bool first_line = true;
                while (std::getline(body, line)) {
                    if (!first_line) out << "\n      ";
                    out << line;
                    first_line = false;
                }
                out << "\n    }";
            }
            lf::faultpoint::reset();
            out << "\n  ]\n}\n";
        } else {
            lf::svc::FusionService service(config);
            const lf::svc::RunReport report = service.run(jobs);
            summarize(report, "");
            out << lf::svc::report_to_json(report, include_timings) << "\n";
        }

        if (report_path.empty()) {
            std::cout << out.str();
        } else {
            std::ofstream file(report_path);
            file << out.str();
            if (!file.good()) {
                std::cerr << "fusion_service: cannot write report to " << report_path << "\n";
                return 1;
            }
            std::cout << "report written to " << report_path << "\n";
        }
        return all_terminal ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "fusion_service: fatal: " << e.what() << "\n";
        return 1;
    }
}
