// Command-line tool for graph-level workloads (.ldg files): plan fusion on
// an MLDG without a program (e.g. the paper's Figure 14, which exists only
// as a dependence graph), print the plan, the retimed graph, Graphviz, and
// the machine-model barrier/time comparison.
//
//   example_graph_tool <file.ldg> [--dot] [--svg PREFIX] [--n N] [--m M] [--p P]
//   example_graph_tool --builtin fig14 --dot --svg out/fig14
//
// Builtins: fig2, fig8, fig14, jacobi, iir.

#include <fstream>
#include <iostream>
#include <sstream>

#include "fusion/driver.hpp"
#include "viz/svg.hpp"
#include "ldg/serialization.hpp"
#include "sim/machine.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"

int main(int argc, char** argv) {
    using namespace lf;
    try {
        // Argument parsing sits inside the try block: std::stoll/std::stoi
        // throw on non-numeric --n/--m/--p values and must exit cleanly.
        std::string file, builtin, svg_prefix;
        Domain dom{1000, 1000};
        int processors = 16;
        bool dot = false;
        for (int k = 1; k < argc; ++k) {
            const std::string arg = argv[k];
            if (arg == "--dot") {
                dot = true;
            } else if (arg == "--builtin" && k + 1 < argc) {
                builtin = argv[++k];
            } else if (arg == "--svg" && k + 1 < argc) {
                svg_prefix = argv[++k];
            } else if (arg == "--n" && k + 1 < argc) {
                dom.n = std::stoll(argv[++k]);
            } else if (arg == "--m" && k + 1 < argc) {
                dom.m = std::stoll(argv[++k]);
            } else if (arg == "--p" && k + 1 < argc) {
                processors = std::stoi(argv[++k]);
            } else if (arg == "--help") {
                std::cout << "usage: example_graph_tool <file.ldg> | --builtin <name> "
                             "[--dot] [--svg PREFIX] [--n N] [--m M] [--p P]\n";
                return 0;
            } else {
                file = arg;
            }
        }

        Mldg g;
        if (!builtin.empty()) {
            bool found = false;
            for (const auto& w : workloads::paper_workloads()) {
                if (w.id == builtin) {
                    g = w.graph;
                    found = true;
                    break;
                }
            }
            check(found, "unknown builtin '" + builtin + "'");
        } else if (!file.empty()) {
            std::ifstream in(file);
            check(in.good(), "cannot open '" + file + "'");
            std::ostringstream buf;
            buf << in.rdbuf();
            g = parse_mldg(buf.str());
        } else {
            // Read .ldg text from stdin.
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            g = parse_mldg(buf.str());
        }

        std::cout << g.summary() << '\n';
        const FusionPlan plan = plan_fusion(g);
        std::cout << plan.describe(g);
        std::cout << "\nretimed:\n" << plan.retimed.summary() << '\n';

        const sim::MachineConfig machine{processors, 200};
        const auto before = sim::estimate_original(g, dom, machine);
        const auto after = sim::estimate_fused(g, plan, dom, machine);
        std::cout << "machine model (P=" << processors << ", sigma=200, n=" << dom.n
                  << ", m=" << dom.m << "):\n";
        std::cout << "  barriers " << before.barriers << " -> " << after.barriers << '\n';
        std::cout << "  time     " << before.total_time << " -> " << after.total_time << "  ("
                  << after.speedup_over(before) << "x)\n";

        if (dot) std::cout << '\n' << plan.retimed.to_dot("retimed");

        if (!svg_prefix.empty()) {
            const auto write = [](const std::string& path, const std::string& content) {
                std::ofstream out(path);
                check(out.good(), "cannot write '" + path + "'");
                out << content;
            };
            write(svg_prefix + "_graph.svg", viz::svg_mldg(g, "original"));
            write(svg_prefix + "_retimed.svg", viz::svg_mldg(plan.retimed, "retimed"));
            write(svg_prefix + "_space.svg",
                  viz::svg_iteration_space(plan.retimed, plan.schedule, 5, 8,
                                           "iteration space, s = " + plan.schedule.str()));
            std::cout << "wrote " << svg_prefix << "_{graph,retimed,space}.svg\n";
        }
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
