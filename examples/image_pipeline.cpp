// Example: a video filtering pipeline (the "image processing" class of
// multi-dimensional applications the paper's introduction motivates).
//
// Four stages per scanline: blur -> sharpen -> edge detection -> temporal
// motion estimate, with a two-frame feedback from motion back into blur.
// The stages are separate DOALL loops with fusion-preventing dependences
// (sharpen reads blur at j+1), so naive fusion is illegal -- yet Algorithm 4
// fuses all four stages into one fully parallel loop with a single barrier
// per scanline instead of four.

#include <iostream>

#include "analysis/dependence.hpp"
#include "baselines/kennedy_mckinley.hpp"
#include "baselines/naive.hpp"
#include "exec/equivalence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "sim/machine.hpp"
#include "transform/codegen.hpp"

namespace {

constexpr std::string_view kPipeline = R"(
# Scanline video pipeline: i = scanline (with temporal feedback), j = column.
program image_pipeline {
  loop Blur {
    blur[i][j] = 0.25 * (frame[i][j-1] + 2.0 * frame[i][j] + frame[i][j+1])
               + 0.05 * motion[i-2][j];
  }
  loop Sharpen {
    sharp[i][j] = 1.4 * blur[i][j] - 0.2 * (blur[i][j-1] + blur[i][j+1]);
  }
  loop Edge {
    edge[i][j] = sharp[i][j+1] - sharp[i][j-1];
  }
  loop Motion {
    motion[i][j] = edge[i][j] - edge[i-1][j] + 0.5 * motion[i-1][j];
  }
}
)";

}  // namespace

int main() {
    using namespace lf;

    const ir::Program program = ir::parse_program(kPipeline);
    const analysis::DependenceInfo info = analysis::analyze_dependences(program);
    std::cout << "Pipeline dependence graph:\n" << info.graph.summary() << '\n';

    // Naive fusion is illegal; greedy grouping needs several barriers.
    const auto naive = baselines::naive_fusion(info.graph);
    const auto km = baselines::kennedy_mckinley_fusion(info.graph);
    std::cout << "naive direct fusion legal?   " << (naive.legal ? "yes" : "NO") << '\n';
    std::cout << "Kennedy-McKinley groups:     " << km.num_groups()
              << " (barriers per scanline)\n";

    const FusionPlan plan = plan_fusion(info.graph);
    std::cout << "our plan:                    " << to_string(plan.algorithm) << " -> "
              << to_string(plan.level) << "\n";
    std::cout << "retiming:                    " << plan.retiming.str(info.graph) << "\n\n";

    // Verify on a 720-scanline, 1280-column frame and measure barriers.
    const Domain dom{719, 1279};
    const auto verify = exec::verify_fusion(program, dom, exec::EngineKind::FusedRowwise);
    if (!verify.equivalent) {
        std::cout << "VERIFICATION FAILED: " << verify.detail << '\n';
        return 1;
    }
    std::cout << "verified bit-exact on " << dom.rows() << "x" << dom.cols() << " frame\n";
    std::cout << "barriers: " << verify.original.barriers << " -> " << verify.transformed.barriers
              << '\n';

    // Predicted parallel execution time on the machine model.
    std::cout << "\nP   original    fused       speedup\n";
    for (const int p : {1, 2, 4, 8, 16, 32}) {
        const sim::MachineConfig machine{p, 200};
        const auto orig = sim::estimate_original(info.graph, dom, machine);
        const auto fused = sim::estimate_fused(info.graph, plan, dom, machine);
        std::printf("%-3d %-11lld %-11lld %.2fx\n", p,
                    static_cast<long long>(orig.total_time),
                    static_cast<long long>(fused.total_time), fused.speedup_over(orig));
    }

    std::cout << "\nTransformed code:\n"
              << transform::emit_transformed(transform::fuse_program(program, plan), dom);
    return 0;
}
