// Example: the n-dimensional generalization on a 3-D problem
// (time x plane x column), exercising the general MLDG of Definition 2.2.
//
// A three-stage volume pipeline whose stages exchange data within a time
// step (fusion-preventing at the innermost level) and feed back across
// steps. The 3-D planner retimes it legally and computes a strict schedule
// vector over Z^3; iterations on each hyperplane of the schedule execute in
// parallel.

#include <iostream>

#include "fusion/multidim.hpp"

int main() {
    using namespace lf;

    MldgN g(3);
    const int smooth = g.add_node("Smooth", 4);
    const int grad = g.add_node("Gradient", 3);
    const int accum = g.add_node("Accumulate", 2);

    // Within one (time, plane): Gradient reads Smooth at columns j-1/j+1.
    g.add_edge(smooth, grad, {VecN{0, 0, -1}, VecN{0, 0, 1}});   // hard
    // Accumulate reads Gradient from the previous plane, columns j-2/j+2.
    g.add_edge(grad, accum, {VecN{0, 1, -2}, VecN{0, 1, 2}});
    // Feedback: Smooth reads Accumulate from the previous time step.
    g.add_edge(accum, smooth, {VecN{1, -1, 0}});
    // Smooth's own relaxation across time.
    g.add_edge(smooth, smooth, {VecN{1, 0, 1}, VecN{1, 0, -1}});  // hard self

    std::cout << "3-D pipeline MLDG:\n" << g.summary() << '\n';
    std::cout << "schedulable: " << (is_schedulable_nd(g) ? "yes" : "NO") << "\n\n";

    const NdFusionPlan plan = plan_fusion_nd(g);
    std::cout << "plan: "
              << (plan.level == NdParallelism::OutermostCarried ? "outermost-carried DOALL"
                                                                : "DOALL hyperplane")
              << '\n';
    for (int v = 0; v < g.num_nodes(); ++v) {
        std::cout << "  r(" << g.node(v).name << ") = " << plan.retiming.of(v).str() << '\n';
    }
    std::cout << "  schedule s = " << plan.schedule.str() << '\n';
    std::cout << "\nretimed graph:\n" << plan.retimed.summary();

    // Demonstrate strictness: every nonzero retimed dependence advances the
    // schedule.
    std::cout << "\nschedule progress per dependence (s . d, must be > 0):\n";
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            if (d.is_zero()) continue;
            std::cout << "  " << plan.retimed.node(e.from).name << " -> "
                      << plan.retimed.node(e.to).name << "  " << d.str() << " : "
                      << plan.schedule.dot(d) << '\n';
        }
    }
    return 0;
}
