// Quickstart: the full pipeline on the paper's running example (Figure 2).
//
//   DSL source -> parse -> dependence analysis (MLDG) -> fusion planning
//   (Algorithms 2-5) -> code generation -> execution + golden verification.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <iostream>

#include "analysis/dependence.hpp"
#include "exec/equivalence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "transform/codegen.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

int main() {
    using namespace lf;

    // 1. Parse the paper's Figure 2(b) program.
    const ir::Program program = ir::parse_program(workloads::sources::kFig2);
    std::cout << "=== Original program ===\n" << transform::emit_original(program) << '\n';

    // 2. Dependence analysis: build the 2-D loop dependence graph.
    const analysis::DependenceInfo info = analysis::analyze_dependences(program);
    std::cout << "=== MLDG ===\n" << info.graph.summary() << '\n';
    std::cout << "Elementary dependences:\n";
    for (const auto& d : info.dependences) std::cout << "  " << d.str(program) << '\n';

    // 3. Plan fusion: the driver picks the strongest applicable algorithm.
    const FusionPlan plan = plan_fusion(info.graph);
    std::cout << "\n=== Fusion plan ===\n" << plan.describe(info.graph);
    std::cout << "Retimed MLDG:\n" << plan.retimed.summary() << '\n';

    // 4. Generate the transformed code (paper Figure 12(b) form).
    const Domain dom{1000, 1000};
    const transform::FusedProgram fused = transform::fuse_program(program, plan);
    std::cout << "=== Transformed code ===\n" << transform::emit_transformed(fused, dom) << '\n';

    // 5. Execute both forms and verify bit-exact equivalence; compare
    //    synchronization counts.
    const auto result = exec::verify_fusion(program, dom, exec::EngineKind::FusedRowwise);
    std::cout << "=== Verification ===\n";
    std::cout << "equivalent: " << (result.equivalent ? "YES" : "NO") << '\n';
    if (!result.equivalent) {
        std::cout << "first difference: " << result.detail << '\n';
        return 1;
    }
    std::cout << "barriers before fusion: " << result.original.barriers << '\n';
    std::cout << "barriers after fusion:  " << result.transformed.barriers << '\n';
    std::cout << "reduction:              " << static_cast<double>(result.original.barriers) /
                                                   static_cast<double>(result.transformed.barriers)
              << "x\n";
    return 0;
}
