// storm_client: load driver for fusion_server (net/server.hpp).
//
// Opens N concurrent connections, pumps requests drawn round-robin from the
// workload gallery's DSL sources, honors Shed retry-after hints, tolerates
// transport flaps when asked (fault drills slam connections on purpose),
// and reports sustained plans/sec with P50/P99 latency -- the numbers
// ROADMAP item 2 asks for. With --bench it appends one scenario object to a
// BENCH_svc.json that tools/bench_diff.py consumes as a report-only gate.
//
// Examples:
//   storm_client --port 7070 --requests 200 --connections 4
//   storm_client --port 7070 --requests 100 --tolerate-transport
//                --bench BENCH_svc.json --label storm_faulted
//
// Exit 0 when every request reached a typed outcome (response, typed shed
// exhaustion, typed error, or -- under --tolerate-transport -- a transport
// failure); 1 on a protocol violation or, without the flag, any transport
// failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "support/json.hpp"
#include "workloads/sources.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    int requests = 100;
    int connections = 2;
    int tenants = 1;
    std::int64_t deadline_ms = -1;
    int response_timeout_ms = 30000;
    int max_shed_retries = 20;
    bool tolerate_transport = false;
    std::string bench_path;
    std::string label = "storm";
};

struct Tally {
    std::uint64_t sent = 0;
    std::uint64_t verified = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t shed_retries = 0;     // sheds that were retried
    std::uint64_t shed_exhausted = 0;   // gave up after max_shed_retries
    std::uint64_t typed_errors = 0;     // Error frames (typed rejections)
    std::uint64_t transport_failures = 0;
    std::uint64_t protocol_violations = 0;
    std::vector<std::int64_t> latencies_us;
};

void usage() {
    std::cout <<
        "usage: storm_client --port N [options]\n"
        "  --host A              server address (default 127.0.0.1)\n"
        "  --port N              server port (required)\n"
        "  --requests N          total requests across all connections (default 100)\n"
        "  --connections C       concurrent connections (default 2)\n"
        "  --tenants T           spread requests across T tenant ids (default 1)\n"
        "  --deadline-ms D       per-request deadline to propagate (default none)\n"
        "  --timeout-ms T        per-response wait (default 30000)\n"
        "  --shed-retries K      retries per shed request (default 20)\n"
        "  --tolerate-transport  transport failures are expected (fault drills)\n"
        "  --bench FILE          append a scenario to this BENCH_svc.json\n"
        "  --label NAME          scenario name for --bench (default storm)\n"
        "  --help                this text\n";
}

const std::string_view kSources[] = {
    lf::workloads::sources::kFig2,
    lf::workloads::sources::kFig8,
    lf::workloads::sources::kJacobiPair,
    lf::workloads::sources::kIirChain,
};

/// One connection worker: claims request indices from the shared counter,
/// sends, waits, retries sheds, reconnects on transport failure.
void worker(const Options& opt, std::atomic<int>& next, Tally& tally, std::mutex& tally_mutex) {
    lf::net::BlockingClient client;
    auto connected = [&]() -> bool {
        if (client.connected()) return true;
        return client.connect(opt.host, static_cast<std::uint16_t>(opt.port), 2000);
    };
    for (;;) {
        const int i = next.fetch_add(1);
        if (i >= opt.requests) return;
        lf::net::Frame req;
        req.type = lf::net::FrameType::Request;
        req.aux = static_cast<std::uint16_t>(lf::net::PayloadKind::Dsl);
        req.request_id = static_cast<std::uint64_t>(i) + 1;
        req.deadline_ms = opt.deadline_ms;
        req.tenant = "tenant-" + std::to_string(i % std::max(opt.tenants, 1));
        req.payload = std::string(kSources[static_cast<std::size_t>(i) % std::size(kSources)]);

        bool settled = false;
        int sheds = 0;
        while (!settled) {
            if (!connected()) {
                const std::lock_guard<std::mutex> lock(tally_mutex);
                ++tally.transport_failures;
                break;
            }
            {
                const std::lock_guard<std::mutex> lock(tally_mutex);
                ++tally.sent;
            }
            const Clock::time_point t0 = Clock::now();
            if (!client.send(req)) {
                client.close();
                const std::lock_guard<std::mutex> lock(tally_mutex);
                ++tally.transport_failures;
                break;
            }
            const auto r = client.recv(opt.response_timeout_ms);
            using RS = lf::net::BlockingClient::RecvStatus;
            if (r.status == RS::Ok && r.frame.type == lf::net::FrameType::Shed) {
                const std::lock_guard<std::mutex> lock(tally_mutex);
                if (++sheds > opt.max_shed_retries) {
                    ++tally.shed_exhausted;
                    settled = true;
                } else {
                    ++tally.shed_retries;
                }
                // Honor the server's retry-after hint (Shed reuses the
                // deadline_ms field for it).
                const std::int64_t wait = std::max<std::int64_t>(r.frame.deadline_ms, 1);
                if (!settled) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(std::min<std::int64_t>(wait, 1000)));
                }
                continue;
            }
            if (r.status == RS::Ok && r.frame.type == lf::net::FrameType::Response) {
                const std::int64_t us =
                    std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
                        .count();
                const std::lock_guard<std::mutex> lock(tally_mutex);
                if (r.frame.aux == 1) {
                    ++tally.verified;
                } else {
                    ++tally.quarantined;
                }
                tally.latencies_us.push_back(us);
                settled = true;
                continue;
            }
            if (r.status == RS::Ok && r.frame.type == lf::net::FrameType::Error) {
                const std::lock_guard<std::mutex> lock(tally_mutex);
                ++tally.typed_errors;
                settled = true;
                continue;
            }
            if (r.status == RS::Closed || r.status == RS::Torn || r.status == RS::Timeout) {
                client.close();
                const std::lock_guard<std::mutex> lock(tally_mutex);
                ++tally.transport_failures;
                break;
            }
            // Malformed server bytes or an unexpected frame type: protocol
            // violation -- the one thing no fault drill excuses.
            client.close();
            const std::lock_guard<std::mutex> lock(tally_mutex);
            ++tally.protocol_violations;
            settled = true;
        }
    }
}

std::int64_t percentile_us(std::vector<std::int64_t>& v, double p) {
    if (v.empty()) return 0;
    const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
    return v[idx];
}

/// Appends a scenario to the bench file, preserving existing scenarios by
/// splicing into the JSON array textually (the file is small and ours).
void write_bench(const Options& opt, const Tally& t, std::vector<std::int64_t> lat,
                 double wall_s) {
    lf::json::Writer w;
    w.begin_object();
    w.kv("scenario", opt.label);
    w.kv("requests", static_cast<std::uint64_t>(opt.requests));
    w.kv("connections", static_cast<std::uint64_t>(opt.connections));
    w.kv("completed", static_cast<std::uint64_t>(lat.size()));
    w.kv("verified", t.verified);
    w.kv("quarantined", t.quarantined);
    w.kv("shed_retries", t.shed_retries);
    w.kv("shed_exhausted", t.shed_exhausted);
    w.kv("typed_errors", t.typed_errors);
    w.kv("transport_failures", t.transport_failures);
    w.kv("wall_ms", static_cast<std::int64_t>(wall_s * 1000.0));
    w.kv("plans_per_sec",
         wall_s > 0 ? static_cast<std::int64_t>(static_cast<double>(lat.size()) / wall_s) : 0);
    w.kv("p50_us", percentile_us(lat, 0.50));
    w.kv("p99_us", percentile_us(lat, 0.99));
    w.end_object();
    const std::string scenario = w.str();

    std::string existing;
    {
        std::ifstream in(opt.bench_path);
        if (in.good()) {
            existing.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
        }
    }
    std::string out;
    const std::size_t close = existing.rfind(']');
    if (close != std::string::npos && existing.find("\"scenarios\"") != std::string::npos) {
        const bool empty_array = existing.find('{', existing.find('[')) == std::string::npos ||
                                 existing.find('{', existing.find('[')) > close;
        out = existing.substr(0, close) + (empty_array ? "" : ",\n") + scenario +
              existing.substr(close);
    } else {
        out = "{\"scenarios\": [" + scenario + "]}\n";
    }
    std::ofstream f(opt.bench_path, std::ios::trunc);
    f << out;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    auto next_arg = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--help") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(a, "--host") == 0) {
            opt.host = next_arg(i);
        } else if (std::strcmp(a, "--port") == 0) {
            opt.port = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--requests") == 0) {
            opt.requests = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--connections") == 0) {
            opt.connections = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--tenants") == 0) {
            opt.tenants = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--deadline-ms") == 0) {
            opt.deadline_ms = std::stoll(next_arg(i));
        } else if (std::strcmp(a, "--timeout-ms") == 0) {
            opt.response_timeout_ms = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--shed-retries") == 0) {
            opt.max_shed_retries = std::stoi(next_arg(i));
        } else if (std::strcmp(a, "--tolerate-transport") == 0) {
            opt.tolerate_transport = true;
        } else if (std::strcmp(a, "--bench") == 0) {
            opt.bench_path = next_arg(i);
        } else if (std::strcmp(a, "--label") == 0) {
            opt.label = next_arg(i);
        } else {
            std::cerr << "unknown option '" << a << "' (see --help)\n";
            return 2;
        }
    }
    if (opt.port <= 0) {
        std::cerr << "storm_client: --port is required\n";
        usage();
        return 2;
    }
    if (opt.connections < 1) opt.connections = 1;

    Tally tally;
    std::mutex tally_mutex;
    std::atomic<int> next{0};
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(opt.connections));
    for (int c = 0; c < opt.connections; ++c) {
        pool.emplace_back(worker, std::cref(opt), std::ref(next), std::ref(tally),
                          std::ref(tally_mutex));
    }
    for (auto& t : pool) t.join();
    const double wall_s =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count()) /
        1000.0;

    std::vector<std::int64_t> lat = tally.latencies_us;
    std::vector<std::int64_t> lat_for_p = lat;
    std::cout << "storm_client: " << opt.requests << " requests over " << opt.connections
              << " connections in " << wall_s << "s\n"
              << "  verified " << tally.verified << ", quarantined " << tally.quarantined
              << ", typed_errors " << tally.typed_errors << "\n"
              << "  shed_retries " << tally.shed_retries << ", shed_exhausted "
              << tally.shed_exhausted << ", transport_failures " << tally.transport_failures
              << ", protocol_violations " << tally.protocol_violations << "\n"
              << "  plans/sec "
              << (wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0) << ", p50 "
              << percentile_us(lat_for_p, 0.50) << "us, p99 " << percentile_us(lat_for_p, 0.99)
              << "us\n";

    if (!opt.bench_path.empty()) write_bench(opt, tally, lat, wall_s);

    if (tally.protocol_violations > 0) return 1;
    if (!opt.tolerate_transport && tally.transport_failures > 0) return 1;
    return 0;
}
