// Example: a weather-model relaxation cascade (the "fluid mechanics /
// weather forecasting" class from the paper's introduction) that defeats
// row-parallel fusion: bidirectional hard edges force Algorithm 4's phase 1
// to fail, and Algorithm 5 recovers full parallelism on skewed hyperplanes
// (wavefront execution), verified by the order-checking store.

#include <iostream>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "transform/codegen.hpp"

namespace {

constexpr std::string_view kWeather = R"(
# Relaxation cascade: i = time step, j = grid column.
program weather {
  loop Pressure {
    p[i][j] = 0.6 * p[i-1][j] + 0.2 * (w[i-1][j-1] + w[i-1][j+1]);
  }
  loop Wind {
    w[i][j] = 0.5 * (p[i][j-1] + p[i][j+1]) + 0.1 * w[i-1][j];
  }
  loop Temp {
    t[i][j] = 0.25 * (w[i][j-2] + w[i][j+2]) + 0.9 * t[i-1][j];
  }
}
)";

}  // namespace

int main() {
    using namespace lf;

    const ir::Program program = ir::parse_program(kWeather);
    const analysis::DependenceInfo info = analysis::analyze_dependences(program);
    std::cout << "Weather cascade dependence graph:\n" << info.graph.summary() << '\n';

    const FusionPlan plan = plan_fusion(info.graph);
    std::cout << "Fusion plan:\n" << plan.describe(info.graph) << '\n';
    if (plan.level != ParallelismLevel::Hyperplane) {
        std::cout << "note: expected a hyperplane plan for this cascade\n";
    }

    const Domain dom{400, 400};
    const transform::FusedProgram fused = transform::fuse_program(program, plan);

    // Execute the wavefront schedule with order checking: no grid cell may
    // be consumed before the step that produces it.
    exec::ArrayStore checked(program, dom);
    checked.enable_order_checking();
    const exec::ExecStats wf = exec::run_wavefront(fused, dom, checked);
    std::cout << "wavefront hyperplanes (barriers): " << wf.barriers << '\n';
    std::cout << "producer-before-consumer violations: " << checked.order_violations() << '\n';

    // And verify against the original execution.
    const auto verify = exec::verify_fusion(program, dom, exec::EngineKind::Wavefront);
    std::cout << "bit-exact vs original: " << (verify.equivalent ? "YES" : "NO") << '\n';
    if (!verify.equivalent) {
        std::cout << "  " << verify.detail << '\n';
        return 1;
    }
    std::cout << "barriers: " << verify.original.barriers << " (original, 3 per step) -> "
              << verify.transformed.barriers << " (one per hyperplane)\n\n";

    std::cout << "Wavefront code:\n" << transform::emit_wavefront(fused, dom);
    return 0;
}
