#include "analysis/dependence.hpp"

#include <sstream>
#include <type_traits>

#include "support/diagnostics.hpp"

namespace lf::analysis {

std::string to_string(DepKind kind) {
    switch (kind) {
        case DepKind::Flow: return "flow";
        case DepKind::Anti: return "anti";
        case DepKind::Output: return "output";
    }
    return "?";
}

std::string Dependence::str(const ir::Program& p) const {
    std::ostringstream os;
    os << to_string(kind) << ' ' << p.loops[static_cast<std::size_t>(from_loop)].label << " -> "
       << p.loops[static_cast<std::size_t>(to_loop)].label << ' ' << vector.str() << " (" << array
       << ')';
    return os.str();
}

namespace {

template <typename V>
struct Access {
    int loop = 0;
    front::BasicArrayRef<V> ref;
    bool is_write = false;
};

/// Execution-order comparison of an instance of loop u at the *source* end
/// and an instance of loop v displaced by `d` (instance_v = instance_u + d):
/// returns +1 when the u-instance executes first, -1 when the v-instance
/// does, 0 when they are unordered or identical. The sequential prefix (all
/// levels but the innermost) decides lexicographically; within one prefix
/// point loop position decides, and distinct innermost points of one DOALL
/// loop are unordered.
template <typename V>
int order_of(int u, int v, const V& d) {
    for (int k = 0; k + 1 < d.dim(); ++k) {
        if (d[k] > 0) return +1;
        if (d[k] < 0) return -1;
    }
    if (u < v) return +1;
    if (u > v) return -1;
    return 0;
}

/// One analyzer for both instantiations. The Vec2 run additionally fills
/// `deps` with the elementary dependence records (the N-D pipeline has no
/// consumer for them) and keeps the historical 2-D diagnostic texts.
template <typename V>
void analyze_generic(const front::BasicProgram<V>& p, BasicMldg<V>& g,
                     std::vector<Dependence>* deps) {
    constexpr bool k2d = front::kIsVec2<V>;

    for (const front::BasicLoopNest<V>& loop : p.loops) {
        g.add_node(loop.label, loop.body_cost());
    }

    std::vector<Access<V>> writes;
    std::vector<Access<V>> reads;
    for (int k = 0; k < static_cast<int>(p.loops.size()); ++k) {
        for (const front::BasicStatement<V>& s : p.loops[static_cast<std::size_t>(k)].body) {
            writes.push_back({k, s.target, true});
            for (const front::BasicArrayRef<V>& r : s.reads()) reads.push_back({k, r, false});
        }
    }

    auto label_of = [&p](int k) -> const std::string& {
        return p.loops[static_cast<std::size_t>(k)].label;
    };
    auto not_doall = [&label_of](int loop, const V& vector, const std::string& array,
                                 bool is_output) -> Error {
        if constexpr (k2d) {
            return Error("dependence analysis: loop " + label_of(loop) + " is not DOALL (" +
                         (is_output ? std::string("output vector ") : std::string("vector ")) +
                         vector.str() + " on array " + array + ")");
        } else {
            (void)array;
            if (is_output) return Error("build_mldg_nd: non-DOALL output dependence");
            return Error("build_mldg_nd: loop " + label_of(loop) + " is not DOALL (vector " +
                         vector.str() + ")");
        }
    };

    auto record = [&](int from, int to, V vector, DepKind kind, const std::string& array) {
        if (from == to && vector.is_zero()) return;  // intra-instance
        if (from == to) {
            bool prefix_zero = true;
            for (int k = 0; k + 1 < vector.dim(); ++k) prefix_zero = prefix_zero && vector[k] == 0;
            if (prefix_zero) throw not_doall(from, vector, array, false);
        }
        g.add_edge(from, to, {vector});
        if constexpr (k2d) {
            if (deps != nullptr) deps->push_back(Dependence{from, to, vector, kind, array});
        } else {
            (void)kind;
            (void)deps;
        }
    };

    // Flow / anti: every (write, read) pair on the same array.
    for (const Access<V>& w : writes) {
        for (const Access<V>& r : reads) {
            if (w.ref.array != r.ref.array) continue;
            // read_instance = write_instance + d
            const V d = w.ref.offset - r.ref.offset;
            const int ord = order_of(w.loop, r.loop, d);
            if (ord > 0) {
                record(w.loop, r.loop, d, DepKind::Flow, w.ref.array);
            } else if (ord < 0) {
                record(r.loop, w.loop, -d, DepKind::Anti, w.ref.array);
            } else if (!d.is_zero()) {
                // Unordered conflicting instances within one DOALL loop.
                throw not_doall(w.loop, d, w.ref.array, false);
            }
        }
    }

    // Output: every ordered pair of writes on the same array.
    for (std::size_t a = 0; a < writes.size(); ++a) {
        for (std::size_t b = a + 1; b < writes.size(); ++b) {
            const Access<V>& w1 = writes[a];
            const Access<V>& w2 = writes[b];
            if (w1.ref.array != w2.ref.array) continue;
            const V d = w1.ref.offset - w2.ref.offset;
            const int ord = order_of(w1.loop, w2.loop, d);
            if (ord > 0) {
                record(w1.loop, w2.loop, d, DepKind::Output, w1.ref.array);
            } else if (ord < 0) {
                record(w2.loop, w1.loop, -d, DepKind::Output, w1.ref.array);
            } else if (!d.is_zero()) {
                throw not_doall(w1.loop, d, w1.ref.array, true);
            }
        }
    }
}

}  // namespace

DependenceInfo analyze_dependences(const ir::Program& p) {
    DependenceInfo info;
    analyze_generic<Vec2>(p, info.graph, &info.dependences);
    return info;
}

Mldg build_mldg(const ir::Program& p) { return analyze_dependences(p).graph; }

MldgN build_mldg_nd(const front::BasicProgram<VecN>& p) {
    MldgN g(p.dim);
    analyze_generic<VecN>(p, g, nullptr);
    return g;
}

}  // namespace lf::analysis
