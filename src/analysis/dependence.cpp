#include "analysis/dependence.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace lf::analysis {

std::string to_string(DepKind kind) {
    switch (kind) {
        case DepKind::Flow: return "flow";
        case DepKind::Anti: return "anti";
        case DepKind::Output: return "output";
    }
    return "?";
}

std::string Dependence::str(const ir::Program& p) const {
    std::ostringstream os;
    os << to_string(kind) << ' ' << p.loops[static_cast<std::size_t>(from_loop)].label << " -> "
       << p.loops[static_cast<std::size_t>(to_loop)].label << ' ' << vector.str() << " (" << array
       << ')';
    return os.str();
}

namespace {

struct Access {
    int loop = 0;
    ir::ArrayRef ref;
    bool is_write = false;
};

/// Execution-order comparison of an instance of loop u at the *source* end
/// and an instance of loop v displaced by `d` (instance_v = instance_u + d):
/// returns +1 when the u-instance executes first, -1 when the v-instance
/// does, 0 when they are unordered or identical.
int order_of(int u, int v, const Vec2& d) {
    if (d.x > 0) return +1;
    if (d.x < 0) return -1;
    // Same outer iteration: loop position decides; within one DOALL loop
    // distinct j's are unordered and d.y == 0 is the same instance (for
    // cross-statement, statement order within the body serializes it -- not
    // an MLDG edge).
    if (u < v) return +1;
    if (u > v) return -1;
    return 0;
}

}  // namespace

DependenceInfo analyze_dependences(const ir::Program& p) {
    DependenceInfo info;
    for (const ir::LoopNest& loop : p.loops) {
        info.graph.add_node(loop.label, loop.body_cost());
    }

    std::vector<Access> writes;
    std::vector<Access> reads;
    for (int k = 0; k < static_cast<int>(p.loops.size()); ++k) {
        for (const ir::Statement& s : p.loops[static_cast<std::size_t>(k)].body) {
            writes.push_back({k, s.target, true});
            for (const ir::ArrayRef& r : s.reads()) reads.push_back({k, r, false});
        }
    }

    auto record = [&info, &p](int from, int to, Vec2 vector, DepKind kind,
                              const std::string& array) {
        if (from == to && vector.is_zero()) return;  // intra-instance
        if (from == to && vector.x == 0) {
            throw Error("dependence analysis: loop " + p.loops[static_cast<std::size_t>(from)].label +
                        " is not DOALL (vector " + vector.str() + " on array " + array + ")");
        }
        info.graph.add_edge(from, to, {vector});
        info.dependences.push_back(Dependence{from, to, vector, kind, array});
    };

    // Flow / anti: every (write, read) pair on the same array.
    for (const Access& w : writes) {
        for (const Access& r : reads) {
            if (w.ref.array != r.ref.array) continue;
            // read_instance = write_instance + d
            const Vec2 d = w.ref.offset - r.ref.offset;
            const int ord = order_of(w.loop, r.loop, d);
            if (ord > 0) {
                record(w.loop, r.loop, d, DepKind::Flow, w.ref.array);
            } else if (ord < 0) {
                record(r.loop, w.loop, -d, DepKind::Anti, w.ref.array);
            } else if (!d.is_zero()) {
                // Unordered conflicting instances within one DOALL loop.
                throw Error("dependence analysis: loop " +
                            p.loops[static_cast<std::size_t>(w.loop)].label +
                            " is not DOALL (vector " + d.str() + " on array " + w.ref.array + ")");
            }
        }
    }

    // Output: every ordered pair of writes on the same array.
    for (std::size_t a = 0; a < writes.size(); ++a) {
        for (std::size_t b = a + 1; b < writes.size(); ++b) {
            const Access& w1 = writes[a];
            const Access& w2 = writes[b];
            if (w1.ref.array != w2.ref.array) continue;
            const Vec2 d = w1.ref.offset - w2.ref.offset;
            const int ord = order_of(w1.loop, w2.loop, d);
            if (ord > 0) {
                record(w1.loop, w2.loop, d, DepKind::Output, w1.ref.array);
            } else if (ord < 0) {
                record(w2.loop, w1.loop, -d, DepKind::Output, w1.ref.array);
            } else if (!d.is_zero()) {
                throw Error("dependence analysis: loop " +
                            p.loops[static_cast<std::size_t>(w1.loop)].label +
                            " is not DOALL (output vector " + d.str() + " on array " +
                            w1.ref.array + ")");
            }
        }
    }

    return info;
}

Mldg build_mldg(const ir::Program& p) { return analyze_dependences(p).graph; }

}  // namespace lf::analysis
