#pragma once
// Dependence analysis: from a Figure-1 program to its MLDG (Definition 2.2).
//
// For every pair of accesses to the same array with at least one write, the
// instances touching a common cell differ by the constant vector
// d = offset(first) - offset(second). Under the program model's execution
// order (outer iterations in sequence; within one outer iteration the loops
// in program order, with a barrier after each DOALL loop) the earlier access
// is the dependence source; the MLDG edge runs source -> sink with the
// iteration-distance vector. Flow (write->read), anti (read->write) and
// output (write->write) dependences all constrain fusion and are all
// recorded (the paper, Section 2.1, names the same taxonomy).

#include <string>
#include <vector>

#include "front/ast.hpp"
#include "ir/ast.hpp"
#include "ldg/mldg.hpp"
#include "ldg/mldg_nd.hpp"

namespace lf::analysis {

enum class DepKind { Flow, Anti, Output };

[[nodiscard]] std::string to_string(DepKind kind);

/// One elementary dependence between two statement instances.
struct Dependence {
    int from_loop = 0;  // source loop index (executes first)
    int to_loop = 0;    // sink loop index
    Vec2 vector;        // sink instance minus source instance
    DepKind kind = DepKind::Flow;
    std::string array;

    [[nodiscard]] std::string str(const ir::Program& p) const;
};

struct DependenceInfo {
    /// The MLDG: node k represents p.loops[k]; body costs from
    /// LoopNest::body_cost(). Always program-model legal by construction.
    Mldg graph;
    /// Every elementary dependence (before per-edge merging/deduplication).
    std::vector<Dependence> dependences;
};

/// Analyzes a validated program. Throws lf::Error if the program violates
/// the model (e.g. a non-DOALL inner loop that slipped past sema).
[[nodiscard]] DependenceInfo analyze_dependences(const ir::Program& p);

/// Convenience: just the graph.
[[nodiscard]] Mldg build_mldg(const ir::Program& p);

/// Depth-d analysis through the same generic core: node k represents
/// p.loops[k]; execution order compares the sequential prefix
/// lexicographically, then loop position. The N-D pipeline has no
/// Dependence-record consumer, so only the graph is built. Throws lf::Error
/// on model violations, like the 2-D analyzer.
[[nodiscard]] MldgN build_mldg_nd(const front::BasicProgram<VecN>& p);

}  // namespace lf::analysis
