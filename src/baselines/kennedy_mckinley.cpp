#include "baselines/kennedy_mckinley.hpp"

#include <algorithm>

#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf::baselines {

bool KennedyMcKinleyResult::all_doall() const {
    return std::all_of(group_is_doall.begin(), group_is_doall.end(), [](bool b) { return b; });
}

KennedyMcKinleyResult kennedy_mckinley_fusion(const Mldg& g) {
    check(is_legal_mldg(g), "kennedy_mckinley_fusion: input MLDG is not program-model legal");

    const int n = g.num_nodes();
    // Process nodes in program order; group(v) = max over forward in-edges
    // u -> v of group(u) (+1 when the edge is fusion-preventing). Backward
    // (outer-carried) edges and self-edges impose no grouping constraint.
    std::vector<int> node_group(static_cast<std::size_t>(n), 0);
    std::vector<int> by_order(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) by_order[static_cast<std::size_t>(g.node_ref(v).order)] = v;

    for (int v : by_order) {
        int group = 0;
        for (int eid = 0; eid < g.num_edges(); ++eid) {
            const auto& e = g.edge_ref(eid);
            if (e.to != v || e.from == v) continue;
            if (g.is_backward_edge(eid)) continue;  // outer-loop carried
            const bool preventing = e.delta() < Vec2{0, 0};
            group = std::max(group, node_group[static_cast<std::size_t>(e.from)] +
                                        (preventing ? 1 : 0));
        }
        node_group[static_cast<std::size_t>(v)] = group;
    }

    KennedyMcKinleyResult result;
    const int num_groups = 1 + *std::max_element(node_group.begin(), node_group.end());
    result.groups.assign(static_cast<std::size_t>(num_groups), {});
    for (int v : by_order) {
        result.groups[static_cast<std::size_t>(node_group[static_cast<std::size_t>(v)])].push_back(v);
    }

    // A group's fused row is DOALL iff no internal dependence has the form
    // (0, k != 0) (same-row, different-j) after direct fusion. (0,0)
    // dependences follow statement order; carried ones cross rows.
    result.group_is_doall.assign(static_cast<std::size_t>(num_groups), true);
    for (const auto& e : g.edges()) {
        const int gu = node_group[static_cast<std::size_t>(e.from)];
        const int gv = node_group[static_cast<std::size_t>(e.to)];
        if (gu != gv) continue;
        for (const Vec2& d : e.vectors) {
            if (d.x == 0 && d.y != 0) {
                result.group_is_doall[static_cast<std::size_t>(gu)] = false;
            }
        }
    }
    return result;
}

}  // namespace lf::baselines
