#pragma once
// Baseline 2: greedy legal fusion partitioning in the style of Kennedy &
// McKinley ("Maximizing loop parallelism...", and the typed-fusion line of
// work the paper compares against in Section 1).
//
// Loops are scanned in program order and greedily packed into fusion groups:
// a fusion-preventing dependence (delta < (0,0)) from group k forces its
// sink into a group > k; other same-or-earlier-group dependences keep
// ordering constraints (sink group >= source group). No retiming is
// performed -- this is exactly the "cannot handle fusion-preventing
// dependences" limitation the paper highlights: such edges always cost an
// extra group (an extra barrier per outer iteration).

#include <vector>

#include "ldg/mldg.hpp"

namespace lf::baselines {

struct KennedyMcKinleyResult {
    /// groups[k] lists the loop nodes fused into the k-th fused loop.
    std::vector<std::vector<int>> groups;
    /// Per group: is its fused innermost loop DOALL?
    std::vector<bool> group_is_doall;

    /// Barriers per outer iteration = number of groups.
    [[nodiscard]] int num_groups() const { return static_cast<int>(groups.size()); }
    [[nodiscard]] bool all_doall() const;
};

/// Requires a program-model legal MLDG (throws lf::Error otherwise).
[[nodiscard]] KennedyMcKinleyResult kennedy_mckinley_fusion(const Mldg& g);

}  // namespace lf::baselines
