#include "baselines/naive.hpp"

#include "ldg/legality.hpp"

namespace lf::baselines {

NaiveFusionResult naive_fusion(const Mldg& g) {
    NaiveFusionResult r;
    r.legal = is_fusion_legal(g);
    r.inner_doall = r.legal && is_fused_inner_doall(g);
    return r;
}

}  // namespace lf::baselines
