#pragma once
// Baseline 1: naive (direct) fusion. Concatenate the loop bodies in program
// order with no transformation. Legal only when no fusion-preventing
// dependence exists (Theorem 3.1 with program order); fully parallel only
// when no dependence lands inside a fused row.

#include "ldg/mldg.hpp"

namespace lf::baselines {

struct NaiveFusionResult {
    /// Direct fusion does not reverse any dependence.
    bool legal = false;
    /// The fused innermost loop is DOALL.
    bool inner_doall = false;
};

[[nodiscard]] NaiveFusionResult naive_fusion(const Mldg& g);

}  // namespace lf::baselines
