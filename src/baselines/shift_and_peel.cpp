#include "baselines/shift_and_peel.hpp"

#include <algorithm>

#include "graph/constraint_system.hpp"
#include "ldg/legality.hpp"
#include "ldg/retiming.hpp"
#include "support/diagnostics.hpp"

namespace lf::baselines {

ShiftAndPeelResult shift_and_peel_fusion(const Mldg& g) {
    check(is_legal_mldg(g), "shift_and_peel_fusion: input MLDG is not program-model legal");
    ShiftAndPeelResult result;

    // Alignment constraints come only from same-outer-iteration dependences:
    // after a y-shift r, a (0, dy) dependence becomes (0, dy + r(u) - r(v))
    // and must stay >= 0, i.e. r(v) - r(u) <= dy. Carried dependences
    // (x >= 1) are legal for any finite shift.
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node(v).name);
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.x == 0) sys.add_constraint(e.from, e.to, d.y);
        }
    }
    const auto solution = sys.solve();
    if (!solution.feasible) {
        return result;  // alignment conflict: shift-and-peel cannot fuse
    }
    result.feasible = true;
    result.shift = solution.values;

    const auto [lo, hi] = std::minmax_element(result.shift.begin(), result.shift.end());
    result.peel = *hi - *lo;

    // Evaluate the fused row with the shifts applied as a y-only retiming.
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) r.of(v) = Vec2{0, result.shift[static_cast<std::size_t>(v)]};
    result.inner_doall = is_fused_inner_doall(r.apply(g));
    return result;
}

}  // namespace lf::baselines
