#pragma once
// Baseline 3: shift-and-peel (Manjikian & Abdelrahman). Loops are aligned by
// shifting their iteration spaces along the *inner* dimension only (a
// y-only retiming); iterations that fall outside the common range are
// peeled. Shifting can legalize fusion-preventing (0, k<0) dependences, but
//   (a) it cannot move anything across outer iterations, so same-row
//       dependences (0, k>0) survive and keep the fused row serial (the
//       peeled iterations are what allow *partitioned* parallelism, at a
//       cost that grows with the peel amount -- the inefficiency the paper
//       notes when peels approach the per-processor share), and
//   (b) it fails outright when the inner-dimension alignment constraints
//       cycle with negative weight.

#include <optional>
#include <vector>

#include "ldg/mldg.hpp"

namespace lf::baselines {

struct ShiftAndPeelResult {
    bool feasible = false;
    /// Per-node inner-dimension shift (as a y-only retiming).
    std::vector<std::int64_t> shift;
    /// Total peeled iterations per outer iteration: max shift - min shift.
    std::int64_t peel = 0;
    /// After shifting, is the fused row DOALL? (Usually false: shifted
    /// dependences land on (0, k >= 0) and any k > 0 serializes.)
    bool inner_doall = false;
};

/// Requires a program-model legal MLDG (throws lf::Error otherwise).
[[nodiscard]] ShiftAndPeelResult shift_and_peel_fusion(const Mldg& g);

}  // namespace lf::baselines
