#pragma once
// A dense 2-D array of doubles over an inclusive index rectangle
// [lo_i, hi_i] x [lo_j, hi_j], with bounds-checked access. The rectangle
// includes a halo around the iteration domain so boundary reads (e.g.
// a[i-2][j-1] at i=0) hit well-defined initial values.

#include <cstdint>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf::exec {

class Array2D {
  public:
    Array2D() = default;
    Array2D(std::int64_t lo_i, std::int64_t hi_i, std::int64_t lo_j, std::int64_t hi_j)
        : lo_i_(lo_i), lo_j_(lo_j), rows_(hi_i - lo_i + 1), cols_(hi_j - lo_j + 1) {
        check(rows_ > 0 && cols_ > 0, "Array2D: empty index rectangle");
        data_.assign(static_cast<std::size_t>(rows_ * cols_), 0.0);
    }

    [[nodiscard]] bool in_bounds(std::int64_t i, std::int64_t j) const {
        return i >= lo_i_ && i < lo_i_ + rows_ && j >= lo_j_ && j < lo_j_ + cols_;
    }

    [[nodiscard]] double at(std::int64_t i, std::int64_t j) const {
        return data_[index(i, j)];
    }

    void set(std::int64_t i, std::int64_t j, double v) { data_[index(i, j)] = v; }

    /// Linear offset of (i, j) within this array; the cache simulator treats
    /// it as the element address relative to the array base.
    [[nodiscard]] std::int64_t linear_index(std::int64_t i, std::int64_t j) const {
        return static_cast<std::int64_t>(index(i, j));
    }

    [[nodiscard]] std::int64_t size() const { return rows_ * cols_; }
    [[nodiscard]] std::int64_t lo_i() const { return lo_i_; }
    [[nodiscard]] std::int64_t lo_j() const { return lo_j_; }
    [[nodiscard]] std::int64_t rows() const { return rows_; }
    [[nodiscard]] std::int64_t cols() const { return cols_; }

  private:
    [[nodiscard]] std::size_t index(std::int64_t i, std::int64_t j) const {
        check(in_bounds(i, j), "Array2D: index out of bounds (halo too small?)");
        return static_cast<std::size_t>((i - lo_i_) * cols_ + (j - lo_j_));
    }

    std::int64_t lo_i_ = 0;
    std::int64_t lo_j_ = 0;
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace lf::exec
