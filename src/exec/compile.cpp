#include "exec/compile.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "support/faultpoint.hpp"

namespace lf::exec {

namespace {

/// Footer magic: "LFSO" + 16-bit version + 2 pad bytes, 8 bytes total,
/// followed by 8 bytes of little-endian FNV-1a 64 over everything before
/// the footer. ELF loaders ignore appended bytes, so footered objects are
/// dlopen()able without stripping.
constexpr char kFooterMagic[8] = {'L', 'F', 'S', 'O', 0, 1, 0, 0};
constexpr std::size_t kFooterSize = 16;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h = 0xcbf29ce484222325ULL) {
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

void put_le64(std::string& out, std::uint64_t v) {
    for (int k = 0; k < 8; ++k) out.push_back(static_cast<char>((v >> (8 * k)) & 0xff));
}

std::uint64_t get_le64(const char* p) {
    std::uint64_t v = 0;
    for (int k = 7; k >= 0; --k) {
        v = (v << 8) | static_cast<unsigned char>(p[static_cast<std::size_t>(k)]);
    }
    return v;
}

/// Reads the whole file; false on any IO failure.
bool slurp(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return in.good() || in.eof();
}

/// True when `bytes` is a well-formed footered object image.
bool footer_valid(const std::string& bytes) {
    if (bytes.size() < kFooterSize) return false;
    const std::size_t body = bytes.size() - kFooterSize;
    if (std::memcmp(bytes.data() + body, kFooterMagic, sizeof(kFooterMagic)) != 0) return false;
    const std::uint64_t stored = get_le64(bytes.data() + body + sizeof(kFooterMagic));
    return fnv1a(std::string_view(bytes.data(), body)) == stored;
}

/// Runs `argv` (argv[0] resolved via PATH), with stdout+stderr redirected
/// to `log_path`. Returns the wait status, or -1 when the spawn itself
/// failed. Only async-signal-safe calls between fork and exec.
int run_subprocess(const std::vector<std::string>& argv, const std::string& log_path) {
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    const pid_t pid = ::fork();
    if (pid < 0) {
        if (log_fd >= 0) ::close(log_fd);
        return -1;
    }
    if (pid == 0) {
        if (log_fd >= 0) {
            (void)::dup2(log_fd, STDOUT_FILENO);
            (void)::dup2(log_fd, STDERR_FILENO);
        }
        ::execvp(cargv[0], cargv.data());
        ::_exit(127);  // exec failed (compiler missing)
    }
    if (log_fd >= 0) ::close(log_fd);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) return -1;
    }
    return status;
}

/// First ~600 bytes of the compiler log, for failure diagnostics.
std::string log_excerpt(const std::string& log_path) {
    std::string text;
    if (!slurp(log_path, text)) return "(no compiler output captured)";
    if (text.size() > 600) {
        text.resize(600);
        text += "...";
    }
    // Keep the excerpt single-line-ish for Status messages.
    for (char& c : text) {
        if (c == '\n') c = ' ';
    }
    return text;
}

std::vector<std::string> effective_flags(const CompileOptions& o) {
    std::vector<std::string> flags = o.flags;
    if (o.openmp) flags.push_back("-fopenmp");
    if (o.pthread) flags.push_back("-pthread");
    flags.insert(flags.end(), o.extra_flags.begin(), o.extra_flags.end());
    return flags;
}

}  // namespace

KernelCompiler::KernelCompiler(CompileOptions options) : options_(std::move(options)) {}

std::uint64_t KernelCompiler::key_of(const std::string& c_source,
                                     const CompileOptions& options) {
    std::uint64_t h = fnv1a(c_source);
    h = fnv1a("\0cc\0", h);
    h = fnv1a(options.cc, h);
    for (const auto& f : effective_flags(options)) {
        h = fnv1a("\0flag\0", h);
        h = fnv1a(f, h);
    }
    return h;
}

bool KernelCompiler::compiler_available(const std::string& cc,
                                        const std::vector<std::string>& flags) {
    // Memoized per (cc, flag set): "cc works" is not one fact -- the serial
    // probe and the -pthread / -fopenmp probes can disagree on a stripped
    // toolchain, and a stale positive would turn every later compile into a
    // hard failure instead of a clean Unavailable skip.
    static std::mutex m;
    static std::map<std::string, bool> cache;
    std::string memo_key = cc;
    for (const auto& f : flags) {
        memo_key.push_back('\0');
        memo_key += f;
    }
    const std::lock_guard<std::mutex> lock(m);
    const auto it = cache.find(memo_key);
    if (it != cache.end()) return it->second;

    // Real probe compile of a trivial translation unit with exactly the
    // requested flags ("int main" satisfies both executable and -shared
    // links). Probe artifacts live in a throwaway TMPDIR directory.
    bool ok = false;
    const char* tmp = std::getenv("TMPDIR");
    std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") + "/lfprobeXXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) {
        const std::string dir = buf.data();
        const std::string src = dir + "/probe.c";
        const std::string obj = dir + "/probe.out";
        const std::string log = dir + "/probe.log";
        {
            std::ofstream out(src, std::ios::binary);
            out << "int main(void) { return 0; }\n";
        }
        std::vector<std::string> argv{cc};
        for (const auto& f : flags) argv.push_back(f);
        argv.push_back("-o");
        argv.push_back(obj);
        argv.push_back(src);
        const int status = run_subprocess(argv, log);
        ok = status >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
    cache[memo_key] = ok;
    return ok;
}

bool KernelCompiler::available() const {
    return compiler_available(options_.cc, effective_flags(options_));
}

CompileStats KernelCompiler::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string KernelCompiler::cache_dir() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dir_;
}

Result<CompiledKernel> KernelCompiler::compile(const std::string& c_source) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return compile_locked(c_source);
}

Result<CompiledKernel> KernelCompiler::compile_locked(const std::string& c_source) {
    if (faultpoint::triggered("exec.compile")) {
        ++stats_.failures;
        return Result<CompiledKernel>(
            Status(StatusCode::Internal, "fault injected: exec.compile"));
    }

    // Resolve the cache directory lazily (mkdtemp when unset).
    if (dir_.empty()) {
        if (!options_.cache_dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(options_.cache_dir, ec);
            if (ec) {
                ++stats_.failures;
                return Result<CompiledKernel>(Status(
                    StatusCode::Internal,
                    "cannot create kernel cache dir '" + options_.cache_dir + "': " +
                        ec.message()));
            }
            dir_ = options_.cache_dir;
        } else {
            const char* tmp = std::getenv("TMPDIR");
            std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") + "/lfkernelXXXXXX";
            std::vector<char> buf(templ.begin(), templ.end());
            buf.push_back('\0');
            if (::mkdtemp(buf.data()) == nullptr) {
                ++stats_.failures;
                return Result<CompiledKernel>(Status(
                    StatusCode::Internal,
                    std::string("mkdtemp failed for kernel cache: ") + std::strerror(errno)));
            }
            dir_ = buf.data();
        }
    }

    const std::uint64_t key = key_of(c_source, options_);
    const std::string final_path = dir_ + "/" + hex16(key) + ".so";

    // ---- Cache lookup: trust nothing without a valid footer. ----
    if (std::filesystem::exists(final_path)) {
        std::string bytes;
        if (slurp(final_path, bytes) && footer_valid(bytes)) {
            ++stats_.cache_hits;
            return Result<CompiledKernel>(CompiledKernel{final_path, key, true});
        }
        // Quarantine-by-rename: keep the corrupt object as evidence, then
        // heal by recompiling below.
        const std::string quarantine =
            final_path + ".quarantined." + std::to_string(::getpid()) + "." +
            std::to_string(seq_);
        std::error_code ec;
        std::filesystem::rename(final_path, quarantine, ec);
        if (ec) std::filesystem::remove(final_path, ec);  // rename failed: drop it
        ++stats_.quarantined;
    }

    // ---- Compile to a temp object in the cache directory. ----
    const std::string tag =
        std::to_string(static_cast<long long>(::getpid())) + "." + std::to_string(seq_++);
    const std::string src_path = dir_ + "/tmp." + tag + ".c";
    const std::string obj_path = dir_ + "/tmp." + tag + ".so";
    const std::string log_path = dir_ + "/tmp." + tag + ".log";
    {
        std::ofstream out(src_path, std::ios::binary);
        out << c_source;
        if (!out.good()) {
            ++stats_.failures;
            return Result<CompiledKernel>(
                Status(StatusCode::Internal, "cannot write kernel source to " + src_path));
        }
    }

    std::vector<std::string> argv{options_.cc};
    for (const auto& f : effective_flags(options_)) argv.push_back(f);
    argv.push_back("-o");
    argv.push_back(obj_path);
    argv.push_back(src_path);

    const int status = run_subprocess(argv, log_path);
    const auto cleanup_tmp = [&] {
        std::error_code ec;
        std::filesystem::remove(src_path, ec);
        std::filesystem::remove(obj_path, ec);
        std::filesystem::remove(log_path, ec);
    };
    if (status < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::string why;
        if (status < 0) {
            why = "spawn failed";
        } else if (WIFEXITED(status) && WEXITSTATUS(status) == 127) {
            why = "compiler '" + options_.cc + "' not found on PATH";
        } else {
            why = "compiler exited with status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) + ": " +
                  log_excerpt(log_path);
        }
        cleanup_tmp();
        ++stats_.failures;
        return Result<CompiledKernel>(
            Status(StatusCode::Internal, "kernel compile failed: " + why));
    }

    // ---- Footer + fsync + atomic rename into the content address. ----
    std::string bytes;
    if (!slurp(obj_path, bytes) || bytes.empty()) {
        cleanup_tmp();
        ++stats_.failures;
        return Result<CompiledKernel>(
            Status(StatusCode::Internal, "compiler produced no readable object"));
    }
    std::string footer(kFooterMagic, sizeof(kFooterMagic));
    put_le64(footer, fnv1a(bytes));
    {
        const int fd = ::open(obj_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
        bool ok = fd >= 0;
        if (ok) {
            ok = ::write(fd, footer.data(), footer.size()) ==
                 static_cast<ssize_t>(footer.size());
            ok = ::fsync(fd) == 0 && ok;
            ok = ::close(fd) == 0 && ok;
        }
        if (!ok) {
            cleanup_tmp();
            ++stats_.failures;
            return Result<CompiledKernel>(
                Status(StatusCode::Internal, "cannot append checksum footer to " + obj_path));
        }
    }
    {
        std::error_code ec;
        std::filesystem::rename(obj_path, final_path, ec);
        if (ec) {
            cleanup_tmp();
            ++stats_.failures;
            return Result<CompiledKernel>(Status(
                StatusCode::Internal, "cannot publish kernel object: " + ec.message()));
        }
        std::filesystem::remove(src_path, ec);
        std::filesystem::remove(log_path, ec);
    }
    ++stats_.compiles;
    return Result<CompiledKernel>(CompiledKernel{final_path, key, false});
}

}  // namespace lf::exec
