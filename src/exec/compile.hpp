#pragma once
// Kernel compiler for the native execution backend: turns emitted C kernel
// sources (transform/codegen_c.hpp, transform/codegen_nd.hpp) into shared
// objects via a `cc` subprocess, with a content-addressed on-disk cache that
// follows the planstore discipline (svc/planstore.hpp):
//
//   <cache_dir>/<16-hex-key>.so
//
// where key = FNV-1a 64 over the source text plus every input that affects
// the object (compiler name, flag set, OpenMP mode). Each cached file ends
// in a 16-byte footer -- 8-byte magic "LFSO" + version, then the FNV-1a 64
// of every preceding byte, little-endian -- appended after compilation.
// ELF loaders ignore trailing bytes, so the footered file is dlopen()able
// as-is. On lookup the footer is re-verified: a torn, truncated or
// bit-flipped object is *quarantined by rename* (never dlopen()ed, never
// deleted -- it is evidence) and healed by recompiling. Writes are atomic:
// the compiler writes a temp file in the cache directory, the footer is
// appended, the file fsync()ed, then rename()d over the final name.
//
// compile() never throws; failures come back as typed Status values
// (Unavailable compiler / cc exit != 0 / injected exec.compile fault), and
// the class is safe to share across service worker threads.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace lf::exec {

struct CompileOptions {
    /// Compiler driver, resolved via PATH.
    std::string cc = "cc";
    /// Baseline flag set for every kernel.
    std::vector<std::string> flags = {"-O2", "-fPIC", "-shared"};
    /// Append -fopenmp (parallel DOALL rows / wavefronts).
    bool openmp = false;
    /// Append -pthread: emitted kernels carry the ABI v2 worker-pool
    /// runtime, which needs pthread compile *and* link semantics. Part of
    /// the content address (turning it off re-keys every object).
    bool pthread = true;
    /// Extra flags appended after `flags` (e.g. {"-Wall", "-Werror"}).
    std::vector<std::string> extra_flags;
    /// Cache directory; created if missing. Empty: a fresh mkdtemp()
    /// directory under TMPDIR, created lazily on first compile.
    std::string cache_dir;
};

struct CompiledKernel {
    /// Path of the cached shared object (with checksum footer).
    std::string path;
    /// Content address (key) of the object.
    std::uint64_t key = 0;
    /// The object was served from the cache without invoking cc.
    bool from_cache = false;
};

struct CompileStats {
    std::uint64_t compiles = 0;       // cc subprocess runs that succeeded
    std::uint64_t cache_hits = 0;     // footer-verified cache hits
    std::uint64_t failures = 0;       // cc failures + injected faults
    std::uint64_t quarantined = 0;    // corrupt cache files renamed aside
};

class KernelCompiler {
  public:
    explicit KernelCompiler(CompileOptions options = {});

    /// Compiles `c_source` (or serves it from the cache). Never throws.
    /// Fault point "exec.compile" fails the call with StatusCode::Internal.
    [[nodiscard]] Result<CompiledKernel> compile(const std::string& c_source);

    [[nodiscard]] CompileStats stats() const;

    /// The resolved cache directory ("" until the first compile when the
    /// options left it empty).
    [[nodiscard]] std::string cache_dir() const;

    [[nodiscard]] const CompileOptions& options() const { return options_; }

    /// Content address of `c_source` under `options` (what compile() keys
    /// the cache with).
    [[nodiscard]] static std::uint64_t key_of(const std::string& c_source,
                                              const CompileOptions& options);

    /// True when `cc` can actually build a trivial object with `flags` (a
    /// real probe compile, not just --version: a driver may exist yet lack
    /// e.g. -pthread or -fopenmp support). Memoized per (cc, flag set) --
    /// distinct flag sets probe independently.
    [[nodiscard]] static bool compiler_available(const std::string& cc = "cc",
                                                 const std::vector<std::string>& flags = {});

    /// compiler_available() for this compiler's effective flag set (the
    /// exact flags compile() passes, -fopenmp / -pthread included).
    [[nodiscard]] bool available() const;

  private:
    Result<CompiledKernel> compile_locked(const std::string& c_source);

    CompileOptions options_;
    mutable std::mutex mutex_;
    std::string dir_;  // resolved cache directory (lazily created)
    CompileStats stats_;
    std::uint64_t seq_ = 0;  // temp-file uniquifier within this compiler
};

}  // namespace lf::exec
