#include "exec/engines.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf::exec {

namespace {

/// Executes body `b`'s statements for the instance at original iteration
/// (qi, qj). Returns the number of statement instances run.
std::int64_t run_instance(const transform::FusedLoopBody& b, std::int64_t qi, std::int64_t qj,
                          ArrayStore& store) {
    for (const ir::Statement& s : b.statements) {
        const double value = s.eval(store, qi, qj);
        const Vec2 cell = s.target.cell(qi, qj);
        store.store(s.target.array, cell.x, cell.y, value);
    }
    return static_cast<std::int64_t>(b.statements.size());
}

/// Executes all active bodies at fused point (pi, pj), in body order.
std::int64_t run_point(const transform::FusedProgram& fp, const Domain& dom, std::int64_t pi,
                       std::int64_t pj, ArrayStore& store) {
    std::int64_t instances = 0;
    for (const transform::FusedLoopBody& b : fp.bodies) {
        const std::int64_t qi = pi + b.retiming.x;
        const std::int64_t qj = pj + b.retiming.y;
        if (dom.contains(qi, qj)) instances += run_instance(b, qi, qj, store);
    }
    return instances;
}

/// Executes one body at fused point (pi, pj) if active (peel sections).
std::int64_t run_point_for_body(const transform::FusedProgram&, const Domain& dom,
                                const transform::FusedLoopBody& b, std::int64_t pi,
                                std::int64_t pj, ArrayStore& store) {
    const std::int64_t qi = pi + b.retiming.x;
    const std::int64_t qj = pj + b.retiming.y;
    return dom.contains(qi, qj) ? run_instance(b, qi, qj, store) : 0;
}

}  // namespace

ExecStats run_original(const ir::Program& p, const Domain& dom, ArrayStore& store) {
    ExecStats stats;
    for (std::int64_t i = 0; i <= dom.n; ++i) {
        for (const ir::LoopNest& loop : p.loops) {
            for (std::int64_t j = 0; j <= dom.m; ++j) {
                for (const ir::Statement& s : loop.body) {
                    const double value = s.eval(store, i, j);
                    const Vec2 cell = s.target.cell(i, j);
                    store.store(s.target.array, cell.x, cell.y, value);
                    ++stats.instances;
                }
            }
            ++stats.barriers;  // one barrier terminates each DOALL loop
        }
    }
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_fused_rowwise(const transform::FusedProgram& fp, const Domain& dom,
                            ArrayStore& store) {
    ExecStats stats;
    const std::int64_t jlo = fp.point_j_lo(), jhi = fp.point_j_hi(dom);
    for (std::int64_t pi = fp.point_i_lo(); pi <= fp.point_i_hi(dom); ++pi) {
        std::int64_t row_instances = 0;
        for (std::int64_t pj = jlo; pj <= jhi; ++pj) {
            row_instances += run_point(fp, dom, pi, pj, store);
        }
        if (row_instances > 0) {
            stats.instances += row_instances;
            ++stats.barriers;  // one barrier terminates each fused row
        }
    }
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_wavefront(const transform::FusedProgram& fp, const Domain& dom, ArrayStore& store) {
    ExecStats stats;
    const Vec2 s = fp.schedule;
    const std::int64_t ilo = fp.point_i_lo(), ihi = fp.point_i_hi(dom);
    const std::int64_t jlo = fp.point_j_lo(), jhi = fp.point_j_hi(dom);

    // Bucket the fused points by t = s . p, then sweep hyperplanes in order.
    const std::int64_t c1 = s.x * ilo + s.y * jlo, c2 = s.x * ilo + s.y * jhi;
    const std::int64_t c3 = s.x * ihi + s.y * jlo, c4 = s.x * ihi + s.y * jhi;
    const std::int64_t tlo = std::min({c1, c2, c3, c4});
    const std::int64_t thi = std::max({c1, c2, c3, c4});

    std::vector<std::vector<Vec2>> buckets(static_cast<std::size_t>(thi - tlo + 1));
    for (std::int64_t pi = ilo; pi <= ihi; ++pi) {
        for (std::int64_t pj = jlo; pj <= jhi; ++pj) {
            bool active = false;
            for (const transform::FusedLoopBody& b : fp.bodies) {
                if (dom.contains(pi + b.retiming.x, pj + b.retiming.y)) {
                    active = true;
                    break;
                }
            }
            if (active) {
                const std::int64_t t = s.x * pi + s.y * pj;
                buckets[static_cast<std::size_t>(t - tlo)].push_back(Vec2{pi, pj});
            }
        }
    }
    for (const auto& bucket : buckets) {
        if (bucket.empty()) continue;
        for (const Vec2& p : bucket) {
            stats.instances += run_point(fp, dom, p.x, p.y, store);
        }
        ++stats.barriers;  // one barrier terminates each hyperplane
    }
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_fused_blocked(const transform::FusedProgram& fp, const Domain& dom,
                            ArrayStore& store, int processors) {
    check(processors >= 1, "run_fused_blocked: need at least one processor");
    ExecStats stats;
    const std::int64_t jlo = fp.point_j_lo(), jhi = fp.point_j_hi(dom);
    const std::int64_t width = jhi - jlo + 1;
    const std::int64_t block = (width + processors - 1) / processors;
    for (std::int64_t pi = fp.point_i_lo(); pi <= fp.point_i_hi(dom); ++pi) {
        std::int64_t row_instances = 0;
        for (int proc = 0; proc < processors; ++proc) {
            store.set_trace_processor(static_cast<std::int16_t>(proc));
            const std::int64_t my_lo = jlo + proc * block;
            const std::int64_t my_hi = std::min(jhi, my_lo + block - 1);
            for (std::int64_t pj = my_lo; pj <= my_hi; ++pj) {
                row_instances += run_point(fp, dom, pi, pj, store);
            }
        }
        if (row_instances > 0) {
            stats.instances += row_instances;
            ++stats.barriers;
        }
    }
    store.set_trace_processor(-1);
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_original_blocked(const ir::Program& p, const Domain& dom, ArrayStore& store,
                               int processors) {
    check(processors >= 1, "run_original_blocked: need at least one processor");
    ExecStats stats;
    const std::int64_t block = (dom.cols() + processors - 1) / processors;
    for (std::int64_t i = 0; i <= dom.n; ++i) {
        for (const ir::LoopNest& loop : p.loops) {
            for (int proc = 0; proc < processors; ++proc) {
                store.set_trace_processor(static_cast<std::int16_t>(proc));
                const std::int64_t my_lo = proc * block;
                const std::int64_t my_hi = std::min(dom.m, my_lo + block - 1);
                for (std::int64_t j = my_lo; j <= my_hi; ++j) {
                    for (const ir::Statement& s : loop.body) {
                        const double value = s.eval(store, i, j);
                        const Vec2 cell = s.target.cell(i, j);
                        store.store(s.target.array, cell.x, cell.y, value);
                        ++stats.instances;
                    }
                }
            }
            ++stats.barriers;
        }
    }
    store.set_trace_processor(-1);
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_fused_peeled(const transform::FusedProgram& fp, const Domain& dom,
                           ArrayStore& store) {
    check(fp.level == ParallelismLevel::InnerDoall,
          "run_fused_peeled: only inner-DOALL plans have a row-peeled form");
    ExecStats stats;
    const std::int64_t ilo = fp.point_i_lo(), ihi = fp.point_i_hi(dom);
    const std::int64_t main_ilo = fp.main_i_lo(), main_ihi = fp.main_i_hi(dom);
    const std::int64_t jlo_all = fp.point_j_lo(), jhi_all = fp.point_j_hi(dom);
    const std::int64_t main_jlo = fp.main_j_lo(), main_jhi = fp.main_j_hi(dom);
    const bool has_steady = main_ilo <= main_ihi && main_jlo <= main_jhi;

    // Executes one row as a sequence of stand-alone per-body DOALL loops
    // (the prologue/epilogue row form): one barrier per active body.
    auto run_row_per_body = [&](std::int64_t pi) {
        for (const transform::FusedLoopBody& b : fp.bodies) {
            const std::int64_t qi = pi + b.retiming.x;
            if (qi < 0 || qi > dom.n) continue;
            for (std::int64_t pj = -b.retiming.y; pj <= dom.m - b.retiming.y; ++pj) {
                stats.instances += run_instance(b, qi, pj + b.retiming.y, store);
            }
            ++stats.barriers;
        }
    };

    for (std::int64_t pi = ilo; pi <= ihi; ++pi) {
        if (!has_steady || pi < main_ilo || pi > main_ihi) {
            run_row_per_body(pi);
            continue;
        }
        // Steady-state row: j-prologue peels (serial, per body) ...
        for (const transform::FusedLoopBody& b : fp.bodies) {
            const std::int64_t b_lo = -b.retiming.y;
            for (std::int64_t pj = std::max(b_lo, jlo_all); pj < main_jlo; ++pj) {
                stats.instances += run_point_for_body(fp, dom, b, pi, pj, store);
            }
        }
        // ... the fused DOALL core (one barrier) ...
        for (std::int64_t pj = main_jlo; pj <= main_jhi; ++pj) {
            stats.instances += run_point(fp, dom, pi, pj, store);
        }
        // ... and j-epilogue peels.
        for (const transform::FusedLoopBody& b : fp.bodies) {
            const std::int64_t b_hi = dom.m - b.retiming.y;
            for (std::int64_t pj = main_jhi + 1; pj <= std::min(b_hi, jhi_all); ++pj) {
                stats.instances += run_point_for_body(fp, dom, b, pi, pj, store);
            }
        }
        ++stats.barriers;
    }
    stats.phases = stats.barriers;
    return stats;
}

ExecStats run_fused_threaded(const transform::FusedProgram& fp, const Domain& dom,
                             ArrayStore& store, int num_threads) {
    check(fp.level == ParallelismLevel::InnerDoall,
          "run_fused_threaded: plan's fused rows are not DOALL; use run_wavefront");
    check(!store.tracing(), "run_fused_threaded: tracing is single-threaded only");
    check(num_threads >= 1, "run_fused_threaded: need at least one thread");

    const std::int64_t ilo = fp.point_i_lo(), ihi = fp.point_i_hi(dom);
    const std::int64_t jlo = fp.point_j_lo(), jhi = fp.point_j_hi(dom);
    const std::int64_t width = jhi - jlo + 1;

    std::atomic<std::int64_t> instances{0};
    std::barrier row_barrier(num_threads);

    auto worker = [&](int tid) {
        // Static partition of the j-range.
        const std::int64_t chunk = (width + num_threads - 1) / num_threads;
        const std::int64_t my_lo = jlo + tid * chunk;
        const std::int64_t my_hi = std::min(jhi, my_lo + chunk - 1);
        std::int64_t my_instances = 0;
        for (std::int64_t pi = ilo; pi <= ihi; ++pi) {
            for (std::int64_t pj = my_lo; pj <= my_hi; ++pj) {
                my_instances += run_point(fp, dom, pi, pj, store);
            }
            row_barrier.arrive_and_wait();  // end-of-row synchronization
        }
        instances.fetch_add(my_instances, std::memory_order_relaxed);
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();

    ExecStats stats;
    stats.instances = instances.load();
    stats.barriers = ihi - ilo + 1;  // one barrier per fused row
    stats.phases = stats.barriers;
    return stats;
}

}  // namespace lf::exec
