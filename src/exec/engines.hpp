#pragma once
// Execution engines. All engines execute every original statement instance
// exactly once over the domain; they differ in *order* and in where the
// synchronization barriers fall:
//
//   run_original        -- loop-by-loop, as written: |V| barriers per outer
//                          iteration (one after each DOALL loop).
//   run_fused_rowwise   -- the fused nest, row by row (schedule s = (1,0)):
//                          one barrier per fused row. Rows are executed
//                          left-to-right so it is also correct for
//                          LLOFRA-only plans whose rows are serial.
//   run_wavefront       -- hyperplane schedule: points grouped by t = s.p,
//                          one barrier per non-empty hyperplane.
//   run_fused_threaded  -- run_fused_rowwise with real std::threads splitting
//                          each row; requires an inner-DOALL plan. Validates
//                          the DOALL claim mechanically.
//
// Every engine returns ExecStats with the barrier count -- the quantity the
// paper's synchronization-overhead argument is about.

#include <cstdint>

#include "exec/store.hpp"
#include "ir/ast.hpp"
#include "support/domain.hpp"
#include "transform/fused_program.hpp"

namespace lf::exec {

struct ExecStats {
    std::int64_t barriers = 0;
    /// Statement instances executed.
    std::int64_t instances = 0;
    /// Parallel phases with at least one instance (equals barriers).
    std::int64_t phases = 0;
};

[[nodiscard]] ExecStats run_original(const ir::Program& p, const Domain& dom, ArrayStore& store);

[[nodiscard]] ExecStats run_fused_rowwise(const transform::FusedProgram& fp, const Domain& dom,
                                          ArrayStore& store);

[[nodiscard]] ExecStats run_wavefront(const transform::FusedProgram& fp, const Domain& dom,
                                      ArrayStore& store);

/// Threaded rowwise execution. Throws lf::Error unless fp.level is
/// InnerDoall (rows of other plans are not safe to split) or if the store
/// has tracing/order-checking enabled (those are single-threaded modes).
[[nodiscard]] ExecStats run_fused_threaded(const transform::FusedProgram& fp, const Domain& dom,
                                           ArrayStore& store, int num_threads);

/// Sequential simulation of block-partitioned execution: each fused row is
/// split into `processors` contiguous j-blocks executed block-by-block
/// (processor 0's block first, then 1's, ...). Semantically identical to
/// run_fused_rowwise; its purpose is the *trace*: with tracing enabled,
/// every access is tagged with its owning processor, so private per-
/// processor caches can be simulated (sim::simulate_private_caches).
[[nodiscard]] ExecStats run_fused_blocked(const transform::FusedProgram& fp, const Domain& dom,
                                          ArrayStore& store, int processors);

/// Block-partitioned simulation of the *original* schedule (per loop, per
/// row, block by block), for the same purpose.
[[nodiscard]] ExecStats run_original_blocked(const ir::Program& p, const Domain& dom,
                                             ArrayStore& store, int processors);

/// Executes the *peeled* program structure emitted by
/// transform::emit_fused_peeled (paper Figure 12(b)): prologue rows as
/// stand-alone per-body DOALL loops, a steady state of per-row j-peels plus
/// one fused DOALL core, then epilogue rows. Rows whose steady-state ranges
/// degenerate (domains smaller than the retiming spread) fall back to
/// per-body loops. Semantically validates the generated code shape, and
/// reports the barrier count that code shape actually pays.
/// Requires an inner-DOALL plan.
[[nodiscard]] ExecStats run_fused_peeled(const transform::FusedProgram& fp, const Domain& dom,
                                         ArrayStore& store);

}  // namespace lf::exec
