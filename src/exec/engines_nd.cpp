#include "exec/engines_nd.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/dependence.hpp"
#include "support/diagnostics.hpp"

namespace lf::exec {

std::optional<std::vector<int>> md_body_order(const MldgN& retimed) {
    const int n = retimed.num_nodes();
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    for (const auto& e : retimed.edges()) {
        if (e.from == e.to) continue;
        const bool same_point = std::any_of(e.vectors.begin(), e.vectors.end(),
                                            [](const VecN& d) { return d.is_zero(); });
        if (!same_point) continue;
        succ[static_cast<std::size_t>(e.from)].push_back(e.to);
        ++indegree[static_cast<std::size_t>(e.to)];
    }
    std::vector<int> order;
    std::vector<bool> done(static_cast<std::size_t>(n), false);
    for (int step = 0; step < n; ++step) {
        int pick = -1;
        for (int v = 0; v < n; ++v) {
            if (!done[static_cast<std::size_t>(v)] && indegree[static_cast<std::size_t>(v)] == 0) {
                pick = v;
                break;
            }
        }
        if (pick < 0) return std::nullopt;
        done[static_cast<std::size_t>(pick)] = true;
        order.push_back(pick);
        for (int w : succ[static_cast<std::size_t>(pick)]) --indegree[static_cast<std::size_t>(w)];
    }
    return order;
}

namespace {

std::int64_t run_loop_instance(const front::BasicLoopNest<VecN>& loop, const VecN& q,
                               MdArrayStore& store) {
    for (const front::BasicStatement<VecN>& s : loop.body) {
        const double value = s.value->eval(store, q);
        store.store(s.target.array, s.target.cell(q), value);
    }
    return static_cast<std::int64_t>(loop.body.size());
}

}  // namespace

MdExecStats run_original_md(const front::BasicProgram<VecN>& p, const MdDomain& dom,
                            MdArrayStore& store) {
    MdExecStats stats;
    std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim - 1), 0);
    std::vector<std::int64_t> hi(dom.ext.begin(), dom.ext.end() - 1);
    const std::int64_t inner_hi = dom.ext.back();
    for_each_point_nd(lo, hi, [&](const VecN& prefix) {
        for (const front::BasicLoopNest<VecN>& loop : p.loops) {
            VecN q(p.dim);
            for (int k = 0; k < p.dim - 1; ++k) q[k] = prefix[k];
            for (std::int64_t j = 0; j <= inner_hi; ++j) {
                q[p.dim - 1] = j;
                stats.instances += run_loop_instance(loop, q, store);
            }
            ++stats.barriers;
        }
    });
    return stats;
}

MdExecStats run_wavefront_md(const front::BasicProgram<VecN>& p, const NdFusionPlan& plan,
                             const MdDomain& dom, MdArrayStore& store) {
    MdExecStats stats;
    check(static_cast<int>(p.loops.size()) == plan.retimed.num_nodes(),
          "run_wavefront_md: plan/program mismatch");
    const auto order = md_body_order(plan.retimed);
    check(order.has_value(), "run_wavefront_md: zero-dependence cycle in the retimed graph");

    // Fused point bounding box: body u active at p with p + r(u) in domain.
    std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim));
    std::vector<std::int64_t> hi(static_cast<std::size_t>(p.dim));
    for (int k = 0; k < p.dim; ++k) {
        std::int64_t l = -plan.retiming.of(0)[k];
        std::int64_t h = dom.ext[static_cast<std::size_t>(k)] - plan.retiming.of(0)[k];
        for (int v = 1; v < plan.retimed.num_nodes(); ++v) {
            l = std::min(l, -plan.retiming.of(v)[k]);
            h = std::max(h, dom.ext[static_cast<std::size_t>(k)] - plan.retiming.of(v)[k]);
        }
        lo[static_cast<std::size_t>(k)] = l;
        hi[static_cast<std::size_t>(k)] = h;
    }

    // Bucket active fused points by t = s . p.
    std::map<std::int64_t, std::vector<VecN>> buckets;
    for_each_point_nd(lo, hi, [&](const VecN& point) {
        bool active = false;
        for (int v = 0; v < plan.retimed.num_nodes() && !active; ++v) {
            active = dom.contains(point + plan.retiming.of(v));
        }
        if (active) buckets[plan.schedule.dot(point)].push_back(point);
    });

    for (const auto& [t, points] : buckets) {
        for (const VecN& point : points) {
            for (const int v : *order) {
                const VecN q = point + plan.retiming.of(v);
                if (dom.contains(q)) {
                    stats.instances +=
                        run_loop_instance(p.loops[static_cast<std::size_t>(v)], q, store);
                }
            }
        }
        ++stats.barriers;
    }
    return stats;
}

std::optional<std::string> first_difference_md(const front::BasicProgram<VecN>& p,
                                               const MdDomain& dom, const MdArrayStore& a,
                                               const MdArrayStore& b) {
    const std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim), 0);
    const std::vector<std::int64_t>& hi = dom.ext;
    std::optional<std::string> diff;
    for (const std::string& name : p.written_arrays()) {
        for_each_point_nd(lo, hi, [&](const VecN& cell) {
            if (diff.has_value()) return;
            const double va = a.load(name, cell);
            const double vb = b.load(name, cell);
            if (va != vb) {
                std::ostringstream os;
                os << name << cell.str() << ": " << va << " != " << vb;
                diff = os.str();
            }
        });
        if (diff.has_value()) break;
    }
    return diff;
}

MdVerification verify_md_fusion(const front::BasicProgram<VecN>& p, const MdDomain& dom) {
    const MldgN g = analysis::build_mldg_nd(p);
    const NdFusionPlan plan = plan_fusion_nd(g);

    MdArrayStore golden(p, dom);
    MdArrayStore subject(p, dom);

    MdVerification result;
    result.original = run_original_md(p, dom, golden);
    result.transformed = run_wavefront_md(p, plan, dom, subject);

    const auto diff = first_difference_md(p, dom, golden, subject);
    result.equivalent = !diff.has_value();
    result.detail = diff.value_or("");
    return result;
}

}  // namespace lf::exec
