#pragma once
// Execution engines for the depth-d program model, with golden verification:
// the reference (loop-by-loop) schedule, and the retimed + fused wavefront
// schedule over hyperplanes of an n-D strict schedule vector. Mirrors
// exec/engines.hpp + exec/equivalence.hpp for the VecN instantiation of the
// front end.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/store_nd.hpp"
#include "front/ast.hpp"
#include "fusion/multidim.hpp"

namespace lf::exec {

/// Topological order of the zero-vector dependence subgraph of a *retimed*
/// MldgN (ties by node id / program order); nullopt when cyclic. Public so
/// code generators can reproduce the executor's body order.
[[nodiscard]] std::optional<std::vector<int>> md_body_order(const MldgN& retimed);

struct MdExecStats {
    std::int64_t barriers = 0;
    std::int64_t instances = 0;
};

/// Reference schedule: sequential sweep of the prefix levels; per prefix
/// point, each loop's DOALL sweep ends in a barrier.
[[nodiscard]] MdExecStats run_original_md(const front::BasicProgram<VecN>& p, const MdDomain& dom,
                                          MdArrayStore& store);

/// Retimed + fused wavefront schedule: all bodies at fused point q + r(u),
/// points grouped by t = s . p (one barrier per non-empty hyperplane),
/// bodies at one point in the (0..0)-dependence topological order.
[[nodiscard]] MdExecStats run_wavefront_md(const front::BasicProgram<VecN>& p,
                                           const NdFusionPlan& plan, const MdDomain& dom,
                                           MdArrayStore& store);

/// First difference between the two stores over the domain cells of the
/// arrays written by `p` (halo cells are initialization, not results);
/// nullopt when identical.
[[nodiscard]] std::optional<std::string> first_difference_md(const front::BasicProgram<VecN>& p,
                                                             const MdDomain& dom,
                                                             const MdArrayStore& a,
                                                             const MdArrayStore& b);

struct MdVerification {
    bool equivalent = false;
    std::string detail;
    MdExecStats original;
    MdExecStats transformed;
};

/// Plans fusion for `p` (plan_fusion_nd), executes both schedules and
/// compares every written cell over the domain bit-for-bit.
[[nodiscard]] MdVerification verify_md_fusion(const front::BasicProgram<VecN>& p,
                                              const MdDomain& dom);

}  // namespace lf::exec
