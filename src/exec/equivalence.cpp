#include "exec/equivalence.hpp"

#include <sstream>

#include "analysis/dependence.hpp"
#include "support/diagnostics.hpp"
#include "transform/fused_program.hpp"

namespace lf::exec {

std::optional<std::string> first_difference(const ir::Program& p, const Domain& dom,
                                            const ArrayStore& a, const ArrayStore& b) {
    for (const std::string& name : p.written_arrays()) {
        const Array2D& aa = a.array(name);
        const Array2D& bb = b.array(name);
        for (std::int64_t i = 0; i <= dom.n; ++i) {
            for (std::int64_t j = 0; j <= dom.m; ++j) {
                // Written cells may lie slightly outside the domain rectangle
                // (constant target offsets); the domain cells are the
                // canonical result region and cover every produced value
                // consumed inside the domain.
                if (!aa.in_bounds(i, j) || !bb.in_bounds(i, j)) continue;
                if (aa.at(i, j) != bb.at(i, j)) {
                    std::ostringstream os;
                    os << name << '[' << i << "][" << j << "]: " << aa.at(i, j)
                       << " != " << bb.at(i, j);
                    return os.str();
                }
            }
        }
    }
    return std::nullopt;
}

VerificationResult verify_fusion(const ir::Program& p, const Domain& dom, EngineKind engine,
                                 int num_threads) {
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    const transform::FusedProgram fp = transform::fuse_program(p, plan);

    // Halo must absorb subscript offsets; retiming only moves *when* an
    // instance runs, not *which* cells it touches, so the program's own
    // max offset suffices for both runs.
    ArrayStore golden(p, dom);
    ArrayStore subject(p, dom);

    VerificationResult result;
    result.original = run_original(p, dom, golden);
    switch (engine) {
        case EngineKind::FusedRowwise:
            // Sequential lexicographic order respects every dependence
            // >= (0,0), so the rowwise engine is valid for all plan levels
            // (rows are only *parallel* for inner-DOALL plans).
            result.transformed = run_fused_rowwise(fp, dom, subject);
            break;
        case EngineKind::Peeled:
            result.transformed = plan.level == ParallelismLevel::InnerDoall
                                     ? run_fused_peeled(fp, dom, subject)
                                     : run_wavefront(fp, dom, subject);
            break;
        case EngineKind::Wavefront:
            result.transformed = run_wavefront(fp, dom, subject);
            break;
        case EngineKind::Threaded:
            result.transformed = plan.level == ParallelismLevel::InnerDoall
                                     ? run_fused_threaded(fp, dom, subject, num_threads)
                                     : run_wavefront(fp, dom, subject);
            break;
    }

    const auto diff = first_difference(p, dom, golden, subject);
    result.equivalent = !diff.has_value();
    result.detail = diff.value_or("");
    return result;
}

}  // namespace lf::exec
