#pragma once
// Golden-output equivalence: the transformed program must compute exactly
// the same array contents as the original, bit for bit (every engine
// executes the same floating-point operations per instance, so exact
// equality is the right check).

#include <optional>
#include <string>

#include "exec/engines.hpp"
#include "fusion/driver.hpp"
#include "ir/ast.hpp"

namespace lf::exec {

/// First difference between the two stores over the domain cells of the
/// arrays written by `p` (halo cells are initialization, not results);
/// nullopt when identical.
[[nodiscard]] std::optional<std::string> first_difference(const ir::Program& p, const Domain& dom,
                                                          const ArrayStore& a,
                                                          const ArrayStore& b);

struct VerificationResult {
    bool equivalent = false;
    std::string detail;  // mismatch description, empty when equivalent
    ExecStats original;
    ExecStats transformed;
};

enum class EngineKind { FusedRowwise, Peeled, Wavefront, Threaded };

/// Plans fusion for `p`, executes original and transformed forms on
/// independently initialized stores, and compares results.
[[nodiscard]] VerificationResult verify_fusion(const ir::Program& p, const Domain& dom,
                                               EngineKind engine, int num_threads = 2);

}  // namespace lf::exec
