#include "exec/native.hpp"

#include <chrono>
#include <cstring>

#include "support/cemit.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"

namespace lf::exec {

namespace {

/// Shared compile -> sandbox -> differential-compare tail. `expected` is the
/// interpreter-computed checksum string ("%.17g") the kernel's original-form
/// checksum must reproduce exactly. With `params.threads > 1` the ABI v2
/// parallel entry runs in a second sandboxed worker and must agree with
/// both the serial kernel (bit-for-bit) and the interpreter before the
/// kernel is admitted as Verified.
NativeCheck check_kernel_source(const std::string& c_source, const std::string& expected,
                                KernelCompiler& compiler, const SandboxLimits& limits,
                                const KernelParams& params) {
    NativeCheck nc;
    nc.source_bytes = static_cast<std::int64_t>(c_source.size());
    if (!compiler.available()) {
        nc.outcome = NativeOutcome::Unavailable;
        nc.detail = "compiler '" + compiler.options().cc + "' not found on PATH";
        return nc;
    }

    const auto compile_t0 = std::chrono::steady_clock::now();
    const Result<CompiledKernel> compiled = compiler.compile(c_source);
    nc.compile_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - compile_t0)
                        .count();
    if (!compiled.ok()) {
        nc.outcome = NativeOutcome::CompileFailed;
        nc.detail = compiled.status().message();
        return nc;
    }
    nc.from_cache = compiled.value().from_cache;

    const RunOutcome run = run_kernel(compiled.value().path, limits);
    switch (run.state) {
        case RunState::Completed:
            break;
        case RunState::Crashed:
            nc.outcome = NativeOutcome::Crashed;
            nc.detail = run.detail;
            return nc;
        case RunState::Timeout:
            nc.outcome = NativeOutcome::Timeout;
            nc.detail = run.detail;
            return nc;
        case RunState::SpawnFailed:
        case RunState::LoadFailed:
        case RunState::Garbled:
        case RunState::ExitNonzero:
            nc.outcome = NativeOutcome::Error;
            nc.detail = to_string(run.state) + ": " + run.detail;
            return nc;
    }

    nc.ns_original = run.result.ns_original;
    nc.ns_fused = run.result.ns_fused;
    if (run.result.mismatches != 0) {
        nc.outcome = NativeOutcome::Mismatch;
        nc.detail = "fused form diverged from original in " +
                    std::to_string(run.result.mismatches) + " cell(s)";
        return nc;
    }
    const std::string native = cemit::format_checksum(run.result.checksum_original);
    if (native != expected) {
        nc.outcome = NativeOutcome::Mismatch;
        nc.detail =
            "native checksum " + native + " != interpreter checksum " + expected;
        return nc;
    }

    // ---- ABI v2 admission: the parallel entry, same differential bar. ----
    if (params.threads > 1) {
        const RunOutcome par = run_kernel_par(compiled.value().path, params, limits);
        const std::string who =
            "parallel (" + std::to_string(params.threads) + " threads): ";
        switch (par.state) {
            case RunState::Completed:
                break;
            case RunState::Crashed:
                nc.outcome = NativeOutcome::Crashed;
                nc.detail = who + par.detail;
                return nc;
            case RunState::Timeout:
                nc.outcome = NativeOutcome::Timeout;
                nc.detail = who + par.detail;
                return nc;
            case RunState::SpawnFailed:
            case RunState::LoadFailed:
            case RunState::Garbled:
            case RunState::ExitNonzero:
                nc.outcome = NativeOutcome::Error;
                nc.detail = who + to_string(par.state) + ": " + par.detail;
                return nc;
        }
        if (par.result.mismatches != 0) {
            nc.outcome = NativeOutcome::Mismatch;
            nc.detail = who + "fused form diverged from original in " +
                        std::to_string(par.result.mismatches) + " cell(s)";
            return nc;
        }
        // Thread-count invariance: the parallel fused checksum must equal
        // the serial kernel's at the bit level (memcmp, not an epsilon --
        // the lanes compute the very same FP operations in the same order
        // per cell, only the cell->lane assignment differs).
        if (std::memcmp(&par.result.checksum_fused, &run.result.checksum_fused,
                        sizeof(double)) != 0) {
            nc.outcome = NativeOutcome::Mismatch;
            nc.detail = who + "fused checksum " +
                        cemit::format_checksum(par.result.checksum_fused) +
                        " != serial kernel checksum " +
                        cemit::format_checksum(run.result.checksum_fused) +
                        " (thread count changed the result)";
            return nc;
        }
        const std::string par_native = cemit::format_checksum(par.result.checksum_original);
        if (par_native != expected) {
            nc.outcome = NativeOutcome::Mismatch;
            nc.detail = who + "native checksum " + par_native +
                        " != interpreter checksum " + expected;
            return nc;
        }
        nc.par_threads = params.threads;
        nc.par_tile = params.tile;
        nc.ns_fused_par = par.result.ns_fused;
    }
    nc.outcome = NativeOutcome::Verified;
    return nc;
}

}  // namespace

std::string to_string(NativeOutcome outcome) {
    switch (outcome) {
        case NativeOutcome::NotRun: return "not-run";
        case NativeOutcome::Verified: return "verified";
        case NativeOutcome::Unavailable: return "unavailable";
        case NativeOutcome::Skipped: return "skipped";
        case NativeOutcome::CompileFailed: return "compile-failed";
        case NativeOutcome::Crashed: return "crashed";
        case NativeOutcome::Timeout: return "timeout";
        case NativeOutcome::Mismatch: return "mismatch";
        case NativeOutcome::Error: return "error";
    }
    return "unknown";
}

bool is_native_failure(NativeOutcome outcome) {
    switch (outcome) {
        case NativeOutcome::CompileFailed:
        case NativeOutcome::Crashed:
        case NativeOutcome::Timeout:
        case NativeOutcome::Mismatch:
        case NativeOutcome::Error:
            return true;
        case NativeOutcome::NotRun:
        case NativeOutcome::Verified:
        case NativeOutcome::Unavailable:
        case NativeOutcome::Skipped:
            return false;
    }
    return false;
}

NativeCheck native_check(const ir::Program& p, const FusionPlan& plan, const Domain& dom,
                         KernelCompiler& compiler, const SandboxLimits& limits,
                         const KernelParams& params) {
    NativeCheck nc;
    if (plan.level == ParallelismLevel::Unfused ||
        plan.algorithm == AlgorithmUsed::DistributionFallback) {
        nc.outcome = NativeOutcome::Skipped;
        nc.detail = "plan is the unfused distribution fallback; no fused native form";
        return nc;
    }
    std::string source;
    std::string expected;
    try {
        const transform::FusedProgram fp = transform::fuse_program(p, plan);
        source = transform::emit_c_kernel_library(p, fp, dom);
        expected = transform::expected_c_checksum(p, dom);
    } catch (const Error& e) {
        nc.outcome = NativeOutcome::Error;
        nc.detail = std::string("kernel emission failed: ") + e.what();
        return nc;
    }
    return check_kernel_source(source, expected, compiler, limits, params);
}

NativeCheck native_check_nd(const front::BasicProgram<VecN>& p, const NdFusionPlan& plan,
                            const MdDomain& dom, KernelCompiler& compiler,
                            const SandboxLimits& limits, const KernelParams& params) {
    NativeCheck nc;
    std::string source;
    std::string expected;
    try {
        source = transform::emit_md_c_kernel_library(p, plan, dom);
        expected = transform::expected_md_c_checksum(p, dom);
    } catch (const Error& e) {
        nc.outcome = NativeOutcome::Error;
        nc.detail = std::string("kernel emission failed: ") + e.what();
        return nc;
    }
    return check_kernel_source(source, expected, compiler, limits, params);
}

}  // namespace lf::exec
