#include "exec/native.hpp"

#include "support/cemit.hpp"
#include "support/diagnostics.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"

namespace lf::exec {

namespace {

/// Shared compile -> sandbox -> differential-compare tail. `expected` is the
/// interpreter-computed checksum string ("%.17g") the kernel's original-form
/// checksum must reproduce exactly.
NativeCheck check_kernel_source(const std::string& c_source, const std::string& expected,
                                KernelCompiler& compiler, const SandboxLimits& limits) {
    NativeCheck nc;
    if (!KernelCompiler::compiler_available(compiler.options().cc)) {
        nc.outcome = NativeOutcome::Unavailable;
        nc.detail = "compiler '" + compiler.options().cc + "' not found on PATH";
        return nc;
    }

    const Result<CompiledKernel> compiled = compiler.compile(c_source);
    if (!compiled.ok()) {
        nc.outcome = NativeOutcome::CompileFailed;
        nc.detail = compiled.status().message();
        return nc;
    }
    nc.from_cache = compiled.value().from_cache;

    const RunOutcome run = run_kernel(compiled.value().path, limits);
    switch (run.state) {
        case RunState::Completed:
            break;
        case RunState::Crashed:
            nc.outcome = NativeOutcome::Crashed;
            nc.detail = run.detail;
            return nc;
        case RunState::Timeout:
            nc.outcome = NativeOutcome::Timeout;
            nc.detail = run.detail;
            return nc;
        case RunState::SpawnFailed:
        case RunState::LoadFailed:
        case RunState::Garbled:
        case RunState::ExitNonzero:
            nc.outcome = NativeOutcome::Error;
            nc.detail = to_string(run.state) + ": " + run.detail;
            return nc;
    }

    nc.ns_original = run.result.ns_original;
    nc.ns_fused = run.result.ns_fused;
    if (run.result.mismatches != 0) {
        nc.outcome = NativeOutcome::Mismatch;
        nc.detail = "fused form diverged from original in " +
                    std::to_string(run.result.mismatches) + " cell(s)";
        return nc;
    }
    const std::string native = cemit::format_checksum(run.result.checksum_original);
    if (native != expected) {
        nc.outcome = NativeOutcome::Mismatch;
        nc.detail =
            "native checksum " + native + " != interpreter checksum " + expected;
        return nc;
    }
    nc.outcome = NativeOutcome::Verified;
    return nc;
}

}  // namespace

std::string to_string(NativeOutcome outcome) {
    switch (outcome) {
        case NativeOutcome::NotRun: return "not-run";
        case NativeOutcome::Verified: return "verified";
        case NativeOutcome::Unavailable: return "unavailable";
        case NativeOutcome::Skipped: return "skipped";
        case NativeOutcome::CompileFailed: return "compile-failed";
        case NativeOutcome::Crashed: return "crashed";
        case NativeOutcome::Timeout: return "timeout";
        case NativeOutcome::Mismatch: return "mismatch";
        case NativeOutcome::Error: return "error";
    }
    return "unknown";
}

bool is_native_failure(NativeOutcome outcome) {
    switch (outcome) {
        case NativeOutcome::CompileFailed:
        case NativeOutcome::Crashed:
        case NativeOutcome::Timeout:
        case NativeOutcome::Mismatch:
        case NativeOutcome::Error:
            return true;
        case NativeOutcome::NotRun:
        case NativeOutcome::Verified:
        case NativeOutcome::Unavailable:
        case NativeOutcome::Skipped:
            return false;
    }
    return false;
}

NativeCheck native_check(const ir::Program& p, const FusionPlan& plan, const Domain& dom,
                         KernelCompiler& compiler, const SandboxLimits& limits) {
    NativeCheck nc;
    if (plan.level == ParallelismLevel::Unfused ||
        plan.algorithm == AlgorithmUsed::DistributionFallback) {
        nc.outcome = NativeOutcome::Skipped;
        nc.detail = "plan is the unfused distribution fallback; no fused native form";
        return nc;
    }
    std::string source;
    std::string expected;
    try {
        const transform::FusedProgram fp = transform::fuse_program(p, plan);
        source = transform::emit_c_kernel_library(p, fp, dom);
        expected = transform::expected_c_checksum(p, dom);
    } catch (const Error& e) {
        nc.outcome = NativeOutcome::Error;
        nc.detail = std::string("kernel emission failed: ") + e.what();
        return nc;
    }
    return check_kernel_source(source, expected, compiler, limits);
}

NativeCheck native_check_nd(const front::BasicProgram<VecN>& p, const NdFusionPlan& plan,
                            const MdDomain& dom, KernelCompiler& compiler,
                            const SandboxLimits& limits) {
    NativeCheck nc;
    std::string source;
    std::string expected;
    try {
        source = transform::emit_md_c_kernel_library(p, plan, dom);
        expected = transform::expected_md_c_checksum(p, dom);
    } catch (const Error& e) {
        nc.outcome = NativeOutcome::Error;
        nc.detail = std::string("kernel emission failed: ") + e.what();
        return nc;
    }
    return check_kernel_source(source, expected, compiler, limits);
}

}  // namespace lf::exec
