#pragma once
// Differential native verification: the bridge between the planner and the
// crash-contained execution backend. native_check() emits the kernel-library
// C for a plan, compiles it through KernelCompiler, runs it in run_kernel()'s
// forked sandbox, and only reports Verified when
//
//   * the kernel completed (no crash, no watchdog kill, clean result frame),
//   * the fused form matched the original bit-for-bit inside the kernel
//     (mismatches == 0), and
//   * the kernel's original-form checksum equals the *interpreter's*
//     checksum computed host-side (expected_c_checksum) -- so native
//     execution is differential-checked against the existing engines, not
//     merely self-consistent.
//
// Everything else is a typed, contained outcome: the caller (svc admission,
// examples/emit_c --run, tools/exec_drill.sh) quarantines and moves on; no
// kernel behavior can take the caller down.

#include <cstdint>
#include <string>

#include "exec/compile.hpp"
#include "exec/runner.hpp"
#include "exec/store_nd.hpp"
#include "front/ast.hpp"
#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"
#include "ir/ast.hpp"
#include "support/domain.hpp"
#include "transform/fused_program.hpp"

namespace lf::exec {

enum class NativeOutcome {
    NotRun,         // native checking disabled / not attempted
    Verified,       // ran natively; fused == original == interpreter
    Unavailable,    // no C compiler on PATH (graceful skip, not a failure)
    Skipped,        // plan has no fused native form (unfused fallback)
    CompileFailed,  // cc rejected the emitted kernel (or exec.compile fired)
    Crashed,        // sandbox worker died on a signal -- contained
    Timeout,        // watchdog / RLIMIT_CPU killed the worker -- contained
    Mismatch,       // kernel ran but outputs diverged (fused vs original,
                    // or native vs interpreter checksum)
    Error,          // spawn failure, torn result stream, nonzero kernel rc
};
[[nodiscard]] std::string to_string(NativeOutcome outcome);

/// True for the outcomes that should quarantine a job (as opposed to
/// Verified / the two graceful skips).
[[nodiscard]] bool is_native_failure(NativeOutcome outcome);

struct NativeCheck {
    NativeOutcome outcome = NativeOutcome::NotRun;
    std::string detail;
    /// Kernel-reported wall times (ns) when the kernel completed.
    std::int64_t ns_original = 0;
    std::int64_t ns_fused = 0;
    /// The compiled object was served from the content-addressed cache.
    bool from_cache = false;
    /// ABI v2 admission record: lanes the parallel entry verified with
    /// (0 = no parallel run was requested), its tile parameter, and the
    /// parallel fused wall time. Verified with par_threads > 0 means the
    /// parallel output matched the serial kernel bit-for-bit AND the
    /// interpreter checksum -- thread count proven result-invariant.
    std::int32_t par_threads = 0;
    std::int32_t par_tile = 0;
    std::int64_t ns_fused_par = 0;
    /// Code-size observables for the plan-policy layer: bytes of the emitted
    /// C translation unit handed to the compiler (0 until emission
    /// succeeded) and the wall time of the compiler.compile() call (0 when
    /// compilation was skipped; cache hits still time the lookup).
    std::int64_t source_bytes = 0;
    std::int64_t compile_ns = 0;

    [[nodiscard]] bool verified() const { return outcome == NativeOutcome::Verified; }
};

/// Compile-and-run differential check for a 2-D plan. Never throws.
/// `params.threads > 1` additionally runs the ABI v2 parallel entry in its
/// own sandboxed worker and only reports Verified when the parallel fused
/// output is bit-identical to both the serial kernel and the interpreter.
[[nodiscard]] NativeCheck native_check(const ir::Program& p, const FusionPlan& plan,
                                       const Domain& dom, KernelCompiler& compiler,
                                       const SandboxLimits& limits = {},
                                       const KernelParams& params = {});

/// Same for a depth-d plan (fused lexicographic scan vs original schedule).
[[nodiscard]] NativeCheck native_check_nd(const front::BasicProgram<VecN>& p,
                                          const NdFusionPlan& plan, const MdDomain& dom,
                                          KernelCompiler& compiler,
                                          const SandboxLimits& limits = {},
                                          const KernelParams& params = {});

}  // namespace lf::exec
