#include "exec/runner.hpp"

#include <dlfcn.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "support/faultpoint.hpp"

namespace lf::exec {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const char* data, std::size_t len) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t k = 0; k < len; ++k) {
        h ^= static_cast<unsigned char>(data[k]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void put_le16(char* p, std::uint16_t v) {
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
}

void put_le32(char* p, std::uint32_t v) {
    for (int k = 0; k < 4; ++k) p[k] = static_cast<char>((v >> (8 * k)) & 0xff);
}

void put_le64(char* p, std::uint64_t v) {
    for (int k = 0; k < 8; ++k) p[k] = static_cast<char>((v >> (8 * k)) & 0xff);
}

std::uint16_t get_le16(const char* p) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_le32(const char* p) {
    std::uint32_t v = 0;
    for (int k = 3; k >= 0; --k) v = (v << 8) | static_cast<unsigned char>(p[k]);
    return v;
}

std::uint64_t get_le64(const char* p) {
    std::uint64_t v = 0;
    for (int k = 7; k >= 0; --k) v = (v << 8) | static_cast<unsigned char>(p[k]);
    return v;
}

/// Builds one frame into `buf` (capacity `cap`); returns the frame size or
/// 0 when it does not fit. No allocation -- callable from the forked worker.
std::size_t encode_frame_into(char* buf, std::size_t cap, std::uint16_t type,
                              const char* payload, std::size_t len) {
    const std::size_t total = kPipeHeaderSize + len + kPipeTrailerSize;
    if (cap < total) return 0;
    std::memcpy(buf, kPipeMagic, sizeof(kPipeMagic));
    put_le16(buf + 4, kPipeVersion);
    put_le16(buf + 6, type);
    put_le32(buf + 8, static_cast<std::uint32_t>(len));
    std::memcpy(buf + kPipeHeaderSize, payload, len);
    put_le64(buf + kPipeHeaderSize + len, fnv1a(payload, len));
    return total;
}

/// write(2) everything; EINTR-safe. Worker-side (async-signal-safe).
bool write_all(int fd, const char* data, std::size_t len) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

// -------------------------------------------------------------------------
// Worker side. Everything below runs in the forked child of a potentially
// multithreaded parent, so it sticks to async-signal-safe calls plus
// dlopen/dlsym (a documented, practical exception: glibc's loader takes no
// locks a single-threaded child could deadlock on in this sequence).

enum class ChildMode { None, Crash, Spin, Oom };

void apply_rlimit(int resource, std::int64_t value) {
    if (value <= 0) return;
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(value);
    rl.rlim_max = static_cast<rlim_t>(value);
    (void)::setrlimit(resource, &rl);
}

void send_error(int wfd, const char* a, const char* b) {
    char text[kMaxErrorPayload];
    text[0] = '\0';
    std::size_t len = 0;
    for (const char* part : {a, b}) {
        if (part == nullptr) continue;
        const std::size_t plen = std::strlen(part);
        const std::size_t room = sizeof(text) - 1 - len;
        const std::size_t take = plen < room ? plen : room;
        std::memcpy(text + len, part, take);
        len += take;
    }
    text[len] = '\0';
    char frame[kPipeHeaderSize + kMaxErrorPayload + kPipeTrailerSize];
    const std::size_t n = encode_frame_into(frame, sizeof(frame), kPipeTypeError, text, len);
    if (n > 0) (void)write_all(wfd, frame, n);
}

/// `params == nullptr` selects the serial ABI v1 entry (lf_kernel_run);
/// otherwise the v2 entry lf_kernel_run_par runs with `*params`.
[[noreturn]] void child_main(int wfd, const char* so_path, ChildMode mode,
                             const SandboxLimits& limits, const KernelParams* params) {
    apply_rlimit(RLIMIT_CPU, limits.cpu_seconds);
    apply_rlimit(RLIMIT_AS, limits.address_space_bytes);
    apply_rlimit(RLIMIT_FSIZE, limits.file_size_bytes);
    apply_rlimit(RLIMIT_CORE, 0);
    {
        // RLIMIT_CORE = 0 needs an explicit set (apply_rlimit skips <= 0).
        struct rlimit rl{0, 0};
        (void)::setrlimit(RLIMIT_CORE, &rl);
    }

    // Drill modes act before the object is even opened, so crash / spin /
    // OOM containment is exercisable with a bogus path and no compiler.
    switch (mode) {
        case ChildMode::Crash:
            (void)::raise(SIGSEGV);
            ::_exit(99);  // unreachable unless SIGSEGV is blocked
        case ChildMode::Spin: {
            volatile int spin = 1;
            while (spin != 0) {
            }
            ::_exit(99);
        }
        case ChildMode::Oom: {
            // Allocate-and-touch until the address-space limit bites, then
            // die loudly: exactly what a leaking kernel would do.
            for (;;) {
                void* block = std::malloc(std::size_t{16} << 20);
                if (block == nullptr) ::abort();
                std::memset(block, 0xab, std::size_t{16} << 20);
            }
        }
        case ChildMode::None:
            break;
    }

    void* handle = ::dlopen(so_path, RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        send_error(wfd, "dlopen failed: ", ::dlerror());
        ::_exit(3);
    }
    using KernelFn = int (*)(KernelResult*);
    using KernelParFn = int (*)(const KernelParams*, KernelResult*);
    KernelResult result;
    int rc = 0;
    if (params == nullptr) {
        // The object-pointer/function-pointer cast is how dlsym works;
        // reinterpret_cast keeps the diagnostic set quiet across compilers.
        KernelFn fn = reinterpret_cast<KernelFn>(::dlsym(handle, "lf_kernel_run"));
        if (fn == nullptr) {
            send_error(wfd, "dlsym(lf_kernel_run) failed: ", ::dlerror());
            ::_exit(4);
        }
        rc = fn(&result);
    } else {
        KernelParFn fn = reinterpret_cast<KernelParFn>(::dlsym(handle, "lf_kernel_run_par"));
        if (fn == nullptr) {
            send_error(wfd, "dlsym(lf_kernel_run_par) failed: ", ::dlerror());
            ::_exit(4);
        }
        rc = fn(params, &result);
    }
    if (rc != 0) {
        char msg[64];
        std::snprintf(msg, sizeof(msg), "kernel returned nonzero rc %d", rc);
        send_error(wfd, msg, nullptr);
        ::_exit(5);
    }
    char frame[kPipeHeaderSize + sizeof(KernelResult) + kPipeTrailerSize];
    const std::size_t n =
        encode_frame_into(frame, sizeof(frame), kPipeTypeResult,
                          reinterpret_cast<const char*>(&result), sizeof(result));
    if (n == 0 || !write_all(wfd, frame, n)) ::_exit(6);
    ::_exit(0);
}

// -------------------------------------------------------------------------
// Parent side.

std::int64_t ms_since(Clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count();
}

std::string signal_name(int sig) {
    const char* name = ::strsignal(sig);
    return name != nullptr ? std::string(name) : "signal " + std::to_string(sig);
}

/// Reaps `pid` without blocking past `budget_ms` (< 0: wait forever).
/// Returns true with `status` filled when the worker was reaped.
bool wait_with_budget(pid_t pid, std::int64_t budget_ms, int& status) {
    const Clock::time_point t0 = Clock::now();
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, budget_ms < 0 ? 0 : WNOHANG);
        if (r == pid) return true;
        if (r < 0 && errno != EINTR) return false;
        if (budget_ms >= 0) {
            if (ms_since(t0) >= budget_ms) return false;
            ::usleep(2000);
        }
    }
}

}  // namespace

std::string to_string(RunState state) {
    switch (state) {
        case RunState::Completed: return "completed";
        case RunState::SpawnFailed: return "spawn-failed";
        case RunState::LoadFailed: return "load-failed";
        case RunState::Crashed: return "crashed";
        case RunState::Timeout: return "timeout";
        case RunState::Garbled: return "garbled";
        case RunState::ExitNonzero: return "exit-nonzero";
    }
    return "unknown";
}

Status RunOutcome::status() const {
    switch (state) {
        case RunState::Completed:
            return Status();
        case RunState::Timeout:
            return Status(StatusCode::ResourceExhausted, "sandbox: " + detail);
        default:
            return Status(StatusCode::Internal, "sandbox: " + detail);
    }
}

std::string encode_result_frame(const KernelResult& r) {
    char frame[kPipeHeaderSize + sizeof(KernelResult) + kPipeTrailerSize];
    const std::size_t n =
        encode_frame_into(frame, sizeof(frame), kPipeTypeResult,
                          reinterpret_cast<const char*>(&r), sizeof(r));
    return std::string(frame, n);
}

std::string encode_error_frame(std::string_view text) {
    if (text.size() > kMaxErrorPayload) text = text.substr(0, kMaxErrorPayload);
    std::string frame(kPipeHeaderSize + text.size() + kPipeTrailerSize, '\0');
    const std::size_t n = encode_frame_into(frame.data(), frame.size(), kPipeTypeError,
                                            text.data(), text.size());
    frame.resize(n);
    return frame;
}

void PipeDecoder::feed(std::string_view bytes) {
    if (error_) return;
    // Hard ceiling: nothing legitimate exceeds one maximal frame; a worker
    // spraying bytes must not make the parent buffer unboundedly.
    constexpr std::size_t kMaxBuffered =
        2 * (kPipeHeaderSize + kMaxErrorPayload + kPipeTrailerSize);
    if (buffer_.size() + bytes.size() > kMaxBuffered) {
        (void)fail("worker wrote more bytes than any valid frame stream");
        return;
    }
    buffer_.append(bytes.data(), bytes.size());
}

PipeDecoder::Status PipeDecoder::fail(std::string detail) {
    error_ = true;
    detail_ = std::move(detail);
    buffer_.clear();
    return Status::Error;
}

PipeDecoder::Status PipeDecoder::poll() {
    if (error_) return Status::Error;
    if (!have_header_) {
        if (buffer_.size() < kPipeHeaderSize) return Status::NeedMore;
        // Validate everything in the header before buffering a body byte.
        if (std::memcmp(buffer_.data(), kPipeMagic, sizeof(kPipeMagic)) != 0) {
            return fail("bad frame magic");
        }
        const std::uint16_t version = get_le16(buffer_.data() + 4);
        if (version != kPipeVersion) {
            return fail("unknown frame version " + std::to_string(version));
        }
        const std::uint16_t type = get_le16(buffer_.data() + 6);
        const std::uint32_t len = get_le32(buffer_.data() + 8);
        if (type == kPipeTypeResult) {
            if (len != sizeof(KernelResult)) {
                return fail("result frame with payload length " + std::to_string(len) +
                            " (expected " + std::to_string(sizeof(KernelResult)) + ")");
            }
        } else if (type == kPipeTypeError) {
            if (len > kMaxErrorPayload) {
                return fail("oversized error payload: " + std::to_string(len));
            }
        } else {
            return fail("unknown frame type " + std::to_string(type));
        }
        pending_type_ = type;
        pending_len_ = len;
        have_header_ = true;
    }
    const std::size_t want = kPipeHeaderSize + pending_len_ + kPipeTrailerSize;
    if (buffer_.size() < want) return Status::NeedMore;
    const char* body = buffer_.data() + kPipeHeaderSize;
    const std::uint64_t stored = get_le64(body + pending_len_);
    if (fnv1a(body, pending_len_) != stored) {
        return fail("frame payload checksum mismatch");
    }
    type_ = pending_type_;
    payload_.assign(body, pending_len_);
    buffer_.erase(0, want);
    have_header_ = false;
    return Status::Ready;
}

namespace {

RunOutcome run_kernel_impl(const std::string& so_path, const SandboxLimits& limits,
                           const KernelParams* params) {
    RunOutcome out;

    // All fault points are consulted in the parent, pre-fork: the registry
    // mutex may be held by another service thread at fork time, and a child
    // touching it could deadlock. The child receives plain mode flags.
    if (faultpoint::triggered("exec.spawn")) {
        out.state = RunState::SpawnFailed;
        out.detail = "fault injected: exec.spawn";
        return out;
    }
    ChildMode mode = ChildMode::None;
    if (faultpoint::triggered("exec.run")) {
        mode = ChildMode::Crash;
    } else if (faultpoint::triggered("exec.timeout")) {
        mode = ChildMode::Spin;
    } else if (faultpoint::triggered("exec.oom")) {
        mode = ChildMode::Oom;
    }

    int fds[2];
    if (::pipe(fds) != 0) {
        out.state = RunState::SpawnFailed;
        out.detail = std::string("pipe failed: ") + std::strerror(errno);
        return out;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        out.state = RunState::SpawnFailed;
        out.detail = std::string("fork failed: ") + std::strerror(errno);
        return out;
    }
    if (pid == 0) {
        ::close(fds[0]);
        child_main(fds[1], so_path.c_str(), mode, limits, params);  // never returns
    }
    ::close(fds[1]);
    const int rfd = fds[0];

    // ---- Read phase, bounded by the wall-clock watchdog. ----
    const Clock::time_point t0 = Clock::now();
    PipeDecoder decoder;
    bool timed_out = false;
    bool eof = false;
    while (!eof && !timed_out) {
        int poll_ms = 100;
        if (limits.wall_ms > 0) {
            const std::int64_t remaining = limits.wall_ms - ms_since(t0);
            if (remaining <= 0) {
                timed_out = true;
                break;
            }
            poll_ms = static_cast<int>(remaining < 100 ? remaining : 100);
        }
        struct pollfd pfd{rfd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, poll_ms);
        if (pr < 0) {
            if (errno == EINTR) continue;
            break;  // poll itself broke; fall through to reap + classify
        }
        if (pr == 0) continue;  // timeout slice; loop re-checks the deadline
        char buf[4096];
        const ssize_t n = ::read(rfd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }

    // ---- Reap phase: escalate SIGTERM -> SIGKILL when the watchdog fired
    // or the worker lingers past the deadline after closing its pipe. ----
    int status = 0;
    bool reaped = false;
    if (!timed_out) {
        std::int64_t budget = -1;
        if (limits.wall_ms > 0) {
            budget = limits.wall_ms - ms_since(t0);
            if (budget < 0) budget = 0;
        }
        reaped = wait_with_budget(pid, budget, status);
        if (!reaped) timed_out = true;
    }
    if (timed_out && !reaped) {
        (void)::kill(pid, SIGTERM);
        reaped = wait_with_budget(pid, limits.term_grace_ms > 0 ? limits.term_grace_ms : 0,
                                  status);
        if (!reaped) {
            (void)::kill(pid, SIGKILL);
            reaped = wait_with_budget(pid, -1, status);
        }
    }
    ::close(rfd);

    // ---- Classify. Precedence: timeout > signal death > stream defects >
    // error frame > exit code > result. ----
    if (timed_out) {
        out.state = RunState::Timeout;
        out.signal = reaped && WIFSIGNALED(status) ? WTERMSIG(status) : SIGKILL;
        out.detail = "watchdog: wall clock exceeded " + std::to_string(limits.wall_ms) +
                     "ms; worker killed (SIGTERM, then SIGKILL)";
        return out;
    }
    if (reaped && WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGXCPU) {
            out.state = RunState::Timeout;
            out.signal = sig;
            out.detail = "RLIMIT_CPU exceeded (" + std::to_string(limits.cpu_seconds) +
                         "s); worker killed by SIGXCPU";
            return out;
        }
        out.state = RunState::Crashed;
        out.signal = sig;
        out.detail = "worker killed by signal " + std::to_string(sig) + " (" +
                     signal_name(sig) + ")";
        return out;
    }

    const PipeDecoder::Status ds = decoder.poll();
    const int exit_code = reaped && WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (ds == PipeDecoder::Status::Error) {
        out.state = RunState::Garbled;
        out.detail = "result stream corrupt: " + decoder.detail();
        return out;
    }
    if (ds == PipeDecoder::Status::Ready && decoder.type() == kPipeTypeError) {
        out.state = exit_code == 5 ? RunState::ExitNonzero : RunState::LoadFailed;
        out.detail = decoder.payload();
        return out;
    }
    if (ds == PipeDecoder::Status::Ready && decoder.type() == kPipeTypeResult) {
        if (exit_code != 0) {
            out.state = RunState::ExitNonzero;
            out.detail = "worker exited with status " + std::to_string(exit_code) +
                         " after sending a result";
            return out;
        }
        std::memcpy(&out.result, decoder.payload().data(), sizeof(out.result));
        out.state = RunState::Completed;
        return out;
    }
    if (exit_code != 0) {
        out.state = RunState::ExitNonzero;
        out.detail =
            "worker exited with status " + std::to_string(exit_code) + " (no result frame)";
        return out;
    }
    out.state = RunState::Garbled;
    out.detail = "worker exited cleanly but sent no complete result frame";
    return out;
}

}  // namespace

RunOutcome run_kernel(const std::string& so_path, const SandboxLimits& limits) {
    return run_kernel_impl(so_path, limits, nullptr);
}

RunOutcome run_kernel_par(const std::string& so_path, const KernelParams& params,
                          const SandboxLimits& limits) {
    // Scale RLIMIT_AS for the requested lanes before the fork; the kernel's
    // data budget is unchanged, only the thread-stack reservation grows.
    return run_kernel_impl(so_path, limits.for_threads(params.threads), &params);
}

}  // namespace lf::exec
