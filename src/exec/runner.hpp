#pragma once
// Sandboxed execution of compiled kernel objects (exec/compile.hpp).
//
// Running generated native code inside a long-lived service is a crash-
// containment problem: a miscompiled kernel that segfaults, spins, or eats
// memory must never take down the server. run_kernel() therefore executes
// every kernel in a forked worker process:
//
//   * rlimits before anything else: RLIMIT_CPU, RLIMIT_AS, RLIMIT_FSIZE,
//     RLIMIT_CORE = 0 (no core-dump litter);
//   * the parent arms a wall-clock watchdog: past the deadline the worker
//     gets SIGTERM, then -- after a grace period -- SIGKILL;
//   * the worker dlopen()s the cached object, dlsym()s lf_kernel_run and
//     writes the 40-byte result back over a pipe as a length-prefixed,
//     checksummed frame; any failure becomes a typed error frame;
//   * the parent decodes frames with PipeDecoder -- incremental, bounds-
//     checked and sticky-error exactly like net::FrameDecoder, so a worker
//     that dies mid-write (or scribbles garbage) can never confuse, crash
//     or stall the parent;
//   * waitpid classification maps signal deaths (SIGSEGV/SIGFPE/SIGKILL-
//     by-watchdog/...) to a typed RunOutcome whose status() is the Status
//     the service quarantines the job with. The parent always survives.
//
// Wire format (worker -> parent), little-endian:
//
//   offset  size  field
//        0     4  magic "LFEX"
//        4     2  version (kPipeVersion)
//        6     2  type (1 = result, 2 = error text)
//        8     4  payload_len (result: exactly 40; error: <= 4096)
//       12     -  payload bytes
//        +     8  FNV-1a 64 of the payload
//
// Fault points: "exec.spawn" fails the spawn itself; "exec.run",
// "exec.timeout" and "exec.oom" are *drill modes* -- the parent consults
// them before forking (the fault registry's mutex is not fork-safe) and the
// worker then crashes / spins / exhausts memory before touching the object,
// so containment is drillable without a compiler on PATH.

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.hpp"

namespace lf::exec {

// ---------------------------------------------------------------------------
// Result pipe protocol.

inline constexpr char kPipeMagic[4] = {'L', 'F', 'E', 'X'};
inline constexpr std::uint16_t kPipeVersion = 1;
inline constexpr std::size_t kPipeHeaderSize = 12;
inline constexpr std::size_t kPipeTrailerSize = 8;
inline constexpr std::uint16_t kPipeTypeResult = 1;
inline constexpr std::uint16_t kPipeTypeError = 2;
inline constexpr std::size_t kMaxErrorPayload = 4096;

/// What the emitted kernel's lf_kernel_run fills in (C: lf_kernel_result).
/// The layout is part of the kernel ABI -- five 8-byte fields, no padding.
struct KernelResult {
    double checksum_original = 0.0;
    double checksum_fused = 0.0;
    std::int64_t mismatches = 0;
    std::int64_t ns_original = 0;
    std::int64_t ns_fused = 0;
};
static_assert(sizeof(KernelResult) == 40, "kernel ABI: five 8-byte fields, no padding");

/// Runtime parameters of the ABI v2 entry point (C: lf_kernel_params,
/// passed to int lf_kernel_run_par(const lf_kernel_params*,
/// lf_kernel_result*)). One compiled object serves every configuration;
/// the thread count must never change a result bit. Layout is part of the
/// kernel ABI -- two 4-byte fields then one 8-byte field, no padding.
struct KernelParams {
    /// Lanes including the calling thread; <= 1 runs the serial scan.
    std::int32_t threads = 1;
    /// Iterations per scheduler tile; <= 0 picks ceil(round / lanes).
    std::int32_t tile = 0;
    /// Rounds with at most this many iterations run whole on lane 0.
    std::int64_t serial_cutoff = 0;
};
static_assert(sizeof(KernelParams) == 16, "kernel ABI v2: 4+4+8 bytes, no padding");

/// Serialized result / error frame (header + payload + checksum trailer).
[[nodiscard]] std::string encode_result_frame(const KernelResult& r);
[[nodiscard]] std::string encode_error_frame(std::string_view text);

/// Incremental decoder for the worker's byte stream. Mirrors
/// net::FrameDecoder: feed() buffers, poll() validates the header before
/// buffering a body, every defect is a sticky error, and arbitrary garbage
/// can never crash it or make it buffer unboundedly.
class PipeDecoder {
  public:
    enum class Status {
        NeedMore,  // no complete frame buffered yet
        Ready,     // one frame decoded; type()/payload() are valid
        Error,     // stream is malformed; detail() says how. Sticky.
    };

    /// Appends raw bytes. Bytes fed after an error are dropped.
    void feed(std::string_view bytes);

    /// Decodes the next frame if fully buffered.
    [[nodiscard]] Status poll();

    [[nodiscard]] std::uint16_t type() const { return type_; }
    [[nodiscard]] const std::string& payload() const { return payload_; }
    [[nodiscard]] const std::string& detail() const { return detail_; }
    [[nodiscard]] bool failed() const { return error_; }
    [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  private:
    Status fail(std::string detail);

    std::string buffer_;
    bool have_header_ = false;
    std::uint16_t pending_type_ = 0;
    std::size_t pending_len_ = 0;
    std::uint16_t type_ = 0;
    std::string payload_;
    bool error_ = false;
    std::string detail_;
};

// ---------------------------------------------------------------------------
// Sandbox.

struct SandboxLimits {
    /// Wall-clock watchdog; past this the worker gets SIGTERM, and
    /// `term_grace_ms` later SIGKILL. <= 0: no watchdog.
    std::int64_t wall_ms = 10'000;
    std::int64_t term_grace_ms = 500;
    /// RLIMIT_CPU (seconds; <= 0 leaves the inherited limit).
    std::int64_t cpu_seconds = 10;
    /// RLIMIT_AS (bytes; <= 0 leaves the inherited limit).
    std::int64_t address_space_bytes = std::int64_t{2} << 30;
    /// RLIMIT_FSIZE (bytes; kernels have no business writing files).
    std::int64_t file_size_bytes = 1 << 20;

    /// The limits for a worker that will run `threads` lanes: RLIMIT_AS
    /// grows by a per-thread stack/TLS allowance on top of the serial cap.
    /// A multithreaded child under the serial RLIMIT_AS fails in
    /// pthread_create (glibc reserves ~8 MiB of stack address space per
    /// thread) and would silently degrade to fewer lanes -- the cap must
    /// scale with the requested thread count, not ignore it.
    [[nodiscard]] SandboxLimits for_threads(int threads) const {
        SandboxLimits scaled = *this;
        if (scaled.address_space_bytes > 0 && threads > 1) {
            scaled.address_space_bytes +=
                static_cast<std::int64_t>(threads - 1) * kPerThreadAddressSpaceBytes;
        }
        return scaled;
    }

    /// Address-space allowance per extra lane: 8 MiB default stack + guard
    /// pages + TLS, rounded up generously (reserved, not committed).
    static constexpr std::int64_t kPerThreadAddressSpaceBytes = std::int64_t{16} << 20;
};

enum class RunState {
    Completed,    // result frame received, worker exited 0
    SpawnFailed,  // pipe/fork failed (or exec.spawn injected)
    LoadFailed,   // worker could not dlopen/dlsym the object (error frame)
    Crashed,      // worker died on a signal (SIGSEGV, SIGFPE, SIGABRT, ...)
    Timeout,      // watchdog killed the worker past wall_ms
    Garbled,      // worker exited but its result stream was torn/corrupt
    ExitNonzero,  // kernel ran but reported failure (nonzero rc)
};
[[nodiscard]] std::string to_string(RunState state);

struct RunOutcome {
    RunState state = RunState::SpawnFailed;
    /// Valid only when state == Completed.
    KernelResult result;
    /// Terminating signal when Crashed / Timeout (0 otherwise).
    int signal = 0;
    std::string detail;

    [[nodiscard]] bool ok() const { return state == RunState::Completed; }
    /// Ok / ResourceExhausted (Timeout) / Internal (everything else) -- the
    /// Status the service layer quarantines with.
    [[nodiscard]] Status status() const;
};

/// Runs `lf_kernel_run` from the shared object at `so_path` in a forked,
/// rlimited, watchdogged worker. Never throws; the parent survives any
/// worker behavior.
[[nodiscard]] RunOutcome run_kernel(const std::string& so_path,
                                    const SandboxLimits& limits = {});

/// Runs the ABI v2 entry `lf_kernel_run_par` with `params`. The RLIMIT_AS
/// cap is scaled for the requested thread count via
/// SandboxLimits::for_threads() before the fork, so thread stacks never
/// eat into the kernel's data budget. Containment semantics are identical
/// to run_kernel(): a lane that crashes or spins mid-wavefront surfaces as
/// the same typed RunState and the parent always survives.
[[nodiscard]] RunOutcome run_kernel_par(const std::string& so_path,
                                        const KernelParams& params,
                                        const SandboxLimits& limits = {});

}  // namespace lf::exec
