#include "exec/store.hpp"

#include <functional>

#include "support/diagnostics.hpp"

namespace lf::exec {

ArrayStore::ArrayStore(const ir::Program& p, const Domain& dom,
                       std::optional<std::int64_t> halo_opt) {
    const std::int64_t halo = halo_opt.value_or(p.max_offset());
    std::int64_t next_base = 0;
    names_ = p.arrays();
    std::int32_t next_id = 0;
    for (const std::string& name : names_) {
        Slot s;
        s.id = next_id++;
        s.data = Array2D(-halo, dom.n + halo, -halo, dom.m + halo);
        s.base = next_base;
        next_base += s.data.size() + 64;  // pad so arrays never share lines
        for (std::int64_t i = -halo; i <= dom.n + halo; ++i) {
            for (std::int64_t j = -halo; j <= dom.m + halo; ++j) {
                s.data.set(i, j, boundary_value(name, i, j));
            }
        }
        slots_.emplace(name, std::move(s));
    }
}

double ArrayStore::boundary_value(const std::string& array, std::int64_t i, std::int64_t j) {
    // splitmix64-style mixing of (hash(name), i, j), mapped into [-1, 1].
    std::uint64_t h = std::hash<std::string>{}(array);
    h ^= static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h ^= static_cast<std::uint64_t>(j) * 0x94d049bb133111ebULL;
    h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1dULL;
    h ^= h >> 31;
    return static_cast<double>(h % 2000001ULL) / 1000000.0 - 1.0;
}

const ArrayStore::Slot& ArrayStore::slot(const std::string& name) const {
    const auto it = slots_.find(name);
    check(it != slots_.end(), "ArrayStore: unknown array '" + name + "'");
    return it->second;
}

ArrayStore::Slot& ArrayStore::slot(const std::string& name) {
    const auto it = slots_.find(name);
    check(it != slots_.end(), "ArrayStore: unknown array '" + name + "'");
    return it->second;
}

double ArrayStore::load(const std::string& array, std::int64_t i, std::int64_t j) const {
    const Slot& s = slot(array);
    loads_.fetch_add(1, std::memory_order_relaxed);
    if (tracing_) {
        trace_.push_back(TraceEntry{s.id, s.base + s.data.linear_index(i, j), false, trace_processor_});
    }
    if (order_checking_) {
        // const_cast is confined to the single-threaded checking mode.
        auto& mut = const_cast<Slot&>(s);
        if (mut.written.empty()) {
            mut.written.assign(static_cast<std::size_t>(s.data.size()), false);
            mut.read_before_write.assign(static_cast<std::size_t>(s.data.size()), false);
        }
        const auto idx = static_cast<std::size_t>(s.data.linear_index(i, j));
        if (!mut.written[idx]) mut.read_before_write[idx] = true;
    }
    return s.data.at(i, j);
}

void ArrayStore::store(const std::string& array, std::int64_t i, std::int64_t j, double value) {
    Slot& s = slot(array);
    stores_.fetch_add(1, std::memory_order_relaxed);
    if (tracing_) {
        trace_.push_back(TraceEntry{s.id, s.base + s.data.linear_index(i, j), true, trace_processor_});
    }
    if (order_checking_) {
        if (s.written.empty()) {
            s.written.assign(static_cast<std::size_t>(s.data.size()), false);
            s.read_before_write.assign(static_cast<std::size_t>(s.data.size()), false);
        }
        const auto idx = static_cast<std::size_t>(s.data.linear_index(i, j));
        if (s.read_before_write[idx]) ++order_violations_;  // consumer ran first
        s.written[idx] = true;
    }
    s.data.set(i, j, value);
}

const Array2D& ArrayStore::array(const std::string& name) const { return slot(name).data; }

}  // namespace lf::exec
