#pragma once
// ArrayStore: the program's memory. One Array2D per array name, initialized
// with deterministic pseudo-random boundary values so that
//   (a) halo reads are well defined,
//   (b) two independently initialized stores agree, making golden-output
//       equivalence checks meaningful.
//
// The store also meters loads/stores (atomically, so the threaded engine can
// share it), optionally records an address trace for the cache simulator,
// and optionally checks the dataflow ordering invariant "no cell is read
// before the write that produces it" (used to validate wavefront schedules
// of graph-only workloads like the paper's Figure 14).

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/array.hpp"
#include "ir/ast.hpp"
#include "support/domain.hpp"

namespace lf::exec {

struct TraceEntry {
    std::int32_t array_id = 0;
    std::int64_t address = 0;  // array base + element offset
    bool is_write = false;
    /// Owning processor under a block partition (-1 when not partitioned);
    /// set via ArrayStore::set_trace_processor by partition-aware engines.
    std::int16_t processor = -1;
};

class ArrayStore final : public ir::ValueSource {
  public:
    /// Creates all arrays of `p` over `dom` extended by `halo` cells on each
    /// side, pre-filled with boundary_value(). `halo` defaults to the
    /// program's maximum subscript offset.
    ArrayStore(const ir::Program& p, const Domain& dom,
               std::optional<std::int64_t> halo = std::nullopt);

    [[nodiscard]] double load(const std::string& array, const Vec2& cell) const override {
        return load(array, cell.x, cell.y);
    }
    [[nodiscard]] double load(const std::string& array, std::int64_t i, std::int64_t j) const;
    void store(const std::string& array, std::int64_t i, std::int64_t j, double value);

    [[nodiscard]] const Array2D& array(const std::string& name) const;
    [[nodiscard]] const std::vector<std::string>& array_names() const { return names_; }

    [[nodiscard]] std::int64_t loads() const { return loads_.load(std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t stores() const { return stores_.load(std::memory_order_relaxed); }

    /// The deterministic initial value of cell (i, j) of `array`: a hash of
    /// (name, i, j) mapped into [-1, 1].
    [[nodiscard]] static double boundary_value(const std::string& array, std::int64_t i,
                                               std::int64_t j);

    // --- Tracing (single-threaded engines only). ---
    void enable_tracing() { tracing_ = true; }
    [[nodiscard]] const std::vector<TraceEntry>& trace() const { return trace_; }
    [[nodiscard]] bool tracing() const { return tracing_; }
    /// Tags subsequent trace entries with the given processor id (block
    /// partitioning engines call this when switching blocks).
    void set_trace_processor(std::int16_t processor) { trace_processor_ = processor; }

    // --- Dataflow ordering validation. ---
    /// When enabled, load() records reads of not-yet-written cells; a later
    /// store() to such a cell is an ordering violation (the schedule let a
    /// consumer run before its producer).
    void enable_order_checking() { order_checking_ = true; }
    [[nodiscard]] std::int64_t order_violations() const { return order_violations_; }

  private:
    struct Slot {
        Array2D data;
        std::int32_t id = 0;    // dense array id for tracing
        std::int64_t base = 0;  // address-space base for tracing
        // Order checking state, keyed by linear index.
        std::vector<bool> written;
        std::vector<bool> read_before_write;
    };

    [[nodiscard]] const Slot& slot(const std::string& name) const;
    [[nodiscard]] Slot& slot(const std::string& name);

    std::vector<std::string> names_;
    std::map<std::string, Slot> slots_;
    mutable std::atomic<std::int64_t> loads_{0};
    std::atomic<std::int64_t> stores_{0};
    bool tracing_ = false;
    std::int16_t trace_processor_ = -1;
    mutable std::vector<TraceEntry> trace_;
    bool order_checking_ = false;
    std::int64_t order_violations_ = 0;
};

}  // namespace lf::exec
