#include "exec/store_nd.hpp"

#include "support/diagnostics.hpp"

namespace lf::exec {

void for_each_point_nd(const std::vector<std::int64_t>& lo, const std::vector<std::int64_t>& hi,
                       const std::function<void(const VecN&)>& fn) {
    const int dim = static_cast<int>(lo.size());
    std::vector<std::int64_t> start = lo;
    VecN p(std::move(start));
    if (dim == 0) {
        fn(p);
        return;
    }
    for (int k = 0; k < dim; ++k) {
        if (lo[static_cast<std::size_t>(k)] > hi[static_cast<std::size_t>(k)]) return;
    }
    while (true) {
        fn(p);
        int k = dim - 1;
        while (k >= 0) {
            if (++p[k] <= hi[static_cast<std::size_t>(k)]) break;
            p[k] = lo[static_cast<std::size_t>(k)];
            --k;
        }
        if (k < 0) return;
    }
}

MdArrayStore::MdArrayStore(const front::BasicProgram<VecN>& p, const MdDomain& dom,
                           std::optional<std::int64_t> halo_opt) {
    check(dom.dim() == p.dim, "MdArrayStore: domain dimension mismatch");
    const std::int64_t halo = halo_opt.value_or(p.max_offset());
    for (const std::string& name : p.arrays()) {
        Slot s;
        s.lo.assign(static_cast<std::size_t>(p.dim), -halo);
        s.hi.resize(static_cast<std::size_t>(p.dim));
        for (int k = 0; k < p.dim; ++k) {
            s.hi[static_cast<std::size_t>(k)] = dom.ext[static_cast<std::size_t>(k)] + halo;
        }
        s.stride.assign(static_cast<std::size_t>(p.dim), 1);
        for (int k = p.dim - 2; k >= 0; --k) {
            s.stride[static_cast<std::size_t>(k)] =
                s.stride[static_cast<std::size_t>(k + 1)] *
                (s.hi[static_cast<std::size_t>(k + 1)] - s.lo[static_cast<std::size_t>(k + 1)] + 1);
        }
        const std::int64_t total = s.stride[0] * (s.hi[0] - s.lo[0] + 1);
        s.data.resize(static_cast<std::size_t>(total));
        for_each_point_nd(s.lo, s.hi, [&](const VecN& cell) {
            s.data[index(s, cell)] = boundary_value(name, cell);
        });
        slots_.emplace(name, std::move(s));
    }
}

double MdArrayStore::boundary_value(const std::string& array, const VecN& cell) {
    std::uint64_t h = std::hash<std::string>{}(array);
    for (int k = 0; k < cell.dim(); ++k) {
        h ^= static_cast<std::uint64_t>(cell[k]) * 0x9e3779b97f4a7c15ULL;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    }
    h ^= h >> 31;
    return static_cast<double>(h % 2000001ULL) / 1000000.0 - 1.0;
}

std::size_t MdArrayStore::index(const Slot& s, const VecN& cell) const {
    std::int64_t idx = 0;
    for (int k = 0; k < cell.dim(); ++k) {
        check(cell[k] >= s.lo[static_cast<std::size_t>(k)] &&
                  cell[k] <= s.hi[static_cast<std::size_t>(k)],
              "MdArrayStore: cell out of bounds (halo too small?)");
        idx += (cell[k] - s.lo[static_cast<std::size_t>(k)]) * s.stride[static_cast<std::size_t>(k)];
    }
    return static_cast<std::size_t>(idx);
}

const MdArrayStore::Slot& MdArrayStore::slot(const std::string& name) const {
    const auto it = slots_.find(name);
    check(it != slots_.end(), "MdArrayStore: unknown array '" + name + "'");
    return it->second;
}

double MdArrayStore::load(const std::string& array, const VecN& cell) const {
    const Slot& s = slot(array);
    return s.data[index(s, cell)];
}

void MdArrayStore::store(const std::string& array, const VecN& cell, double value) {
    Slot& s = const_cast<Slot&>(slot(array));
    s.data[index(s, cell)] = value;
}

}  // namespace lf::exec
