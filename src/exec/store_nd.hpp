#pragma once
// Dense n-D array storage for the depth-d program model (the VecN
// instantiation of the front end), mirroring exec/store.hpp: a halo of
// boundary cells on every side of every level, pre-filled with the same
// deterministic splitmix-style boundary values as the 2-D store.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "front/ast.hpp"
#include "support/lexvec.hpp"

namespace lf::exec {

/// Inclusive iteration extents per level: level k ranges over [0, ext[k]].
struct MdDomain {
    std::vector<std::int64_t> ext;

    [[nodiscard]] int dim() const { return static_cast<int>(ext.size()); }
    [[nodiscard]] bool contains(const VecN& q) const {
        for (int k = 0; k < dim(); ++k) {
            if (q[k] < 0 || q[k] > ext[k]) return false;
        }
        return true;
    }
    [[nodiscard]] std::int64_t points() const {
        std::int64_t n = 1;
        for (const std::int64_t e : ext) n *= e + 1;
        return n;
    }
};

/// Calls fn(p) for every integer point with lo[k] <= p[k] <= hi[k], in
/// lexicographic order (the odometer sweep shared by the N-D engines and
/// code generator).
void for_each_point_nd(const std::vector<std::int64_t>& lo, const std::vector<std::int64_t>& hi,
                       const std::function<void(const VecN&)>& fn);

/// Dense n-D array store with a halo of `halo` cells on every side of every
/// level, pre-filled with the same deterministic boundary values as the 2-D
/// store (hash of name and flattened coordinates).
class MdArrayStore final : public front::BasicValueSource<VecN> {
  public:
    MdArrayStore(const front::BasicProgram<VecN>& p, const MdDomain& dom,
                 std::optional<std::int64_t> halo = std::nullopt);

    [[nodiscard]] double load(const std::string& array, const VecN& cell) const override;
    void store(const std::string& array, const VecN& cell, double value);

    [[nodiscard]] static double boundary_value(const std::string& array, const VecN& cell);

  private:
    struct Slot {
        std::vector<double> data;
        std::vector<std::int64_t> lo, hi, stride;
    };
    [[nodiscard]] std::size_t index(const Slot& s, const VecN& cell) const;
    [[nodiscard]] const Slot& slot(const std::string& name) const;

    std::map<std::string, Slot> slots_;
};

}  // namespace lf::exec
