#pragma once
// Dimension-generic AST of the loop DSL -- the single program model behind
// both dialects of the front end:
//
//   * `BasicProgram<Vec2>` is the paper's Figure-1 program: one sequential
//     outer loop over `i` containing a sequence of labelled innermost DOALL
//     loops over `j`, subscripts `i+c` / `j+c` with constant c.
//   * `BasicProgram<VecN>` is the same pattern generalized to depth d:
//     (d-1) nested sequential loops `i1..i{d-1}` around innermost DOALL
//     loops over `j`, subscripts `array[i1+c1]...[j+cd]`.
//
// The 2-D instantiation is byte-compatible with the historical `ir/` AST
// (printers, str() layouts, evaluation semantics), and the N-D one with the
// historical `mdir/` AST; `ir/ast.hpp` and `mdir/ast.hpp` are now alias
// shims over this header.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/token.hpp"
#include "support/lexvec.hpp"

namespace lf::front {

/// True for the fixed-depth-2 instantiation (the paper's elaborated case).
template <typename V>
inline constexpr bool kIsVec2 = std::same_as<V, Vec2>;

namespace detail {

/// "i", "i+1", "j-2": a 2-D index expression with a constant offset.
inline void print_index(std::ostream& os, char var, std::int64_t offset) {
    os << var;
    if (offset > 0) os << '+' << offset;
    if (offset < 0) os << offset;
}

/// Index variable name for level k of d: i1..i{d-1} for the sequential
/// levels, j for the innermost DOALL level.
inline std::string index_var(int level, int dim) {
    if (level == dim - 1) return "j";
    return "i" + std::to_string(level + 1);
}

/// Prints a double so it re-parses as a number literal ("3.0", not "3").
inline void print_number(std::ostream& os, double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<std::int64_t>(v) << ".0";
    } else {
        os << v;
    }
}

}  // namespace detail

/// Abstract source of array values during interpretation; implemented by
/// the execution engines' array stores. Keeps the IR independent of them.
template <typename V>
class BasicValueSource {
  public:
    virtual ~BasicValueSource() = default;
    [[nodiscard]] virtual double load(const std::string& array, const V& cell) const = 0;

    /// 2-D convenience: load at cell (i, j).
    [[nodiscard]] double load(const std::string& array, std::int64_t i, std::int64_t j) const
        requires kIsVec2<V>
    {
        return load(array, V{i, j});
    }
};

/// A subscripted constant-distance array access: `array[i + offset.x][j +
/// offset.y]` at depth 2, `array[i1 + c1]...[j + cd]` at depth d.
template <typename V>
struct BasicArrayRef {
    std::string array;
    V offset;  // one component per nesting level; innermost last
    ir::SourceLoc loc;

    /// The cell touched by the instance at `iteration`.
    [[nodiscard]] V cell(const V& iteration) const { return iteration + offset; }

    /// 2-D convenience: the cell touched at iteration (i, j).
    [[nodiscard]] V cell(std::int64_t i, std::int64_t j) const
        requires kIsVec2<V>
    {
        return {i + offset.x, j + offset.y};
    }

    [[nodiscard]] std::string str() const {
        std::ostringstream os;
        if constexpr (kIsVec2<V>) {
            os << array << '[';
            detail::print_index(os, 'i', offset.x);
            os << "][";
            detail::print_index(os, 'j', offset.y);
            os << ']';
        } else {
            os << array;
            for (int k = 0; k < offset.dim(); ++k) {
                os << '[' << detail::index_var(k, offset.dim());
                if (offset[k] > 0) os << '+' << offset[k];
                if (offset[k] < 0) os << offset[k];
                os << ']';
            }
        }
        return os.str();
    }
};

template <typename V>
class BasicExpr;

template <typename V>
using BasicExprPtr = std::unique_ptr<BasicExpr<V>>;

template <typename V>
class BasicExpr {
  public:
    virtual ~BasicExpr() = default;

    /// Evaluates at iteration `it`, reading array values from `src`.
    [[nodiscard]] virtual double eval(const BasicValueSource<V>& src, const V& it) const = 0;
    /// Appends every array read in this subtree to `out`.
    virtual void collect_reads(std::vector<BasicArrayRef<V>>& out) const = 0;
    virtual void print(std::ostream& os) const = 0;
    [[nodiscard]] virtual BasicExprPtr<V> clone() const = 0;
    /// Returns a copy with every subscript shifted by `delta`; used to print
    /// retimed statements.
    [[nodiscard]] virtual BasicExprPtr<V> shifted(const V& delta) const = 0;

    /// 2-D convenience: evaluate at iteration (i, j).
    [[nodiscard]] double eval(const BasicValueSource<V>& src, std::int64_t i,
                              std::int64_t j) const
        requires kIsVec2<V>
    {
        return eval(src, V{i, j});
    }
};

template <typename V>
class BasicLiteral final : public BasicExpr<V> {
  public:
    using BasicExpr<V>::eval;

    explicit BasicLiteral(double value) : value_(value) {}
    [[nodiscard]] double eval(const BasicValueSource<V>&, const V&) const override {
        return value_;
    }
    void collect_reads(std::vector<BasicArrayRef<V>>&) const override {}
    void print(std::ostream& os) const override { detail::print_number(os, value_); }
    [[nodiscard]] BasicExprPtr<V> clone() const override {
        return std::make_unique<BasicLiteral>(value_);
    }
    [[nodiscard]] BasicExprPtr<V> shifted(const V&) const override { return clone(); }
    [[nodiscard]] double value() const { return value_; }

  private:
    double value_;
};

template <typename V>
class BasicRead final : public BasicExpr<V> {
  public:
    using BasicExpr<V>::eval;

    explicit BasicRead(BasicArrayRef<V> ref) : ref_(std::move(ref)) {}
    [[nodiscard]] double eval(const BasicValueSource<V>& src, const V& it) const override {
        return src.load(ref_.array, ref_.cell(it));
    }
    void collect_reads(std::vector<BasicArrayRef<V>>& out) const override {
        out.push_back(ref_);
    }
    void print(std::ostream& os) const override { os << ref_.str(); }
    [[nodiscard]] BasicExprPtr<V> clone() const override {
        return std::make_unique<BasicRead>(ref_);
    }
    [[nodiscard]] BasicExprPtr<V> shifted(const V& delta) const override {
        BasicArrayRef<V> shifted_ref = ref_;
        shifted_ref.offset += delta;
        return std::make_unique<BasicRead>(std::move(shifted_ref));
    }
    [[nodiscard]] const BasicArrayRef<V>& ref() const { return ref_; }

  private:
    BasicArrayRef<V> ref_;
};

template <typename V>
class BasicUnary final : public BasicExpr<V> {
  public:
    using BasicExpr<V>::eval;

    explicit BasicUnary(BasicExprPtr<V> operand) : operand_(std::move(operand)) {}
    [[nodiscard]] double eval(const BasicValueSource<V>& src, const V& it) const override {
        return -operand_->eval(src, it);
    }
    void collect_reads(std::vector<BasicArrayRef<V>>& out) const override {
        operand_->collect_reads(out);
    }
    void print(std::ostream& os) const override {
        os << "(-";
        operand_->print(os);
        os << ')';
    }
    [[nodiscard]] BasicExprPtr<V> clone() const override {
        return std::make_unique<BasicUnary>(operand_->clone());
    }
    [[nodiscard]] BasicExprPtr<V> shifted(const V& delta) const override {
        return std::make_unique<BasicUnary>(operand_->shifted(delta));
    }
    [[nodiscard]] const BasicExpr<V>& operand() const { return *operand_; }

  private:
    BasicExprPtr<V> operand_;
};

template <typename V>
class BasicBinary final : public BasicExpr<V> {
  public:
    using BasicExpr<V>::eval;

    BasicBinary(char op, BasicExprPtr<V> lhs, BasicExprPtr<V> rhs)
        : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
    [[nodiscard]] double eval(const BasicValueSource<V>& src, const V& it) const override {
        const double a = lhs_->eval(src, it);
        const double b = rhs_->eval(src, it);
        switch (op_) {
            case '+': return a + b;
            case '-': return a - b;
            case '*': return a * b;
            default: return a / b;
        }
    }
    void collect_reads(std::vector<BasicArrayRef<V>>& out) const override {
        lhs_->collect_reads(out);
        rhs_->collect_reads(out);
    }
    void print(std::ostream& os) const override {
        os << '(';
        lhs_->print(os);
        os << ' ' << op_ << ' ';
        rhs_->print(os);
        os << ')';
    }
    [[nodiscard]] BasicExprPtr<V> clone() const override {
        return std::make_unique<BasicBinary>(op_, lhs_->clone(), rhs_->clone());
    }
    [[nodiscard]] BasicExprPtr<V> shifted(const V& delta) const override {
        return std::make_unique<BasicBinary>(op_, lhs_->shifted(delta), rhs_->shifted(delta));
    }
    [[nodiscard]] char op() const { return op_; }
    [[nodiscard]] const BasicExpr<V>& lhs() const { return *lhs_; }
    [[nodiscard]] const BasicExpr<V>& rhs() const { return *rhs_; }

  private:
    char op_;
    BasicExprPtr<V> lhs_;
    BasicExprPtr<V> rhs_;
};

/// One assignment `target = value;` inside a loop body.
template <typename V>
struct BasicStatement {
    BasicArrayRef<V> target;
    BasicExprPtr<V> value;

    BasicStatement() = default;
    BasicStatement(BasicArrayRef<V> t, BasicExprPtr<V> v)
        : target(std::move(t)), value(std::move(v)) {}
    BasicStatement(const BasicStatement& o)
        : target(o.target), value(o.value ? o.value->clone() : nullptr) {}
    BasicStatement& operator=(const BasicStatement& o) {
        if (this != &o) {
            target = o.target;
            value = o.value ? o.value->clone() : nullptr;
        }
        return *this;
    }
    BasicStatement(BasicStatement&&) = default;
    BasicStatement& operator=(BasicStatement&&) = default;

    /// Executes the instance at iteration `it`: evaluate and return the
    /// stored value plus the target cell (the caller performs the store).
    [[nodiscard]] double eval(const BasicValueSource<V>& src, const V& it) const {
        return value->eval(src, it);
    }

    /// 2-D convenience: evaluate the instance at iteration (i, j).
    [[nodiscard]] double eval(const BasicValueSource<V>& src, std::int64_t i,
                              std::int64_t j) const
        requires kIsVec2<V>
    {
        return value->eval(src, V{i, j});
    }

    [[nodiscard]] std::vector<BasicArrayRef<V>> reads() const {
        std::vector<BasicArrayRef<V>> out;
        value->collect_reads(out);
        return out;
    }

    /// A copy with all subscripts (target and reads) shifted by `delta`.
    [[nodiscard]] BasicStatement shifted(const V& delta) const {
        BasicStatement s;
        s.target = target;
        s.target.offset += delta;
        s.value = value->shifted(delta);
        return s;
    }

    [[nodiscard]] std::string str() const {
        std::ostringstream os;
        os << target.str() << " = ";
        value->print(os);
        os << ';';
        return os.str();
    }
};

/// One innermost DOALL loop ("loop A { ... }").
template <typename V>
struct BasicLoopNest {
    std::string label;
    std::vector<BasicStatement<V>> body;
    ir::SourceLoc loc;

    /// Abstract per-iteration cost: one unit per statement plus one per read
    /// (consumed by the multiprocessor cost model).
    [[nodiscard]] std::int64_t body_cost() const {
        std::int64_t cost = 0;
        for (const BasicStatement<V>& s : body) {
            cost += 1 + static_cast<std::int64_t>(s.reads().size());
        }
        return std::max<std::int64_t>(cost, 1);
    }
};

/// A whole program: the Figure-1 nest at depth `dim` (2 for the paper's
/// elaborated case, d >= 2 in general).
template <typename V>
struct BasicProgram {
    std::string name;
    int dim = 2;
    std::vector<BasicLoopNest<V>> loops;
    ir::SourceLoc loc;

    /// All array names, writes first then reads, deduplicated, in order of
    /// first appearance.
    [[nodiscard]] std::vector<std::string> arrays() const {
        std::vector<std::string> out = written_arrays();
        auto add = [&out](const std::string& array) {
            if (std::find(out.begin(), out.end(), array) == out.end()) out.push_back(array);
        };
        for (const BasicLoopNest<V>& loop : loops) {
            for (const BasicStatement<V>& s : loop.body) {
                for (const BasicArrayRef<V>& r : s.reads()) add(r.array);
            }
        }
        return out;
    }

    /// Arrays written by some loop.
    [[nodiscard]] std::vector<std::string> written_arrays() const {
        std::vector<std::string> out;
        for (const BasicLoopNest<V>& loop : loops) {
            for (const BasicStatement<V>& s : loop.body) {
                if (std::find(out.begin(), out.end(), s.target.array) == out.end()) {
                    out.push_back(s.target.array);
                }
            }
        }
        return out;
    }

    /// Largest absolute subscript offset component, for halo sizing.
    [[nodiscard]] std::int64_t max_offset() const {
        std::int64_t m = 0;
        auto update = [&m](const BasicArrayRef<V>& r) {
            for (int k = 0; k < r.offset.dim(); ++k) m = std::max(m, std::abs(r.offset[k]));
        };
        for (const BasicLoopNest<V>& loop : loops) {
            for (const BasicStatement<V>& s : loop.body) {
                update(s.target);
                for (const BasicArrayRef<V>& r : s.reads()) update(r);
            }
        }
        return m;
    }

    [[nodiscard]] std::string str() const {
        std::ostringstream os;
        os << "program " << name;
        if constexpr (!kIsVec2<V>) os << " dim " << dim;
        os << " {\n";
        for (const BasicLoopNest<V>& loop : loops) {
            os << "  loop " << loop.label << " {\n";
            for (const BasicStatement<V>& s : loop.body) os << "    " << s.str() << '\n';
            os << "  }\n";
        }
        os << "}\n";
        return os.str();
    }
};

template <typename V>
std::ostream& operator<<(std::ostream& os, const BasicExpr<V>& e) {
    e.print(os);
    return os;
}

}  // namespace lf::front
