#include "front/parse.hpp"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ir/lexer.hpp"
#include "support/diagnostics.hpp"

namespace lf::front {

namespace {

using ir::Token;
using ir::TokenKind;

template <typename V>
class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    BasicProgram<V> parse() {
        BasicProgram<V> p;
        p.loc = peek().loc;
        expect_keyword("program");
        p.name = expect(TokenKind::Identifier).text;
        if constexpr (!kIsVec2<V>) {
            expect_keyword("dim");
            const Token& d = expect(TokenKind::Integer);
            check(d.integer >= 2 && d.integer <= 8,
                  "parse error at " + d.loc.str() + ": dim must be in [2, 8]");
            p.dim = static_cast<int>(d.integer);
            dim_ = p.dim;
        }
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) {
            p.loops.push_back(parse_loop());
        }
        expect(TokenKind::RBrace);
        expect(TokenKind::End);
        return p;
    }

  private:
    [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
    [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }

    const Token& advance() { return tokens_[pos_++]; }

    const Token& expect(TokenKind kind) {
        if (!at(kind)) {
            throw Error("parse error at " + peek().loc.str() + ": expected " + to_string(kind) +
                        ", found " + to_string(peek().kind) +
                        (peek().text.empty() ? "" : " '" + peek().text + "'"));
        }
        return advance();
    }

    void expect_keyword(const std::string& kw) {
        const Token& t = expect(TokenKind::Identifier);
        check(t.text == kw,
              "parse error at " + t.loc.str() + ": expected '" + kw + "', found '" + t.text + "'");
    }

    bool accept(TokenKind kind) {
        if (at(kind)) {
            ++pos_;
            return true;
        }
        return false;
    }

    BasicLoopNest<V> parse_loop() {
        BasicLoopNest<V> loop;
        loop.loc = peek().loc;
        expect_keyword("loop");
        loop.label = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) {
            loop.body.push_back(parse_statement());
        }
        expect(TokenKind::RBrace);
        check(!loop.body.empty(),
              "parse error: loop " + loop.label + " at " + loop.loc.str() + " has an empty body");
        return loop;
    }

    BasicStatement<V> parse_statement() {
        BasicArrayRef<V> target = parse_array_ref();
        expect(TokenKind::Assign);
        BasicExprPtr<V> value = parse_expr();
        expect(TokenKind::Semicolon);
        return BasicStatement<V>(std::move(target), std::move(value));
    }

    BasicArrayRef<V> parse_array_ref() {
        BasicArrayRef<V> ref;
        const Token& name = expect(TokenKind::Identifier);
        ref.array = name.text;
        ref.loc = name.loc;
        if constexpr (!kIsVec2<V>) ref.offset = V::zeros(dim_);
        for (int level = 0; level < dim_; ++level) {
            expect(TokenKind::LBracket);
            ref.offset[level] = parse_index(level);
            expect(TokenKind::RBracket);
        }
        return ref;
    }

    std::int64_t parse_index(int level) {
        const Token& v = expect(TokenKind::Identifier);
        if constexpr (kIsVec2<V>) {
            const char var = level == 0 ? 'i' : 'j';
            check(v.text.size() == 1 && v.text[0] == var,
                  "parse error at " + v.loc.str() + ": subscript must use '" +
                      std::string(1, var) + "' (the paper's constant-distance model), found '" +
                      v.text + "'");
        } else {
            const std::string want = detail::index_var(level, dim_);
            check(v.text == want, "parse error at " + v.loc.str() + ": level-" +
                                      std::to_string(level) + " subscript must use '" + want +
                                      "', found '" + v.text + "'");
        }
        if (accept(TokenKind::Plus)) return expect(TokenKind::Integer).integer;
        if (accept(TokenKind::Minus)) return -expect(TokenKind::Integer).integer;
        return 0;
    }

    BasicExprPtr<V> parse_expr() {
        BasicExprPtr<V> lhs = parse_term();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            const char op = advance().text[0];
            lhs = std::make_unique<BasicBinary<V>>(op, std::move(lhs), parse_term());
        }
        return lhs;
    }

    BasicExprPtr<V> parse_term() {
        BasicExprPtr<V> lhs = parse_factor();
        while (at(TokenKind::Star) || at(TokenKind::Slash)) {
            const char op = advance().text[0];
            lhs = std::make_unique<BasicBinary<V>>(op, std::move(lhs), parse_factor());
        }
        return lhs;
    }

    BasicExprPtr<V> parse_factor() {
        if (at(TokenKind::Number) || at(TokenKind::Integer)) {
            return std::make_unique<BasicLiteral<V>>(advance().number);
        }
        if (accept(TokenKind::Minus)) {
            return std::make_unique<BasicUnary<V>>(parse_factor());
        }
        if (accept(TokenKind::LParen)) {
            BasicExprPtr<V> e = parse_expr();
            expect(TokenKind::RParen);
            return e;
        }
        if (at(TokenKind::Identifier)) {
            return std::make_unique<BasicRead<V>>(parse_array_ref());
        }
        throw Error("parse error at " + peek().loc.str() + ": expected an expression, found " +
                    to_string(peek().kind));
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    int dim_ = 2;
};

/// True when `a` and `b` agree on every sequential (non-innermost) level.
template <typename V>
bool same_prefix(const V& a, const V& b) {
    for (int k = 0; k + 1 < a.dim(); ++k) {
        if (a[k] != b[k]) return false;
    }
    return true;
}

}  // namespace

template <typename V>
BasicProgram<V> parse_basic_program_unchecked(std::string_view source) {
    return Parser<V>(ir::tokenize(source)).parse();
}

template <typename V>
void validate_basic_program(const BasicProgram<V>& p) {
    check(!p.loops.empty(),
          "sema: program '" + p.name + "' at " + p.loc.str() + " has no loops");

    std::set<std::string> labels;
    for (const BasicLoopNest<V>& loop : p.loops) {
        check(labels.insert(loop.label).second,
              "sema: duplicate loop label '" + loop.label + "' at " + loop.loc.str());
    }

    // DOALL check per loop: two accesses to the same array with at least one
    // write touch the same cell from two distinct instances of the same
    // sequential iteration exactly when their offsets agree on every
    // sequential level and differ in the innermost component.
    for (const BasicLoopNest<V>& loop : p.loops) {
        std::vector<std::pair<BasicArrayRef<V>, bool>> accesses;
        for (const BasicStatement<V>& s : loop.body) {
            accesses.emplace_back(s.target, true);
            for (const BasicArrayRef<V>& r : s.reads()) accesses.emplace_back(r, false);
        }
        for (std::size_t a = 0; a < accesses.size(); ++a) {
            for (std::size_t b = a + 1; b < accesses.size(); ++b) {
                if (!accesses[a].second && !accesses[b].second) continue;
                if (accesses[a].first.array != accesses[b].first.array) continue;
                const V& oa = accesses[a].first.offset;
                const V& ob = accesses[b].first.offset;
                if (!same_prefix(oa, ob) || oa[oa.dim() - 1] == ob[ob.dim() - 1]) continue;
                if constexpr (kIsVec2<V>) {
                    throw Error("sema: loop " + loop.label + " at " + loop.loc.str() +
                                " is not DOALL: accesses " + accesses[a].first.str() + " and " +
                                accesses[b].first.str() +
                                " conflict across j within one outer iteration");
                } else {
                    throw Error("sema: loop " + loop.label + " at " + loop.loc.str() +
                                " is not DOALL: " + accesses[a].first.str() + " conflicts with " +
                                accesses[b].first.str());
                }
            }
        }
    }
}

template <typename V>
BasicProgram<V> parse_basic_program(std::string_view source) {
    BasicProgram<V> p = parse_basic_program_unchecked<V>(source);
    validate_basic_program(p);
    return p;
}

AnyProgram parse_any_program(std::string_view source) {
    // Peek past "program <name>": an identifier `dim` there selects the
    // depth-d grammar. Lexer errors surface here, located, for both paths.
    const std::vector<Token> tokens = ir::tokenize(source);
    const bool has_dim_clause = tokens.size() > 2 &&
                                tokens[2].kind == TokenKind::Identifier &&
                                tokens[2].text == "dim";
    AnyProgram out;
    if (has_dim_clause) {
        out.pn = parse_basic_program<VecN>(source);
        out.depth = out.pn->dim;
    } else {
        out.p2 = parse_basic_program<Vec2>(source);
        out.depth = 2;
    }
    return out;
}

template BasicProgram<Vec2> parse_basic_program_unchecked<Vec2>(std::string_view);
template BasicProgram<VecN> parse_basic_program_unchecked<VecN>(std::string_view);
template void validate_basic_program<Vec2>(const BasicProgram<Vec2>&);
template void validate_basic_program<VecN>(const BasicProgram<VecN>&);
template BasicProgram<Vec2> parse_basic_program<Vec2>(std::string_view);
template BasicProgram<VecN> parse_basic_program<VecN>(std::string_view);

}  // namespace lf::front
