#pragma once
// Unified recursive-descent parser + semantic checks for the loop DSL, one
// implementation for every program depth. Grammar (depth-2 programs omit
// the `dim` clause and use subscripts [i][j]; depth-d programs declare
// `dim d` and use [i1]...[i{d-1}][j]):
//
//   program   := "program" IDENT [ "dim" INTEGER ] "{" loop+ "}"
//   loop      := "loop" IDENT "{" statement+ "}"
//   statement := array_ref "=" expr ";"
//   array_ref := IDENT subscript{dim}
//   subscript := "[" index_var [("+" | "-") INTEGER] "]"
//   expr      := term (("+" | "-") term)*
//   term      := factor (("*" | "/") factor)*
//   factor    := NUMBER | "-" factor | "(" expr ")" | array_ref
//
// Every diagnostic carries an `ir::SourceLoc` (line:col). The historical
// entry points `ir::parse_program` and `mdir::parse_md_program` are thin
// shims over the two instantiations below.

#include <optional>
#include <string_view>

#include "front/ast.hpp"

namespace lf::front {

/// Parses without semantic validation (depth fixed by `V`: `Vec2` parses
/// the paper's 2-D grammar, `VecN` the depth-d grammar with a `dim` clause).
template <typename V>
[[nodiscard]] BasicProgram<V> parse_basic_program_unchecked(std::string_view source);

/// Semantic checks: at least one loop, unique labels, every loop DOALL
/// (no two same-array accesses, one a write, conflicting across j within
/// one sequential iteration). Throws `lf::Error` with a located message.
template <typename V>
void validate_basic_program(const BasicProgram<V>& p);

/// Parse + validate.
template <typename V>
[[nodiscard]] BasicProgram<V> parse_basic_program(std::string_view source);

/// A program of depth discovered at parse time: exactly one of `p2` / `pn`
/// is populated (2-D sources land in `p2`, `dim d` sources in `pn`).
struct AnyProgram {
    int depth = 2;
    std::optional<BasicProgram<Vec2>> p2;
    std::optional<BasicProgram<VecN>> pn;

    [[nodiscard]] bool is_2d() const { return p2.has_value(); }
};

/// Parses a source whose depth is not known in advance: a `dim` clause
/// after the program name selects the depth-d grammar, otherwise the
/// source parses as the paper's depth-2 case.
[[nodiscard]] AnyProgram parse_any_program(std::string_view source);

}  // namespace lf::front
