#include "fusion/ablation.hpp"

#include <algorithm>

#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf::ablation {

Result<Retiming> try_cyclic_doall_all_hard(const Mldg& g, ResourceGuard* guard,
                                           SolverStats* stats, PlannerWorkspace* ws,
                                           const std::vector<std::int64_t>* warm) {
    if (faultpoint::triggered("forced_carry")) {
        return Status(StatusCode::Internal, "cyclic_doall_all_hard: fault injected");
    }
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;
    {
        const LegalityReport rep = check_schedulable(g, guard, stats, scalar_ws);
        if (rep.status != StatusCode::Ok) {
            return Status(rep.status, "cyclic_doall_all_hard: schedulability check aborted");
        }
        if (!rep.legal) {
            return Status(StatusCode::IllegalInput,
                          "cyclic_doall_all_hard: input MLDG is not schedulable");
        }
    }
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node_ref(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta().x - 1);
    }
    const auto solution = sys.solve(guard, stats, scalar_ws, warm);
    if (solution.status != StatusCode::Ok) {
        return Status(solution.status, "cyclic_doall_all_hard: solve aborted");
    }
    if (!solution.feasible) {
        return Status(StatusCode::Infeasible,
                      "cyclic_doall_all_hard: no retiming can carry every edge on the "
                      "outer loop (negative cycle in the forced system)");
    }
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
        r.of(v) = Vec2{solution.values[static_cast<std::size_t>(v)], 0};
    }
    return r;
}

std::optional<Retiming> cyclic_doall_all_hard(const Mldg& g) {
    auto result = try_cyclic_doall_all_hard(g);
    if (result.ok()) return std::move(result).value();
    if (result.status().code() == StatusCode::Infeasible) return std::nullopt;
    check(false, result.status().message());
    return std::nullopt;  // unreachable
}

Retiming acyclic_doall_keep_y(const Mldg& g) {
    check(g.is_acyclic(), "acyclic_doall_keep_y: input MLDG has a cycle");
    check(is_schedulable(g), "acyclic_doall_keep_y: input MLDG is not schedulable");
    DifferenceConstraintSystem<Vec2> sys;
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node_ref(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta() - Vec2{1, -1});
    }
    const auto solution = sys.solve();
    check(solution.feasible, "acyclic_doall_keep_y: internal error");
    return Retiming(solution.values);
}

std::int64_t prologue_rows(const Retiming& r) {
    std::int64_t lo = 0, hi = 0;
    for (int v = 0; v < r.num_nodes(); ++v) {
        lo = std::min(lo, r.of(v).x);
        hi = std::max(hi, r.of(v).x);
    }
    return hi - lo;
}

std::int64_t inner_peels(const Retiming& r) {
    std::int64_t lo = 0, hi = 0;
    for (int v = 0; v < r.num_nodes(); ++v) {
        lo = std::min(lo, r.of(v).y);
        hi = std::max(hi, r.of(v).y);
    }
    return hi - lo;
}

bool program_order_body_would_be_wrong(const Mldg& retimed) {
    for (int eid = 0; eid < retimed.num_edges(); ++eid) {
        const auto& e = retimed.edge_ref(eid);
        if (retimed.is_self_edge(eid)) continue;
        const bool backward = retimed.is_backward_edge(eid);
        for (const Vec2& d : e.vectors) {
            if (d.is_zero() && backward) return true;
        }
    }
    return false;
}

}  // namespace lf::ablation
