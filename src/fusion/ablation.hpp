#pragma once
// Ablation variants of the paper's design choices, for the ablation bench
// (bench/fig_ablation). Each variant removes one deliberate refinement so
// its contribution can be measured:
//
//   * cyclic_doall_all_hard  -- Algorithm 4 with *every* edge treated as
//     hard in phase 1 (forced outer-carried). Shows why the paper's
//     selective hard-edge handling matters: forcing all edges fails on any
//     cycle whose x-weight is below its edge count, and deepens prologues.
//   * acyclic_doall_keep_y   -- Algorithm 3 without its final y-zeroing
//     step. Shows the cost the paper avoids: spurious inner-dimension
//     shifts, i.e. j-peels, for no parallelism benefit.
//   * plan_without_body_reorder -- counts how often a plain program-order
//     fused body would be *incorrect* for a LLOFRA retiming ((0,0)
//     dependences landing against statement order), motivating the
//     fused-body reordering of DESIGN.md fidelity note 1.

#include <cstdint>
#include <optional>
#include <vector>

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {
struct PlannerWorkspace;
}  // namespace lf

namespace lf::ablation {

/// Algorithm 4 with all edges forced outer-carried in phase 1. Returns the
/// retiming when feasible.
[[nodiscard]] std::optional<Retiming> cyclic_doall_all_hard(const Mldg& g);

/// Never-throwing variant; the driver's "forced-carry" ladder rung. Non-Ok:
/// IllegalInput (not schedulable), Infeasible (the forced system has a
/// negative cycle -- a normal outcome for this variant), ResourceExhausted /
/// Overflow (solve cut short), Internal (fault point "forced_carry" armed).
///
/// `ws` (optional): reusable solver scratch. `warm` (optional): the phase-1
/// fixpoint of the *selective* system (hard edges only carried) for the same
/// graph -- the forced system differs only by tightening the non-hard bounds
/// from delta.x to delta.x - 1, so that fixpoint is a legal warm start and
/// the solve returns identical values either way.
[[nodiscard]] Result<Retiming> try_cyclic_doall_all_hard(
    const Mldg& g, ResourceGuard* guard = nullptr, SolverStats* stats = nullptr,
    PlannerWorkspace* ws = nullptr, const std::vector<std::int64_t>* warm = nullptr);

/// Algorithm 3 without the final y-zeroing.
[[nodiscard]] Retiming acyclic_doall_keep_y(const Mldg& g);

/// Max spread of the first retiming components (the number of prologue /
/// epilogue *rows* the transformed code pays).
[[nodiscard]] std::int64_t prologue_rows(const Retiming& r);

/// Max spread of the second retiming components (the number of peeled
/// iterations per row).
[[nodiscard]] std::int64_t inner_peels(const Retiming& r);

/// True when fusing `retimed` with plain program order would violate some
/// (0,0) dependence (i.e. body reordering is load-bearing for this plan).
[[nodiscard]] bool program_order_body_would_be_wrong(const Mldg& retimed);

}  // namespace lf::ablation
