#include "fusion/acyclic_doall.hpp"

#include "graph/constraint_system.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

Retiming acyclic_doall_fusion(const Mldg& g) {
    check(is_schedulable(g), "acyclic_doall_fusion: input MLDG is not schedulable");
    check(g.is_acyclic(), "acyclic_doall_fusion: input MLDG has a cycle; use "
                          "cyclic_doall_fusion or hyperplane_fusion");
    DifferenceConstraintSystem<Vec2> sys;
    for (int i = 0; i < g.num_nodes(); ++i) sys.add_variable(g.node(i).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta() - Vec2{1, -1});
    }
    const auto solution = sys.solve();
    // The constraint graph is acyclic, so a negative cycle is impossible.
    check(solution.feasible, "acyclic_doall_fusion: internal error (acyclic system infeasible)");
    Retiming r(solution.values);
    for (int i = 0; i < g.num_nodes(); ++i) r.of(i).y = 0;  // paper Alg. 3, final loop
    return r;
}

}  // namespace lf
