#include "fusion/acyclic_doall.hpp"

#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

Result<Retiming> try_acyclic_doall_fusion(const Mldg& g, ResourceGuard* guard,
                                          SolverStats* stats, PlannerWorkspace* ws) {
    if (faultpoint::triggered("acyclic_doall")) {
        return Status(StatusCode::Internal, "acyclic_doall_fusion: fault injected");
    }
    {
        const LegalityReport rep =
            check_schedulable(g, guard, stats, ws != nullptr ? &ws->scalar : nullptr);
        if (rep.status != StatusCode::Ok) {
            return Status(rep.status, "acyclic_doall_fusion: schedulability check aborted");
        }
        if (!rep.legal) {
            return Status(StatusCode::IllegalInput,
                          "acyclic_doall_fusion: input MLDG is not schedulable");
        }
    }
    if (!g.is_acyclic()) {
        return Status(StatusCode::IllegalInput,
                      "acyclic_doall_fusion: input MLDG has a cycle; use "
                      "cyclic_doall_fusion or hyperplane_fusion");
    }
    DifferenceConstraintSystem<Vec2> sys;
    for (int i = 0; i < g.num_nodes(); ++i) sys.add_variable(g.node_ref(i).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta() - Vec2{1, -1});
    }
    const auto solution = sys.solve(guard, stats, ws != nullptr ? &ws->vec2 : nullptr);
    if (solution.status != StatusCode::Ok) {
        return Status(solution.status, "acyclic_doall_fusion: solve aborted");
    }
    // The constraint graph is acyclic, so a negative cycle is impossible.
    if (!solution.feasible) {
        return Status(StatusCode::Internal,
                      "acyclic_doall_fusion: internal error (acyclic system infeasible)");
    }
    Retiming r(solution.values);
    for (int i = 0; i < g.num_nodes(); ++i) r.of(i).y = 0;  // paper Alg. 3, final loop
    return r;
}

Retiming acyclic_doall_fusion(const Mldg& g) {
    auto result = try_acyclic_doall_fusion(g);
    check(result.ok(), result.status().message());
    return std::move(result).value();
}

}  // namespace lf
