#pragma once
// Algorithm 3: legal loop fusion with full innermost parallelism for acyclic
// 2LDGs (Theorem 4.1).
//
// Constructs the constraint graph with weights  delta(e) - (1,-1)  so that
// every retimed minimal vector satisfies delta_r(e) >= (1,-1); since the
// x-component of a lexicographic minimum is the minimum x over D_L, this
// forces *every* dependence vector to have x >= 1 after retiming, which makes
// the fused innermost loop DOALL (Property 4.1: strict schedule s = (1,0)).
// Following the paper, the second retiming component is zeroed afterwards --
// only the x-shift matters for the guarantee, and pure-x retimings need no
// inner-dimension prologue.

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {

struct PlannerWorkspace;

/// Requires `g` legal and acyclic (throws lf::Error otherwise); always
/// succeeds on such inputs.
[[nodiscard]] Retiming acyclic_doall_fusion(const Mldg& g);

/// Never-throwing variant. Non-Ok statuses: IllegalInput (not schedulable /
/// not acyclic), ResourceExhausted / Overflow (guarded or hardened solve cut
/// short), Internal (fault point "acyclic_doall" armed, or a postcondition
/// the theorems guarantee failed).
[[nodiscard]] Result<Retiming> try_acyclic_doall_fusion(const Mldg& g,
                                                        ResourceGuard* guard = nullptr,
                                                        SolverStats* stats = nullptr,
                                                        PlannerWorkspace* ws = nullptr);

}  // namespace lf
