#include "fusion/certify.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "ldg/legality.hpp"

namespace lf {

namespace {

/// C3 + C4: recompute the retimed graph and compare edge by edge. An exact
/// match also certifies cycle-weight preservation (weights are derived from
/// the same retiming on both sides). Reports through `fail`.
///
/// O(E) expected: the plan's edges are indexed by endpoint pair once
/// (Mldg::add_edge merges parallel edges, so (from, to) is unique) instead
/// of a per-edge find_edge() scan -- this runs on the plan-cache hit path,
/// where it IS the admission cost.
void check_retimed_graph(const Mldg& original, const FusionPlan& plan,
                         const std::function<void(const std::string&)>& fail) {
    const Mldg recomputed = plan.retiming.apply(original);
    if (recomputed.num_edges() != plan.retimed.num_edges()) {
        fail("retimed graph edge count does not match retiming.apply(original)");
        return;
    }
    const auto endpoint_key = [&plan](int from, int to) {
        return static_cast<std::uint64_t>(from) *
                   static_cast<std::uint64_t>(plan.retimed.num_nodes()) +
               static_cast<std::uint64_t>(to);
    };
    std::unordered_map<std::uint64_t, int> by_endpoints;
    by_endpoints.reserve(static_cast<std::size_t>(plan.retimed.num_edges()));
    for (int eid = 0; eid < plan.retimed.num_edges(); ++eid) {
        const auto& e = plan.retimed.edge_ref(eid);
        by_endpoints.emplace(endpoint_key(e.from, e.to), eid);
    }
    for (const auto& e : recomputed.edges()) {
        const auto found = by_endpoints.find(endpoint_key(e.from, e.to));
        if (found == by_endpoints.end() ||
            plan.retimed.edge_ref(found->second).vectors != e.vectors) {
            fail("retimed graph disagrees with retiming.apply(original) on edge " +
                 original.node(e.from).name + " -> " + original.node(e.to).name);
            return;
        }
    }
}

}  // namespace

PlanCertificate certify_plan(const Mldg& original, const FusionPlan& plan) {
    PlanCertificate cert;
    auto fail = [&cert](const std::string& msg) {
        cert.valid = false;
        cert.violations.push_back(msg);
    };

    const int n = original.num_nodes();
    if (plan.retiming.num_nodes() != n || plan.retimed.num_nodes() != n) {
        fail("size mismatch between plan and original graph");
        return cert;
    }

    // Unfused fallback plans have their own contract (U1-U4): no fused nest
    // exists, so the strict-schedule / Property-4.2 conditions do not apply.
    const bool unfused_level = plan.level == ParallelismLevel::Unfused;
    const bool fallback_alg = plan.algorithm == AlgorithmUsed::DistributionFallback;
    if (unfused_level || fallback_alg) {
        if (unfused_level != fallback_alg) {
            fail("level/algorithm mismatch: Unfused and DistributionFallback imply each other");
        }
        for (int v = 0; v < n; ++v) {
            if (!plan.retiming.of(v).is_zero()) {
                fail("unfused plan carries a non-identity retiming");
                break;
            }
        }
        if (static_cast<int>(plan.body_order.size()) != n) {
            fail("unfused plan's body order is not program order");
        } else {
            for (int k = 0; k < n; ++k) {
                const int node = plan.body_order[static_cast<std::size_t>(k)];
                if (node < 0 || node >= n || original.node(node).order != k) {
                    fail("unfused plan's body order is not program order");
                    break;
                }
            }
        }
        check_retimed_graph(original, plan, fail);
        if (!is_legal_mldg(original)) {
            fail("unfused plan over a graph that is not program-model legal: the "
                 "distributed original is not an executable Figure-1 program");
        }
        return cert;
    }

    check_retimed_graph(original, plan, fail);

    // C2: body order is a permutation of the nodes.
    {
        std::vector<int> sorted = plan.body_order;
        std::sort(sorted.begin(), sorted.end());
        for (int v = 0; v < n; ++v) {
            if (v >= static_cast<int>(sorted.size()) || sorted[static_cast<std::size_t>(v)] != v) {
                fail("body order is not a permutation of the loop nodes");
                break;
            }
        }
    }

    // C1 + C2: fusion legality under the body order.
    if (static_cast<int>(plan.body_order.size()) == n &&
        !is_fusion_legal(plan.retimed, plan.body_order)) {
        fail("fusion is illegal: some retimed dependence is below (0,0) or a (0,0) "
             "dependence violates the body order");
    }

    // C5: strict schedule, perpendicular hyperplane.
    if (!is_strict_schedule_vector(plan.retimed, plan.schedule)) {
        fail("schedule vector is not strict for the retimed graph");
    }
    if (plan.schedule.dot(plan.hyperplane) != 0) {
        fail("hyperplane is not perpendicular to the schedule");
    }
    if (plan.schedule.is_zero()) {
        fail("schedule vector is zero");
    }

    // C6: Property 4.2 for inner-DOALL plans.
    if (plan.level == ParallelismLevel::InnerDoall &&
        static_cast<int>(plan.body_order.size()) == n &&
        !is_fused_inner_doall(plan.retimed, plan.body_order)) {
        fail("plan claims inner-DOALL but Property 4.2 fails");
    }
    return cert;
}

}  // namespace lf
