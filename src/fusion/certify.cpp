#include "fusion/certify.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "ldg/legality.hpp"

namespace lf {

namespace {

/// C3 + C4: recompute the retimed graph and compare edge by edge. An exact
/// match also certifies cycle-weight preservation (weights are derived from
/// the same retiming on both sides). Reports through `fail`.
///
/// O(E) expected: the plan's edges are indexed by endpoint pair once
/// (Mldg::add_edge merges parallel edges, so (from, to) is unique) instead
/// of a per-edge find_edge() scan -- this runs on the plan-cache hit path,
/// where it IS the admission cost.
void check_retimed_graph(const Mldg& original, const FusionPlan& plan,
                         const std::function<void(const std::string&)>& fail) {
    const Mldg recomputed = plan.retiming.apply(original);
    if (recomputed.num_edges() != plan.retimed.num_edges()) {
        fail("retimed graph edge count does not match retiming.apply(original)");
        return;
    }
    const auto endpoint_key = [&plan](int from, int to) {
        return static_cast<std::uint64_t>(from) *
                   static_cast<std::uint64_t>(plan.retimed.num_nodes()) +
               static_cast<std::uint64_t>(to);
    };
    std::unordered_map<std::uint64_t, int> by_endpoints;
    by_endpoints.reserve(static_cast<std::size_t>(plan.retimed.num_edges()));
    for (int eid = 0; eid < plan.retimed.num_edges(); ++eid) {
        const auto& e = plan.retimed.edge_ref(eid);
        by_endpoints.emplace(endpoint_key(e.from, e.to), eid);
    }
    for (const auto& e : recomputed.edges()) {
        const auto found = by_endpoints.find(endpoint_key(e.from, e.to));
        if (found == by_endpoints.end() ||
            plan.retimed.edge_ref(found->second).vectors != e.vectors) {
            fail("retimed graph disagrees with retiming.apply(original) on edge " +
                 original.node(e.from).name + " -> " + original.node(e.to).name);
            return;
        }
    }
}

}  // namespace

PlanCertificate certify_plan(const Mldg& original, const FusionPlan& plan) {
    PlanCertificate cert;
    auto fail = [&cert](const std::string& msg) {
        cert.valid = false;
        cert.violations.push_back(msg);
    };

    const int n = original.num_nodes();
    if (plan.retiming.num_nodes() != n || plan.retimed.num_nodes() != n) {
        fail("size mismatch between plan and original graph");
        return cert;
    }

    // Unfused fallback plans have their own contract (U1-U4): no fused nest
    // exists, so the strict-schedule / Property-4.2 conditions do not apply.
    const bool unfused_level = plan.level == ParallelismLevel::Unfused;
    const bool fallback_alg = plan.algorithm == AlgorithmUsed::DistributionFallback;
    if (unfused_level || fallback_alg) {
        if (unfused_level != fallback_alg) {
            fail("level/algorithm mismatch: Unfused and DistributionFallback imply each other");
        }
        for (int v = 0; v < n; ++v) {
            if (!plan.retiming.of(v).is_zero()) {
                fail("unfused plan carries a non-identity retiming");
                break;
            }
        }
        if (static_cast<int>(plan.body_order.size()) != n) {
            fail("unfused plan's body order is not program order");
        } else {
            for (int k = 0; k < n; ++k) {
                const int node = plan.body_order[static_cast<std::size_t>(k)];
                if (node < 0 || node >= n || original.node(node).order != k) {
                    fail("unfused plan's body order is not program order");
                    break;
                }
            }
        }
        check_retimed_graph(original, plan, fail);
        if (!is_legal_mldg(original)) {
            fail("unfused plan over a graph that is not program-model legal: the "
                 "distributed original is not an executable Figure-1 program");
        }
        return cert;
    }

    check_retimed_graph(original, plan, fail);

    // C2: body order is a permutation of the nodes.
    {
        std::vector<int> sorted = plan.body_order;
        std::sort(sorted.begin(), sorted.end());
        for (int v = 0; v < n; ++v) {
            if (v >= static_cast<int>(sorted.size()) || sorted[static_cast<std::size_t>(v)] != v) {
                fail("body order is not a permutation of the loop nodes");
                break;
            }
        }
    }

    // C1 + C2: fusion legality under the body order.
    if (static_cast<int>(plan.body_order.size()) == n &&
        !is_fusion_legal(plan.retimed, plan.body_order)) {
        fail("fusion is illegal: some retimed dependence is below (0,0) or a (0,0) "
             "dependence violates the body order");
    }

    // C5: strict schedule, perpendicular hyperplane.
    if (!is_strict_schedule_vector(plan.retimed, plan.schedule)) {
        fail("schedule vector is not strict for the retimed graph");
    }
    if (plan.schedule.dot(plan.hyperplane) != 0) {
        fail("hyperplane is not perpendicular to the schedule");
    }
    if (plan.schedule.is_zero()) {
        fail("schedule vector is zero");
    }

    // C6: Property 4.2 for inner-DOALL plans.
    if (plan.level == ParallelismLevel::InnerDoall &&
        static_cast<int>(plan.body_order.size()) == n &&
        !is_fused_inner_doall(plan.retimed, plan.body_order)) {
        fail("plan claims inner-DOALL but Property 4.2 fails");
    }
    return cert;
}

namespace {

/// First nonzero component > 0, or all zero.
bool lex_nonnegative(const VecN& d) {
    for (int k = 0; k < d.dim(); ++k) {
        if (d[k] > 0) return true;
        if (d[k] < 0) return false;
    }
    return true;
}

/// Kahn's check over the zero-vector dependence subgraph: same-point
/// instances must admit a serial body order (what the N-D executors and the
/// C emitter derive via md_body_order).
bool zero_subgraph_acyclic(const MldgN& retimed) {
    const int n = retimed.num_nodes();
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    for (const auto& e : retimed.edges()) {
        if (e.from == e.to) continue;
        bool same_point = false;
        for (const VecN& d : e.vectors) same_point = same_point || d.is_zero();
        if (!same_point) continue;
        succ[static_cast<std::size_t>(e.from)].push_back(e.to);
        ++indegree[static_cast<std::size_t>(e.to)];
    }
    std::vector<int> ready;
    for (int v = 0; v < n; ++v) {
        if (indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
    int visited = 0;
    while (!ready.empty()) {
        const int v = ready.back();
        ready.pop_back();
        ++visited;
        for (const int w : succ[static_cast<std::size_t>(v)]) {
            if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
        }
    }
    return visited == n;
}

}  // namespace

PlanCertificate certify_plan(const MldgN& original, const NdFusionPlan& plan) {
    PlanCertificate cert;
    auto fail = [&cert](const std::string& why) {
        cert.valid = false;
        cert.violations.push_back(why);
    };

    // N1: sizes and dimensions.
    const int n = original.num_nodes();
    if (plan.retimed.num_nodes() != n ||
        static_cast<int>(plan.retiming.values().size()) != n) {
        fail("size mismatch between plan and original graph");
        return cert;
    }
    if (plan.retimed.dim() != original.dim() || plan.schedule.dim() != original.dim()) {
        fail("dimension mismatch between plan and original graph");
        return cert;
    }
    for (int v = 0; v < n; ++v) {
        if (plan.retiming.of(v).dim() != original.dim()) {
            fail("dimension mismatch between retiming and original graph");
            return cert;
        }
    }

    // N2: the retimed graph is retiming.apply(original).
    try {
        const MldgN recomputed = plan.retiming.apply(original);
        if (recomputed.num_edges() != plan.retimed.num_edges()) {
            fail("retimed graph edge count does not match retiming.apply(original)");
        } else {
            for (int eid = 0; eid < recomputed.num_edges(); ++eid) {
                const auto& want = recomputed.edge_ref(eid);
                const auto found = plan.retimed.find_edge(want.from, want.to);
                if (!found.has_value() ||
                    plan.retimed.edge_ref(*found).vectors != want.vectors) {
                    fail("retimed graph disagrees with retiming.apply(original) on edge " +
                         original.node_ref(want.from).name + " -> " +
                         original.node_ref(want.to).name);
                    break;
                }
            }
        }
    } catch (const std::exception& e) {
        fail(std::string("retiming does not apply to the original graph: ") + e.what());
        return cert;
    }

    // N3: lexicographic legality of every retimed vector; outermost-carried
    // plans promise level-0 carries everything.
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            if (!lex_nonnegative(d)) {
                fail("retimed dependence is lexicographically negative");
            }
            if (plan.level == NdParallelism::OutermostCarried && d[0] < 1) {
                fail("plan claims outermost-carried but a dependence is not carried by level 0");
            }
        }
    }

    // N4: strict schedule.
    if (plan.schedule.is_zero()) {
        fail("schedule vector is zero");
    }
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            if (!d.is_zero() && plan.schedule.dot(d) <= 0) {
                fail("schedule vector is not strict for the retimed graph");
            }
        }
    }

    // N5: same-point instances serialize.
    if (!zero_subgraph_acyclic(plan.retimed)) {
        fail("zero-dependence cycle in the retimed graph");
    }
    return cert;
}

}  // namespace lf
