#pragma once
// Independent certification of fusion plans. plan_fusion() asserts its own
// postconditions, but a library consumer (or a plan loaded/constructed
// externally) deserves a standalone checker that re-derives every condition
// the paper requires from first principles:
//
//   C1  the retimed graph's dependence vectors are all >= (0,0);
//   C2  the body order is a permutation consistent with every retimed (0,0)
//       dependence;
//   C3  the retimed graph really is `retiming.apply(original)` (no stale or
//       tampered copy);
//   C4  cycle weights are preserved (retiming validity, Section 2.3);
//   C5  the schedule vector is strict (s . d > 0 for nonzero d) and the
//       hyperplane is perpendicular to it;
//   C6  inner-DOALL plans satisfy Property 4.2 (every vector has x >= 1 or
//       is (0,0) respecting body order).
//
// Unfused plans (the degradation ladder's loop-distribution fallback,
// ParallelismLevel::Unfused) claim nothing about a fused nest, so C5/C6 do
// not apply; their contract is checked instead:
//
//   U1  level and algorithm agree (Unfused iff DistributionFallback);
//   U2  the retiming is the identity and the "retimed" graph is the
//       original (the fallback changes nothing);
//   U3  the body order is program order;
//   U4  the original graph is program-model legal -- that is what makes
//       the unfused per-loop inner-DOALL program executable.

#include <string>
#include <vector>

#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"

namespace lf {

struct PlanCertificate {
    bool valid = true;
    std::vector<std::string> violations;

    explicit operator bool() const { return valid; }
};

/// Checks C1-C6 for `plan` against `original`. Never throws on a bad plan;
/// every problem is reported as a violation string.
[[nodiscard]] PlanCertificate certify_plan(const Mldg& original, const FusionPlan& plan);

/// Depth-d analogue, solver-free (the same conditions the N-D executor
/// relies on):
///
///   N1  sizes and dimensions agree between plan and original;
///   N2  the retimed graph really is `retiming.apply(original)`;
///   N3  every retimed dependence vector is lexicographically >= 0, and
///       outermost-carried plans have every vector carried by level 0;
///   N4  the schedule vector is strict (s . d > 0 for every nonzero d);
///   N5  the zero-vector dependence subgraph is acyclic (a topological
///       body order exists for same-point instances).
[[nodiscard]] PlanCertificate certify_plan(const MldgN& original, const NdFusionPlan& plan);

}  // namespace lf
