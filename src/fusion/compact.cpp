#include "fusion/compact.hpp"

#include <algorithm>

#include "fusion/cyclic_doall.hpp"
#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

namespace {

struct XConstraint {
    int from;
    int to;
    std::int64_t bound;
};

std::int64_t spread_of(const std::vector<std::int64_t>& values) {
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    return *hi - *lo;
}

/// Solves the base system plus pairwise spread bounds; nullopt if infeasible.
/// `warm` (optional) must be a fixpoint of a looser system over the same
/// variables (the base alone, or base + a larger spread bound).
std::optional<std::vector<std::int64_t>> solve_with_spread(
    int num_nodes, const std::vector<XConstraint>& base, std::int64_t spread,
    SolverStats* stats, SolverWorkspace<std::int64_t>* ws,
    const std::vector<std::int64_t>* warm) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < num_nodes; ++v) sys.add_variable();
    for (const XConstraint& c : base) sys.add_constraint(c.from, c.to, c.bound);
    for (int u = 0; u < num_nodes; ++u) {
        for (int v = 0; v < num_nodes; ++v) {
            if (u != v) sys.add_constraint(u, v, spread);  // x_v - x_u <= spread
        }
    }
    auto solution = sys.solve(nullptr, stats, ws, warm);
    if (!solution.feasible) return std::nullopt;
    return std::move(solution.values);
}

/// Minimum-spread solution of the base system, assuming it is feasible.
/// `warm_base` (optional): a known fixpoint of the base system. Each binary-
/// search probe then warms from the best (loosest-spread) feasible solution
/// found so far: shrinking the spread bound only tightens the system, so the
/// previous fixpoint stays a valid starting potential.
std::vector<std::int64_t> min_spread_solution(int num_nodes,
                                              const std::vector<XConstraint>& base,
                                              SolverStats* stats,
                                              SolverWorkspace<std::int64_t>* ws,
                                              const std::vector<std::int64_t>* warm_base) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < num_nodes; ++v) sys.add_variable();
    for (const XConstraint& c : base) sys.add_constraint(c.from, c.to, c.bound);
    const auto unconstrained = sys.solve(nullptr, stats, ws, warm_base);
    check(unconstrained.feasible, "min_spread_solution: base system infeasible");

    std::int64_t hi = spread_of(unconstrained.values);
    std::vector<std::int64_t> best = unconstrained.values;
    std::int64_t lo = 0;
    while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (auto solution = solve_with_spread(num_nodes, base, mid, stats, ws, &best)) {
            best = std::move(*solution);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return best;
}

}  // namespace

std::optional<Retiming> cyclic_doall_fusion_compact(const Mldg& g, SolverStats* stats,
                                                    PlannerWorkspace* ws,
                                                    const std::vector<std::int64_t>* warm_base) {
    check(is_schedulable(g), "cyclic_doall_fusion_compact: input MLDG is not schedulable");
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;

    // Phase 1 constraints, exactly as in cyclic_doall_fusion.
    std::vector<XConstraint> base;
    base.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        base.push_back({e.from, e.to, e.delta().x - (e.is_hard() ? 1 : 0)});
    }
    {
        DifferenceConstraintSystem<std::int64_t> probe;
        for (int v = 0; v < g.num_nodes(); ++v) probe.add_variable();
        for (const XConstraint& c : base) probe.add_constraint(c.from, c.to, c.bound);
        if (!probe.solve(nullptr, stats, scalar_ws, warm_base).feasible) {
            return std::nullopt;  // same failure as phase 1
        }
    }
    const std::vector<std::int64_t> rx =
        min_spread_solution(g.num_nodes(), base, stats, scalar_ws, warm_base);

    // Phase 2 against the compacted x-solution.
    DifferenceConstraintSystem<std::int64_t> sys_y;
    for (int v = 0; v < g.num_nodes(); ++v) sys_y.add_variable();
    for (const auto& e : g.edges()) {
        if (e.is_hard()) continue;
        const std::int64_t retimed_x = e.delta().x + rx[static_cast<std::size_t>(e.from)] -
                                       rx[static_cast<std::size_t>(e.to)];
        if (retimed_x != 0) continue;
        sys_y.add_equality(e.from, e.to, e.delta().y);
    }
    const auto sol_y = sys_y.solve(nullptr, stats, scalar_ws);
    if (!sol_y.feasible) {
        // Compaction changed the zero-x edge set unfavourably; fall back.
        return cyclic_doall_fusion(g, nullptr, nullptr, ws).retiming;
    }
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
        r.of(v) = Vec2{rx[static_cast<std::size_t>(v)], sol_y.values[static_cast<std::size_t>(v)]};
    }
    return r;
}

Retiming acyclic_doall_fusion_compact(const Mldg& g, SolverStats* stats, PlannerWorkspace* ws,
                                      const std::vector<std::int64_t>* warm_base) {
    check(g.is_acyclic(), "acyclic_doall_fusion_compact: input MLDG has a cycle");
    check(is_schedulable(g), "acyclic_doall_fusion_compact: input MLDG is not schedulable");
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;
    std::vector<XConstraint> base;
    base.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        base.push_back({e.from, e.to, e.delta().x - 1});
    }
    const std::vector<std::int64_t> rx =
        min_spread_solution(g.num_nodes(), base, stats, scalar_ws, warm_base);
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) r.of(v) = Vec2{rx[static_cast<std::size_t>(v)], 0};
    return r;
}

}  // namespace lf
