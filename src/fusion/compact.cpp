#include "fusion/compact.hpp"

#include <algorithm>
#include <cstdlib>

#include "fusion/cyclic_doall.hpp"
#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

namespace {

/// Solves the base system plus pairwise spread bounds; nullopt if infeasible.
/// `warm` (optional) must be a fixpoint of a looser system over the same
/// variables (the base alone, or base + a larger spread bound).
std::optional<std::vector<std::int64_t>> solve_with_spread(
    int num_nodes, const std::vector<ScalarConstraint>& base, std::int64_t spread,
    SolverStats* stats, SolverWorkspace<std::int64_t>* ws,
    const std::vector<std::int64_t>* warm) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < num_nodes; ++v) sys.add_variable();
    for (const ScalarConstraint& c : base) sys.add_constraint(c.from, c.to, c.bound);
    for (int u = 0; u < num_nodes; ++u) {
        for (int v = 0; v < num_nodes; ++v) {
            if (u != v) sys.add_constraint(u, v, spread);  // x_v - x_u <= spread
        }
    }
    auto solution = sys.solve(nullptr, stats, ws, warm);
    if (!solution.feasible) return std::nullopt;
    return std::move(solution.values);
}

}  // namespace

std::int64_t centering_shift(std::vector<std::int64_t> values) {
    if (values.empty()) return 0;
    const auto mid = values.begin() + (static_cast<std::ptrdiff_t>(values.size()) - 1) / 2;
    std::nth_element(values.begin(), mid, values.end());
    return -*mid;
}

std::int64_t value_spread(const std::vector<std::int64_t>& values) {
    if (values.empty()) return 0;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    return *hi - *lo;
}

std::vector<std::int64_t> min_spread_solution(int num_nodes,
                                              const std::vector<ScalarConstraint>& base,
                                              SolverStats* stats,
                                              SolverWorkspace<std::int64_t>* ws,
                                              const std::vector<std::int64_t>* warm_base) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int v = 0; v < num_nodes; ++v) sys.add_variable();
    for (const ScalarConstraint& c : base) sys.add_constraint(c.from, c.to, c.bound);
    const auto unconstrained = sys.solve(nullptr, stats, ws, warm_base);
    check(unconstrained.feasible, "min_spread_solution: base system infeasible");

    std::int64_t hi = value_spread(unconstrained.values);
    std::vector<std::int64_t> best = unconstrained.values;
    std::int64_t lo = 0;
    while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (auto solution = solve_with_spread(num_nodes, base, mid, stats, ws, &best)) {
            best = std::move(*solution);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return best;
}

std::int64_t retiming_magnitude(const Retiming& r) {
    std::int64_t total = 0;
    for (int v = 0; v < r.num_nodes(); ++v) {
        total += std::abs(r.of(v).x) + std::abs(r.of(v).y);
    }
    return total;
}

MagnitudeOutcome minimize_plan_magnitude(const Mldg& g, const FusionPlan& plan,
                                         SolverStats* stats, PlannerWorkspace* ws) {
    MagnitudeOutcome out;
    out.retiming = plan.retiming;
    out.before = retiming_magnitude(plan.retiming);
    out.after = out.before;
    const int n = g.num_nodes();
    if (n == 0 || plan.algorithm == AlgorithmUsed::DistributionFallback) return out;
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;

    Retiming cand = plan.retiming;

    // (a) Trailing-component re-solve. With x fixed, the y feasibility
    // conditions are a scalar difference system; its minimum-spread solution
    // comes from the same binary-search core the compact pass uses, warmed
    // from the plan's own y components (a fixpoint of the base system).
    std::vector<ScalarConstraint> base;
    bool refine_y = false;
    switch (plan.algorithm) {
        case AlgorithmUsed::CyclicDoall:
        case AlgorithmUsed::CyclicDoallForced:
            // Mirror Algorithm 4 phase 2: every non-hard edge whose x-retimed
            // delta is zero keeps its y equality (as an inequality pair);
            // everything else leaves y free.
            for (const auto& e : g.edges()) {
                if (e.is_hard()) continue;
                const std::int64_t rx = e.delta().x + cand.of(e.from).x - cand.of(e.to).x;
                if (rx != 0) continue;
                base.push_back({e.from, e.to, e.delta().y});
                base.push_back({e.to, e.from, -e.delta().y});
            }
            refine_y = true;
            break;
        case AlgorithmUsed::Hyperplane:
            // Lexicographic nonnegativity of every retimed dependence vector:
            // vectors carried on x leave y free; x-flat vectors need retimed
            // y >= 0, i.e. y(to) - y(from) <= d.y.
            for (const auto& e : g.edges()) {
                for (const Vec2& d : e.vectors) {
                    if (d.x + cand.of(e.from).x - cand.of(e.to).x != 0) continue;
                    base.push_back({e.from, e.to, d.y});
                }
            }
            refine_y = true;
            break;
        case AlgorithmUsed::AcyclicDoall:
        case AlgorithmUsed::DistributionFallback:
            break;  // y is identically zero (or the plan is unfused)
    }
    if (refine_y) {
        std::vector<std::int64_t> warm_y(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) warm_y[static_cast<std::size_t>(v)] = cand.of(v).y;
        const std::vector<std::int64_t> ry =
            min_spread_solution(n, base, stats, scalar_ws, &warm_y);
        // Adopt only a strict spread win: an equal-spread re-solution churns
        // the plan without shrinking any fringe.
        if (value_spread(ry) < value_spread(warm_y)) {
            for (int v = 0; v < n; ++v) cand.of(v).y = ry[static_cast<std::size_t>(v)];
        }
    }

    // (b) Per-component median recentering: a uniform translation cancels
    // out of every retimed delta (delta + r(from) - r(to)), so the retimed
    // graph, schedule, and fringes are untouched -- only sum |r| shrinks.
    {
        std::vector<std::int64_t> xs(static_cast<std::size_t>(n));
        std::vector<std::int64_t> ys(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            xs[static_cast<std::size_t>(v)] = cand.of(v).x;
            ys[static_cast<std::size_t>(v)] = cand.of(v).y;
        }
        const std::int64_t tx = centering_shift(std::move(xs));
        const std::int64_t ty = centering_shift(std::move(ys));
        for (int v = 0; v < n; ++v) {
            cand.of(v).x += tx;
            cand.of(v).y += ty;
        }
    }

    const std::int64_t after = retiming_magnitude(cand);
    if (after < out.before) {
        out.retiming = std::move(cand);
        out.after = after;
    }
    return out;
}

std::optional<Retiming> cyclic_doall_fusion_compact(const Mldg& g, SolverStats* stats,
                                                    PlannerWorkspace* ws,
                                                    const std::vector<std::int64_t>* warm_base) {
    check(is_schedulable(g), "cyclic_doall_fusion_compact: input MLDG is not schedulable");
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;

    // Phase 1 constraints, exactly as in cyclic_doall_fusion.
    std::vector<ScalarConstraint> base;
    base.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        base.push_back({e.from, e.to, e.delta().x - (e.is_hard() ? 1 : 0)});
    }
    {
        DifferenceConstraintSystem<std::int64_t> probe;
        for (int v = 0; v < g.num_nodes(); ++v) probe.add_variable();
        for (const ScalarConstraint& c : base) probe.add_constraint(c.from, c.to, c.bound);
        if (!probe.solve(nullptr, stats, scalar_ws, warm_base).feasible) {
            return std::nullopt;  // same failure as phase 1
        }
    }
    const std::vector<std::int64_t> rx =
        min_spread_solution(g.num_nodes(), base, stats, scalar_ws, warm_base);

    // Phase 2 against the compacted x-solution.
    DifferenceConstraintSystem<std::int64_t> sys_y;
    for (int v = 0; v < g.num_nodes(); ++v) sys_y.add_variable();
    for (const auto& e : g.edges()) {
        if (e.is_hard()) continue;
        const std::int64_t retimed_x = e.delta().x + rx[static_cast<std::size_t>(e.from)] -
                                       rx[static_cast<std::size_t>(e.to)];
        if (retimed_x != 0) continue;
        sys_y.add_equality(e.from, e.to, e.delta().y);
    }
    const auto sol_y = sys_y.solve(nullptr, stats, scalar_ws);
    if (!sol_y.feasible) {
        // Compaction changed the zero-x edge set unfavourably; fall back.
        return cyclic_doall_fusion(g, nullptr, nullptr, ws).retiming;
    }
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
        r.of(v) = Vec2{rx[static_cast<std::size_t>(v)], sol_y.values[static_cast<std::size_t>(v)]};
    }
    return r;
}

Retiming acyclic_doall_fusion_compact(const Mldg& g, SolverStats* stats, PlannerWorkspace* ws,
                                      const std::vector<std::int64_t>* warm_base) {
    check(g.is_acyclic(), "acyclic_doall_fusion_compact: input MLDG has a cycle");
    check(is_schedulable(g), "acyclic_doall_fusion_compact: input MLDG is not schedulable");
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;
    std::vector<ScalarConstraint> base;
    base.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        base.push_back({e.from, e.to, e.delta().x - 1});
    }
    const std::vector<std::int64_t> rx =
        min_spread_solution(g.num_nodes(), base, stats, scalar_ws, warm_base);
    Retiming r(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) r.of(v) = Vec2{rx[static_cast<std::size_t>(v)], 0};
    return r;
}

}  // namespace lf
