#pragma once
// Retiming spread optimization -- and the optimality result it uncovers.
//
// The *x-spread* (max_u r_x(u) - min_u r_x(u)) is exactly the number of
// prologue/epilogue rows the transformed code pays (ablation::
// prologue_rows). These entry points find the minimum-spread solution of an
// algorithm's x-constraint system by binary-searching the largest feasible
// pairwise bound  x_u - x_v <= S  (still a difference system; feasibility
// is monotone in S).
//
// OPTIMALITY RESULT (verified by tests/test_compact.cpp and the A4 ablation,
// and provable): the plain all-sources Bellman-Ford solution the paper's
// algorithms already use is spread-minimal. Its values are
// x_v = min_u d(u, v) <= 0 (d = shortest constraint-graph distance), so its
// spread is max_v max_u (-d(u, v)) -- and ANY feasible solution has
// x_v - x_u >= -d(u, v) for every pair, so no solution can do better.
// The binary search therefore never improves the spread; it serves as an
// independent, executable cross-check of that optimality (and can still
// pick a different solution of equal spread, after which Algorithm 4's
// phase 2 is re-validated, with fallback to the plain solution).

#include <cstdint>
#include <optional>
#include <vector>

#include "fusion/driver.hpp"
#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/solver_stats.hpp"

namespace lf {

struct PlannerWorkspace;
template <typename W>
struct SolverWorkspace;

/// One scalar difference constraint  x_to - x_from <= bound  of a system
/// handed to min_spread_solution.
struct ScalarConstraint {
    int from;
    int to;
    std::int64_t bound;
};

/// max - min of a non-empty value vector (0 when empty).
[[nodiscard]] std::int64_t value_spread(const std::vector<std::int64_t>& values);

/// Deterministic centering shift for one retiming component: the uniform
/// translation t minimizing sum_v |values[v] + t| is t = -median; with an
/// even count any t between the two middle values ties, and we pick the
/// lower median so the choice is reproducible. A uniform per-component
/// translation cancels out of every retimed delta, so applying the shift
/// never changes the retimed graph, schedule, or fringes.
[[nodiscard]] std::int64_t centering_shift(std::vector<std::int64_t> values);

/// Minimum-spread solution of a feasible scalar difference system: binary-
/// searches the tightest feasible pairwise bound x_u - x_v <= S on top of
/// `base` (feasibility is monotone in S). Throws lf::Error if `base` itself
/// is infeasible. `warm_base` (optional): a known fixpoint of the base
/// system; each probe then warms from the best feasible solution so far.
/// This is the shared core behind the compact pass, the SmallestCode
/// post-pass, and the N-D trailing-component refinement.
[[nodiscard]] std::vector<std::int64_t> min_spread_solution(
    int num_nodes, const std::vector<ScalarConstraint>& base, SolverStats* stats = nullptr,
    SolverWorkspace<std::int64_t>* ws = nullptr,
    const std::vector<std::int64_t>* warm_base = nullptr);

/// Total retiming magnitude sum_v (|r_x(v)| + |r_y(v)|) -- the quantity
/// PlanPolicy::SmallestCode minimizes, and the `retiming_magnitude` field
/// the ladder reports per plan.
[[nodiscard]] std::int64_t retiming_magnitude(const Retiming& r);

/// Result of the SmallestCode post-pass. `retiming` equals the input plan's
/// retiming when no strictly smaller feasible candidate was found.
struct MagnitudeOutcome {
    Retiming retiming{0};
    std::int64_t before = 0;
    std::int64_t after = 0;
    [[nodiscard]] bool changed() const { return after < before; }
};

/// PlanPolicy::SmallestCode post-pass: given an already-feasible plan,
/// re-solve for the smallest-magnitude feasible retiming. The leading (x)
/// components stay fixed -- the lexicographic solve already made their
/// spread minimal (see the optimality note above) and moving them could
/// change the rung's verdict -- so the pass (a) re-solves the trailing (y)
/// system through the same min-spread binary-search core, warm-started from
/// the plan's own y components (a known fixpoint: shrinking only tightens),
/// and (b) recenters each component at its median, a uniform translation
/// that cancels out of every retimed delta. Feasibility is preserved by
/// construction; the caller still re-validates the candidate exactly like
/// any other plan (fusion legality + strict schedule) before adopting it.
[[nodiscard]] MagnitudeOutcome minimize_plan_magnitude(const Mldg& g, const FusionPlan& plan,
                                                       SolverStats* stats = nullptr,
                                                       PlannerWorkspace* ws = nullptr);

/// Algorithm 4 with x-spread minimization. Same success set as
/// cyclic_doall_fusion (falls back to its solution if the compacted phase 1
/// breaks phase 2).
///
/// `ws` (optional): reusable solver scratch. `warm_base` (optional): a known
/// fixpoint of the *base* phase-1 system for this graph (e.g. the x
/// components of the rung's accepted retiming); warms the feasibility probe
/// and the unconstrained base solve, and the binary search then warms each
/// tighter spread probe from the best solution found so far. Results are
/// identical with or without warming.
[[nodiscard]] std::optional<Retiming> cyclic_doall_fusion_compact(
    const Mldg& g, SolverStats* stats = nullptr, PlannerWorkspace* ws = nullptr,
    const std::vector<std::int64_t>* warm_base = nullptr);

/// Algorithm 3 with x-spread minimization (y components zero, as in the
/// paper). Requires an acyclic, schedulable graph. `ws`/`warm_base` as above
/// (the base system here bounds every edge by delta.x - 1; the x components
/// of Algorithm 3's Vec2 solution are its fixpoint -- the lexicographic
/// minimum of a set has the minimal first coordinate).
[[nodiscard]] Retiming acyclic_doall_fusion_compact(
    const Mldg& g, SolverStats* stats = nullptr, PlannerWorkspace* ws = nullptr,
    const std::vector<std::int64_t>* warm_base = nullptr);

}  // namespace lf
