#pragma once
// Retiming spread optimization -- and the optimality result it uncovers.
//
// The *x-spread* (max_u r_x(u) - min_u r_x(u)) is exactly the number of
// prologue/epilogue rows the transformed code pays (ablation::
// prologue_rows). These entry points find the minimum-spread solution of an
// algorithm's x-constraint system by binary-searching the largest feasible
// pairwise bound  x_u - x_v <= S  (still a difference system; feasibility
// is monotone in S).
//
// OPTIMALITY RESULT (verified by tests/test_compact.cpp and the A4 ablation,
// and provable): the plain all-sources Bellman-Ford solution the paper's
// algorithms already use is spread-minimal. Its values are
// x_v = min_u d(u, v) <= 0 (d = shortest constraint-graph distance), so its
// spread is max_v max_u (-d(u, v)) -- and ANY feasible solution has
// x_v - x_u >= -d(u, v) for every pair, so no solution can do better.
// The binary search therefore never improves the spread; it serves as an
// independent, executable cross-check of that optimality (and can still
// pick a different solution of equal spread, after which Algorithm 4's
// phase 2 is re-validated, with fallback to the plain solution).

#include <cstdint>
#include <optional>
#include <vector>

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/solver_stats.hpp"

namespace lf {

struct PlannerWorkspace;

/// Algorithm 4 with x-spread minimization. Same success set as
/// cyclic_doall_fusion (falls back to its solution if the compacted phase 1
/// breaks phase 2).
///
/// `ws` (optional): reusable solver scratch. `warm_base` (optional): a known
/// fixpoint of the *base* phase-1 system for this graph (e.g. the x
/// components of the rung's accepted retiming); warms the feasibility probe
/// and the unconstrained base solve, and the binary search then warms each
/// tighter spread probe from the best solution found so far. Results are
/// identical with or without warming.
[[nodiscard]] std::optional<Retiming> cyclic_doall_fusion_compact(
    const Mldg& g, SolverStats* stats = nullptr, PlannerWorkspace* ws = nullptr,
    const std::vector<std::int64_t>* warm_base = nullptr);

/// Algorithm 3 with x-spread minimization (y components zero, as in the
/// paper). Requires an acyclic, schedulable graph. `ws`/`warm_base` as above
/// (the base system here bounds every edge by delta.x - 1; the x components
/// of Algorithm 3's Vec2 solution are its fixpoint -- the lexicographic
/// minimum of a set has the minimal first coordinate).
[[nodiscard]] Retiming acyclic_doall_fusion_compact(
    const Mldg& g, SolverStats* stats = nullptr, PlannerWorkspace* ws = nullptr,
    const std::vector<std::int64_t>* warm_base = nullptr);

}  // namespace lf
