#include "fusion/cyclic_doall.hpp"

#include <cstdint>

#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

CyclicDoallOutcome cyclic_doall_fusion(const Mldg& g, ResourceGuard* guard,
                                       SolverStats* stats, PlannerWorkspace* ws) {
    check(is_schedulable(g), "cyclic_doall_fusion: input MLDG is not schedulable");
    CyclicDoallOutcome out;

    // ---- Phase 1: first retiming component. ----
    // Hard edges must end outer-loop-carried (retimed x >= 1); all others may
    // stay within one outer iteration (retimed x >= 0).
    if (faultpoint::triggered("cyclic_doall.phase1")) {
        out.failed_phase = 1;  // simulated phase-1 infeasibility
        return out;
    }
    DifferenceConstraintSystem<std::int64_t> sys_x;
    for (int i = 0; i < g.num_nodes(); ++i) sys_x.add_variable(g.node_ref(i).name);
    for (const auto& e : g.edges()) {
        sys_x.add_constraint(e.from, e.to, e.delta().x - (e.is_hard() ? 1 : 0));
    }
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;
    const auto sol_x = sys_x.solve(guard, stats, scalar_ws);
    if (sol_x.status != StatusCode::Ok) {
        out.status = sol_x.status;
        out.failed_phase = 1;
        return out;
    }
    if (!sol_x.feasible) {
        out.failed_phase = 1;
        return out;
    }
    out.phase1_values = sol_x.values;

    // ---- Phase 2: second retiming component. ----
    // Only non-hard forward edges whose x-retimed weight is exactly zero are
    // constrained: they must land on (0,0), hence an equality on y.
    if (faultpoint::triggered("cyclic_doall.phase2")) {
        out.failed_phase = 2;  // simulated phase-2 infeasibility
        return out;
    }
    DifferenceConstraintSystem<std::int64_t> sys_y;
    for (int i = 0; i < g.num_nodes(); ++i) sys_y.add_variable(g.node_ref(i).name);
    for (const auto& e : g.edges()) {
        if (e.is_hard()) continue;
        std::int64_t shifted = 0;
        std::int64_t retimed_x = 0;
        if (__builtin_add_overflow(e.delta().x, sol_x.values[static_cast<std::size_t>(e.from)],
                                   &shifted) ||
            __builtin_sub_overflow(shifted, sol_x.values[static_cast<std::size_t>(e.to)],
                                   &retimed_x)) {
            out.status = StatusCode::Overflow;
            out.failed_phase = 2;
            return out;
        }
        if (retimed_x != 0) continue;
        sys_y.add_equality(e.from, e.to, e.delta().y);
    }
    const auto sol_y = sys_y.solve(guard, stats, scalar_ws);
    if (sol_y.status != StatusCode::Ok) {
        out.status = sol_y.status;
        out.failed_phase = 2;
        return out;
    }
    if (!sol_y.feasible) {
        out.failed_phase = 2;
        return out;
    }

    Retiming r(g.num_nodes());
    for (int i = 0; i < g.num_nodes(); ++i) {
        r.of(i) = Vec2{sol_x.values[static_cast<std::size_t>(i)],
                       sol_y.values[static_cast<std::size_t>(i)]};
    }
    out.retiming = std::move(r);
    return out;
}

}  // namespace lf
