#pragma once
// Algorithm 4: legal loop fusion with full innermost parallelism for cyclic
// 2LDGs (Theorem 4.2).
//
// Two phases of ordinary (1-D) Bellman-Ford:
//   Phase 1 (x): solve  r_x(v) - r_x(u) <= delta(e).x - [e is hard]  so hard
//     edges end with retimed x >= 1 and all other edges with retimed x >= 0.
//   Phase 2 (y): every non-hard edge whose x-retimed weight is zero must end
//     exactly at (0,0); encode  r_y(v) - r_y(u) == delta(e).y  as a
//     constraint pair (edge + negated back-edge) and solve. Edges forced to
//     (0,0) are honored by the fused body's statement order, which the driver
//     recomputes as a topological order of the (0,0)-dependence subgraph
//     (always acyclic here: a (0,0)-cycle would be a zero-weight cycle,
//     excluded by schedulability).
// Either phase's constraint graph containing a negative cycle means no
// retiming can make the fused innermost loop DOALL (the "only if" direction
// of Theorem 4.2); the caller then falls back to hyperplane_fusion.

#include <cstdint>
#include <optional>
#include <vector>

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {

struct PlannerWorkspace;

struct CyclicDoallOutcome {
    /// Present iff both phases were feasible.
    std::optional<Retiming> retiming;
    /// Which phase failed (1 or 2); 0 on success. For reports/diagnostics.
    int failed_phase = 0;
    /// The phase-1 (x-component) fixpoint whenever phase 1 was feasible --
    /// populated even when phase 2 then fails, so a later ladder rung that
    /// solves a tightened x-system (e.g. forced carry: every edge hard) can
    /// warm-start from it.
    std::vector<std::int64_t> phase1_values;
    /// Ok when the algorithm ran to completion -- phase infeasibility (the
    /// normal "fall back to hyperplane" outcome) is still Ok. Non-Ok
    /// (ResourceExhausted / Overflow / Internal) means a phase solve was
    /// aborted; `retiming` is then absent and `failed_phase` records which
    /// phase was running.
    StatusCode status = StatusCode::Ok;
};

/// Requires `g` legal (throws lf::Error otherwise). Accepts acyclic graphs
/// too (both phases are then trivially feasible). The optional guard bounds
/// the phase solves; the fault points "cyclic_doall.phase1" and
/// "cyclic_doall.phase2" simulate the corresponding phase infeasibility.
/// `ws` (optional) supplies reusable solver scratch (PlannerWorkspace.scalar).
[[nodiscard]] CyclicDoallOutcome cyclic_doall_fusion(const Mldg& g,
                                                     ResourceGuard* guard = nullptr,
                                                     SolverStats* stats = nullptr,
                                                     PlannerWorkspace* ws = nullptr);

}  // namespace lf
