#include "fusion/driver.hpp"

#include <sstream>

#include "fusion/ablation.hpp"
#include "fusion/compact.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/hyperplane.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

std::string to_string(ParallelismLevel level) {
    switch (level) {
        case ParallelismLevel::InnerDoall: return "inner-DOALL";
        case ParallelismLevel::Hyperplane: return "DOALL-hyperplane";
        case ParallelismLevel::Unfused: return "unfused (per-loop inner DOALL)";
    }
    return "?";
}

std::string to_string(AlgorithmUsed algorithm) {
    switch (algorithm) {
        case AlgorithmUsed::AcyclicDoall: return "Algorithm 3 (acyclic)";
        case AlgorithmUsed::CyclicDoall: return "Algorithm 4 (cyclic two-phase)";
        case AlgorithmUsed::CyclicDoallForced: return "Algorithm 4 variant (forced carry)";
        case AlgorithmUsed::Hyperplane: return "Algorithm 5 (hyperplane)";
        case AlgorithmUsed::DistributionFallback: return "loop distribution (unfused fallback)";
    }
    return "?";
}

namespace {

/// Rung-failure severity for picking try_plan_fusion's overall error code:
/// running out of budget must surface even when later rungs report ordinary
/// infeasibility, and detected overflow outranks a mere fault/postcondition.
int severity(StatusCode code) {
    switch (code) {
        case StatusCode::ResourceExhausted: return 4;
        case StatusCode::Overflow: return 3;
        case StatusCode::Internal: return 2;
        case StatusCode::Infeasible: return 1;
        default: return 0;
    }
}

/// Completes a plan whose retiming/level/algorithm/schedule are set: builds
/// the retimed graph and fused body order and re-verifies the paper's
/// guarantees. Returns the empty string on success, else the reason the plan
/// must be rejected (the ladder then moves on to the next rung).
std::string finalize_plan(const Mldg& g, FusionPlan& plan) {
    plan.retimed = plan.retiming.apply(g);
    auto order = fused_body_order(plan.retimed);
    if (!order.has_value()) return "(0,0)-dependence cycle in the retimed graph";
    plan.body_order = std::move(*order);
    if (!is_fusion_legal(plan.retimed, plan.body_order)) return "fusion illegal after retiming";
    if (plan.level == ParallelismLevel::InnerDoall &&
        !is_fused_inner_doall(plan.retimed, plan.body_order)) {
        return "fused inner loop not DOALL";
    }
    if (!is_strict_schedule_vector(plan.retimed, plan.schedule)) return "schedule not strict";
    return {};
}

std::vector<int> program_order_of(const Mldg& g) {
    std::vector<int> order(static_cast<std::size_t>(g.num_nodes()));
    for (int i = 0; i < g.num_nodes(); ++i) {
        order[static_cast<std::size_t>(g.node_ref(i).order)] = i;
    }
    return order;
}

}  // namespace

Result<FusionPlan> try_plan_fusion(const Mldg& g, const TryPlanOptions& options) {
    ResourceGuard guard(options.limits);
    PlannerWorkspace* ws = options.workspace;
    std::vector<StageReport> stages;
    std::uint64_t metered = 0;
    // Solver telemetry accumulated since the last push_stage; each stage
    // report carries exactly the solver work done on its behalf.
    SolverStats rung_stats;
    auto push_stage = [&](std::string stage, StatusCode code, std::string detail) {
        StageReport r;
        r.stage = std::move(stage);
        r.code = code;
        r.detail = std::move(detail);
        r.budget_consumed = guard.consumed() - metered;
        metered = guard.consumed();
        r.solver = rung_stats;
        rung_stats = SolverStats{};
        stages.push_back(std::move(r));
    };

    // ---- Validation ----
    // Program-model legality is solver-free and implies schedulability
    // (L2+L3: every cycle has x-weight >= 1); only graphs outside the
    // program model need the solver-backed schedulability check.
    const bool model_legal = is_legal_mldg(g);
    if (!model_legal) {
        const LegalityReport rep =
            check_schedulable(g, &guard, &rung_stats, ws != nullptr ? &ws->scalar : nullptr);
        if (rep.status != StatusCode::Ok) {
            push_stage("validate", rep.status, "schedulability check aborted");
            Status st(rep.status, "try_plan_fusion: could not validate the input MLDG");
            st.stages = std::move(stages);
            return st;
        }
        if (!rep.legal) {
            const std::string why =
                rep.violations.empty() ? std::string("?") : rep.violations.front();
            push_stage("validate", StatusCode::IllegalInput, why);
            Status st(StatusCode::IllegalInput,
                      "try_plan_fusion: input MLDG is not schedulable: " + why);
            st.stages = std::move(stages);
            return st;
        }
    }
    push_stage("validate", StatusCode::Ok,
               model_legal ? "program-model legal" : "schedulable (outside the program model)");

    std::optional<int> a4_failed_phase;
    // Rung 2's phase-1 fixpoint, kept for warm-starting rung 3: the forced-
    // carry x-system only tightens the selective phase-1 system (non-hard
    // bounds drop from delta.x to delta.x - 1), so the selective fixpoint is
    // a valid starting potential there.
    std::vector<std::int64_t> a4_phase1_values;

    // Compact refinement (PlanOptions::compact_prologue) as a post-pass: the
    // plain rung's solution is kept unless the compacted one re-verifies.
    auto apply_compact = [&](FusionPlan& plan) {
        if (!options.plan.compact_prologue) return;
        try {
            // The accepted rung's raw x components are the fixpoint of the
            // compact pass's base system (directly for Algorithm 4's phase 1;
            // via the lexicographic-minimum projection for Algorithm 3), so
            // they warm-start the compact solves without changing them.
            std::vector<std::int64_t> local_warm;
            std::vector<std::int64_t>& warm_x = ws != nullptr ? ws->warm_x : local_warm;
            warm_x.clear();
            warm_x.reserve(static_cast<std::size_t>(g.num_nodes()));
            for (int v = 0; v < g.num_nodes(); ++v) warm_x.push_back(plan.retiming.of(v).x);
            std::optional<Retiming> alt;
            if (plan.algorithm == AlgorithmUsed::AcyclicDoall) {
                alt = acyclic_doall_fusion_compact(g, &rung_stats, ws, &warm_x);
            } else if (plan.algorithm == AlgorithmUsed::CyclicDoall) {
                alt = cyclic_doall_fusion_compact(g, &rung_stats, ws, &warm_x);
            }
            if (!alt.has_value()) return;
            FusionPlan refined;
            refined.retiming = std::move(*alt);
            refined.level = plan.level;
            refined.algorithm = plan.algorithm;
            refined.schedule = plan.schedule;
            refined.hyperplane = plan.hyperplane;
            if (finalize_plan(g, refined).empty()) {
                plan = std::move(refined);
                push_stage("compact", StatusCode::Ok, "x-spread minimized");
            }
        } catch (const std::exception&) {
            // Keep the plain rung's verified solution.
        }
    };

    auto finish = [&](FusionPlan&& plan) -> FusionPlan {
        apply_compact(plan);
        plan.cyclic_doall_failed_phase = a4_failed_phase;
        plan.stages = std::move(stages);
        return std::move(plan);
    };

    // ---- Rung 1: Algorithm 3 (acyclic graphs only). ----
    if (!options.distribution_only && g.is_acyclic()) {
        try {
            auto r = try_acyclic_doall_fusion(g, &guard, &rung_stats, ws);
            if (r.ok()) {
                FusionPlan plan;
                plan.retiming = std::move(r).value();
                plan.algorithm = AlgorithmUsed::AcyclicDoall;
                plan.level = ParallelismLevel::InnerDoall;
                const std::string err = finalize_plan(g, plan);
                if (err.empty()) {
                    push_stage("acyclic-doall", StatusCode::Ok, {});
                    return finish(std::move(plan));
                }
                push_stage("acyclic-doall", StatusCode::Internal, err);
            } else {
                push_stage("acyclic-doall", r.status().code(), r.status().message());
            }
        } catch (const std::exception& e) {
            push_stage("acyclic-doall", StatusCode::Internal, e.what());
        }
    }

    // ---- Rung 2: Algorithm 4 (also handles acyclic graphs when rung 1
    // fell through). ----
    if (!options.distribution_only) try {
        auto outcome = cyclic_doall_fusion(g, &guard, &rung_stats, ws);
        a4_phase1_values = std::move(outcome.phase1_values);
        if (outcome.retiming.has_value()) {
            FusionPlan plan;
            plan.retiming = std::move(*outcome.retiming);
            plan.algorithm = AlgorithmUsed::CyclicDoall;
            plan.level = ParallelismLevel::InnerDoall;
            const std::string err = finalize_plan(g, plan);
            if (err.empty()) {
                push_stage("cyclic-doall", StatusCode::Ok, {});
                return finish(std::move(plan));
            }
            push_stage("cyclic-doall", StatusCode::Internal, err);
        } else {
            a4_failed_phase = outcome.failed_phase;
            if (outcome.status != StatusCode::Ok) {
                push_stage("cyclic-doall", outcome.status,
                           "phase " + std::to_string(outcome.failed_phase) + " aborted");
            } else {
                push_stage("cyclic-doall", StatusCode::Infeasible,
                           "phase " + std::to_string(outcome.failed_phase) + " infeasible");
            }
        }
    } catch (const std::exception& e) {
        push_stage("cyclic-doall", StatusCode::Internal, e.what());
    }

    // ---- Rung 3: forced-carry variant (extension; still DOALL rows). ----
    if (!options.distribution_only) try {
        auto r = ablation::try_cyclic_doall_all_hard(
            g, &guard, &rung_stats, ws,
            a4_phase1_values.empty() ? nullptr : &a4_phase1_values);
        if (r.ok()) {
            FusionPlan plan;
            plan.retiming = std::move(r).value();
            plan.algorithm = AlgorithmUsed::CyclicDoallForced;
            plan.level = ParallelismLevel::InnerDoall;
            const std::string err = finalize_plan(g, plan);
            if (err.empty()) {
                push_stage("forced-carry", StatusCode::Ok, {});
                return finish(std::move(plan));
            }
            push_stage("forced-carry", StatusCode::Internal, err);
        } else {
            push_stage("forced-carry", r.status().code(), r.status().message());
        }
    } catch (const std::exception& e) {
        push_stage("forced-carry", StatusCode::Internal, e.what());
    }

    // ---- Rung 4: Algorithm 5 (hyperplane wavefront). ----
    if (!options.distribution_only) try {
        auto r = try_hyperplane_fusion(g, &guard, &rung_stats, ws);
        if (r.ok()) {
            FusionPlan plan;
            plan.retiming = std::move(r.value().retiming);
            plan.algorithm = AlgorithmUsed::Hyperplane;
            plan.level = ParallelismLevel::Hyperplane;
            plan.schedule = r.value().schedule;
            plan.hyperplane = r.value().hyperplane;
            const std::string err = finalize_plan(g, plan);
            if (err.empty()) {
                push_stage("hyperplane", StatusCode::Ok, {});
                return finish(std::move(plan));
            }
            push_stage("hyperplane", StatusCode::Internal, err);
        } else {
            push_stage("hyperplane", r.status().code(), r.status().message());
        }
    } catch (const std::exception& e) {
        push_stage("hyperplane", StatusCode::Internal, e.what());
    }

    // ---- Rung 5: loop distribution (unfused but legal). ----
    // No solver involved: the plan *is* the original program, so it needs no
    // verification beyond program-model legality (checked above). Only that
    // legality makes the unfused original executable, so graphs like the
    // paper's Figure 14 (schedulable only) cannot take this rung.
    if (options.allow_distribution_fallback) {
        if (!model_legal) {
            push_stage("distribution", StatusCode::IllegalInput,
                       "input is not program-model legal; the unfused original is not "
                       "an executable Figure-1 program");
        } else if (faultpoint::triggered("distribution")) {
            push_stage("distribution", StatusCode::Internal, "fault injected");
        } else {
            FusionPlan plan;
            plan.retiming = Retiming(g.num_nodes());  // identity
            plan.level = ParallelismLevel::Unfused;
            plan.algorithm = AlgorithmUsed::DistributionFallback;
            plan.retimed = g;
            plan.body_order = program_order_of(g);
            push_stage("distribution", StatusCode::Ok, "unfused fallback");
            plan.cyclic_doall_failed_phase = a4_failed_phase;
            plan.stages = std::move(stages);
            return plan;
        }
    }

    // ---- Every rung fell through. ----
    StatusCode worst = StatusCode::Internal;
    int worst_rank = -1;
    for (const auto& s : stages) {
        if (s.code == StatusCode::Ok) continue;
        if (severity(s.code) > worst_rank) {
            worst_rank = severity(s.code);
            worst = s.code;
        }
    }
    Status st(worst, "try_plan_fusion: no ladder rung produced a verifiable plan");
    st.stages = std::move(stages);
    return st;
}

FusionPlan plan_fusion(const Mldg& g, const PlanOptions& options) {
    {
        const LegalityReport rep = check_schedulable(g);
        check(rep.legal, "plan_fusion: input MLDG is not schedulable: " +
                             (rep.violations.empty() ? std::string("?") : rep.violations.front()));
    }
    TryPlanOptions topts;
    topts.plan = options;
    topts.allow_distribution_fallback = false;  // preserve the classic success set
    auto result = try_plan_fusion(g, topts);
    check(result.ok(), "plan_fusion: " + result.status().str());
    FusionPlan plan = std::move(result).value();
    plan.stages.clear();  // classic API: no ladder trace
    return plan;
}

std::string FusionPlan::describe(const Mldg& original) const {
    std::ostringstream os;
    os << to_string(algorithm) << " -> " << to_string(level) << '\n';
    os << "  retiming: " << retiming.str(original) << '\n';
    os << "  schedule s = " << schedule.str() << ", hyperplane h = " << hyperplane.str() << '\n';
    os << "  fused body order:";
    for (int v : body_order) os << ' ' << original.node(v).name;
    os << '\n';
    if (cyclic_doall_failed_phase) {
        os << "  (Algorithm 4 infeasible at phase " << *cyclic_doall_failed_phase << ")\n";
    }
    if (!stages.empty()) {
        os << "  ladder:\n";
        for (const auto& s : stages) os << "    " << s.str() << '\n';
    }
    return os.str();
}

}  // namespace lf
