#include "fusion/driver.hpp"

#include <span>
#include <sstream>

#include "fusion/ladder.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

std::string to_string(ParallelismLevel level) {
    switch (level) {
        case ParallelismLevel::InnerDoall: return "inner-DOALL";
        case ParallelismLevel::Hyperplane: return "DOALL-hyperplane";
        case ParallelismLevel::Unfused: return "unfused (per-loop inner DOALL)";
    }
    return "?";
}

std::string to_string(AlgorithmUsed algorithm) {
    switch (algorithm) {
        case AlgorithmUsed::AcyclicDoall: return "Algorithm 3 (acyclic)";
        case AlgorithmUsed::CyclicDoall: return "Algorithm 4 (cyclic two-phase)";
        case AlgorithmUsed::CyclicDoallForced: return "Algorithm 4 variant (forced carry)";
        case AlgorithmUsed::Hyperplane: return "Algorithm 5 (hyperplane)";
        case AlgorithmUsed::DistributionFallback: return "loop distribution (unfused fallback)";
    }
    return "?";
}

std::string to_string(PlanPolicy policy) {
    switch (policy) {
        case PlanPolicy::FastestSchedule: return "fastest";
        case PlanPolicy::SmallestCode: return "smallest";
    }
    return "?";
}

std::optional<PlanPolicy> parse_plan_policy(const std::string& text) {
    if (text == "fastest" || text == "fastest-schedule") return PlanPolicy::FastestSchedule;
    if (text == "smallest" || text == "smallest-code") return PlanPolicy::SmallestCode;
    return std::nullopt;
}

Result<FusionPlan> try_plan_fusion(const Mldg& g, const TryPlanOptions& options) {
    // The degradation ladder lives in fusion/ladder.cpp as a batched planner
    // over the shared constraint-system core; the sequential API is a batch
    // of one, so both paths are the same code (and bit-identical).
    BatchPlanJob job;
    job.graph = &g;
    job.hints = options.warm_hints;
    try_plan_fusion_batch(std::span<BatchPlanJob>(&job, 1), options);
    if (options.artifacts != nullptr) *options.artifacts = std::move(job.artifacts);
    return std::move(*job.result);
}

FusionPlan plan_fusion(const Mldg& g, const PlanOptions& options) {
    {
        const LegalityReport rep = check_schedulable(g);
        check(rep.legal, "plan_fusion: input MLDG is not schedulable: " +
                             (rep.violations.empty() ? std::string("?") : rep.violations.front()));
    }
    TryPlanOptions topts;
    topts.plan = options;
    topts.allow_distribution_fallback = false;  // preserve the classic success set
    auto result = try_plan_fusion(g, topts);
    check(result.ok(), "plan_fusion: " + result.status().str());
    FusionPlan plan = std::move(result).value();
    plan.stages.clear();  // classic API: no ladder trace
    return plan;
}

std::string FusionPlan::describe(const Mldg& original) const {
    std::ostringstream os;
    os << to_string(algorithm) << " -> " << to_string(level) << '\n';
    os << "  retiming: " << retiming.str(original) << '\n';
    os << "  schedule s = " << schedule.str() << ", hyperplane h = " << hyperplane.str() << '\n';
    os << "  fused body order:";
    for (int v : body_order) os << ' ' << original.node(v).name;
    os << '\n';
    if (cyclic_doall_failed_phase) {
        os << "  (Algorithm 4 infeasible at phase " << *cyclic_doall_failed_phase << ")\n";
    }
    if (!stages.empty()) {
        os << "  ladder:\n";
        for (const auto& s : stages) os << "    " << s.str() << '\n';
    }
    return os.str();
}

}  // namespace lf
