#include "fusion/driver.hpp"

#include <sstream>

#include "fusion/ablation.hpp"
#include "fusion/compact.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/hyperplane.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

std::string to_string(ParallelismLevel level) {
    switch (level) {
        case ParallelismLevel::InnerDoall: return "inner-DOALL";
        case ParallelismLevel::Hyperplane: return "DOALL-hyperplane";
    }
    return "?";
}

std::string to_string(AlgorithmUsed algorithm) {
    switch (algorithm) {
        case AlgorithmUsed::AcyclicDoall: return "Algorithm 3 (acyclic)";
        case AlgorithmUsed::CyclicDoall: return "Algorithm 4 (cyclic two-phase)";
        case AlgorithmUsed::CyclicDoallForced: return "Algorithm 4 variant (forced carry)";
        case AlgorithmUsed::Hyperplane: return "Algorithm 5 (hyperplane)";
    }
    return "?";
}

FusionPlan plan_fusion(const Mldg& g, const PlanOptions& options) {
    {
        const LegalityReport rep = check_schedulable(g);
        check(rep.legal, "plan_fusion: input MLDG is not schedulable: " +
                             (rep.violations.empty() ? std::string("?") : rep.violations.front()));
    }
    FusionPlan plan;
    if (g.is_acyclic()) {
        plan.retiming = options.compact_prologue ? acyclic_doall_fusion_compact(g)
                                                 : acyclic_doall_fusion(g);
        plan.algorithm = AlgorithmUsed::AcyclicDoall;
        plan.level = ParallelismLevel::InnerDoall;
    } else {
        auto outcome = options.compact_prologue ? CyclicDoallOutcome{cyclic_doall_fusion_compact(g), 0}
                                                : cyclic_doall_fusion(g);
        if (!outcome.retiming.has_value() && options.compact_prologue) {
            outcome = cyclic_doall_fusion(g);  // recover the failed-phase info
        }
        if (outcome.retiming.has_value()) {
            plan.retiming = std::move(*outcome.retiming);
            plan.algorithm = AlgorithmUsed::CyclicDoall;
            plan.level = ParallelismLevel::InnerDoall;
        } else if (auto forced = ablation::cyclic_doall_all_hard(g)) {
            // Extension beyond the paper: phase 2 failed, but the cycles
            // have enough outer slack to carry *every* dependence -- still
            // a fully parallel inner loop, at the cost of deeper prologues.
            plan.cyclic_doall_failed_phase = outcome.failed_phase;
            plan.retiming = std::move(*forced);
            plan.algorithm = AlgorithmUsed::CyclicDoallForced;
            plan.level = ParallelismLevel::InnerDoall;
        } else {
            plan.cyclic_doall_failed_phase = outcome.failed_phase;
            auto hp = hyperplane_fusion(g);
            plan.retiming = std::move(hp.retiming);
            plan.algorithm = AlgorithmUsed::Hyperplane;
            plan.level = ParallelismLevel::Hyperplane;
            plan.schedule = hp.schedule;
            plan.hyperplane = hp.hyperplane;
        }
    }
    plan.retimed = plan.retiming.apply(g);

    auto order = fused_body_order(plan.retimed);
    check(order.has_value(), "plan_fusion: internal error ((0,0)-dependence cycle)");
    plan.body_order = std::move(*order);

    // Post-conditions: DOALL plans must pass Property 4.2; all plans must be
    // legally fusible and admit their schedule as a strict schedule vector.
    check(is_fusion_legal(plan.retimed, plan.body_order),
          "plan_fusion: internal error (fusion illegal)");
    if (plan.level == ParallelismLevel::InnerDoall) {
        check(is_fused_inner_doall(plan.retimed, plan.body_order),
              "plan_fusion: internal error (inner loop not DOALL)");
    }
    check(is_strict_schedule_vector(plan.retimed, plan.schedule),
          "plan_fusion: internal error (schedule not strict)");
    return plan;
}

std::string FusionPlan::describe(const Mldg& original) const {
    std::ostringstream os;
    os << to_string(algorithm) << " -> " << to_string(level) << '\n';
    os << "  retiming: " << retiming.str(original) << '\n';
    os << "  schedule s = " << schedule.str() << ", hyperplane h = " << hyperplane.str() << '\n';
    os << "  fused body order:";
    for (int v : body_order) os << ' ' << original.node(v).name;
    os << '\n';
    if (cyclic_doall_failed_phase) {
        os << "  (Algorithm 4 infeasible at phase " << *cyclic_doall_failed_phase << ")\n";
    }
    return os.str();
}

}  // namespace lf
