#pragma once
// Fusion driver: applies the strongest applicable algorithm from the paper.
//
//   acyclic 2LDG          -> Algorithm 3 (always DOALL)          [Thm 4.1]
//   cyclic, Thm 4.2 holds -> Algorithm 4 (DOALL)                 [Thm 4.2]
//   cyclic, forced-carry feasible -> Algorithm 4 variant (DOALL) [extension]
//   otherwise             -> Algorithm 5 (DOALL hyperplane)      [Thm 4.4]
//
// Every legal 2LDG therefore fuses with *some* form of full parallelism; the
// plan records which, plus the schedule that realizes it.
//
// Two entry points:
//
//   plan_fusion      -- the classic throwing API (lf::Error on illegal input
//                       or an internal failure). Unchanged behavior.
//   try_plan_fusion  -- the hardened, never-throwing API. Walks the same
//                       algorithms as a *degradation ladder*: when a rung
//                       fails (solver fault, budget exhausted, postcondition
//                       broken), the driver records a StageReport and tries
//                       the next-strongest rung, ending -- for program-model
//                       legal inputs -- at the loop-distribution fallback,
//                       which is always legal because it changes nothing:
//                       the original loops run in program order, each with
//                       its own DOALL innermost loop. The returned plan (or
//                       error Status) carries the per-rung trace.

#include <optional>
#include <string>
#include <vector>

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {

struct PlannerWorkspace;
struct LadderWarmHints;
struct LadderArtifacts;

enum class ParallelismLevel {
    /// The fused innermost loop is DOALL: one barrier per outer iteration.
    InnerDoall,
    /// Iterations on hyperplanes perpendicular to `schedule` are DOALL:
    /// one barrier per hyperplane (wavefront execution).
    Hyperplane,
    /// Degradation-ladder floor: no fusion performed. The original loops run
    /// in program order; each innermost loop is individually DOALL (that is
    /// what program-model legality means), but fusion's locality/barrier
    /// benefits are forfeited.
    Unfused,
};

enum class AlgorithmUsed {
    AcyclicDoall,      // paper Algorithm 3
    CyclicDoall,       // paper Algorithm 4
    CyclicDoallForced, // extension: Algorithm 4 with every edge forced
                       // outer-carried -- rescues phase-2 failures whose
                       // cycles have enough x-slack (see DESIGN.md,
                       // "Extensions"); still yields DOALL rows
    Hyperplane,        // paper Algorithm 5 (LLOFRA + Lemma 4.3 schedule)
    DistributionFallback, // robustness fallback: keep the loops distributed
                          // (unfused but legal); only try_plan_fusion
                          // produces this
};

/// Planning objective. Feasibility is policy-independent: both policies
/// succeed on exactly the same inputs with the same parallelism level; the
/// policy only selects WHICH feasible retiming a successful rung returns.
enum class PlanPolicy {
    /// First feasible retiming wins (the historical behavior): the ladder's
    /// lexicographic solve already minimizes the outer-loop spread, nothing
    /// else is optimized. Plans are bit-identical to pre-policy builds.
    FastestSchedule,
    /// After the rung succeeds, re-solve for the smallest-magnitude feasible
    /// retiming (fusion/compact.hpp minimize_plan_magnitude): trailing
    /// retiming components are spread-minimized through the same constraint
    /// core, then the whole vector is recentered. Shrinks the
    /// prologue/epilogue fringes of the emitted code; legality is re-checked
    /// exactly as for any plan.
    SmallestCode,
};

[[nodiscard]] std::string to_string(ParallelismLevel level);
[[nodiscard]] std::string to_string(AlgorithmUsed algorithm);
[[nodiscard]] std::string to_string(PlanPolicy policy);
/// Parses "fastest" / "smallest" (the CLI spellings). Returns nullopt on
/// anything else.
[[nodiscard]] std::optional<PlanPolicy> parse_plan_policy(const std::string& text);

struct FusionPlan {
    Retiming retiming;
    /// The retimed graph G_r (all dependence vectors shifted).
    Mldg retimed;
    ParallelismLevel level = ParallelismLevel::InnerDoall;
    AlgorithmUsed algorithm = AlgorithmUsed::AcyclicDoall;
    /// Strict schedule vector for the retimed, fused program. (1,0) for
    /// InnerDoall (rows execute in sequence, row contents in parallel).
    Vec2 schedule{1, 0};
    /// DOALL hyperplane direction, perpendicular to `schedule`.
    Vec2 hyperplane{0, 1};
    /// Statement order of the fused body: body_order[k] is the node whose
    /// loop body executes k-th at every fused iteration point. A topological
    /// order of the retimed (0,0)-dependence subgraph (ties broken by
    /// program order); usually equals program order.
    std::vector<int> body_order;
    /// Set when Algorithm 4 was attempted and failed: which phase (1 or 2).
    std::optional<int> cyclic_doall_failed_phase;
    /// try_plan_fusion's per-rung trace: one entry per ladder rung attempted,
    /// in order, including the rung that produced this plan (code Ok).
    /// Empty for plans produced by plan_fusion.
    std::vector<StageReport> stages;

    [[nodiscard]] std::string describe(const Mldg& original) const;
};

struct PlanOptions {
    /// Post-optimize DOALL retimings to minimize the x-spread (the number
    /// of prologue/epilogue rows) via fusion/compact.hpp. Never changes the
    /// achieved parallelism level.
    bool compact_prologue = false;
    /// Planning objective (see PlanPolicy). The default reproduces the
    /// historical first-feasible behavior bit-for-bit.
    PlanPolicy policy = PlanPolicy::FastestSchedule;
};

/// Plans fusion for a legal 2LDG (throws lf::Error on illegal input).
[[nodiscard]] FusionPlan plan_fusion(const Mldg& g, const PlanOptions& options = {});

struct TryPlanOptions {
    PlanOptions plan;
    /// Budget shared by *all* rungs of the ladder (solver steps + deadline).
    ResourceLimits limits;
    /// Allow the terminal loop-distribution rung. It requires program-model
    /// legality (the unfused program must itself be executable); disable to
    /// reproduce plan_fusion's success set exactly.
    bool allow_distribution_fallback = true;
    /// Skip rungs 1-4 and go straight to the loop-distribution fallback
    /// (validation still runs; requires allow_distribution_fallback to
    /// produce a plan). The service layer's circuit breaker uses this to
    /// short-circuit a workload class that keeps failing the full ladder.
    bool distribution_only = false;
    /// Reusable solver scratch (graph/solver_workspace.hpp), typically one
    /// per worker thread. When set, every rung's solves run allocation-free
    /// in the steady state and consecutive rungs warm-start each other where
    /// the constraint systems nest (see DESIGN.md, "Planning performance").
    /// Never changes any planning result. Not owned; may be null.
    PlannerWorkspace* workspace = nullptr;
    /// Starting potentials for delta re-planning, derived from a structural
    /// near-neighbor's cached fixpoints (fusion/ladder.hpp). Warm-start
    /// legality guarantees the plan is unchanged; only relaxation work
    /// shrinks. Not owned; may be null.
    const LadderWarmHints* warm_hints = nullptr;
    /// Optional output: the feasible fixpoints the ladder computed (for the
    /// plan cache's distance-vector sidecar). Not owned; may be null.
    LadderArtifacts* artifacts = nullptr;
};

/// Never-throwing planner with graceful degradation. Tries, in order:
/// Algorithm 3 (acyclic only) / Algorithm 4, the forced-carry variant,
/// Algorithm 5, and finally loop distribution (program-model legal inputs
/// only). Returns the first plan whose postconditions verify; otherwise a
/// non-Ok Status whose `stages` list why every rung fell through. Statuses:
/// IllegalInput (input fails validation), Infeasible / Internal /
/// ResourceExhausted / Overflow (every rung failed; the code is the most
/// severe rung failure, resource exhaustion dominating).
[[nodiscard]] Result<FusionPlan> try_plan_fusion(const Mldg& g,
                                                 const TryPlanOptions& options = {});

}  // namespace lf
