#pragma once
// Fusion driver: applies the strongest applicable algorithm from the paper.
//
//   acyclic 2LDG          -> Algorithm 3 (always DOALL)          [Thm 4.1]
//   cyclic, Thm 4.2 holds -> Algorithm 4 (DOALL)                 [Thm 4.2]
//   cyclic, forced-carry feasible -> Algorithm 4 variant (DOALL) [extension]
//   otherwise             -> Algorithm 5 (DOALL hyperplane)      [Thm 4.4]
//
// Every legal 2LDG therefore fuses with *some* form of full parallelism; the
// plan records which, plus the schedule that realizes it.

#include <optional>
#include <string>

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"

namespace lf {

enum class ParallelismLevel {
    /// The fused innermost loop is DOALL: one barrier per outer iteration.
    InnerDoall,
    /// Iterations on hyperplanes perpendicular to `schedule` are DOALL:
    /// one barrier per hyperplane (wavefront execution).
    Hyperplane,
};

enum class AlgorithmUsed {
    AcyclicDoall,      // paper Algorithm 3
    CyclicDoall,       // paper Algorithm 4
    CyclicDoallForced, // extension: Algorithm 4 with every edge forced
                       // outer-carried -- rescues phase-2 failures whose
                       // cycles have enough x-slack (see DESIGN.md,
                       // "Extensions"); still yields DOALL rows
    Hyperplane,        // paper Algorithm 5 (LLOFRA + Lemma 4.3 schedule)
};

[[nodiscard]] std::string to_string(ParallelismLevel level);
[[nodiscard]] std::string to_string(AlgorithmUsed algorithm);

struct FusionPlan {
    Retiming retiming;
    /// The retimed graph G_r (all dependence vectors shifted).
    Mldg retimed;
    ParallelismLevel level = ParallelismLevel::InnerDoall;
    AlgorithmUsed algorithm = AlgorithmUsed::AcyclicDoall;
    /// Strict schedule vector for the retimed, fused program. (1,0) for
    /// InnerDoall (rows execute in sequence, row contents in parallel).
    Vec2 schedule{1, 0};
    /// DOALL hyperplane direction, perpendicular to `schedule`.
    Vec2 hyperplane{0, 1};
    /// Statement order of the fused body: body_order[k] is the node whose
    /// loop body executes k-th at every fused iteration point. A topological
    /// order of the retimed (0,0)-dependence subgraph (ties broken by
    /// program order); usually equals program order.
    std::vector<int> body_order;
    /// Set when Algorithm 4 was attempted and failed: which phase (1 or 2).
    std::optional<int> cyclic_doall_failed_phase;

    [[nodiscard]] std::string describe(const Mldg& original) const;
};

struct PlanOptions {
    /// Post-optimize DOALL retimings to minimize the x-spread (the number
    /// of prologue/epilogue rows) via fusion/compact.hpp. Never changes the
    /// achieved parallelism level.
    bool compact_prologue = false;
};

/// Plans fusion for a legal 2LDG (throws lf::Error on illegal input).
[[nodiscard]] FusionPlan plan_fusion(const Mldg& g, const PlanOptions& options = {});

}  // namespace lf
