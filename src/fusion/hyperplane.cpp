#include "fusion/hyperplane.hpp"
#include <optional>

#include <algorithm>

#include "fusion/llofra.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/math_util.hpp"

namespace lf {

Vec2 schedule_vector_for(const Mldg& retimed_graph) {
    bool any_nonzero = false;
    std::optional<std::int64_t> s1;  // set iff some vector has x >= 1
    for (const auto& e : retimed_graph.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.is_zero()) continue;
            check(d >= Vec2{0, 0},
                  "schedule_vector_for: dependence vector below (0,0); run LLOFRA first");
            any_nonzero = true;
            if (d.x >= 1) {
                // Need s1 * d.x + d.y > 0, i.e. s1 > -d.y / d.x; the paper's
                // formula s1 = max floor(-d.y/d.x) + 1 (possibly negative).
                const std::int64_t lower = floor_div(-d.y, d.x) + 1;
                s1 = s1 ? std::max(*s1, lower) : lower;
            }
        }
    }
    if (!any_nonzero) return Vec2{1, 0};  // no dependences: rows already DOALL
    if (!s1) return Vec2{0, 1};           // Lemma 4.3 case a == 0
    return Vec2{*s1, 1};
}

Result<HyperplaneResult> try_hyperplane_fusion(const Mldg& g, ResourceGuard* guard,
                                               SolverStats* stats, PlannerWorkspace* ws) {
    if (faultpoint::triggered("hyperplane")) {
        return Status(StatusCode::Internal, "hyperplane_fusion: fault injected");
    }
    HyperplaneResult out;
    auto retiming = try_llofra(g, guard, stats, ws);
    if (!retiming.ok()) return retiming.status();
    out.retiming = std::move(retiming).value();
    const Mldg retimed = out.retiming.apply(g);
    try {
        out.schedule = schedule_vector_for(retimed);
    } catch (const Error& e) {
        return Status(StatusCode::Internal, e.what());
    }
    out.hyperplane = Vec2{out.schedule.y, -out.schedule.x};
    if (!is_strict_schedule_vector(retimed, out.schedule)) {
        return Status(StatusCode::Internal,
                      "hyperplane_fusion: internal error (computed schedule is not strict)");
    }
    return out;
}

HyperplaneResult hyperplane_fusion(const Mldg& g) {
    auto result = try_hyperplane_fusion(g);
    check(result.ok(), result.status().message());
    return std::move(result).value();
}

}  // namespace lf
