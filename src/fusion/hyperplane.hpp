#pragma once
// Algorithm 5: full hyperplane parallelism for general cyclic 2LDGs
// (Theorem 4.4, Lemma 4.3).
//
// When no retiming can make the fused *row* (inner loop) DOALL, fuse legally
// with LLOFRA (all retimed dependence vectors >= (0,0)) and then compute a
// strict schedule vector s: iterations on a common hyperplane h (with
// h . s = 0) carry no dependences among themselves and execute in parallel,
// wavefront style.

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {

struct PlannerWorkspace;

struct HyperplaneResult {
    Retiming retiming;
    /// Strict schedule vector: s . d > 0 for every nonzero retimed vector.
    Vec2 schedule;
    /// DOALL hyperplane direction, perpendicular to the schedule.
    Vec2 hyperplane;
};

/// Requires `g` legal (throws lf::Error otherwise); always succeeds
/// (Theorem 4.4: legal graphs have every cycle weight > (0,0)).
[[nodiscard]] HyperplaneResult hyperplane_fusion(const Mldg& g);

/// Never-throwing variant. Non-Ok: IllegalInput (not schedulable),
/// ResourceExhausted / Overflow (solve cut short), Internal (fault point
/// "hyperplane" armed, or the computed schedule fails the strictness
/// postcondition).
[[nodiscard]] Result<HyperplaneResult> try_hyperplane_fusion(const Mldg& g,
                                                             ResourceGuard* guard = nullptr,
                                                             SolverStats* stats = nullptr,
                                                             PlannerWorkspace* ws = nullptr);

/// Lemma 4.3 in isolation: given a graph whose nonzero dependence vectors are
/// all >= (0,0), produce a strict schedule vector. Exposed for testing and
/// for the baselines.
[[nodiscard]] Vec2 schedule_vector_for(const Mldg& retimed_graph);

}  // namespace lf
