#include "fusion/ladder.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "fusion/compact.hpp"
#include "fusion/hyperplane.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/cemit.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

namespace {

/// Rung-failure severity for the overall error code (same ranking as the
/// historical driver): budget exhaustion must surface over ordinary
/// infeasibility, overflow over a mere fault/postcondition.
int severity(StatusCode code) {
    switch (code) {
        case StatusCode::ResourceExhausted: return 4;
        case StatusCode::Overflow: return 3;
        case StatusCode::Internal: return 2;
        case StatusCode::Infeasible: return 1;
        default: return 0;
    }
}

std::vector<int> program_order_of(const Mldg& g) {
    std::vector<int> order(static_cast<std::size_t>(g.num_nodes()));
    for (int i = 0; i < g.num_nodes(); ++i) {
        order[static_cast<std::size_t>(g.node_ref(i).order)] = i;
    }
    return order;
}

/// Completes a plan whose retiming/level/algorithm/schedule are set and
/// re-verifies the paper's guarantees. `prebuilt_retimed`, when given, is
/// the already-applied retimed graph (Algorithm 5 computes it for its
/// schedule derivation; rebuilding it would be byte-identical work), and
/// `schedule_already_strict` skips the strictness re-check the caller just
/// performed on that same graph. Returns "" on success, else the reason the
/// plan is rejected.
std::string finalize_plan(const Mldg& g, FusionPlan& plan, Mldg* prebuilt_retimed = nullptr,
                          bool schedule_already_strict = false) {
    if (prebuilt_retimed != nullptr) {
        plan.retimed = std::move(*prebuilt_retimed);
    } else {
        plan.retimed = plan.retiming.apply(g);
    }
    auto order = fused_body_order(plan.retimed);
    if (!order.has_value()) return "(0,0)-dependence cycle in the retimed graph";
    plan.body_order = std::move(*order);
    if (!is_fusion_legal(plan.retimed, plan.body_order)) return "fusion illegal after retiming";
    if (plan.level == ParallelismLevel::InnerDoall &&
        !is_fused_inner_doall(plan.retimed, plan.body_order)) {
        return "fused inner loop not DOALL";
    }
    if (!schedule_already_strict && !is_strict_schedule_vector(plan.retimed, plan.schedule)) {
        return "schedule not strict";
    }
    return {};
}

/// Ladder state of one job: its stage trace, budget guard, per-rung solver
/// telemetry, and the scratch buffers holding this lane's view (bounds,
/// hard flags, warm starts) of the group's shared constraint skeleton.
struct Lane {
    BatchPlanJob* job = nullptr;
    const Mldg* g = nullptr;
    ResourceGuard guard;
    std::uint64_t metered = 0;
    SolverStats rung_stats;
    std::vector<StageReport> stages;
    bool model_legal = false;
    std::optional<int> a4_failed_phase;
    std::vector<std::int64_t> phase1_values;
    /// Per-edge hard flags (is_hard is a property of the lane's vectors, not
    /// of the shared skeleton).
    std::vector<unsigned char> hard;
    // Per-rung bound buffers over the shared edge order.
    std::vector<std::int64_t> sbounds;   // scalar rungs (Alg. 4 ph. 1, forced)
    std::vector<Vec2> vbounds;           // Vec2 rungs (Alg. 3, LLOFRA)
    std::vector<std::int64_t> sbounds2;  // phase-2 doubled equality bounds
    std::vector<unsigned char> enabled2; // phase-2 participation mask

    [[nodiscard]] bool done() const { return job->result.has_value(); }

    void push_stage(std::string stage, StatusCode code, std::string detail) {
        StageReport r;
        r.stage = std::move(stage);
        r.code = code;
        r.detail = std::move(detail);
        r.budget_consumed = guard.consumed() - metered;
        metered = guard.consumed();
        r.solver = rung_stats;
        rung_stats = SolverStats{};
        stages.push_back(std::move(r));
    }

    void fail(Status st) {
        st.stages = std::move(stages);
        job->result.emplace(std::move(st));
    }
};

/// Runs one batched all-sources solve for the given participants; each entry
/// of `parts` indexes into `lanes` and must have its bounds (and optional
/// warm/enabled views) staged in `blanes` already.
template <typename W>
void solve_rung(std::vector<Lane>& lanes, const std::vector<std::size_t>& parts,
                std::vector<BatchLane<W>>& blanes, int num_nodes,
                std::span<const int> efrom, std::span<const int> eto,
                SolverWorkspace<W>* ws) {
    (void)lanes;
    (void)parts;
    if (blanes.empty()) return;
    bellman_ford_all_sources_batch<W>(num_nodes, efrom, eto,
                                      std::span<BatchLane<W>>(blanes), {}, ws,
                                      /*early_cycle_exit=*/true);
}

/// Plans one skeleton group in lockstep. All jobs in `idxs` share node count
/// and edge endpoints; per-lane dependence vectors (bounds, hard flags) may
/// differ freely.
void plan_group(std::span<BatchPlanJob> jobs, const std::vector<std::size_t>& idxs,
                const TryPlanOptions& options) {
    const Mldg& g0 = *jobs[idxs.front()].graph;
    const int n = g0.num_nodes();
    const std::size_t ne = g0.edges().size();
    PlannerWorkspace* ws = options.workspace;

    // Shared skeleton: endpoint arrays in graph edge order, plus the doubled
    // (forward, backward) pairs phase 2's equalities expand into.
    std::vector<int> efrom(ne);
    std::vector<int> eto(ne);
    for (std::size_t e = 0; e < ne; ++e) {
        efrom[e] = g0.edges()[e].from;
        eto[e] = g0.edges()[e].to;
    }
    std::vector<int> efrom2(2 * ne);
    std::vector<int> eto2(2 * ne);
    for (std::size_t e = 0; e < ne; ++e) {
        efrom2[2 * e] = efrom[e];
        eto2[2 * e] = eto[e];
        efrom2[2 * e + 1] = eto[e];
        eto2[2 * e + 1] = efrom[e];
    }
    const bool acyclic = g0.is_acyclic();

    std::vector<Lane> lanes(idxs.size());
    for (std::size_t k = 0; k < idxs.size(); ++k) {
        Lane& L = lanes[k];
        L.job = &jobs[idxs[k]];
        L.g = L.job->graph;
        L.guard = ResourceGuard(options.limits);
        L.hard.resize(ne);
        for (std::size_t e = 0; e < ne; ++e) {
            L.hard[e] = L.g->edges()[e].is_hard() ? 1 : 0;
        }
    }

    // ---- Validation ----
    // Program-model legality is solver-free and implies schedulability
    // (L2+L3: every cycle has x-weight >= 1); only graphs outside the
    // program model need the solver-backed schedulability check. The verdict
    // is CACHED on the lane: rungs 1-4 reuse it instead of re-running their
    // own check_schedulable / is_schedulable preambles (counted in
    // SolverStats::rungs_shared).
    for (Lane& L : lanes) {
        L.model_legal = is_legal_mldg(*L.g);
        if (!L.model_legal) {
            const LegalityReport rep = check_schedulable(
                *L.g, &L.guard, &L.rung_stats, ws != nullptr ? &ws->scalar : nullptr);
            if (rep.status != StatusCode::Ok) {
                L.push_stage("validate", rep.status, "schedulability check aborted");
                L.fail(Status(rep.status,
                              "try_plan_fusion: could not validate the input MLDG"));
                continue;
            }
            if (!rep.legal) {
                const std::string why =
                    rep.violations.empty() ? std::string("?") : rep.violations.front();
                L.push_stage("validate", StatusCode::IllegalInput, why);
                L.fail(Status(StatusCode::IllegalInput,
                              "try_plan_fusion: input MLDG is not schedulable: " + why));
                continue;
            }
        }
        L.push_stage("validate", StatusCode::Ok,
                     L.model_legal ? "program-model legal"
                                   : "schedulable (outside the program model)");
    }

    // Compact refinement (PlanOptions::compact_prologue) as a post-pass: the
    // plain rung's solution is kept unless the compacted one re-verifies.
    auto apply_compact = [&](Lane& L, FusionPlan& plan) {
        if (!options.plan.compact_prologue) return;
        try {
            std::vector<std::int64_t> local_warm;
            std::vector<std::int64_t>& warm_x = ws != nullptr ? ws->warm_x : local_warm;
            warm_x.clear();
            warm_x.reserve(static_cast<std::size_t>(n));
            for (int v = 0; v < n; ++v) warm_x.push_back(plan.retiming.of(v).x);
            std::optional<Retiming> alt;
            if (plan.algorithm == AlgorithmUsed::AcyclicDoall) {
                alt = acyclic_doall_fusion_compact(*L.g, &L.rung_stats, ws, &warm_x);
            } else if (plan.algorithm == AlgorithmUsed::CyclicDoall) {
                alt = cyclic_doall_fusion_compact(*L.g, &L.rung_stats, ws, &warm_x);
            }
            if (!alt.has_value()) return;
            FusionPlan refined;
            refined.retiming = std::move(*alt);
            refined.level = plan.level;
            refined.algorithm = plan.algorithm;
            refined.schedule = plan.schedule;
            refined.hyperplane = plan.hyperplane;
            if (finalize_plan(*L.g, refined).empty()) {
                plan = std::move(refined);
                L.push_stage("compact", StatusCode::Ok, "x-spread minimized");
            }
        } catch (const std::exception&) {
            // Keep the plain rung's verified solution.
        }
    };

    // PlanPolicy::SmallestCode post-pass: re-solve the accepted rung for the
    // smallest-magnitude feasible retiming (fusion/compact.hpp). Feasibility
    // is policy-independent -- the pass only swaps WHICH feasible retiming
    // the rung returns -- and the candidate re-verifies through the same
    // finalize_plan gate as any plan, falling back to the rung's own
    // solution on any rejection. Never runs under the default policy, so
    // default-policy plans and stage traces stay bit-identical.
    auto apply_policy = [&](Lane& L, FusionPlan& plan) {
        if (options.plan.policy != PlanPolicy::SmallestCode) return;
        try {
            const MagnitudeOutcome m =
                minimize_plan_magnitude(*L.g, plan, &L.rung_stats, ws);
            if (!m.changed()) {
                L.push_stage("minimize", StatusCode::Ok,
                             "retiming magnitude already minimal (" +
                                 std::to_string(m.before) + ")");
                return;
            }
            FusionPlan refined;
            refined.retiming = m.retiming;
            refined.level = plan.level;
            refined.algorithm = plan.algorithm;
            refined.schedule = plan.schedule;
            refined.hyperplane = plan.hyperplane;
            if (plan.algorithm == AlgorithmUsed::Hyperplane) {
                // A trailing-spread reduction changes the retimed graph;
                // re-derive the wavefront schedule for it as rung 4 does.
                const Mldg retimed = refined.retiming.apply(*L.g);
                refined.schedule = schedule_vector_for(retimed);
                refined.hyperplane = Vec2{refined.schedule.y, -refined.schedule.x};
            }
            if (finalize_plan(*L.g, refined).empty()) {
                plan = std::move(refined);
                L.push_stage("minimize", StatusCode::Ok,
                             "retiming magnitude " + std::to_string(m.before) + " -> " +
                                 std::to_string(m.after));
            } else {
                L.push_stage("minimize", StatusCode::Internal,
                             "candidate failed re-verification; keeping the rung's plan");
            }
        } catch (const std::exception&) {
            // Keep the rung's verified solution.
        }
    };

    // Per-plan code-shape metrics on the stage that accepted the plan, via
    // the same fringe model the emitters use (support/cemit.hpp). The
    // widths are domain-independent, so extent 0 serves.
    auto fill_metrics = [&](Lane& L, const FusionPlan& plan) {
        if (L.stages.empty()) return;
        std::vector<std::int64_t> sx(static_cast<std::size_t>(n));
        std::vector<std::int64_t> sy(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            sx[static_cast<std::size_t>(v)] = plan.retiming.of(v).x;
            sy[static_cast<std::size_t>(v)] = plan.retiming.of(v).y;
        }
        const cemit::FringeBounds bi = cemit::fringe_bounds(sx, 0);
        const cemit::FringeBounds bj = cemit::fringe_bounds(sy, 0);
        StageReport& s = L.stages.back();
        s.prologue_iters = bi.prologue() + bj.prologue();
        s.epilogue_iters = bi.epilogue() + bj.epilogue();
        s.retiming_magnitude = retiming_magnitude(plan.retiming);
    };

    auto accept = [&](Lane& L, FusionPlan&& plan) {
        apply_compact(L, plan);
        apply_policy(L, plan);
        fill_metrics(L, plan);
        plan.cyclic_doall_failed_phase = L.a4_failed_phase;
        plan.stages = std::move(L.stages);
        L.job->result.emplace(std::move(plan));
    };

    const bool run_rungs = !options.distribution_only;

    // ---- Rung 1: Algorithm 3 (acyclic skeletons only -- acyclicity is a
    // property of the shared endpoints, so the whole group agrees). ----
    if (run_rungs && acyclic) {
        std::vector<std::size_t> parts;
        std::vector<BatchLane<Vec2>> blanes;
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            Lane& L = lanes[k];
            if (L.done()) continue;
            if (faultpoint::triggered("acyclic_doall")) {
                L.push_stage("acyclic-doall", StatusCode::Internal,
                             "acyclic_doall_fusion: fault injected");
                continue;
            }
            ++L.rung_stats.rungs_shared;  // schedulability verdict reused
            L.vbounds.resize(ne);
            for (std::size_t e = 0; e < ne; ++e) {
                L.vbounds[e] = L.g->edges()[e].delta() - Vec2{1, -1};
            }
            BatchLane<Vec2> bl;
            bl.bounds = L.vbounds.data();
            bl.guard = &L.guard;
            bl.stats = &L.rung_stats;
            if (L.job->hints != nullptr && !L.job->hints->acyclic.empty()) {
                bl.warm_start = &L.job->hints->acyclic;
                bl.warm_is_delta = true;
            }
            parts.push_back(k);
            blanes.push_back(bl);
        }
        solve_rung<Vec2>(lanes, parts, blanes, n, efrom, eto,
                         ws != nullptr ? &ws->vec2 : nullptr);
        for (std::size_t p = 0; p < parts.size(); ++p) {
            Lane& L = lanes[parts[p]];
            BatchLane<Vec2>& bl = blanes[p];
            if (bl.status != StatusCode::Ok) {
                L.push_stage("acyclic-doall", bl.status, "acyclic_doall_fusion: solve aborted");
                continue;
            }
            if (bl.has_negative_cycle) {
                // The constraint graph is acyclic; a negative cycle is impossible.
                L.push_stage("acyclic-doall", StatusCode::Internal,
                             "acyclic_doall_fusion: internal error (acyclic system infeasible)");
                continue;
            }
            L.job->artifacts.acyclic = bl.dist;
            Retiming r(std::move(bl.dist));
            for (int v = 0; v < n; ++v) r.of(v).y = 0;  // paper Alg. 3, final loop
            FusionPlan plan;
            plan.retiming = std::move(r);
            plan.algorithm = AlgorithmUsed::AcyclicDoall;
            plan.level = ParallelismLevel::InnerDoall;
            const std::string err = finalize_plan(*L.g, plan);
            if (err.empty()) {
                L.push_stage("acyclic-doall", StatusCode::Ok, {});
                accept(L, std::move(plan));
            } else {
                L.push_stage("acyclic-doall", StatusCode::Internal, err);
            }
        }
    }

    // ---- Rung 2: Algorithm 4 (also handles acyclic graphs when rung 1
    // fell through). ----
    if (run_rungs) {
        // Phase 1: first retiming component. Hard edges must end
        // outer-loop-carried (retimed x >= 1); all others may stay within one
        // outer iteration (retimed x >= 0).
        std::vector<std::size_t> parts;
        std::vector<BatchLane<std::int64_t>> blanes;
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            Lane& L = lanes[k];
            if (L.done()) continue;
            // Every surviving lane is schedulable (validated above), so the
            // historical is_schedulable precondition holds by construction.
            ++L.rung_stats.rungs_shared;
            if (faultpoint::triggered("cyclic_doall.phase1")) {
                L.a4_failed_phase = 1;  // simulated phase-1 infeasibility
                L.push_stage("cyclic-doall", StatusCode::Infeasible, "phase 1 infeasible");
                continue;
            }
            L.sbounds.resize(ne);
            for (std::size_t e = 0; e < ne; ++e) {
                L.sbounds[e] = L.g->edges()[e].delta().x - (L.hard[e] != 0 ? 1 : 0);
            }
            BatchLane<std::int64_t> bl;
            bl.bounds = L.sbounds.data();
            bl.guard = &L.guard;
            bl.stats = &L.rung_stats;
            if (L.job->hints != nullptr && !L.job->hints->phase1.empty()) {
                bl.warm_start = &L.job->hints->phase1;
                bl.warm_is_delta = true;
            }
            parts.push_back(k);
            blanes.push_back(bl);
        }
        solve_rung<std::int64_t>(lanes, parts, blanes, n, efrom, eto,
                                 ws != nullptr ? &ws->scalar : nullptr);

        // Phase 2: second retiming component. Only non-hard edges whose
        // x-retimed weight is exactly zero are constrained: they must land on
        // (0,0), hence an equality on y (a doubled (forward, backward) pair
        // over the shared skeleton, masked per lane).
        std::vector<std::size_t> parts2;
        std::vector<BatchLane<std::int64_t>> blanes2;
        for (std::size_t p = 0; p < parts.size(); ++p) {
            Lane& L = lanes[parts[p]];
            BatchLane<std::int64_t>& bl = blanes[p];
            if (bl.status != StatusCode::Ok) {
                L.a4_failed_phase = 1;
                L.push_stage("cyclic-doall", bl.status, "phase 1 aborted");
                continue;
            }
            if (bl.has_negative_cycle) {
                L.a4_failed_phase = 1;
                L.push_stage("cyclic-doall", StatusCode::Infeasible, "phase 1 infeasible");
                continue;
            }
            L.phase1_values = std::move(bl.dist);
            L.job->artifacts.phase1 = L.phase1_values;
            if (faultpoint::triggered("cyclic_doall.phase2")) {
                L.a4_failed_phase = 2;  // simulated phase-2 infeasibility
                L.push_stage("cyclic-doall", StatusCode::Infeasible, "phase 2 infeasible");
                continue;
            }
            L.sbounds2.assign(2 * ne, 0);
            L.enabled2.assign(2 * ne, 0);
            bool overflowed = false;
            for (std::size_t e = 0; e < ne && !overflowed; ++e) {
                if (L.hard[e] != 0) continue;
                const std::int64_t dx = L.g->edges()[e].delta().x;
                std::int64_t shifted = 0;
                std::int64_t retimed_x = 0;
                if (__builtin_add_overflow(
                        dx, L.phase1_values[static_cast<std::size_t>(efrom[e])], &shifted) ||
                    __builtin_sub_overflow(
                        shifted, L.phase1_values[static_cast<std::size_t>(eto[e])],
                        &retimed_x)) {
                    overflowed = true;
                    break;
                }
                if (retimed_x != 0) continue;
                const std::int64_t dy = L.g->edges()[e].delta().y;
                L.sbounds2[2 * e] = dy;
                L.sbounds2[2 * e + 1] = -dy;
                L.enabled2[2 * e] = 1;
                L.enabled2[2 * e + 1] = 1;
            }
            if (overflowed) {
                L.a4_failed_phase = 2;
                L.push_stage("cyclic-doall", StatusCode::Overflow, "phase 2 aborted");
                continue;
            }
            BatchLane<std::int64_t> bl2;
            bl2.bounds = L.sbounds2.data();
            bl2.enabled = L.enabled2.data();
            bl2.guard = &L.guard;
            bl2.stats = &L.rung_stats;
            parts2.push_back(parts[p]);
            blanes2.push_back(bl2);
        }
        solve_rung<std::int64_t>(lanes, parts2, blanes2, n, efrom2, eto2,
                                 ws != nullptr ? &ws->scalar : nullptr);
        for (std::size_t p = 0; p < parts2.size(); ++p) {
            Lane& L = lanes[parts2[p]];
            BatchLane<std::int64_t>& bl2 = blanes2[p];
            if (bl2.status != StatusCode::Ok) {
                L.a4_failed_phase = 2;
                L.push_stage("cyclic-doall", bl2.status, "phase 2 aborted");
                continue;
            }
            if (bl2.has_negative_cycle) {
                L.a4_failed_phase = 2;
                L.push_stage("cyclic-doall", StatusCode::Infeasible, "phase 2 infeasible");
                continue;
            }
            Retiming r(n);
            for (int v = 0; v < n; ++v) {
                r.of(v) = Vec2{L.phase1_values[static_cast<std::size_t>(v)],
                               bl2.dist[static_cast<std::size_t>(v)]};
            }
            FusionPlan plan;
            plan.retiming = std::move(r);
            plan.algorithm = AlgorithmUsed::CyclicDoall;
            plan.level = ParallelismLevel::InnerDoall;
            const std::string err = finalize_plan(*L.g, plan);
            if (err.empty()) {
                L.push_stage("cyclic-doall", StatusCode::Ok, {});
                accept(L, std::move(plan));
            } else {
                L.push_stage("cyclic-doall", StatusCode::Internal, err);
            }
        }
    }

    // ---- Rung 3: forced-carry variant (extension; still DOALL rows). ----
    if (run_rungs) {
        std::vector<std::size_t> parts;
        std::vector<BatchLane<std::int64_t>> blanes;
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            Lane& L = lanes[k];
            if (L.done()) continue;
            if (faultpoint::triggered("forced_carry")) {
                L.push_stage("forced-carry", StatusCode::Internal,
                             "cyclic_doall_all_hard: fault injected");
                continue;
            }
            ++L.rung_stats.rungs_shared;  // schedulability verdict reused
            L.sbounds.resize(ne);
            for (std::size_t e = 0; e < ne; ++e) {
                L.sbounds[e] = L.g->edges()[e].delta().x - 1;
            }
            BatchLane<std::int64_t> bl;
            bl.bounds = L.sbounds.data();
            bl.guard = &L.guard;
            bl.stats = &L.rung_stats;
            // The forced system only tightens phase 1's (non-hard bounds drop
            // from delta.x to delta.x - 1), so phase 1's fixpoint -- or a
            // neighbor's delta hint for it -- is a valid starting potential.
            if (!L.phase1_values.empty()) {
                bl.warm_start = &L.phase1_values;
            } else if (L.job->hints != nullptr && !L.job->hints->phase1.empty()) {
                bl.warm_start = &L.job->hints->phase1;
                bl.warm_is_delta = true;
            }
            parts.push_back(k);
            blanes.push_back(bl);
        }
        solve_rung<std::int64_t>(lanes, parts, blanes, n, efrom, eto,
                                 ws != nullptr ? &ws->scalar : nullptr);
        for (std::size_t p = 0; p < parts.size(); ++p) {
            Lane& L = lanes[parts[p]];
            BatchLane<std::int64_t>& bl = blanes[p];
            if (bl.status != StatusCode::Ok) {
                L.push_stage("forced-carry", bl.status, "cyclic_doall_all_hard: solve aborted");
                continue;
            }
            if (bl.has_negative_cycle) {
                L.push_stage("forced-carry", StatusCode::Infeasible,
                             "cyclic_doall_all_hard: no retiming can carry every edge on the "
                             "outer loop (negative cycle in the forced system)");
                continue;
            }
            Retiming r(n);
            for (int v = 0; v < n; ++v) {
                r.of(v) = Vec2{bl.dist[static_cast<std::size_t>(v)], 0};
            }
            FusionPlan plan;
            plan.retiming = std::move(r);
            plan.algorithm = AlgorithmUsed::CyclicDoallForced;
            plan.level = ParallelismLevel::InnerDoall;
            const std::string err = finalize_plan(*L.g, plan);
            if (err.empty()) {
                L.push_stage("forced-carry", StatusCode::Ok, {});
                accept(L, std::move(plan));
            } else {
                L.push_stage("forced-carry", StatusCode::Internal, err);
            }
        }
    }

    // ---- Rung 4: Algorithm 5 (hyperplane wavefront). ----
    if (run_rungs) {
        std::vector<std::size_t> parts;
        std::vector<BatchLane<Vec2>> blanes;
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            Lane& L = lanes[k];
            if (L.done()) continue;
            if (faultpoint::triggered("hyperplane")) {
                L.push_stage("hyperplane", StatusCode::Internal,
                             "hyperplane_fusion: fault injected");
                continue;
            }
            if (faultpoint::triggered("llofra")) {
                L.push_stage("hyperplane", StatusCode::Internal, "llofra: fault injected");
                continue;
            }
            ++L.rung_stats.rungs_shared;  // schedulability verdict reused
            L.vbounds.resize(ne);
            for (std::size_t e = 0; e < ne; ++e) {
                // Require delta_r(e) >= (0,0), i.e. r(to) - r(from) <= delta(e).
                L.vbounds[e] = L.g->edges()[e].delta();
            }
            BatchLane<Vec2> bl;
            bl.bounds = L.vbounds.data();
            bl.guard = &L.guard;
            bl.stats = &L.rung_stats;
            if (L.job->hints != nullptr && !L.job->hints->llofra.empty()) {
                bl.warm_start = &L.job->hints->llofra;
                bl.warm_is_delta = true;
            }
            parts.push_back(k);
            blanes.push_back(bl);
        }
        solve_rung<Vec2>(lanes, parts, blanes, n, efrom, eto,
                         ws != nullptr ? &ws->vec2 : nullptr);
        for (std::size_t p = 0; p < parts.size(); ++p) {
            Lane& L = lanes[parts[p]];
            BatchLane<Vec2>& bl = blanes[p];
            if (bl.status != StatusCode::Ok) {
                L.push_stage("hyperplane", bl.status, "llofra: solve aborted");
                continue;
            }
            if (bl.has_negative_cycle) {
                // Theorem 3.2: feasible because every cycle weighs > (0,0).
                L.push_stage("hyperplane", StatusCode::Internal,
                             "llofra: internal error (constraint system infeasible on a "
                             "schedulable MLDG)");
                continue;
            }
            L.job->artifacts.llofra = bl.dist;
            FusionPlan plan;
            plan.retiming = Retiming(std::move(bl.dist));
            plan.algorithm = AlgorithmUsed::Hyperplane;
            plan.level = ParallelismLevel::Hyperplane;
            // The one retiming application: its result serves both the
            // schedule derivation (Lemma 4.3) and plan finalization.
            Mldg retimed = plan.retiming.apply(*L.g);
            try {
                plan.schedule = schedule_vector_for(retimed);
            } catch (const Error& e) {
                L.push_stage("hyperplane", StatusCode::Internal, e.what());
                continue;
            }
            plan.hyperplane = Vec2{plan.schedule.y, -plan.schedule.x};
            if (!is_strict_schedule_vector(retimed, plan.schedule)) {
                L.push_stage(
                    "hyperplane", StatusCode::Internal,
                    "hyperplane_fusion: internal error (computed schedule is not strict)");
                continue;
            }
            const std::string err = finalize_plan(*L.g, plan, &retimed,
                                                  /*schedule_already_strict=*/true);
            if (err.empty()) {
                L.push_stage("hyperplane", StatusCode::Ok, {});
                accept(L, std::move(plan));
            } else {
                L.push_stage("hyperplane", StatusCode::Internal, err);
            }
        }
    }

    // ---- Rung 5: loop distribution (unfused but legal), then the terminal
    // all-rungs-fell-through status. ----
    for (Lane& L : lanes) {
        if (L.done()) continue;
        // No solver involved: the plan *is* the original program, so it needs
        // no verification beyond program-model legality (checked above). Only
        // that legality makes the unfused original executable, so graphs like
        // the paper's Figure 14 (schedulable only) cannot take this rung.
        if (options.allow_distribution_fallback) {
            if (!L.model_legal) {
                L.push_stage("distribution", StatusCode::IllegalInput,
                             "input is not program-model legal; the unfused original is not "
                             "an executable Figure-1 program");
            } else if (faultpoint::triggered("distribution")) {
                L.push_stage("distribution", StatusCode::Internal, "fault injected");
            } else {
                FusionPlan plan;
                plan.retiming = Retiming(n);  // identity
                plan.level = ParallelismLevel::Unfused;
                plan.algorithm = AlgorithmUsed::DistributionFallback;
                plan.retimed = *L.g;
                plan.body_order = program_order_of(*L.g);
                L.push_stage("distribution", StatusCode::Ok, "unfused fallback");
                plan.cyclic_doall_failed_phase = L.a4_failed_phase;
                plan.stages = std::move(L.stages);
                L.job->result.emplace(std::move(plan));
                continue;
            }
        }
        StatusCode worst = StatusCode::Internal;
        int worst_rank = -1;
        for (const auto& s : L.stages) {
            if (s.code == StatusCode::Ok) continue;
            if (severity(s.code) > worst_rank) {
                worst_rank = severity(s.code);
                worst = s.code;
            }
        }
        L.fail(Status(worst, "try_plan_fusion: no ladder rung produced a verifiable plan"));
    }
}

}  // namespace

void try_plan_fusion_batch(std::span<BatchPlanJob> jobs, const TryPlanOptions& options) {
    for (const BatchPlanJob& j : jobs) {
        check(j.graph != nullptr, "try_plan_fusion_batch: job without a graph");
    }
    // Group by constraint-graph skeleton (node count + endpoint arrays):
    // each group solves over one shared edge structure.
    std::map<std::vector<int>, std::vector<std::size_t>> groups;
    std::vector<int> key;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Mldg& g = *jobs[i].graph;
        key.clear();
        key.reserve(1 + 2 * g.edges().size());
        key.push_back(g.num_nodes());
        for (const auto& e : g.edges()) {
            key.push_back(e.from);
            key.push_back(e.to);
        }
        groups[key].push_back(i);
    }
    for (auto& [sig, idxs] : groups) plan_group(jobs, idxs, options);
}

void try_plan_fusion_batch_nd(std::span<BatchPlanJobNd> jobs) {
    for (BatchPlanJobNd& j : jobs) {
        check(j.graph != nullptr, "try_plan_fusion_batch_nd: job without a graph");
        try {
            j.plan = plan_fusion_nd(*j.graph, j.workspace);
        } catch (const std::exception& e) {
            j.plan.reset();
            j.error = e.what();
        }
    }
}

}  // namespace lf
