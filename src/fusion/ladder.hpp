#pragma once
// The planning ladder over a shared constraint-system core.
//
// Every algorithm the degradation ladder runs (Alg. 3/4 -> forced-carry ->
// Alg. 5) solves a difference-constraint system over the SAME graph: one
// variable per loop, one constraint per dependence edge, only the per-edge
// bound differing by rung (PAPER.md Section 2.4 -- the five algorithms are
// one 2-ILP skeleton under different bounds):
//
//   rung 1 (Alg. 3, acyclic)   r(to) - r(from) <= delta - (1,-1)     [Vec2]
//   rung 2 (Alg. 4, phase 1)   x(to) - x(from) <= delta.x - hard     [int64]
//   rung 2 (Alg. 4, phase 2)   y(to) - y(from)  = delta.y  (subset)  [int64]
//   rung 3 (forced carry)      x(to) - x(from) <= delta.x - 1        [int64]
//   rung 4 (Alg. 5, LLOFRA)    r(to) - r(from) <= delta              [Vec2]
//
// The ladder here therefore builds the edge-endpoint arrays ONCE per job and
// expresses each rung as a bound rewrite over them: no per-rung
// DifferenceConstraintSystem reconstruction, no repeated schedulability
// checks (validation's verdict is cached and implies every rung's internal
// check -- counted in SolverStats::rungs_shared), and the one retiming
// application Algorithm 5 performs is reused by plan finalization. Rungs
// warm-start from the previous rung's feasible distances where the systems
// nest (phase 1 -> forced carry, as before), and infeasible systems exit
// after a few passes via the batched kernel's predecessor-graph cycle probe
// instead of running all |V| relaxation passes.
//
// Batching: try_plan_fusion_batch groups jobs by constraint-graph skeleton
// (node count + edge endpoints) and runs each group's rungs in lockstep
// through bellman_ford_all_sources_batch -- one shared endpoint structure,
// structure-of-arrays distances, per-lane bounds. Per-job results are
// bit-identical to planning each job alone: try_plan_fusion itself is a
// batch of one, so the sequential and batched paths are the same code.
//
// Delta re-planning: a LadderWarmHints carries starting potentials derived
// from a structural near-neighbor's cached fixpoints (svc/plancache.hpp
// resets every vertex the differing edges can reach, keeping the rest).
// Warm-start legality (graph/bellman_ford.hpp) guarantees the fixpoints --
// and therefore the plans -- are unchanged; only the relaxation work
// shrinks. Adopted hints are counted in SolverStats::delta_solves.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"
#include "ldg/mldg.hpp"
#include "ldg/mldg_nd.hpp"
#include "support/status.hpp"

namespace lf {

/// Feasible fixpoints the ladder computed for one job, keyed by constraint
/// system. Cached alongside the plan (svc/plancache.hpp `.dist` sidecar) so
/// structural near-misses can delta-solve instead of cold-starting. Empty
/// vectors mean the corresponding system was never solved to feasibility.
struct LadderArtifacts {
    /// Algorithm 4 phase-1 fixpoint (bounds delta.x - hard).
    std::vector<std::int64_t> phase1;
    /// Rung-1 fixpoint (acyclic graphs; bounds delta - (1,-1)).
    std::vector<Vec2> acyclic;
    /// LLOFRA fixpoint (bounds delta).
    std::vector<Vec2> llofra;

    [[nodiscard]] bool empty() const {
        return phase1.empty() && acyclic.empty() && llofra.empty();
    }
};

/// Starting potentials for a delta re-plan, one per system the ladder may
/// solve. Every vector must already satisfy the warm-start contract for the
/// TARGET job's system (entries <= 0; >= the target fixpoint pointwise --
/// the plan cache guarantees this by resetting every vertex reachable from
/// a differing edge). Invalid hints are detected by the solver's runtime
/// validation and simply fall back to a cold solve; results never change.
struct LadderWarmHints {
    std::vector<std::int64_t> phase1;  // warms Alg. 4 phase 1 AND forced carry
    std::vector<Vec2> acyclic;         // warms rung 1
    std::vector<Vec2> llofra;          // warms LLOFRA

    [[nodiscard]] bool empty() const {
        return phase1.empty() && acyclic.empty() && llofra.empty();
    }
};

/// One job of a batched 2-D planning call. `graph` must outlive the call;
/// `hints` is optional (delta re-planning). `result`/`artifacts` are
/// outputs; `result` is engaged for every job after the call returns.
struct BatchPlanJob {
    const Mldg* graph = nullptr;
    const LadderWarmHints* hints = nullptr;
    std::optional<Result<FusionPlan>> result;
    LadderArtifacts artifacts;
};

/// One job of a batched N-D planning call. The N-D path has a single
/// algorithm (no ladder) and is already microseconds per plan, so jobs run
/// sequentially through plan_fusion_nd; this entry point exists so callers
/// can treat 2-D and N-D admission batches uniformly. On failure `plan` is
/// empty and `error` carries the exception message.
struct BatchPlanJobNd {
    const MldgN* graph = nullptr;
    PlannerWorkspace* workspace = nullptr;
    std::optional<NdFusionPlan> plan;
    std::string error;
};

/// Plans every job in the batch (see driver.hpp try_plan_fusion for the
/// per-job semantics -- rung order, stage traces and result statuses are
/// identical to the sequential path). Jobs sharing a constraint-graph
/// skeleton solve in lockstep over shared adjacency.
void try_plan_fusion_batch(std::span<BatchPlanJob> jobs,
                           const TryPlanOptions& options = {});

void try_plan_fusion_batch_nd(std::span<BatchPlanJobNd> jobs);

}  // namespace lf
