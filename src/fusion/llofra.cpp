#include "fusion/llofra.hpp"

#include "graph/constraint_system.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf {

Retiming llofra(const Mldg& g) {
    {
        const LegalityReport rep = check_schedulable(g);
        check(rep.legal, "llofra: input MLDG is not schedulable: " +
                             (rep.violations.empty() ? std::string("?") : rep.violations.front()));
    }
    DifferenceConstraintSystem<Vec2> sys;
    for (int i = 0; i < g.num_nodes(); ++i) sys.add_variable(g.node(i).name);
    for (const auto& e : g.edges()) {
        // Require delta_r(e) >= (0,0), i.e. r(to) - r(from) <= delta(e).
        sys.add_constraint(e.from, e.to, e.delta());
    }
    const auto solution = sys.solve();
    // Theorem 3.2: feasible because every cycle weighs > (0,0).
    check(solution.feasible, "llofra: internal error (constraint system infeasible on a "
                             "schedulable MLDG)");
    return Retiming(solution.values);
}

}  // namespace lf
