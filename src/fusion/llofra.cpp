#include "fusion/llofra.hpp"

#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

Result<Retiming> try_llofra(const Mldg& g, ResourceGuard* guard, SolverStats* stats,
                            PlannerWorkspace* ws) {
    if (faultpoint::triggered("llofra")) {
        return Status(StatusCode::Internal, "llofra: fault injected");
    }
    {
        const LegalityReport rep =
            check_schedulable(g, guard, stats, ws != nullptr ? &ws->scalar : nullptr);
        if (rep.status != StatusCode::Ok) {
            return Status(rep.status, "llofra: schedulability check aborted");
        }
        if (!rep.legal) {
            return Status(StatusCode::IllegalInput,
                          "llofra: input MLDG is not schedulable: " +
                              (rep.violations.empty() ? std::string("?")
                                                      : rep.violations.front()));
        }
    }
    DifferenceConstraintSystem<Vec2> sys;
    for (int i = 0; i < g.num_nodes(); ++i) sys.add_variable(g.node_ref(i).name);
    for (const auto& e : g.edges()) {
        // Require delta_r(e) >= (0,0), i.e. r(to) - r(from) <= delta(e).
        sys.add_constraint(e.from, e.to, e.delta());
    }
    const auto solution = sys.solve(guard, stats, ws != nullptr ? &ws->vec2 : nullptr);
    if (solution.status != StatusCode::Ok) {
        return Status(solution.status, "llofra: solve aborted");
    }
    // Theorem 3.2: feasible because every cycle weighs > (0,0).
    if (!solution.feasible) {
        return Status(StatusCode::Internal,
                      "llofra: internal error (constraint system infeasible on a "
                      "schedulable MLDG)");
    }
    return Retiming(solution.values);
}

Retiming llofra(const Mldg& g) {
    auto result = try_llofra(g);
    check(result.ok(), result.status().message());
    return std::move(result).value();
}

}  // namespace lf
