#pragma once
// LLOFRA -- the Legal LOop Fusion Retiming Algorithm (paper Algorithm 2).
//
// Finds a retiming r with  delta_r(e) >= (0,0)  for every edge (Theorem 3.1).
// Dependences retimed to exactly (0,0) are honored by the fused body's
// statement order (see fused_body_order in ldg/legality.hpp). Theorem 3.2
// guarantees feasibility for every schedulable 2LDG: every cycle of the
// constraint graph weighs > (0,0). Runs in O(|V| * |E|).

#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "support/status.hpp"

namespace lf {

struct PlannerWorkspace;

/// Computes the legal-fusion retiming. Throws lf::Error if `g` is not
/// schedulable (the only way the constraint system can be infeasible).
[[nodiscard]] Retiming llofra(const Mldg& g);

/// Never-throwing variant. Non-Ok: IllegalInput (not schedulable),
/// ResourceExhausted / Overflow (solve cut short), Internal (fault point
/// "llofra" armed, or Theorem 3.2's feasibility guarantee failed).
[[nodiscard]] Result<Retiming> try_llofra(const Mldg& g, ResourceGuard* guard = nullptr,
                                          SolverStats* stats = nullptr,
                                          PlannerWorkspace* ws = nullptr);

}  // namespace lf
