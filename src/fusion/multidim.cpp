#include "fusion/multidim.hpp"

#include <algorithm>
#include <cstdlib>

#include "fusion/compact.hpp"
#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "support/diagnostics.hpp"
#include "support/math_util.hpp"

namespace lf {

RetimingN llofra_nd(const MldgN& g, PlannerWorkspace* ws) {
    SolverWorkspace<VecN>* vecn_ws = ws != nullptr ? &ws->vecn : nullptr;
    check(is_schedulable_nd(g, nullptr, nullptr, vecn_ws),
          "llofra_nd: input MLDG is not schedulable");
    DifferenceConstraintSystem<VecN> sys(g.dim());
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta());
    }
    const auto solution = sys.solve(nullptr, nullptr, vecn_ws);
    check(solution.feasible, "llofra_nd: internal error (infeasible on schedulable input)");
    return RetimingN(solution.values);
}

RetimingN acyclic_outermost_fusion_nd(const MldgN& g, PlannerWorkspace* ws) {
    SolverWorkspace<VecN>* vecn_ws = ws != nullptr ? &ws->vecn : nullptr;
    check(g.is_acyclic(), "acyclic_outermost_fusion_nd: input MLDG has a cycle");
    check(is_schedulable_nd(g, nullptr, nullptr, vecn_ws),
          "acyclic_outermost_fusion_nd: input MLDG is not schedulable");
    // 1-D constraints on the outermost component only: r0(v) - r0(u) <=
    // delta(e)[0] - 1, so every vector's first retimed component is >= 1.
    DifferenceConstraintSystem<VecN> sys(1);
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, VecN{e.delta()[0] - 1});
    }
    const auto solution = sys.solve(nullptr, nullptr, vecn_ws);
    check(solution.feasible, "acyclic_outermost_fusion_nd: internal error");
    RetimingN r(g.num_nodes(), g.dim());
    for (int v = 0; v < g.num_nodes(); ++v) {
        r.of(v)[0] = solution.values[static_cast<std::size_t>(v)][0];
    }
    return r;
}

VecN schedule_vector_nd(const MldgN& retimed) {
    const int dim = retimed.dim();
    VecN s = VecN::zeros(dim);
    if (dim == 0) return s;
    s[dim - 1] = 1;
    // Components are fixed innermost-outward; a vector with leading nonzero
    // at level k only involves s[k..dim-1] in its dot product.
    for (int k = dim - 2; k >= 0; --k) {
        std::optional<std::int64_t> lower;
        for (const auto& e : retimed.edges()) {
            for (const VecN& d : e.vectors) {
                if (d.is_zero()) continue;
                check(d >= VecN::zeros(dim),
                      "schedule_vector_nd: dependence vector below zero; run llofra_nd first");
                if (d.leading_index() != k) continue;
                std::int64_t tail = 0;
                for (int i = k + 1; i < dim; ++i) tail += s[i] * d[i];
                const std::int64_t bound = floor_div(-tail, d[k]) + 1;
                lower = lower ? std::max(*lower, bound) : bound;
            }
        }
        s[k] = lower.value_or(0);
    }
    return s;
}

std::int64_t retiming_magnitude_nd(const RetimingN& r) {
    std::int64_t total = 0;
    for (int v = 0; v < r.num_nodes(); ++v) {
        const VecN& rv = r.of(v);
        for (int k = 0; k < rv.dim(); ++k) total += std::abs(rv[k]);
    }
    return total;
}

namespace {

/// PlanPolicy::SmallestCode post-pass, n-D analogue of
/// minimize_plan_magnitude. Mutates `plan` only when a strictly smaller
/// candidate re-verifies; otherwise the plan is left exactly as built.
void minimize_plan_magnitude_nd(const MldgN& g, NdFusionPlan& plan, PlannerWorkspace* ws) {
    const int n = g.num_nodes();
    const int dim = g.dim();
    if (n == 0 || dim == 0) return;
    SolverWorkspace<std::int64_t>* scalar_ws = ws != nullptr ? &ws->scalar : nullptr;
    RetimingN cand = plan.retiming;

    // (a) Trailing-component re-solve (hyperplane plans only; outermost-
    // carried retimings are zero beyond component 0 already). LLOFRA keeps
    // retimed vectors LEX-nonnegative, so -- exactly as in the 2-D pass -- a
    // vector constrains dimension k only when its retimed prefix (dims
    // 0..k-1 under the candidate so far) is all zero: lex-nonnegativity then
    // needs retimed d[k] >= 0, i.e. r_k(to) - r_k(from) <= d[k]. A vector
    // already carried by an earlier dimension leaves d[k] free. Ascending k
    // keeps the induction honest: dim k's adopted values feed the prefix
    // test of every later dimension.
    if (plan.level == NdParallelism::Hyperplane) {
        for (int k = 1; k < dim; ++k) {
            std::vector<ScalarConstraint> base;
            for (const auto& e : g.edges()) {
                for (const VecN& d : e.vectors) {
                    bool prefix_flat = true;
                    for (int i = 0; i < k && prefix_flat; ++i) {
                        prefix_flat = d[i] + cand.of(e.from)[i] - cand.of(e.to)[i] == 0;
                    }
                    if (prefix_flat) base.push_back({e.from, e.to, d[k]});
                }
            }
            std::vector<std::int64_t> warm(static_cast<std::size_t>(n));
            for (int v = 0; v < n; ++v) warm[static_cast<std::size_t>(v)] = cand.of(v)[k];
            const std::vector<std::int64_t> rk =
                min_spread_solution(n, base, nullptr, scalar_ws, &warm);
            // Adopt only a strict spread win, as in the 2-D pass.
            if (value_spread(rk) < value_spread(warm)) {
                for (int v = 0; v < n; ++v) cand.of(v)[k] = rk[static_cast<std::size_t>(v)];
            }
        }
    }

    // (b) Per-component median recentering (translation-invariant on the
    // retimed graph, so valid for both parallelism levels).
    for (int k = 0; k < dim; ++k) {
        std::vector<std::int64_t> vals(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) vals[static_cast<std::size_t>(v)] = cand.of(v)[k];
        const std::int64_t t = centering_shift(std::move(vals));
        for (int v = 0; v < n; ++v) cand.of(v)[k] += t;
    }

    if (retiming_magnitude_nd(cand) >= retiming_magnitude_nd(plan.retiming)) return;

    // Re-verify the candidate from scratch before adopting it.
    NdFusionPlan refined;
    refined.retiming = std::move(cand);
    refined.retimed = refined.retiming.apply(g);
    refined.level = plan.level;
    if (plan.level == NdParallelism::Hyperplane) {
        for (const auto& e : refined.retimed.edges()) {
            for (const VecN& d : e.vectors) {
                // VecN order is lexicographic -- the same invariant LLOFRA
                // establishes and schedule_vector_nd requires.
                if (!(d >= VecN::zeros(dim))) return;  // keep the original plan
            }
        }
        refined.schedule = schedule_vector_nd(refined.retimed);
    } else {
        for (const auto& e : refined.retimed.edges()) {
            for (const VecN& d : e.vectors) {
                if (!d.is_zero() && d[0] < 1) return;  // keep the original plan
            }
        }
        refined.schedule = plan.schedule;
    }
    for (const auto& e : refined.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            if (!d.is_zero() && refined.schedule.dot(d) <= 0) return;
        }
    }
    plan = std::move(refined);
}

}  // namespace

NdFusionPlan plan_fusion_nd(const MldgN& g, PlannerWorkspace* ws, PlanPolicy policy) {
    NdFusionPlan plan;
    if (g.is_acyclic()) {
        plan.retiming = acyclic_outermost_fusion_nd(g, ws);
        plan.level = NdParallelism::OutermostCarried;
        plan.retimed = plan.retiming.apply(g);
        // Outermost-carried graphs admit the row schedule (1, 0, ..., 0).
        plan.schedule = VecN::zeros(g.dim());
        plan.schedule[0] = 1;
    } else {
        plan.retiming = llofra_nd(g, ws);
        plan.retimed = plan.retiming.apply(g);
        plan.level = NdParallelism::Hyperplane;
        plan.schedule = schedule_vector_nd(plan.retimed);
    }
    if (policy == PlanPolicy::SmallestCode) {
        minimize_plan_magnitude_nd(g, plan, ws);
    }
    // Post-condition: the schedule is strict for every nonzero vector.
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            check(d.is_zero() || plan.schedule.dot(d) > 0,
                  "plan_fusion_nd: internal error (schedule not strict)");
        }
    }
    return plan;
}

}  // namespace lf
