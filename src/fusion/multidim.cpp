#include "fusion/multidim.hpp"

#include <algorithm>

#include "graph/constraint_system.hpp"
#include "graph/solver_workspace.hpp"
#include "support/diagnostics.hpp"
#include "support/math_util.hpp"

namespace lf {

RetimingN llofra_nd(const MldgN& g, PlannerWorkspace* ws) {
    SolverWorkspace<VecN>* vecn_ws = ws != nullptr ? &ws->vecn : nullptr;
    check(is_schedulable_nd(g, nullptr, nullptr, vecn_ws),
          "llofra_nd: input MLDG is not schedulable");
    DifferenceConstraintSystem<VecN> sys(g.dim());
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, e.delta());
    }
    const auto solution = sys.solve(nullptr, nullptr, vecn_ws);
    check(solution.feasible, "llofra_nd: internal error (infeasible on schedulable input)");
    return RetimingN(solution.values);
}

RetimingN acyclic_outermost_fusion_nd(const MldgN& g, PlannerWorkspace* ws) {
    SolverWorkspace<VecN>* vecn_ws = ws != nullptr ? &ws->vecn : nullptr;
    check(g.is_acyclic(), "acyclic_outermost_fusion_nd: input MLDG has a cycle");
    check(is_schedulable_nd(g, nullptr, nullptr, vecn_ws),
          "acyclic_outermost_fusion_nd: input MLDG is not schedulable");
    // 1-D constraints on the outermost component only: r0(v) - r0(u) <=
    // delta(e)[0] - 1, so every vector's first retimed component is >= 1.
    DifferenceConstraintSystem<VecN> sys(1);
    for (int v = 0; v < g.num_nodes(); ++v) sys.add_variable(g.node(v).name);
    for (const auto& e : g.edges()) {
        sys.add_constraint(e.from, e.to, VecN{e.delta()[0] - 1});
    }
    const auto solution = sys.solve(nullptr, nullptr, vecn_ws);
    check(solution.feasible, "acyclic_outermost_fusion_nd: internal error");
    RetimingN r(g.num_nodes(), g.dim());
    for (int v = 0; v < g.num_nodes(); ++v) {
        r.of(v)[0] = solution.values[static_cast<std::size_t>(v)][0];
    }
    return r;
}

VecN schedule_vector_nd(const MldgN& retimed) {
    const int dim = retimed.dim();
    VecN s = VecN::zeros(dim);
    if (dim == 0) return s;
    s[dim - 1] = 1;
    // Components are fixed innermost-outward; a vector with leading nonzero
    // at level k only involves s[k..dim-1] in its dot product.
    for (int k = dim - 2; k >= 0; --k) {
        std::optional<std::int64_t> lower;
        for (const auto& e : retimed.edges()) {
            for (const VecN& d : e.vectors) {
                if (d.is_zero()) continue;
                check(d >= VecN::zeros(dim),
                      "schedule_vector_nd: dependence vector below zero; run llofra_nd first");
                if (d.leading_index() != k) continue;
                std::int64_t tail = 0;
                for (int i = k + 1; i < dim; ++i) tail += s[i] * d[i];
                const std::int64_t bound = floor_div(-tail, d[k]) + 1;
                lower = lower ? std::max(*lower, bound) : bound;
            }
        }
        s[k] = lower.value_or(0);
    }
    return s;
}

NdFusionPlan plan_fusion_nd(const MldgN& g, PlannerWorkspace* ws) {
    NdFusionPlan plan;
    if (g.is_acyclic()) {
        plan.retiming = acyclic_outermost_fusion_nd(g, ws);
        plan.level = NdParallelism::OutermostCarried;
        plan.retimed = plan.retiming.apply(g);
        // Outermost-carried graphs admit the row schedule (1, 0, ..., 0).
        plan.schedule = VecN::zeros(g.dim());
        plan.schedule[0] = 1;
    } else {
        plan.retiming = llofra_nd(g, ws);
        plan.retimed = plan.retiming.apply(g);
        plan.level = NdParallelism::Hyperplane;
        plan.schedule = schedule_vector_nd(plan.retimed);
    }
    // Post-condition: the schedule is strict for every nonzero vector.
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            check(d.is_zero() || plan.schedule.dot(d) > 0,
                  "plan_fusion_nd: internal error (schedule not strict)");
        }
    }
    return plan;
}

}  // namespace lf
