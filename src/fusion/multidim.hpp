#pragma once
// n-dimensional generalizations of the paper's algorithms. Definition 2.2
// states the MLDG for arbitrary dimension; the elaborated algorithms are
// two-dimensional, but two of them generalize directly and soundly:
//
//   * LLOFRA (Thm 3.2): the feasibility argument only uses that every cycle
//     weighs lexicographically more than zero, which holds in any dimension
//     -- the constraint system is the n-dimensional 2-ILP analogue.
//   * The hyperplane schedule (Lemma 4.3): build s from the innermost
//     component outward; each component is chosen just large enough to make
//     s . d > 0 for every retimed dependence whose leading nonzero sits at
//     that level (the classical multi-dimensional retiming construction of
//     Passos & Sha, which the paper builds on).
//   * Algorithm 3 also generalizes for acyclic graphs: retime so every
//     dependence is carried by the *outermost* loop (first component >= 1);
//     all inner levels, including the DOALL innermost loop, are then free of
//     same-iteration dependences and one barrier per outermost iteration
//     suffices.
//
// Algorithm 4's two-phase trick is inherently two-dimensional (its phase 2
// equates the single remaining component); we deliberately do not invent an
// n-D variant -- the driver falls back to the hyperplane schedule instead,
// which Theorem 4.4 guarantees.

#include <optional>

#include "fusion/driver.hpp"
#include "ldg/mldg_nd.hpp"

namespace lf {

struct PlannerWorkspace;

/// n-D LLOFRA: retiming with every retimed dependence >= 0 (lexicographic).
/// Throws lf::Error when `g` is not schedulable. `ws` (optional): reusable
/// solver scratch (PlannerWorkspace.vecn), never changes the result.
[[nodiscard]] RetimingN llofra_nd(const MldgN& g, PlannerWorkspace* ws = nullptr);

/// n-D Algorithm 3: retiming making every dependence outermost-carried
/// (first component >= 1). Requires `g` acyclic and schedulable.
[[nodiscard]] RetimingN acyclic_outermost_fusion_nd(const MldgN& g,
                                                    PlannerWorkspace* ws = nullptr);

/// Generalized Lemma 4.3: a strict schedule vector for a retimed graph whose
/// nonzero vectors are all >= 0. Throws if a vector is below zero.
[[nodiscard]] VecN schedule_vector_nd(const MldgN& retimed);

enum class NdParallelism {
    /// Everything carried by the outermost loop: innermost fully DOALL,
    /// one barrier per outermost iteration.
    OutermostCarried,
    /// Wavefront over hyperplanes of the computed schedule vector.
    Hyperplane,
};

struct NdFusionPlan {
    RetimingN retiming;
    MldgN retimed{1};
    NdParallelism level = NdParallelism::Hyperplane;
    VecN schedule;
};

/// Total retiming magnitude sum_v sum_k |r(v)[k]| -- the n-D analogue of
/// retiming_magnitude, minimized by PlanPolicy::SmallestCode.
[[nodiscard]] std::int64_t retiming_magnitude_nd(const RetimingN& r);

/// Acyclic -> OutermostCarried (Alg 3 generalization); otherwise LLOFRA +
/// hyperplane schedule (Alg 5 generalization).
///
/// Under PlanPolicy::SmallestCode the plan additionally runs a magnitude
/// post-pass before the strictness post-condition: hyperplane plans re-solve
/// each trailing component k >= 1 through min_spread_solution (a vector
/// whose retimed prefix is all zero under the candidate bounds
/// r_k(to) - r_k(from) <= d[k]; vectors carried by an earlier dimension
/// leave dim k free -- preserving the lex-nonnegativity LLOFRA established),
/// then every plan recenters each component at its median. A candidate is
/// adopted only when it re-verifies (lex-nonnegative retimed vectors, strict
/// schedule) with strictly smaller magnitude. FastestSchedule output is
/// bit-identical to the pre-policy planner.
[[nodiscard]] NdFusionPlan plan_fusion_nd(const MldgN& g, PlannerWorkspace* ws = nullptr,
                                          PlanPolicy policy = PlanPolicy::FastestSchedule);

}  // namespace lf
