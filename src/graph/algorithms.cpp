#include "graph/algorithms.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <stack>

namespace lf {

namespace {

struct TarjanState {
    const Adjacency& adj;
    std::vector<int> index, lowlink, comp;
    std::vector<bool> on_stack;
    std::vector<int> stack;
    int next_index = 0;
    int next_comp = 0;

    explicit TarjanState(const Adjacency& a)
        : adj(a),
          index(a.size(), -1),
          lowlink(a.size(), 0),
          comp(a.size(), -1),
          on_stack(a.size(), false) {}

    // Iterative Tarjan: frame = (node, next child position).
    void run(int root) {
        std::stack<std::pair<int, std::size_t>> frames;
        frames.emplace(root, 0);
        while (!frames.empty()) {
            auto& [v, child] = frames.top();
            if (child == 0) {
                index[static_cast<std::size_t>(v)] = lowlink[static_cast<std::size_t>(v)] = next_index++;
                stack.push_back(v);
                on_stack[static_cast<std::size_t>(v)] = true;
            }
            bool descended = false;
            const auto& succ = adj[static_cast<std::size_t>(v)];
            while (child < succ.size()) {
                const int w = succ[child++];
                if (index[static_cast<std::size_t>(w)] < 0) {
                    frames.emplace(w, 0);
                    descended = true;
                    break;
                }
                if (on_stack[static_cast<std::size_t>(w)]) {
                    lowlink[static_cast<std::size_t>(v)] =
                        std::min(lowlink[static_cast<std::size_t>(v)], index[static_cast<std::size_t>(w)]);
                }
            }
            if (descended) continue;
            if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
                int w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    on_stack[static_cast<std::size_t>(w)] = false;
                    comp[static_cast<std::size_t>(w)] = next_comp;
                } while (w != v);
                ++next_comp;
            }
            frames.pop();
            if (!frames.empty()) {
                const int parent = frames.top().first;
                lowlink[static_cast<std::size_t>(parent)] =
                    std::min(lowlink[static_cast<std::size_t>(parent)], lowlink[static_cast<std::size_t>(v)]);
            }
        }
    }
};

}  // namespace

std::vector<int> strongly_connected_components(const Adjacency& adj) {
    TarjanState st(adj);
    for (int v = 0; v < static_cast<int>(adj.size()); ++v) {
        if (st.index[static_cast<std::size_t>(v)] < 0) st.run(v);
    }
    return st.comp;
}

int count_sccs(const Adjacency& adj) {
    const auto comp = strongly_connected_components(adj);
    return comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
}

std::optional<std::vector<int>> topological_order(const Adjacency& adj) {
    const std::size_t n = adj.size();
    std::vector<int> indegree(n, 0);
    for (const auto& succ : adj) {
        for (int w : succ) ++indegree[static_cast<std::size_t>(w)];
    }
    std::vector<int> ready;
    for (std::size_t v = 0; v < n; ++v) {
        if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
    }
    std::vector<int> order;
    order.reserve(n);
    while (!ready.empty()) {
        const int v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (int w : adj[static_cast<std::size_t>(v)]) {
            if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
        }
    }
    if (order.size() != n) return std::nullopt;
    return order;
}

bool is_acyclic(const Adjacency& adj) { return topological_order(adj).has_value(); }

std::vector<int> reachable_from(const Adjacency& adj, int start) {
    std::vector<bool> seen(adj.size(), false);
    std::vector<int> out;
    std::vector<int> work{start};
    seen[static_cast<std::size_t>(start)] = true;
    while (!work.empty()) {
        const int v = work.back();
        work.pop_back();
        out.push_back(v);
        for (int w : adj[static_cast<std::size_t>(v)]) {
            if (!seen[static_cast<std::size_t>(w)]) {
                seen[static_cast<std::size_t>(w)] = true;
                work.push_back(w);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

// Johnson's simple-cycle enumeration (recursive circuit search restricted to
// one SCC at a time, rooted at the least vertex of the SCC).
struct JohnsonState {
    const Adjacency& adj;
    std::size_t max_cycles;
    std::vector<std::vector<int>> cycles;
    std::vector<bool> blocked;
    std::vector<std::set<int>> block_map;
    std::vector<int> path;
    int root = 0;

    JohnsonState(const Adjacency& a, std::size_t cap)
        : adj(a), max_cycles(cap), blocked(a.size(), false), block_map(a.size()) {}

    void unblock(int v) {
        blocked[static_cast<std::size_t>(v)] = false;
        auto& bm = block_map[static_cast<std::size_t>(v)];
        while (!bm.empty()) {
            const int w = *bm.begin();
            bm.erase(bm.begin());
            if (blocked[static_cast<std::size_t>(w)]) unblock(w);
        }
    }

    bool circuit(int v, const std::vector<int>& comp_of) {
        if (cycles.size() >= max_cycles) return true;
        bool found = false;
        path.push_back(v);
        blocked[static_cast<std::size_t>(v)] = true;
        for (int w : adj[static_cast<std::size_t>(v)]) {
            if (w < root || comp_of[static_cast<std::size_t>(w)] != comp_of[static_cast<std::size_t>(root)])
                continue;
            if (w == root) {
                cycles.push_back(path);
                found = true;
                if (cycles.size() >= max_cycles) break;
            } else if (!blocked[static_cast<std::size_t>(w)]) {
                if (circuit(w, comp_of)) found = true;
                if (cycles.size() >= max_cycles) break;
            }
        }
        if (found) {
            unblock(v);
        } else {
            for (int w : adj[static_cast<std::size_t>(v)]) {
                if (w < root || comp_of[static_cast<std::size_t>(w)] != comp_of[static_cast<std::size_t>(root)])
                    continue;
                block_map[static_cast<std::size_t>(w)].insert(v);
            }
        }
        path.pop_back();
        return found;
    }
};

}  // namespace

std::vector<std::vector<int>> simple_cycles(const Adjacency& adj, std::size_t max_cycles) {
    JohnsonState st(adj, max_cycles);
    const int n = static_cast<int>(adj.size());
    for (int s = 0; s < n && st.cycles.size() < max_cycles; ++s) {
        // Recompute SCCs on the subgraph induced by vertices >= s.
        Adjacency sub(adj.size());
        for (int v = s; v < n; ++v) {
            for (int w : adj[static_cast<std::size_t>(v)]) {
                if (w >= s) sub[static_cast<std::size_t>(v)].push_back(w);
            }
        }
        const auto comp = strongly_connected_components(sub);
        st.root = s;
        std::fill(st.blocked.begin(), st.blocked.end(), false);
        for (auto& bm : st.block_map) bm.clear();
        // Self-loop at s is a cycle Johnson's circuit() above reports via
        // the w == root branch; non-trivial cycles need an SCC of size > 1
        // containing s, but running circuit() unconditionally is harmless and
        // also picks up self-loops.
        st.circuit(s, comp);
    }
    return st.cycles;
}

}  // namespace lf
