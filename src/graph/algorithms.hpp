#pragma once
// Structural graph algorithms over plain adjacency lists: Tarjan SCC,
// Kahn topological sort, acyclicity tests, reachability and Johnson's
// simple-cycle enumeration (the latter is used by the legality checker and
// by property tests that verify cycle-weight invariance under retiming).

#include <optional>
#include <vector>

namespace lf {

using Adjacency = std::vector<std::vector<int>>;

/// Strongly connected components (Tarjan, iterative). Returns component id
/// per node; ids are in reverse topological order of the condensation.
[[nodiscard]] std::vector<int> strongly_connected_components(const Adjacency& adj);

/// Number of distinct SCCs.
[[nodiscard]] int count_sccs(const Adjacency& adj);

/// Kahn topological order; nullopt when the graph has a cycle.
[[nodiscard]] std::optional<std::vector<int>> topological_order(const Adjacency& adj);

/// True when the directed graph contains no cycle (self-loops count as cycles).
[[nodiscard]] bool is_acyclic(const Adjacency& adj);

/// All simple cycles as node sequences (first node not repeated at the end),
/// via Johnson's algorithm. `max_cycles` bounds output for safety; the
/// enumeration stops once reached. Intended for small graphs (tests, reports).
[[nodiscard]] std::vector<std::vector<int>> simple_cycles(const Adjacency& adj,
                                                          std::size_t max_cycles = 100000);

/// Nodes reachable from `start` (inclusive).
[[nodiscard]] std::vector<int> reachable_from(const Adjacency& adj, int start);

}  // namespace lf
