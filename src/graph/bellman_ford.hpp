#pragma once
// Bellman-Ford shortest paths over an arbitrary totally-ordered,
// translation-invariant weight domain (int64 or lexicographic LexVec of any
// extent, static or runtime).
//
// This is the computational core of every algorithm in the paper:
//   * Alg. 1 (TwoDimBellmanFord) is bellman_ford<Vec2> from a virtual source
//     connected to every vertex by zero-weight edges; we realize the virtual
//     source by initializing every distance to zero instead of adding a node.
//   * Algs. 2/3 call it on 2-D constraint graphs, Alg. 4 on two 1-D ones.
//   * The n-D generalizations (fusion/multidim.hpp, ldg/mldg_nd.cpp) call it
//     on VecN constraint graphs -- same loop, dimension carried by the
//     traits instance.
//
// Complexity O(|V| * |E|), matching the paper's polynomial-time claim.
//
// Hardening: relaxation is metered against an optional ResourceGuard (one
// step per edge-relaxation attempt; the solver returns ResourceExhausted
// instead of finishing when the budget runs out), weight addition is
// overflow-checked (Overflow instead of UB), and the "solver.bellman_ford"
// fault point aborts the solve with Internal on demand. Callers that pass no
// guard and feed in-range weights see exactly the classical behavior.
//
// Telemetry: pass a SolverStats* to account relaxation work (see
// support/solver_stats.hpp). A null pointer skips every accounting read,
// including the wall clock -- the stats-free hot path is unchanged.
//
// Hot path: both entry points run on a SolverWorkspace (caller-owned when
// passed, function-local otherwise), so a reused workspace makes the
// steady-state solve allocation-free. bellman_ford_all_sources additionally
// accepts a *warm start*: a previous all-sources fixpoint adopted as the
// starting potential.
//
// Warm-start legality (the reason results stay byte-identical): the cold
// all-sources fixpoint is F[v] = min over walks ending at v of the walk
// weight (empty walk included, so F <= 0). Relaxation from any starting
// potential d0 converges to  min(d0[v], min_{walk u->v} d0[u] + w(walk)).
// If  F <= d0 <= 0  pointwise, that value is exactly F:
//   * <= F: d0[v] <= 0 covers the empty walk and d0[u] + w <= 0 + w covers
//     every other;
//   * >= F: F[v] <= F[u] + w(walk) (triangle inequality) <= d0[u] + w(walk),
//     and F[v] <= d0[v] directly.
// Callers guarantee the lower bound by passing the exact fixpoint of a
// *subsystem* (same variables, a subset of the constraints, or the same
// constraints with weakly larger bounds): adding or tightening constraints
// can only lower walk minima, so F_new <= F_old = d0. The solver validates
// the cheap upper bound (d0 <= 0) at runtime and falls back to a cold solve
// when it fails. Negative-cycle detection is unaffected: with any finite
// start, relaxation quiesces within |V| passes iff no negative cycle exists.

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

#include "graph/solver_workspace.hpp"
#include "graph/weight_traits.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/solver_stats.hpp"
#include "support/status.hpp"

namespace lf {

/// A weighted edge for the solver; decoupled from Digraph so constraint
/// systems can feed edge lists directly.
template <typename W>
struct WeightedEdge {
    int from = -1;
    int to = -1;
    W weight{};
};

template <typename W>
struct ShortestPaths {
    /// dist[v]: shortest distance from the (virtual or explicit) source.
    std::vector<W> dist;
    /// pred_edge[v]: index into the input edge list of the edge that last
    /// relaxed v, or -1. Used to extract witnesses of negative cycles.
    std::vector<int> pred_edge;
    bool has_negative_cycle = false;
    /// When a negative cycle exists: the edge indices of one such cycle, in
    /// order. Empty otherwise.
    std::vector<int> negative_cycle;
    /// Ok when the solve ran to completion (negative-cycle outcomes are
    /// normal results); ResourceExhausted / Overflow / Internal when it was
    /// cut short -- dist/pred_edge are then partial and must not be used.
    StatusCode status = StatusCode::Ok;
};

namespace detail {

/// Walks predecessor pointers from a vertex known to be reachable from a
/// negative cycle until the walk closes, returning that cycle's edge ids.
/// `pred_edge` is a raw view so both owned and workspace buffers serve.
template <typename W>
std::vector<int> extract_cycle(const std::vector<WeightedEdge<W>>& edges,
                               const int* pred_edge, int n, int start) {
    // After n predecessor hops we are guaranteed to sit on the cycle itself.
    int v = start;
    for (int hop = 0; hop < n; ++hop) {
        const int pe = pred_edge[static_cast<std::size_t>(v)];
        if (pe < 0) break;
        v = edges[static_cast<std::size_t>(pe)].from;
    }
    std::vector<int> cycle;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    int cur = v;
    while (!seen[static_cast<std::size_t>(cur)]) {
        seen[static_cast<std::size_t>(cur)] = true;
        const int pe = pred_edge[static_cast<std::size_t>(cur)];
        if (pe < 0) return {};  // defensive: should not happen on a real cycle
        cycle.push_back(pe);
        cur = edges[static_cast<std::size_t>(pe)].from;
    }
    // `cycle` currently lists edges backwards from v until the first repeat;
    // trim the tail that is not part of the loop, then reverse.
    std::vector<int> trimmed;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
        trimmed.push_back(cycle[k]);
        if (edges[static_cast<std::size_t>(cycle[k])].from == cur) break;
    }
    return {trimmed.rbegin(), trimmed.rend()};
}

/// Accumulates solver counters in locals and flushes them into the caller's
/// SolverStats (if any) on every exit path. Null target: all accounting,
/// including the clock reads, is skipped.
class StatsScope {
  public:
    explicit StatsScope(SolverStats* target) : target_(target) {
        if (target_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    StatsScope(const StatsScope&) = delete;
    StatsScope& operator=(const StatsScope&) = delete;
    ~StatsScope() {
        if (target_ == nullptr) return;
        target_->solves += 1;
        target_->edge_scans += edge_scans;
        target_->relaxations += relaxations;
        target_->iterations += iterations;
        target_->queue_pushes += queue_pushes;
        target_->queue_pops += queue_pops;
        target_->guard_steps += guard_steps;
        target_->overflow_near_misses += overflow_near_misses;
        target_->warm_starts += warm_starts;
        target_->cold_solves += cold_solves;
        target_->wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

    [[nodiscard]] bool enabled() const { return target_ != nullptr; }

    std::uint64_t edge_scans = 0;
    std::uint64_t relaxations = 0;
    std::uint64_t iterations = 0;
    std::uint64_t queue_pushes = 0;
    std::uint64_t queue_pops = 0;
    std::uint64_t guard_steps = 0;
    std::uint64_t overflow_near_misses = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t cold_solves = 0;

  private:
    SolverStats* target_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// Bellman-Ford with every vertex as a zero-distance source. This models the
/// constraint-graph construction of the paper (virtual vertex v0 with
/// zero-weight edges to every other vertex) without materializing v0.
///
/// `ws` (optional): scratch arena to run on; reuse across solves for an
/// allocation-free steady state. `warm_start` (optional): a previous
/// all-sources fixpoint of a subsystem, adopted as the starting potential
/// when valid (every entry <= zero; see the warm-start note above). The
/// returned distances are identical either way; only the work differs.
template <typename W>
ShortestPaths<W> bellman_ford_all_sources(int num_nodes,
                                          const std::vector<WeightedEdge<W>>& edges,
                                          ResourceGuard* guard = nullptr,
                                          SolverStats* stats = nullptr,
                                          const WeightTraits<W>& traits = {},
                                          SolverWorkspace<W>* ws = nullptr,
                                          const std::vector<W>* warm_start = nullptr) {
    detail::StatsScope scope(stats);
    SolverWorkspace<W> local;  // used only when the caller owns no arena
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    const auto n = static_cast<std::size_t>(num_nodes);
    auto& dist = arena.dist;
    auto& pred = arena.pred_edge;

    bool warm = warm_start != nullptr && warm_start->size() == n;
    if (warm) {
        const W zero = traits.zero();
        for (const W& v : *warm_start) {
            if (zero < v) {  // not a valid potential; cold-solve instead
                warm = false;
                break;
            }
        }
    }
    if (warm) {
        dist.assign(warm_start->begin(), warm_start->end());
        ++scope.warm_starts;
    } else {
        dist.assign(n, traits.zero());
        ++scope.cold_solves;
    }
    pred.assign(n, -1);

    ShortestPaths<W> r;
    auto finish = [&]() {
        r.dist.assign(dist.begin(), dist.end());
        r.pred_edge.assign(pred.begin(), pred.end());
        return std::move(r);
    };
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return finish();
    }

    // Validate endpoints once up front; the relaxation passes below then
    // index unchecked (the edge list is immutable for the whole solve).
    for (const auto& e : edges) {
        check(e.from >= 0 && e.from < num_nodes && e.to >= 0 && e.to < num_nodes,
              "bellman_ford: edge endpoint out of range");
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        ++scope.iterations;
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return finish();
                }
            }
            W cand;
            if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return finish();
            }
            if (cand < dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                dist[static_cast<std::size_t>(e.to)] = cand;
                pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return finish();
    }
    // An n-th pass that still relaxes implies a negative cycle.
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        ++scope.edge_scans;
        W cand;
        if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return finish();
        }
        if (cand < dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, pred.data(), num_nodes, e.to);
            return finish();
        }
    }
    return finish();
}

namespace detail {

/// O(n) negative-cycle probe for the early-exit path of the batched kernel:
/// a cycle among the predecessor pointers implies a negative cycle in the
/// constraint graph (every pred edge strictly lowered its head's distance,
/// so summing a pred cycle's relaxations telescopes to a negative weight).
/// The converse is supplied by the classical n-th-pass rule, which the
/// kernel keeps as its backstop -- this probe only lets infeasible systems
/// surface after a handful of passes instead of all |V| of them.
/// `mark`/`walk` are caller-owned scratch (resized here).
template <typename W>
bool pred_graph_has_cycle(const WeightedEdge<W>* /*tag*/, const int* pred_edge,
                          const int* edge_from, int n, std::vector<signed char>& mark,
                          std::vector<int>& walk) {
    mark.assign(static_cast<std::size_t>(n), 0);  // 0 unvisited, 1 in walk, 2 done
    for (int s = 0; s < n; ++s) {
        if (mark[static_cast<std::size_t>(s)] != 0) continue;
        walk.clear();
        int v = s;
        while (true) {
            const signed char m = mark[static_cast<std::size_t>(v)];
            if (m == 1) return true;  // closed a walk on itself: pred cycle
            if (m == 2) break;        // merged into an already-cleared walk
            mark[static_cast<std::size_t>(v)] = 1;
            walk.push_back(v);
            const int pe = pred_edge[static_cast<std::size_t>(v)];
            if (pe < 0) break;
            v = edge_from[static_cast<std::size_t>(pe)];
        }
        for (int u : walk) mark[static_cast<std::size_t>(u)] = 2;
    }
    return false;
}

}  // namespace detail

/// One job's view of a batched all-sources solve: per-edge bounds (and an
/// optional participation mask) over the batch's *shared* endpoint arrays,
/// plus the same optional warm start / guard / stats the sequential entry
/// point takes. Outputs mirror ShortestPaths minus the witness extraction
/// (the ladder rungs never consume conflict cycles; legality checking, which
/// does, stays on bellman_ford_all_sources).
template <typename W>
struct BatchLane {
    // ---- Inputs ----
    /// bounds[e]: this lane's weight for shared edge e. Required.
    const W* bounds = nullptr;
    /// enabled[e] == 0 excludes shared edge e from this lane's system
    /// entirely (no scan, no guard step -- exactly as if the lane's edge
    /// list had been filtered). Null = all edges participate.
    const unsigned char* enabled = nullptr;
    /// Previous fixpoint of a subsystem, adopted when valid (<= 0 pointwise;
    /// same contract as the sequential warm start).
    const std::vector<W>* warm_start = nullptr;
    ResourceGuard* guard = nullptr;
    SolverStats* stats = nullptr;
    /// Marks a warm start that came from a cached neighbor's distances (plan
    /// cache delta-solve) rather than this job's own earlier rung; counted
    /// into SolverStats::delta_solves when the warm start is adopted.
    bool warm_is_delta = false;

    // ---- Outputs ----
    std::vector<W> dist;
    bool has_negative_cycle = false;
    StatusCode status = StatusCode::Ok;
};

/// Batched all-sources Bellman-Ford: K independent difference-constraint
/// systems over ONE shared edge-endpoint structure, solved in lockstep.
/// Distances live in a structure-of-arrays layout (dist[v * K + k], lane
/// innermost), so the relaxation inner loop runs down contiguous lanes --
/// the layout the ISSUE's SIMD framing asks for.
///
/// Per-lane semantics are bit-identical to running the sequential kernel on
/// that lane's filtered edge list: lanes advance pass-by-pass together, a
/// lane stops scanning the moment it quiesces (fixpoint), aborts alone on
/// its own guard/overflow, and counts exactly the scans it would have done
/// alone. Results therefore never depend on what else is in the batch.
///
/// `early_cycle_exit` additionally probes the predecessor graph after every
/// pass (detail::pred_graph_has_cycle) so infeasible lanes finish in a few
/// passes instead of |V|; verdicts and fixpoints are unchanged, only the
/// work shrinks. No conflict witness is produced either way.
///
/// `ws` (optional): scratch arena; buffers are sized n * K and reused, so a
/// steady-state batch solve performs no counted allocations.
template <typename W>
void bellman_ford_all_sources_batch(int num_nodes, std::span<const int> edge_from,
                                    std::span<const int> edge_to,
                                    std::span<BatchLane<W>> lanes,
                                    const WeightTraits<W>& traits = {},
                                    SolverWorkspace<W>* ws = nullptr,
                                    bool early_cycle_exit = false) {
    const auto n = static_cast<std::size_t>(num_nodes);
    const std::size_t ne = edge_from.size();
    const std::size_t K = lanes.size();
    check(edge_to.size() == ne, "bellman_ford_batch: endpoint arrays disagree");
    for (std::size_t ei = 0; ei < ne; ++ei) {
        check(edge_from[ei] >= 0 && edge_from[ei] < num_nodes && edge_to[ei] >= 0 &&
                  edge_to[ei] < num_nodes,
              "bellman_ford_batch: edge endpoint out of range");
    }
    if (K == 0) return;

    SolverWorkspace<W> local;
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    auto& dist = arena.dist;       // SoA: dist[v * K + k]
    auto& pred = arena.pred_edge;  // SoA: pred[v * K + k]
    dist.assign(n * K, traits.zero());
    pred.assign(n * K, -1);

    // Per-lane bookkeeping (plain locals: tiny, lane-count-sized).
    struct LaneCounters {
        std::uint64_t edge_scans = 0;
        std::uint64_t relaxations = 0;
        std::uint64_t iterations = 0;
        std::uint64_t guard_steps = 0;
        std::uint64_t overflow_near_misses = 0;
        bool warm = false;
        bool delta = false;
    };
    std::vector<LaneCounters> counters(K);
    std::vector<unsigned char> active(K, 1);
    std::vector<unsigned char> changed(K, 0);
    std::size_t alive = K;

    const bool any_stats = [&] {
        for (const auto& l : lanes) {
            if (l.stats != nullptr) return true;
        }
        return false;
    }();
    const auto t0 = any_stats ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

    auto finish_lane = [&](std::size_t k) {
        BatchLane<W>& lane = lanes[k];
        lane.dist.resize(n);
        for (std::size_t v = 0; v < n; ++v) lane.dist[v] = dist[v * K + k];
        active[k] = 0;
        --alive;
        if (lane.stats != nullptr) {
            SolverStats& st = *lane.stats;
            const LaneCounters& c = counters[k];
            st.solves += 1;
            st.edge_scans += c.edge_scans;
            st.relaxations += c.relaxations;
            st.iterations += c.iterations;
            st.guard_steps += c.guard_steps;
            st.overflow_near_misses += c.overflow_near_misses;
            st.warm_starts += c.warm ? 1 : 0;
            st.cold_solves += c.warm ? 0 : 1;
            st.batch_solves += K >= 2 ? 1 : 0;
            st.delta_solves += c.delta ? 1 : 0;
            // Apportion the shared batch wall time across lanes: summing
            // per-job stats must recover the kernel's actual wall time, not
            // K times it.
            st.wall_ns += static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count()) /
                          K;
        }
    };

    // Seed each lane: fault point, then warm-or-cold initial potential.
    for (std::size_t k = 0; k < K; ++k) {
        BatchLane<W>& lane = lanes[k];
        check(lane.bounds != nullptr || ne == 0, "bellman_ford_batch: lane without bounds");
        if (faultpoint::triggered("solver.bellman_ford")) {
            lane.status = StatusCode::Internal;
            finish_lane(k);
            continue;
        }
        bool warm = lane.warm_start != nullptr && lane.warm_start->size() == n;
        if (warm) {
            const W zero = traits.zero();
            for (const W& v : *lane.warm_start) {
                if (zero < v) {
                    warm = false;
                    break;
                }
            }
        }
        if (warm) {
            for (std::size_t v = 0; v < n; ++v) dist[v * K + k] = (*lane.warm_start)[v];
            counters[k].warm = true;
            counters[k].delta = lane.warm_is_delta;
        }
    }

    std::vector<signed char> cycle_mark;
    std::vector<int> cycle_walk;
    std::vector<int> lane_pred;  // pred slice scratch for the cycle probe
    if (early_cycle_exit) lane_pred.resize(n);

    for (int pass = 0; pass < num_nodes && alive > 0; ++pass) {
        for (std::size_t k = 0; k < K; ++k) {
            if (active[k] != 0) {
                ++counters[k].iterations;
                changed[k] = 0;
            }
        }
        for (std::size_t ei = 0; ei < ne; ++ei) {
            const auto f = static_cast<std::size_t>(edge_from[ei]);
            const auto t = static_cast<std::size_t>(edge_to[ei]);
            for (std::size_t k = 0; k < K; ++k) {
                if (active[k] == 0) continue;
                BatchLane<W>& lane = lanes[k];
                if (lane.enabled != nullptr && lane.enabled[ei] == 0) continue;
                ++counters[k].edge_scans;
                if (lane.guard != nullptr) {
                    ++counters[k].guard_steps;
                    if (!lane.guard->consume()) {
                        lane.status = StatusCode::ResourceExhausted;
                        finish_lane(k);
                        continue;
                    }
                }
                W cand;
                if (!traits.checked_add(dist[f * K + k], lane.bounds[ei], cand)) {
                    lane.status = StatusCode::Overflow;
                    finish_lane(k);
                    continue;
                }
                if (cand < dist[t * K + k]) {
                    ++counters[k].relaxations;
                    if (lane.stats != nullptr && traits.near_overflow(cand)) {
                        ++counters[k].overflow_near_misses;
                    }
                    dist[t * K + k] = cand;
                    pred[t * K + k] = static_cast<int>(ei);
                    changed[k] = 1;
                }
            }
        }
        for (std::size_t k = 0; k < K; ++k) {
            if (active[k] == 0) continue;
            if (changed[k] == 0) {
                finish_lane(k);  // quiesced: this lane's fixpoint is final
                continue;
            }
            if (early_cycle_exit) {
                for (std::size_t v = 0; v < n; ++v) lane_pred[v] = pred[v * K + k];
                if (detail::pred_graph_has_cycle<W>(nullptr, lane_pred.data(),
                                                    edge_from.data(), num_nodes, cycle_mark,
                                                    cycle_walk)) {
                    lanes[k].has_negative_cycle = true;
                    finish_lane(k);
                }
            }
        }
    }
    // Lanes still relaxing after |V| passes sit on a negative cycle iff the
    // detection pass still finds a relaxable edge (classical rule).
    for (std::size_t ei = 0; ei < ne && alive > 0; ++ei) {
        const auto f = static_cast<std::size_t>(edge_from[ei]);
        const auto t = static_cast<std::size_t>(edge_to[ei]);
        for (std::size_t k = 0; k < K; ++k) {
            if (active[k] == 0) continue;
            BatchLane<W>& lane = lanes[k];
            if (lane.enabled != nullptr && lane.enabled[ei] == 0) continue;
            ++counters[k].edge_scans;
            W cand;
            if (!traits.checked_add(dist[f * K + k], lane.bounds[ei], cand)) {
                lane.status = StatusCode::Overflow;
                finish_lane(k);
                continue;
            }
            if (cand < dist[t * K + k]) {
                lane.has_negative_cycle = true;
                finish_lane(k);
            }
        }
    }
    for (std::size_t k = 0; k < K; ++k) {
        if (active[k] != 0) finish_lane(k);  // completed: feasible fixpoint
    }
}

/// Classical single-source Bellman-Ford (distances from `source`; unreachable
/// vertices keep the domain's infinity). Takes the same optional workspace;
/// no warm start -- the infinity-initialized single-source solve has no
/// subsystem-fixpoint structure to exploit.
template <typename W>
ShortestPaths<W> bellman_ford(int num_nodes, const std::vector<WeightedEdge<W>>& edges,
                              int source, ResourceGuard* guard = nullptr,
                              SolverStats* stats = nullptr,
                              const WeightTraits<W>& traits = {},
                              SolverWorkspace<W>* ws = nullptr) {
    check(source >= 0 && source < num_nodes, "bellman_ford: bad source");
    detail::StatsScope scope(stats);
    ++scope.cold_solves;
    SolverWorkspace<W> local;
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    const auto n = static_cast<std::size_t>(num_nodes);
    auto& dist = arena.dist;
    auto& pred = arena.pred_edge;
    dist.assign(n, traits.infinity());
    pred.assign(n, -1);
    dist[static_cast<std::size_t>(source)] = traits.zero();

    ShortestPaths<W> r;
    auto finish = [&]() {
        r.dist.assign(dist.begin(), dist.end());
        r.pred_edge.assign(pred.begin(), pred.end());
        return std::move(r);
    };
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return finish();
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        ++scope.iterations;
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            if (traits.is_infinite(dist[static_cast<std::size_t>(e.from)])) continue;
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return finish();
                }
            }
            W cand;
            if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return finish();
            }
            if (cand < dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                dist[static_cast<std::size_t>(e.to)] = cand;
                pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return finish();
    }
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        if (traits.is_infinite(dist[static_cast<std::size_t>(e.from)])) continue;
        ++scope.edge_scans;
        W cand;
        if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return finish();
        }
        if (cand < dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, pred.data(), num_nodes, e.to);
            return finish();
        }
    }
    return finish();
}

}  // namespace lf
