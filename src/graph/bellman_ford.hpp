#pragma once
// Bellman-Ford shortest paths over an arbitrary totally-ordered,
// translation-invariant weight domain (int64 or lexicographic LexVec of any
// extent, static or runtime).
//
// This is the computational core of every algorithm in the paper:
//   * Alg. 1 (TwoDimBellmanFord) is bellman_ford<Vec2> from a virtual source
//     connected to every vertex by zero-weight edges; we realize the virtual
//     source by initializing every distance to zero instead of adding a node.
//   * Algs. 2/3 call it on 2-D constraint graphs, Alg. 4 on two 1-D ones.
//   * The n-D generalizations (fusion/multidim.hpp, ldg/mldg_nd.cpp) call it
//     on VecN constraint graphs -- same loop, dimension carried by the
//     traits instance.
//
// Complexity O(|V| * |E|), matching the paper's polynomial-time claim.
//
// Hardening: relaxation is metered against an optional ResourceGuard (one
// step per edge-relaxation attempt; the solver returns ResourceExhausted
// instead of finishing when the budget runs out), weight addition is
// overflow-checked (Overflow instead of UB), and the "solver.bellman_ford"
// fault point aborts the solve with Internal on demand. Callers that pass no
// guard and feed in-range weights see exactly the classical behavior.
//
// Telemetry: pass a SolverStats* to account relaxation work (see
// support/solver_stats.hpp). A null pointer skips every accounting read,
// including the wall clock -- the stats-free hot path is unchanged.
//
// Hot path: both entry points run on a SolverWorkspace (caller-owned when
// passed, function-local otherwise), so a reused workspace makes the
// steady-state solve allocation-free. bellman_ford_all_sources additionally
// accepts a *warm start*: a previous all-sources fixpoint adopted as the
// starting potential.
//
// Warm-start legality (the reason results stay byte-identical): the cold
// all-sources fixpoint is F[v] = min over walks ending at v of the walk
// weight (empty walk included, so F <= 0). Relaxation from any starting
// potential d0 converges to  min(d0[v], min_{walk u->v} d0[u] + w(walk)).
// If  F <= d0 <= 0  pointwise, that value is exactly F:
//   * <= F: d0[v] <= 0 covers the empty walk and d0[u] + w <= 0 + w covers
//     every other;
//   * >= F: F[v] <= F[u] + w(walk) (triangle inequality) <= d0[u] + w(walk),
//     and F[v] <= d0[v] directly.
// Callers guarantee the lower bound by passing the exact fixpoint of a
// *subsystem* (same variables, a subset of the constraints, or the same
// constraints with weakly larger bounds): adding or tightening constraints
// can only lower walk minima, so F_new <= F_old = d0. The solver validates
// the cheap upper bound (d0 <= 0) at runtime and falls back to a cold solve
// when it fails. Negative-cycle detection is unaffected: with any finite
// start, relaxation quiesces within |V| passes iff no negative cycle exists.

#include <chrono>
#include <cstddef>
#include <vector>

#include "graph/solver_workspace.hpp"
#include "graph/weight_traits.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/solver_stats.hpp"
#include "support/status.hpp"

namespace lf {

/// A weighted edge for the solver; decoupled from Digraph so constraint
/// systems can feed edge lists directly.
template <typename W>
struct WeightedEdge {
    int from = -1;
    int to = -1;
    W weight{};
};

template <typename W>
struct ShortestPaths {
    /// dist[v]: shortest distance from the (virtual or explicit) source.
    std::vector<W> dist;
    /// pred_edge[v]: index into the input edge list of the edge that last
    /// relaxed v, or -1. Used to extract witnesses of negative cycles.
    std::vector<int> pred_edge;
    bool has_negative_cycle = false;
    /// When a negative cycle exists: the edge indices of one such cycle, in
    /// order. Empty otherwise.
    std::vector<int> negative_cycle;
    /// Ok when the solve ran to completion (negative-cycle outcomes are
    /// normal results); ResourceExhausted / Overflow / Internal when it was
    /// cut short -- dist/pred_edge are then partial and must not be used.
    StatusCode status = StatusCode::Ok;
};

namespace detail {

/// Walks predecessor pointers from a vertex known to be reachable from a
/// negative cycle until the walk closes, returning that cycle's edge ids.
/// `pred_edge` is a raw view so both owned and workspace buffers serve.
template <typename W>
std::vector<int> extract_cycle(const std::vector<WeightedEdge<W>>& edges,
                               const int* pred_edge, int n, int start) {
    // After n predecessor hops we are guaranteed to sit on the cycle itself.
    int v = start;
    for (int hop = 0; hop < n; ++hop) {
        const int pe = pred_edge[static_cast<std::size_t>(v)];
        if (pe < 0) break;
        v = edges[static_cast<std::size_t>(pe)].from;
    }
    std::vector<int> cycle;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    int cur = v;
    while (!seen[static_cast<std::size_t>(cur)]) {
        seen[static_cast<std::size_t>(cur)] = true;
        const int pe = pred_edge[static_cast<std::size_t>(cur)];
        if (pe < 0) return {};  // defensive: should not happen on a real cycle
        cycle.push_back(pe);
        cur = edges[static_cast<std::size_t>(pe)].from;
    }
    // `cycle` currently lists edges backwards from v until the first repeat;
    // trim the tail that is not part of the loop, then reverse.
    std::vector<int> trimmed;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
        trimmed.push_back(cycle[k]);
        if (edges[static_cast<std::size_t>(cycle[k])].from == cur) break;
    }
    return {trimmed.rbegin(), trimmed.rend()};
}

/// Accumulates solver counters in locals and flushes them into the caller's
/// SolverStats (if any) on every exit path. Null target: all accounting,
/// including the clock reads, is skipped.
class StatsScope {
  public:
    explicit StatsScope(SolverStats* target) : target_(target) {
        if (target_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    StatsScope(const StatsScope&) = delete;
    StatsScope& operator=(const StatsScope&) = delete;
    ~StatsScope() {
        if (target_ == nullptr) return;
        target_->solves += 1;
        target_->edge_scans += edge_scans;
        target_->relaxations += relaxations;
        target_->iterations += iterations;
        target_->queue_pushes += queue_pushes;
        target_->queue_pops += queue_pops;
        target_->guard_steps += guard_steps;
        target_->overflow_near_misses += overflow_near_misses;
        target_->warm_starts += warm_starts;
        target_->cold_solves += cold_solves;
        target_->wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

    [[nodiscard]] bool enabled() const { return target_ != nullptr; }

    std::uint64_t edge_scans = 0;
    std::uint64_t relaxations = 0;
    std::uint64_t iterations = 0;
    std::uint64_t queue_pushes = 0;
    std::uint64_t queue_pops = 0;
    std::uint64_t guard_steps = 0;
    std::uint64_t overflow_near_misses = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t cold_solves = 0;

  private:
    SolverStats* target_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// Bellman-Ford with every vertex as a zero-distance source. This models the
/// constraint-graph construction of the paper (virtual vertex v0 with
/// zero-weight edges to every other vertex) without materializing v0.
///
/// `ws` (optional): scratch arena to run on; reuse across solves for an
/// allocation-free steady state. `warm_start` (optional): a previous
/// all-sources fixpoint of a subsystem, adopted as the starting potential
/// when valid (every entry <= zero; see the warm-start note above). The
/// returned distances are identical either way; only the work differs.
template <typename W>
ShortestPaths<W> bellman_ford_all_sources(int num_nodes,
                                          const std::vector<WeightedEdge<W>>& edges,
                                          ResourceGuard* guard = nullptr,
                                          SolverStats* stats = nullptr,
                                          const WeightTraits<W>& traits = {},
                                          SolverWorkspace<W>* ws = nullptr,
                                          const std::vector<W>* warm_start = nullptr) {
    detail::StatsScope scope(stats);
    SolverWorkspace<W> local;  // used only when the caller owns no arena
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    const auto n = static_cast<std::size_t>(num_nodes);
    auto& dist = arena.dist;
    auto& pred = arena.pred_edge;

    bool warm = warm_start != nullptr && warm_start->size() == n;
    if (warm) {
        const W zero = traits.zero();
        for (const W& v : *warm_start) {
            if (zero < v) {  // not a valid potential; cold-solve instead
                warm = false;
                break;
            }
        }
    }
    if (warm) {
        dist.assign(warm_start->begin(), warm_start->end());
        ++scope.warm_starts;
    } else {
        dist.assign(n, traits.zero());
        ++scope.cold_solves;
    }
    pred.assign(n, -1);

    ShortestPaths<W> r;
    auto finish = [&]() {
        r.dist.assign(dist.begin(), dist.end());
        r.pred_edge.assign(pred.begin(), pred.end());
        return std::move(r);
    };
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return finish();
    }

    // Validate endpoints once up front; the relaxation passes below then
    // index unchecked (the edge list is immutable for the whole solve).
    for (const auto& e : edges) {
        check(e.from >= 0 && e.from < num_nodes && e.to >= 0 && e.to < num_nodes,
              "bellman_ford: edge endpoint out of range");
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        ++scope.iterations;
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return finish();
                }
            }
            W cand;
            if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return finish();
            }
            if (cand < dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                dist[static_cast<std::size_t>(e.to)] = cand;
                pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return finish();
    }
    // An n-th pass that still relaxes implies a negative cycle.
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        ++scope.edge_scans;
        W cand;
        if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return finish();
        }
        if (cand < dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, pred.data(), num_nodes, e.to);
            return finish();
        }
    }
    return finish();
}

/// Classical single-source Bellman-Ford (distances from `source`; unreachable
/// vertices keep the domain's infinity). Takes the same optional workspace;
/// no warm start -- the infinity-initialized single-source solve has no
/// subsystem-fixpoint structure to exploit.
template <typename W>
ShortestPaths<W> bellman_ford(int num_nodes, const std::vector<WeightedEdge<W>>& edges,
                              int source, ResourceGuard* guard = nullptr,
                              SolverStats* stats = nullptr,
                              const WeightTraits<W>& traits = {},
                              SolverWorkspace<W>* ws = nullptr) {
    check(source >= 0 && source < num_nodes, "bellman_ford: bad source");
    detail::StatsScope scope(stats);
    ++scope.cold_solves;
    SolverWorkspace<W> local;
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    const auto n = static_cast<std::size_t>(num_nodes);
    auto& dist = arena.dist;
    auto& pred = arena.pred_edge;
    dist.assign(n, traits.infinity());
    pred.assign(n, -1);
    dist[static_cast<std::size_t>(source)] = traits.zero();

    ShortestPaths<W> r;
    auto finish = [&]() {
        r.dist.assign(dist.begin(), dist.end());
        r.pred_edge.assign(pred.begin(), pred.end());
        return std::move(r);
    };
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return finish();
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        ++scope.iterations;
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            if (traits.is_infinite(dist[static_cast<std::size_t>(e.from)])) continue;
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return finish();
                }
            }
            W cand;
            if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return finish();
            }
            if (cand < dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                dist[static_cast<std::size_t>(e.to)] = cand;
                pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return finish();
    }
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        if (traits.is_infinite(dist[static_cast<std::size_t>(e.from)])) continue;
        ++scope.edge_scans;
        W cand;
        if (!traits.checked_add(dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return finish();
        }
        if (cand < dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            pred[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, pred.data(), num_nodes, e.to);
            return finish();
        }
    }
    return finish();
}

}  // namespace lf
