#pragma once
// Bellman-Ford shortest paths over an arbitrary totally-ordered,
// translation-invariant weight domain (int64 or lexicographic Vec2).
//
// This is the computational core of every algorithm in the paper:
//   * Alg. 1 (TwoDimBellmanFord) is bellman_ford<Vec2> from a virtual source
//     connected to every vertex by zero-weight edges; we realize the virtual
//     source by initializing every distance to zero instead of adding a node.
//   * Algs. 2/3 call it on 2-D constraint graphs, Alg. 4 on two 1-D ones.
//
// Complexity O(|V| * |E|), matching the paper's polynomial-time claim.
//
// Hardening: relaxation is metered against an optional ResourceGuard (one
// step per edge-relaxation attempt; the solver returns ResourceExhausted
// instead of finishing when the budget runs out), weight addition is
// overflow-checked (Overflow instead of UB), and the "solver.bellman_ford"
// fault point aborts the solve with Internal on demand. Callers that pass no
// guard and feed in-range weights see exactly the classical behavior.

#include <cstddef>
#include <vector>

#include "graph/weight_traits.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/status.hpp"

namespace lf {

/// A weighted edge for the solver; decoupled from Digraph so constraint
/// systems can feed edge lists directly.
template <typename W>
struct WeightedEdge {
    int from = -1;
    int to = -1;
    W weight{};
};

template <typename W>
struct ShortestPaths {
    /// dist[v]: shortest distance from the (virtual or explicit) source.
    std::vector<W> dist;
    /// pred_edge[v]: index into the input edge list of the edge that last
    /// relaxed v, or -1. Used to extract witnesses of negative cycles.
    std::vector<int> pred_edge;
    bool has_negative_cycle = false;
    /// When a negative cycle exists: the edge indices of one such cycle, in
    /// order. Empty otherwise.
    std::vector<int> negative_cycle;
    /// Ok when the solve ran to completion (negative-cycle outcomes are
    /// normal results); ResourceExhausted / Overflow / Internal when it was
    /// cut short -- dist/pred_edge are then partial and must not be used.
    StatusCode status = StatusCode::Ok;
};

namespace detail {

/// Walks predecessor pointers from a vertex known to be reachable from a
/// negative cycle until the walk closes, returning that cycle's edge ids.
template <typename W>
std::vector<int> extract_cycle(const std::vector<WeightedEdge<W>>& edges,
                               const std::vector<int>& pred_edge, int start) {
    const int n = static_cast<int>(pred_edge.size());
    // After n predecessor hops we are guaranteed to sit on the cycle itself.
    int v = start;
    for (int hop = 0; hop < n; ++hop) {
        const int pe = pred_edge[static_cast<std::size_t>(v)];
        if (pe < 0) break;
        v = edges[static_cast<std::size_t>(pe)].from;
    }
    std::vector<int> cycle;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    int cur = v;
    while (!seen[static_cast<std::size_t>(cur)]) {
        seen[static_cast<std::size_t>(cur)] = true;
        const int pe = pred_edge[static_cast<std::size_t>(cur)];
        if (pe < 0) return {};  // defensive: should not happen on a real cycle
        cycle.push_back(pe);
        cur = edges[static_cast<std::size_t>(pe)].from;
    }
    // `cycle` currently lists edges backwards from v until the first repeat;
    // trim the tail that is not part of the loop, then reverse.
    std::vector<int> trimmed;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
        trimmed.push_back(cycle[k]);
        if (edges[static_cast<std::size_t>(cycle[k])].from == cur) break;
    }
    return {trimmed.rbegin(), trimmed.rend()};
}

}  // namespace detail

/// Bellman-Ford with every vertex as a zero-distance source. This models the
/// constraint-graph construction of the paper (virtual vertex v0 with
/// zero-weight edges to every other vertex) without materializing v0.
template <typename W>
ShortestPaths<W> bellman_ford_all_sources(int num_nodes,
                                          const std::vector<WeightedEdge<W>>& edges,
                                          ResourceGuard* guard = nullptr) {
    using T = WeightTraits<W>;
    ShortestPaths<W> r;
    r.dist.assign(static_cast<std::size_t>(num_nodes), T::zero());
    r.pred_edge.assign(static_cast<std::size_t>(num_nodes), -1);
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return r;
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            check(e.from >= 0 && e.from < num_nodes && e.to >= 0 && e.to < num_nodes,
                  "bellman_ford: edge endpoint out of range");
            if (guard && !guard->consume()) {
                r.status = StatusCode::ResourceExhausted;
                return r;
            }
            W cand;
            if (!T::checked_add(r.dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return r;
            }
            if (cand < r.dist[static_cast<std::size_t>(e.to)]) {
                r.dist[static_cast<std::size_t>(e.to)] = cand;
                r.pred_edge[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return r;
    }
    // An n-th pass that still relaxes implies a negative cycle.
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        W cand;
        if (!T::checked_add(r.dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return r;
        }
        if (cand < r.dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            r.pred_edge[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, r.pred_edge, e.to);
            return r;
        }
    }
    return r;
}

/// Classical single-source Bellman-Ford (distances from `source`; unreachable
/// vertices keep the domain's infinity).
template <typename W>
ShortestPaths<W> bellman_ford(int num_nodes, const std::vector<WeightedEdge<W>>& edges,
                              int source, ResourceGuard* guard = nullptr) {
    using T = WeightTraits<W>;
    check(source >= 0 && source < num_nodes, "bellman_ford: bad source");
    ShortestPaths<W> r;
    r.dist.assign(static_cast<std::size_t>(num_nodes), T::infinity());
    r.pred_edge.assign(static_cast<std::size_t>(num_nodes), -1);
    r.dist[static_cast<std::size_t>(source)] = T::zero();
    if (faultpoint::triggered("solver.bellman_ford")) {
        r.status = StatusCode::Internal;
        return r;
    }

    for (int pass = 0; pass < num_nodes; ++pass) {
        bool changed = false;
        for (std::size_t ei = 0; ei < edges.size(); ++ei) {
            const auto& e = edges[ei];
            if (T::is_infinite(r.dist[static_cast<std::size_t>(e.from)])) continue;
            if (guard && !guard->consume()) {
                r.status = StatusCode::ResourceExhausted;
                return r;
            }
            W cand;
            if (!T::checked_add(r.dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return r;
            }
            if (cand < r.dist[static_cast<std::size_t>(e.to)]) {
                r.dist[static_cast<std::size_t>(e.to)] = cand;
                r.pred_edge[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
                changed = true;
            }
        }
        if (!changed) return r;
    }
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const auto& e = edges[ei];
        if (T::is_infinite(r.dist[static_cast<std::size_t>(e.from)])) continue;
        W cand;
        if (!T::checked_add(r.dist[static_cast<std::size_t>(e.from)], e.weight, cand)) {
            r.status = StatusCode::Overflow;
            return r;
        }
        if (cand < r.dist[static_cast<std::size_t>(e.to)]) {
            r.has_negative_cycle = true;
            r.pred_edge[static_cast<std::size_t>(e.to)] = static_cast<int>(ei);
            r.negative_cycle = detail::extract_cycle(edges, r.pred_edge, e.to);
            return r;
        }
    }
    return r;
}

}  // namespace lf
