#include "graph/constraint_system.hpp"

#include <cstdint>
#include <sstream>

#include "support/lexvec.hpp"

namespace lf {

namespace {

template <typename W>
std::string describe_impl(const DifferenceConstraintSystem<W>&, const std::vector<int>& conflict) {
    std::ostringstream os;
    os << "negative-weight cycle through " << conflict.size() << " constraint(s)";
    return os.str();
}

}  // namespace

template <>
std::string DifferenceConstraintSystem<std::int64_t>::describe_conflict(
    const std::vector<int>& conflict) const {
    return describe_impl(*this, conflict);
}

template <>
std::string DifferenceConstraintSystem<Vec2>::describe_conflict(
    const std::vector<int>& conflict) const {
    return describe_impl(*this, conflict);
}

template <>
std::string DifferenceConstraintSystem<VecN>::describe_conflict(
    const std::vector<int>& conflict) const {
    return describe_impl(*this, conflict);
}

}  // namespace lf
