#pragma once
// Systems of difference constraints  x_j - x_i <= w_ij  over int64, Vec2 or
// VecN, i.e. the paper's "Problem ILP" and "Problem 2-ILP" (Section 2.4) and
// their n-dimensional analogue -- lexicographic order on Z^n is a
// translation-invariant total order for every n, so one template serves all
// dimensions (the historical NdDifferenceConstraintSystem is an alias of the
// VecN instantiation; see graph/constraint_system_nd.hpp).
//
// Theorem 2.2 / 2.3: the system is feasible iff the constraint graph (edge
// i -> j of weight w_ij for every constraint, plus a virtual source reaching
// every vertex at cost zero) has no cycle of weight below zero; the shortest
// path lengths from the virtual source are then a feasible assignment.

#include <optional>
#include <string>
#include <vector>

#include "graph/bellman_ford.hpp"
#include "graph/spfa.hpp"

namespace lf {

template <typename W>
class DifferenceConstraintSystem {
  public:
    /// Static weight domains need no traits state; the VecN instantiation is
    /// constructed with its dimension (`DifferenceConstraintSystem<VecN>
    /// sys(3)` -- WeightTraits<VecN> converts implicitly from int).
    explicit DifferenceConstraintSystem(WeightTraits<W> traits = {})
        : traits_(std::move(traits)) {}

    [[nodiscard]] const WeightTraits<W>& traits() const { return traits_; }

    /// Adds a fresh unknown; returns its index. `name` is only used in
    /// diagnostics.
    int add_variable(std::string name = "") {
        names_.push_back(name.empty() ? "x" + std::to_string(names_.size())
                                      : std::move(name));
        csr_dirty_ = true;  // adjacency is sized by the variable count
        return static_cast<int>(names_.size()) - 1;
    }

    /// Adds the constraint  x_j - x_i <= bound.
    void add_constraint(int i, int j, W bound) {
        check(i >= 0 && i < num_variables() && j >= 0 && j < num_variables(),
              "DifferenceConstraintSystem: variable index out of range");
        check(traits_.compatible(bound),
              "DifferenceConstraintSystem: bound dimension mismatch");
        edges_.push_back(WeightedEdge<W>{i, j, bound});
        csr_dirty_ = true;
    }

    /// Adds the equality  x_j - x_i == value  as a pair of opposing
    /// constraints (this is how Alg. 4 phase two encodes its back-edges).
    void add_equality(int i, int j, W value) {
        add_constraint(i, j, value);
        add_constraint(j, i, -value);
    }

    [[nodiscard]] int num_variables() const { return static_cast<int>(names_.size()); }
    [[nodiscard]] int num_constraints() const { return static_cast<int>(edges_.size()); }
    [[nodiscard]] const std::string& variable_name(int i) const {
        return names_.at(static_cast<std::size_t>(i));
    }

    struct Solution {
        bool feasible = false;
        /// A feasible assignment (shortest-path distances); empty if infeasible.
        std::vector<W> values;
        /// If infeasible: constraint indices forming a negative-weight cycle.
        std::vector<int> conflict;
        /// Ok when the solve completed (feasible/infeasible are then
        /// meaningful normal outcomes); ResourceExhausted / Overflow /
        /// Internal when it was cut short (feasible is then false but the
        /// system's true feasibility is undetermined).
        StatusCode status = StatusCode::Ok;
    };

    /// Solves in O(|V| * |E|) via Bellman-Ford from the virtual source. The
    /// optional guard bounds the relaxation work (ResourceExhausted instead
    /// of running the full O(|V| * |E|) passes); the optional stats account
    /// the solve's telemetry (support/solver_stats.hpp).
    ///
    /// `ws` (optional): reusable scratch arena -- the solve is allocation-free
    /// once the arena has seen this problem size. `warm_start` (optional): a
    /// feasible assignment of a subsystem of this system (these constraints
    /// minus some, or with weakly larger bounds) adopted as the starting
    /// potential; the result is identical, only the relaxation work shrinks.
    [[nodiscard]] Solution solve(ResourceGuard* guard = nullptr,
                                 SolverStats* stats = nullptr,
                                 SolverWorkspace<W>* ws = nullptr,
                                 const std::vector<W>* warm_start = nullptr) const {
        Solution s;
        auto sp = bellman_ford_all_sources<W>(num_variables(), edges_, guard, stats, traits_,
                                              ws, warm_start);
        if (sp.status != StatusCode::Ok) {
            s.feasible = false;
            s.status = sp.status;
            return s;
        }
        if (sp.has_negative_cycle) {
            s.feasible = false;
            s.conflict = std::move(sp.negative_cycle);
            return s;
        }
        s.feasible = true;
        s.values = std::move(sp.dist);
        return s;
    }

    /// Solves via SPFA on the cached CSR adjacency (differential cross-check
    /// path; no conflict witness -- use solve() when the caller needs one).
    /// The adjacency is built lazily once per constraint-set revision, not
    /// per solve.
    [[nodiscard]] Solution solve_spfa(ResourceGuard* guard = nullptr,
                                      SolverStats* stats = nullptr,
                                      SolverWorkspace<W>* ws = nullptr) const {
        Solution s;
        auto sp = spfa_all_sources<W>(num_variables(), edges_, guard, stats, traits_, ws,
                                      &adjacency());
        if (sp.status != StatusCode::Ok) {
            s.feasible = false;
            s.status = sp.status;
            return s;
        }
        if (sp.has_negative_cycle) {
            s.feasible = false;
            return s;
        }
        s.feasible = true;
        s.values = std::move(sp.dist);
        return s;
    }

    /// CSR out-adjacency of the constraint graph, rebuilt lazily after
    /// constraint insertion and cached across solves.
    [[nodiscard]] const CsrAdjacency& adjacency() const {
        if (csr_dirty_) {
            csr_.build(num_variables(), edges_);
            csr_dirty_ = false;
        }
        return csr_;
    }

    /// Human-readable dump of a conflict cycle for error messages.
    [[nodiscard]] std::string describe_conflict(const std::vector<int>& conflict) const;

  private:
    WeightTraits<W> traits_;
    std::vector<std::string> names_;
    std::vector<WeightedEdge<W>> edges_;
    // Adjacency cache: logically derived state, mutable so const solves can
    // materialize it on first use.
    mutable CsrAdjacency csr_;
    mutable bool csr_dirty_ = true;
};

}  // namespace lf
