#include "graph/constraint_system_nd.hpp"

#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf {

int NdDifferenceConstraintSystem::add_variable(std::string name) {
    names_.push_back(name.empty() ? "x" + std::to_string(names_.size()) : std::move(name));
    return static_cast<int>(names_.size()) - 1;
}

void NdDifferenceConstraintSystem::add_constraint(int i, int j, VecN bound) {
    check(i >= 0 && i < num_variables() && j >= 0 && j < num_variables(),
          "NdDifferenceConstraintSystem: variable index out of range");
    check(bound.dim() == dim_, "NdDifferenceConstraintSystem: bound dimension mismatch");
    constraints_.push_back(Constraint{i, j, std::move(bound)});
}

NdDifferenceConstraintSystem::Solution NdDifferenceConstraintSystem::solve(
    ResourceGuard* guard) const {
    Solution s;
    if (faultpoint::triggered("solver.constraints_nd")) {
        s.status = StatusCode::Internal;
        return s;
    }
    const int n = num_variables();
    std::vector<VecN> dist(static_cast<std::size_t>(n), VecN::zeros(dim_));

    for (int pass = 0; pass < n; ++pass) {
        bool changed = false;
        for (const Constraint& c : constraints_) {
            if (guard && !guard->consume()) {
                s.status = StatusCode::ResourceExhausted;
                return s;
            }
            VecN cand;
            if (!checked_add(dist[static_cast<std::size_t>(c.from)], c.bound, cand)) {
                s.status = StatusCode::Overflow;
                return s;
            }
            if (cand < dist[static_cast<std::size_t>(c.to)]) {
                dist[static_cast<std::size_t>(c.to)] = cand;
                changed = true;
            }
        }
        if (!changed) {
            s.feasible = true;
            s.values = std::move(dist);
            return s;
        }
    }
    for (const Constraint& c : constraints_) {
        VecN cand;
        if (!checked_add(dist[static_cast<std::size_t>(c.from)], c.bound, cand)) {
            s.status = StatusCode::Overflow;
            return s;
        }
        if (cand < dist[static_cast<std::size_t>(c.to)]) {
            s.feasible = false;  // negative lexicographic cycle
            return s;
        }
    }
    s.feasible = true;
    s.values = std::move(dist);
    return s;
}

}  // namespace lf
