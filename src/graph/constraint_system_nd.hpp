#pragma once
// Historical header: the N-D difference-constraint system is now the unified
// dimension-generic template of graph/constraint_system.hpp instantiated at
// the runtime-extent weight domain. The dimension travels in the
// WeightTraits<VecN> instance, which converts implicitly from int, so the
// historical spelling `NdDifferenceConstraintSystem sys(3)` is unchanged --
// and the solve now routes through the same hardened, instrumented
// Bellman-Ford as the 1-D/2-D systems (fault point "solver.bellman_ford").

#include "graph/constraint_system.hpp"
#include "support/lexvec.hpp"

namespace lf {

using NdDifferenceConstraintSystem = DifferenceConstraintSystem<VecN>;

}  // namespace lf
