#pragma once
// Difference-constraint systems over Z^n under lexicographic order: the
// n-dimensional form of the paper's 2-ILP problem (Section 2.4). Solved by
// Bellman-Ford exactly as in 2-D -- lexicographic order on Z^n is a
// translation-invariant total order for every n.
//
// This is a stand-alone class (rather than DifferenceConstraintSystem<VecN>)
// because VecN carries its dimension at run time, so zero/infinity values
// cannot come from a static WeightTraits specialization.

#include <string>
#include <vector>

#include "support/status.hpp"
#include "support/vecn.hpp"

namespace lf {

class NdDifferenceConstraintSystem {
  public:
    explicit NdDifferenceConstraintSystem(int dim) : dim_(dim) {}

    [[nodiscard]] int dim() const { return dim_; }

    int add_variable(std::string name = "");

    /// Adds  x_j - x_i <= bound  (lexicographically).
    void add_constraint(int i, int j, VecN bound);

    [[nodiscard]] int num_variables() const { return static_cast<int>(names_.size()); }

    struct Solution {
        bool feasible = false;
        std::vector<VecN> values;
        /// Ok when the solve completed; ResourceExhausted / Overflow /
        /// Internal when aborted (feasibility then undetermined).
        StatusCode status = StatusCode::Ok;
    };

    /// O(|V| * |E| * n) Bellman-Ford from a virtual all-zero source, with
    /// the same guard/overflow/fault hardening as the 1-D/2-D solvers.
    [[nodiscard]] Solution solve(ResourceGuard* guard = nullptr) const;

  private:
    struct Constraint {
        int from;
        int to;
        VecN bound;
    };

    int dim_;
    std::vector<std::string> names_;
    std::vector<Constraint> constraints_;
};

}  // namespace lf
