#pragma once
// A small generic directed-multigraph container used by the constraint
// solvers, the MLDG model and the random-graph generators.
//
// Nodes and edges are identified by dense integer ids (insertion order),
// which keeps the algorithms cache-friendly and makes results trivially
// reproducible.

#include <cstddef>
#include <span>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf {

template <typename NodeData, typename EdgeData>
class Digraph {
  public:
    struct Edge {
        int from = -1;
        int to = -1;
        EdgeData data{};
    };

    int add_node(NodeData data = NodeData{}) {
        nodes_.push_back(std::move(data));
        out_.emplace_back();
        in_.emplace_back();
        return static_cast<int>(nodes_.size()) - 1;
    }

    int add_edge(int from, int to, EdgeData data = EdgeData{}) {
        check(valid_node(from) && valid_node(to),
              "Digraph::add_edge: node id out of range");
        edges_.push_back(Edge{from, to, std::move(data)});
        const int id = static_cast<int>(edges_.size()) - 1;
        out_[static_cast<std::size_t>(from)].push_back(id);
        in_[static_cast<std::size_t>(to)].push_back(id);
        return id;
    }

    [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
    [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

    [[nodiscard]] const NodeData& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] NodeData& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] const Edge& edge(int id) const { return edges_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] Edge& edge(int id) { return edges_.at(static_cast<std::size_t>(id)); }

    /// Unchecked accessors for solver-facing inner loops. Ids are validated
    /// at insertion and the containers are append-only, so any id obtained
    /// from this graph is permanently in range; node()/edge() stay the
    /// bounds-checked public API.
    [[nodiscard]] const NodeData& node_ref(int id) const noexcept {
        return nodes_[static_cast<std::size_t>(id)];
    }
    [[nodiscard]] const Edge& edge_ref(int id) const noexcept {
        return edges_[static_cast<std::size_t>(id)];
    }

    /// Ids of edges leaving `node`.
    [[nodiscard]] std::span<const int> out_edges(int node) const {
        return out_.at(static_cast<std::size_t>(node));
    }
    /// Ids of edges entering `node`.
    [[nodiscard]] std::span<const int> in_edges(int node) const {
        return in_.at(static_cast<std::size_t>(node));
    }

    [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

    [[nodiscard]] bool valid_node(int id) const {
        return id >= 0 && id < num_nodes();
    }

    /// Plain successor adjacency (deduplicated per edge occurrence), for
    /// algorithms that only need connectivity.
    [[nodiscard]] std::vector<std::vector<int>> adjacency() const {
        std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes()));
        for (const Edge& e : edges_) adj[static_cast<std::size_t>(e.from)].push_back(e.to);
        return adj;
    }

  private:
    std::vector<NodeData> nodes_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> out_;
    std::vector<std::vector<int>> in_;
};

}  // namespace lf
