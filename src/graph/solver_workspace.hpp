#pragma once
// Reusable scratch arenas for the shortest-path solvers.
//
// Every Bellman-Ford / SPFA solve needs the same per-vertex scratch: the
// distance vector, predecessor edges, and (for SPFA) a FIFO ring, queued
// flags and per-vertex relaxation counters. Allocating these per solve puts
// the allocator on the planner's hot path -- the degradation ladder solves
// several near-identical constraint systems per plan, and the fusion service
// plans thousands of jobs per batch. A SolverWorkspace owns those buffers
// across solves: the first solve sizes them, every later solve of the same
// or smaller order reuses the capacity, and a CountingAllocator makes the
// residual allocation traffic *measurable* (BENCH_plan.json reports
// allocations/solve; steady state must be zero).
//
// Ownership model: one workspace per thread. The solvers never share one
// workspace across threads, and a workspace pins no solver state between
// calls -- any solve may use any workspace (buffers are fully re-initialized
// per solve; only the capacity is reused).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/lexvec.hpp"

namespace lf {

/// Allocation telemetry for one workspace: every heap request the workspace's
/// buffers make is counted here. Steady-state solves perform zero.
struct AllocCounter {
    std::uint64_t allocations = 0;
    std::uint64_t deallocations = 0;
    std::uint64_t bytes = 0;

    void reset() { *this = AllocCounter{}; }
};

/// Minimal standard allocator that counts (de)allocations into an
/// AllocCounter. A null counter makes it behave exactly like std::allocator.
template <typename T>
class CountingAllocator {
  public:
    using value_type = T;

    CountingAllocator() = default;
    explicit CountingAllocator(AllocCounter* counter) : counter_(counter) {}
    template <typename U>
    CountingAllocator(const CountingAllocator<U>& other)  // NOLINT(google-explicit-constructor)
        : counter_(other.counter()) {}

    T* allocate(std::size_t n) {
        if (counter_ != nullptr) {
            ++counter_->allocations;
            counter_->bytes += n * sizeof(T);
        }
        return std::allocator<T>().allocate(n);
    }
    void deallocate(T* p, std::size_t n) {
        if (counter_ != nullptr) ++counter_->deallocations;
        std::allocator<T>().deallocate(p, n);
    }

    [[nodiscard]] AllocCounter* counter() const { return counter_; }

    friend bool operator==(const CountingAllocator& a, const CountingAllocator& b) {
        return a.counter_ == b.counter_;
    }

  private:
    AllocCounter* counter_ = nullptr;
};

/// CSR out-adjacency over edge indices: edge_ids[offsets[v] .. offsets[v+1])
/// are the ids of edges leaving v, in ascending edge-id order (identical to
/// the per-node iteration order of the historical vector-of-vectors
/// adjacency, so solves are bit-for-bit reproducible either way).
struct CsrAdjacency {
    std::vector<int> offsets;   // num_nodes + 1 entries
    std::vector<int> edge_ids;  // num_edges entries

    /// Counting-sort build; EdgeVec needs only `.from` per element.
    template <typename EdgeVec>
    void build(int num_nodes, const EdgeVec& edges) {
        offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
        edge_ids.assign(edges.size(), -1);
        for (const auto& e : edges) ++offsets[static_cast<std::size_t>(e.from) + 1];
        for (int v = 0; v < num_nodes; ++v) {
            offsets[static_cast<std::size_t>(v) + 1] += offsets[static_cast<std::size_t>(v)];
        }
        std::vector<int> cursor(offsets.begin(), offsets.end() - 1);
        for (std::size_t k = 0; k < edges.size(); ++k) {
            const auto from = static_cast<std::size_t>(edges[k].from);
            edge_ids[static_cast<std::size_t>(cursor[from]++)] = static_cast<int>(k);
        }
    }

    [[nodiscard]] int num_nodes() const {
        return offsets.empty() ? 0 : static_cast<int>(offsets.size()) - 1;
    }
    [[nodiscard]] std::size_t num_edges() const { return edge_ids.size(); }
};

/// Per-thread scratch arena for one weight domain. The solvers run entirely
/// on these buffers and copy only the result out; allocation happens the
/// first time a problem size is seen, never again afterwards.
template <typename W>
class SolverWorkspace {
  public:
    template <typename T>
    using Buffer = std::vector<T, CountingAllocator<T>>;

    SolverWorkspace()
        : dist(CountingAllocator<W>(&counter_)),
          pred_edge(CountingAllocator<int>(&counter_)),
          queue(CountingAllocator<int>(&counter_)),
          queued(CountingAllocator<unsigned char>(&counter_)),
          relax_count(CountingAllocator<int>(&counter_)),
          csr_offsets(CountingAllocator<int>(&counter_)),
          csr_edge_ids(CountingAllocator<int>(&counter_)) {}

    // The buffers' allocators point into this object; moving or copying the
    // workspace would leave them dangling.
    SolverWorkspace(const SolverWorkspace&) = delete;
    SolverWorkspace& operator=(const SolverWorkspace&) = delete;

    [[nodiscard]] const AllocCounter& counter() const { return counter_; }
    void reset_counter() { counter_.reset(); }

  private:
    AllocCounter counter_;  // must precede the buffers (initialization order)

  public:
    Buffer<W> dist;
    Buffer<int> pred_edge;
    Buffer<int> queue;             // SPFA FIFO ring (capacity num_nodes + 1)
    Buffer<unsigned char> queued;  // SPFA in-queue flags
    Buffer<int> relax_count;       // SPFA per-vertex relaxation counters
    Buffer<int> csr_offsets;       // fallback CSR when the caller caches none
    Buffer<int> csr_edge_ids;
};

/// The planner's full arena: one workspace per weight domain the 2-D ladder
/// and the n-D generalizations solve over, plus reusable warm-start scratch.
/// svc workers own one PlannerWorkspace per thread and thread it through
/// TryPlanOptions::workspace.
struct PlannerWorkspace {
    SolverWorkspace<std::int64_t> scalar;  // Alg. 4 phases, forced carry, compact
    SolverWorkspace<Vec2> vec2;            // Algs. 2/3/5 constraint systems
    SolverWorkspace<VecN> vecn;            // n-D schedulability / planning
    /// Scratch for rung-to-rung warm-start vectors (e.g. the x components a
    /// compact post-pass seeds its base solve with).
    std::vector<std::int64_t> warm_x;

    [[nodiscard]] std::uint64_t total_allocations() const {
        return scalar.counter().allocations + vec2.counter().allocations +
               vecn.counter().allocations;
    }
    void reset_counters() {
        scalar.reset_counter();
        vec2.reset_counter();
        vecn.reset_counter();
    }
};

}  // namespace lf
