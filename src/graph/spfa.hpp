#pragma once
// SPFA (queue-based Bellman-Ford) over the same generic weight domains:
// an independent implementation of the shortest-path core, used as a
// differential cross-check of graph/bellman_ford.hpp. Same O(|V| * |E|)
// worst case; negative cycles are detected by counting relaxations per
// vertex (a vertex relaxed |V| times sits on or behind a negative cycle).
//
// Carries the same hardening as bellman_ford.hpp: ResourceGuard metering
// (one step per edge scan), overflow-checked relaxation, and the
// "solver.spfa" fault point. Telemetry mirrors bellman_ford.hpp as well --
// pass a SolverStats* to account queue traffic and relaxations, null to keep
// the stats-free path untouched.

#include <deque>
#include <vector>

#include "graph/bellman_ford.hpp"

namespace lf {

template <typename W>
struct SpfaResult {
    std::vector<W> dist;
    bool has_negative_cycle = false;
    /// Ok when the solve completed; ResourceExhausted / Overflow / Internal
    /// when aborted (dist is then partial).
    StatusCode status = StatusCode::Ok;
};

/// Shortest distances with every vertex a zero-distance source (the virtual
/// source construction of the paper's constraint graphs).
template <typename W>
SpfaResult<W> spfa_all_sources(int num_nodes, const std::vector<WeightedEdge<W>>& edges,
                               ResourceGuard* guard = nullptr, SolverStats* stats = nullptr,
                               const WeightTraits<W>& traits = {}) {
    detail::StatsScope scope(stats);
    SpfaResult<W> r;
    r.dist.assign(static_cast<std::size_t>(num_nodes), traits.zero());
    if (faultpoint::triggered("solver.spfa")) {
        r.status = StatusCode::Internal;
        return r;
    }

    // Out-adjacency over edge indices.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(num_nodes));
    for (std::size_t k = 0; k < edges.size(); ++k) {
        out[static_cast<std::size_t>(edges[k].from)].push_back(static_cast<int>(k));
    }

    std::deque<int> queue;
    std::vector<bool> queued(static_cast<std::size_t>(num_nodes), true);
    std::vector<int> relaxations(static_cast<std::size_t>(num_nodes), 0);
    for (int v = 0; v < num_nodes; ++v) queue.push_back(v);
    scope.queue_pushes += static_cast<std::uint64_t>(num_nodes);

    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        ++scope.queue_pops;
        ++scope.iterations;
        queued[static_cast<std::size_t>(u)] = false;
        for (const int ei : out[static_cast<std::size_t>(u)]) {
            const auto& e = edges[static_cast<std::size_t>(ei)];
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return r;
                }
            }
            W cand;
            if (!traits.checked_add(r.dist[static_cast<std::size_t>(u)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return r;
            }
            if (cand < r.dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                r.dist[static_cast<std::size_t>(e.to)] = cand;
                if (++relaxations[static_cast<std::size_t>(e.to)] >= num_nodes) {
                    r.has_negative_cycle = true;
                    return r;
                }
                if (!queued[static_cast<std::size_t>(e.to)]) {
                    queued[static_cast<std::size_t>(e.to)] = true;
                    queue.push_back(e.to);
                    ++scope.queue_pushes;
                }
            }
        }
    }
    return r;
}

}  // namespace lf
