#pragma once
// SPFA (queue-based Bellman-Ford) over the same generic weight domains:
// an independent implementation of the shortest-path core, used as a
// differential cross-check of graph/bellman_ford.hpp. Same O(|V| * |E|)
// worst case; negative cycles are detected by counting relaxations per
// vertex (a vertex relaxed |V| times sits on or behind a negative cycle).
//
// Carries the same hardening as bellman_ford.hpp: ResourceGuard metering
// (one step per edge scan), overflow-checked relaxation, and the
// "solver.spfa" fault point. Telemetry mirrors bellman_ford.hpp as well --
// pass a SolverStats* to account queue traffic and relaxations, null to keep
// the stats-free path untouched.
//
// Hot path: the solve runs on a SolverWorkspace (FIFO ring buffer instead of
// std::deque -- at most num_nodes vertices are ever enqueued, so a fixed ring
// of num_nodes + 1 slots suffices) and takes an optional pre-built
// CsrAdjacency so callers that solve the same edge list repeatedly (e.g.
// DifferenceConstraintSystem::solve_spfa) stop rebuilding the adjacency per
// call. Without one, the CSR is built into workspace buffers -- still no
// per-solve vector-of-vectors. Both queue disciplines are FIFO over the same
// per-node ascending edge-id order, so results are bit-for-bit identical to
// the historical implementation.

#include <vector>

#include "graph/bellman_ford.hpp"

namespace lf {

template <typename W>
struct SpfaResult {
    std::vector<W> dist;
    bool has_negative_cycle = false;
    /// Ok when the solve completed; ResourceExhausted / Overflow / Internal
    /// when aborted (dist is then partial).
    StatusCode status = StatusCode::Ok;
};

/// Shortest distances with every vertex a zero-distance source (the virtual
/// source construction of the paper's constraint graphs).
///
/// `ws` (optional): scratch arena; reuse for an allocation-free steady state.
/// `csr` (optional): out-adjacency for `edges` built once by the caller
/// (CsrAdjacency::build over the same edge list); must match `edges` exactly.
template <typename W>
SpfaResult<W> spfa_all_sources(int num_nodes, const std::vector<WeightedEdge<W>>& edges,
                               ResourceGuard* guard = nullptr, SolverStats* stats = nullptr,
                               const WeightTraits<W>& traits = {},
                               SolverWorkspace<W>* ws = nullptr,
                               const CsrAdjacency* csr = nullptr) {
    detail::StatsScope scope(stats);
    ++scope.cold_solves;
    SolverWorkspace<W> local;
    SolverWorkspace<W>& arena = ws != nullptr ? *ws : local;
    const auto n = static_cast<std::size_t>(num_nodes);
    auto& dist = arena.dist;
    dist.assign(n, traits.zero());

    SpfaResult<W> r;
    auto finish = [&]() {
        r.dist.assign(dist.begin(), dist.end());
        return std::move(r);
    };
    if (faultpoint::triggered("solver.spfa")) {
        r.status = StatusCode::Internal;
        return finish();
    }

    // Out-adjacency over edge indices: the caller's cached CSR when provided,
    // otherwise built into the workspace (counting sort, no inner vectors).
    const int* offsets = nullptr;
    const int* edge_ids = nullptr;
    if (csr != nullptr) {
        check(csr->num_nodes() == num_nodes && csr->num_edges() == edges.size(),
              "spfa_all_sources: adjacency does not match edge list");
        offsets = csr->offsets.data();
        edge_ids = csr->edge_ids.data();
    } else {
        auto& offs = arena.csr_offsets;
        auto& ids = arena.csr_edge_ids;
        offs.assign(n + 1, 0);
        ids.assign(edges.size(), -1);
        for (const auto& e : edges) ++offs[static_cast<std::size_t>(e.from) + 1];
        for (std::size_t v = 0; v < n; ++v) offs[v + 1] += offs[v];
        auto& cursor = arena.relax_count;  // reuse as the counting-sort cursor
        cursor.assign(offs.begin(), offs.end() - 1);
        for (std::size_t k = 0; k < edges.size(); ++k) {
            const auto from = static_cast<std::size_t>(edges[k].from);
            ids[static_cast<std::size_t>(cursor[from]++)] = static_cast<int>(k);
        }
        offsets = offs.data();
        edge_ids = ids.data();
    }

    // FIFO ring: at most num_nodes vertices are queued at once (queued flags
    // dedupe), so num_nodes + 1 slots never wrap onto live entries.
    auto& ring = arena.queue;
    ring.assign(n + 1, -1);
    auto& queued = arena.queued;
    queued.assign(n, 1);
    auto& relaxations = arena.relax_count;
    relaxations.assign(n, 0);
    std::size_t head = 0;
    std::size_t tail = 0;
    const std::size_t cap = n + 1;
    for (int v = 0; v < num_nodes; ++v) {
        ring[tail] = v;
        tail = (tail + 1) % cap;
    }
    scope.queue_pushes += static_cast<std::uint64_t>(num_nodes);

    while (head != tail) {
        const int u = ring[head];
        head = (head + 1) % cap;
        ++scope.queue_pops;
        ++scope.iterations;
        queued[static_cast<std::size_t>(u)] = 0;
        const int begin = offsets[static_cast<std::size_t>(u)];
        const int end = offsets[static_cast<std::size_t>(u) + 1];
        for (int k = begin; k < end; ++k) {
            const int ei = edge_ids[static_cast<std::size_t>(k)];
            const auto& e = edges[static_cast<std::size_t>(ei)];
            ++scope.edge_scans;
            if (guard != nullptr) {
                ++scope.guard_steps;
                if (!guard->consume()) {
                    r.status = StatusCode::ResourceExhausted;
                    return finish();
                }
            }
            W cand;
            if (!traits.checked_add(dist[static_cast<std::size_t>(u)], e.weight, cand)) {
                r.status = StatusCode::Overflow;
                return finish();
            }
            if (cand < dist[static_cast<std::size_t>(e.to)]) {
                ++scope.relaxations;
                if (scope.enabled() && traits.near_overflow(cand)) ++scope.overflow_near_misses;
                dist[static_cast<std::size_t>(e.to)] = cand;
                if (++relaxations[static_cast<std::size_t>(e.to)] >= num_nodes) {
                    r.has_negative_cycle = true;
                    return finish();
                }
                if (queued[static_cast<std::size_t>(e.to)] == 0) {
                    queued[static_cast<std::size_t>(e.to)] = 1;
                    ring[tail] = e.to;
                    tail = (tail + 1) % cap;
                    ++scope.queue_pushes;
                }
            }
        }
    }
    return finish();
}

}  // namespace lf
