#pragma once
// Weight-domain traits for the shortest-path machinery.
//
// The paper's Alg. 1 ("TwoDimBellmanFord") is ordinary Bellman-Ford run over
// (Z^2, +, lexicographic <). Lexicographic order is translation invariant
// (u <= v implies u+w <= v+w), so the classical correctness argument carries
// over verbatim; we express that by making the solver generic over a weight
// domain and instantiating it for both int64 (the 1-D systems of Alg. 4's
// phases) and Vec2 (the 2-D systems of Algs. 2/3).
//
// Each domain also supplies overflow-checked addition. The solvers relax via
// checked_add and report StatusCode::Overflow instead of executing signed
// overflow (UB) when adversarial weights drive distances past int64.

#include <cstdint>

#include "support/vec2.hpp"

namespace lf {

template <typename W>
struct WeightTraits;

template <>
struct WeightTraits<std::int64_t> {
    static constexpr std::int64_t zero() { return 0; }
    static constexpr std::int64_t infinity() { return std::int64_t{1} << 60; }
    static constexpr bool is_infinite(std::int64_t w) { return w >= (std::int64_t{1} << 59); }
    /// Overflow-checked addition: false (out unspecified) on overflow.
    static bool checked_add(std::int64_t a, std::int64_t b, std::int64_t& out) {
        return !__builtin_add_overflow(a, b, &out);
    }
};

template <>
struct WeightTraits<Vec2> {
    static constexpr Vec2 zero() { return {0, 0}; }
    static constexpr Vec2 infinity() { return kVecInfinity; }
    static constexpr bool is_infinite(const Vec2& w) { return lf::is_infinite(w); }
    static bool checked_add(const Vec2& a, const Vec2& b, Vec2& out) {
        return lf::checked_add(a, b, out);
    }
};

}  // namespace lf
