#pragma once
// Weight-domain traits for the shortest-path machinery.
//
// The paper's Alg. 1 ("TwoDimBellmanFord") is ordinary Bellman-Ford run over
// (Z^2, +, lexicographic <). Lexicographic order is translation invariant
// (u <= v implies u+w <= v+w) in every dimension, so the classical
// correctness argument carries over verbatim; we express that by making the
// solver generic over a weight domain and instantiating it for int64 (the
// 1-D systems of Alg. 4's phases), any static-extent LexVec<N> -- Vec2 being
// the paper's 2-D case -- and the runtime-extent VecN of the n-D
// generalizations.
//
// Traits are *instances*, passed (by const reference, default-constructed
// when the domain needs no state) down the solver entry points: static
// domains carry no state and keep their historical static members, while
// WeightTraits<VecN> carries the runtime dimension that zero()/infinity()
// need. It is implicitly constructible from int so the historical
// `NdDifferenceConstraintSystem sys(3)` spelling still reads naturally
// through the alias.
//
// Each domain also supplies overflow-checked addition. The solvers relax via
// checked_add and report StatusCode::Overflow instead of executing signed
// overflow (UB) when adversarial weights drive distances past int64;
// near_overflow() flags results within 1/8 of the cap for telemetry.

#include <cstdint>
#include <limits>

#include "support/lexvec.hpp"

namespace lf {

namespace detail {
/// Near-overflow watermark: 1/8 of the int64 range.
inline constexpr std::int64_t kNearOverflow = std::numeric_limits<std::int64_t>::max() >> 3;
}  // namespace detail

template <typename W>
struct WeightTraits;

template <>
struct WeightTraits<std::int64_t> {
    static constexpr std::int64_t zero() { return 0; }
    static constexpr std::int64_t infinity() { return std::int64_t{1} << 60; }
    static constexpr bool is_infinite(std::int64_t w) { return w >= (std::int64_t{1} << 59); }
    /// Overflow-checked addition: false (out unspecified) on overflow.
    static bool checked_add(std::int64_t a, std::int64_t b, std::int64_t& out) {
        return !__builtin_add_overflow(a, b, &out);
    }
    static constexpr bool near_overflow(std::int64_t w) {
        return w >= detail::kNearOverflow || w <= -detail::kNearOverflow;
    }
    /// Static domains accept every weight (nothing to validate).
    static constexpr bool compatible(std::int64_t) { return true; }
};

/// All static extents, Vec2 (= LexVec<2>) included.
template <int Extent>
struct WeightTraits<LexVec<Extent>> {
    static constexpr LexVec<Extent> zero() { return {}; }
    static constexpr LexVec<Extent> infinity() {
        LexVec<Extent> v;
        for (int k = 0; k < Extent; ++k) v[k] = std::int64_t{1} << 40;
        return v;
    }
    static constexpr bool is_infinite(const LexVec<Extent>& w) {
        for (int k = 0; k < Extent; ++k) {
            if (w[k] >= (std::int64_t{1} << 39)) return true;
        }
        return false;
    }
    static bool checked_add(const LexVec<Extent>& a, const LexVec<Extent>& b,
                            LexVec<Extent>& out) {
        return lf::checked_add(a, b, out);
    }
    static constexpr bool near_overflow(const LexVec<Extent>& w) {
        for (int k = 0; k < Extent; ++k) {
            if (w[k] >= detail::kNearOverflow || w[k] <= -detail::kNearOverflow) return true;
        }
        return false;
    }
    static constexpr bool compatible(const LexVec<Extent>&) { return true; }
};

/// Runtime extent: the dimension travels with the traits instance, since
/// zero()/infinity() values cannot be produced without it.
template <>
struct WeightTraits<VecN> {
    int dim = 0;

    constexpr WeightTraits() = default;
    // NOLINTNEXTLINE(google-explicit-constructor): the implicit int
    // conversion is what keeps `DifferenceConstraintSystem<VecN> sys(3)`
    // (the historical N-D spelling) well-formed.
    constexpr WeightTraits(int dim_) : dim(dim_) {}

    [[nodiscard]] VecN zero() const { return VecN::zeros(dim); }
    [[nodiscard]] VecN infinity() const {
        VecN v(dim);
        for (int k = 0; k < dim; ++k) v[k] = std::int64_t{1} << 40;
        return v;
    }
    static bool is_infinite(const VecN& w) {
        for (int k = 0; k < w.dim(); ++k) {
            if (w[k] >= (std::int64_t{1} << 39)) return true;
        }
        return false;
    }
    static bool checked_add(const VecN& a, const VecN& b, VecN& out) {
        return lf::checked_add(a, b, out);
    }
    static bool near_overflow(const VecN& w) {
        for (int k = 0; k < w.dim(); ++k) {
            if (w[k] >= detail::kNearOverflow || w[k] <= -detail::kNearOverflow) return true;
        }
        return false;
    }
    /// A weight fits this domain instance iff its dimension matches.
    [[nodiscard]] bool compatible(const VecN& w) const { return w.dim() == dim; }
};

}  // namespace lf
