#include "ir/ast.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace lf::ir {

namespace {

void print_index(std::ostream& os, char var, std::int64_t offset) {
    os << var;
    if (offset > 0) os << '+' << offset;
    if (offset < 0) os << offset;
}

void print_number(std::ostream& os, double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<std::int64_t>(v) << ".0";
    } else {
        os << v;
    }
}

}  // namespace

std::string ArrayRef::str() const {
    std::ostringstream os;
    os << array << '[';
    print_index(os, 'i', offset.x);
    os << "][";
    print_index(os, 'j', offset.y);
    os << ']';
    return os.str();
}

void LiteralExpr::print(std::ostream& os) const { print_number(os, value_); }

void ReadExpr::print(std::ostream& os) const { os << ref_.str(); }

void UnaryExpr::print(std::ostream& os) const {
    os << "(-";
    operand_->print(os);
    os << ')';
}

void BinaryExpr::print(std::ostream& os) const {
    os << '(';
    lhs_->print(os);
    os << ' ' << op_ << ' ';
    rhs_->print(os);
    os << ')';
}

std::ostream& operator<<(std::ostream& os, const Expr& e) {
    e.print(os);
    return os;
}

std::string Statement::str() const {
    std::ostringstream os;
    os << target.str() << " = " << *value << ';';
    return os.str();
}

std::int64_t LoopNest::body_cost() const {
    std::int64_t cost = 0;
    for (const Statement& s : body) {
        cost += 1 + static_cast<std::int64_t>(s.reads().size());
    }
    return std::max<std::int64_t>(cost, 1);
}

std::vector<std::string> Program::arrays() const {
    std::vector<std::string> out = written_arrays();
    auto add = [&out](const std::string& name) {
        if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
    };
    for (const LoopNest& loop : loops) {
        for (const Statement& s : loop.body) {
            for (const ArrayRef& r : s.reads()) add(r.array);
        }
    }
    return out;
}

std::vector<std::string> Program::written_arrays() const {
    std::vector<std::string> out;
    for (const LoopNest& loop : loops) {
        for (const Statement& s : loop.body) {
            if (std::find(out.begin(), out.end(), s.target.array) == out.end()) {
                out.push_back(s.target.array);
            }
        }
    }
    return out;
}

std::int64_t Program::max_offset() const {
    std::int64_t m = 0;
    auto update = [&m](const ArrayRef& r) {
        m = std::max({m, std::abs(r.offset.x), std::abs(r.offset.y)});
    };
    for (const LoopNest& loop : loops) {
        for (const Statement& s : loop.body) {
            update(s.target);
            for (const ArrayRef& r : s.reads()) update(r);
        }
    }
    return m;
}

std::string Program::str() const {
    std::ostringstream os;
    os << "program " << name << " {\n";
    for (const LoopNest& loop : loops) {
        os << "  loop " << loop.label << " {\n";
        for (const Statement& s : loop.body) os << "    " << s.str() << '\n';
        os << "  }\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace lf::ir
