#pragma once
// AST of the loop DSL, mirroring the paper's program model (Figure 1):
// a single sequential outer loop over `i` containing a sequence of labelled
// innermost DOALL loops over `j`. Array subscripts are `i+c` / `j+c` with
// constant c (constant-distance dependences, as the paper requires).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ir/token.hpp"
#include "support/vec2.hpp"

namespace lf::ir {

/// Abstract source of array values during interpretation; implemented by
/// exec::ArrayStore. Keeps the IR independent of the execution engines.
class ValueSource {
  public:
    virtual ~ValueSource() = default;
    [[nodiscard]] virtual double load(const std::string& array, std::int64_t i,
                                      std::int64_t j) const = 0;
};

/// A subscripted array access `array[i + offset.x][j + offset.y]`.
struct ArrayRef {
    std::string array;
    Vec2 offset;
    SourceLoc loc;

    /// The cell touched by the instance at iteration (i, j).
    [[nodiscard]] Vec2 cell(std::int64_t i, std::int64_t j) const {
        return {i + offset.x, j + offset.y};
    }

    [[nodiscard]] std::string str() const;
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
  public:
    virtual ~Expr() = default;

    /// Evaluates at iteration (i, j), reading array values from `src`.
    [[nodiscard]] virtual double eval(const ValueSource& src, std::int64_t i,
                                      std::int64_t j) const = 0;
    /// Appends every array read in this subtree to `out`.
    virtual void collect_reads(std::vector<ArrayRef>& out) const = 0;
    virtual void print(std::ostream& os) const = 0;
    [[nodiscard]] virtual ExprPtr clone() const = 0;
    /// Returns a copy with every subscript shifted by `delta` (i -> i+dx,
    /// j -> j+dy); used to print retimed statements.
    [[nodiscard]] virtual ExprPtr shifted(const Vec2& delta) const = 0;
};

class LiteralExpr final : public Expr {
  public:
    explicit LiteralExpr(double value) : value_(value) {}
    [[nodiscard]] double eval(const ValueSource&, std::int64_t, std::int64_t) const override {
        return value_;
    }
    void collect_reads(std::vector<ArrayRef>&) const override {}
    void print(std::ostream& os) const override;
    [[nodiscard]] ExprPtr clone() const override { return std::make_unique<LiteralExpr>(value_); }
    [[nodiscard]] ExprPtr shifted(const Vec2&) const override { return clone(); }
    [[nodiscard]] double value() const { return value_; }

  private:
    double value_;
};

class ReadExpr final : public Expr {
  public:
    explicit ReadExpr(ArrayRef ref) : ref_(std::move(ref)) {}
    [[nodiscard]] double eval(const ValueSource& src, std::int64_t i,
                              std::int64_t j) const override {
        const Vec2 cell = ref_.cell(i, j);
        return src.load(ref_.array, cell.x, cell.y);
    }
    void collect_reads(std::vector<ArrayRef>& out) const override { out.push_back(ref_); }
    void print(std::ostream& os) const override;
    [[nodiscard]] ExprPtr clone() const override { return std::make_unique<ReadExpr>(ref_); }
    [[nodiscard]] ExprPtr shifted(const Vec2& delta) const override {
        ArrayRef shifted_ref = ref_;
        shifted_ref.offset += delta;
        return std::make_unique<ReadExpr>(std::move(shifted_ref));
    }
    [[nodiscard]] const ArrayRef& ref() const { return ref_; }

  private:
    ArrayRef ref_;
};

class UnaryExpr final : public Expr {
  public:
    explicit UnaryExpr(ExprPtr operand) : operand_(std::move(operand)) {}
    [[nodiscard]] double eval(const ValueSource& src, std::int64_t i,
                              std::int64_t j) const override {
        return -operand_->eval(src, i, j);
    }
    void collect_reads(std::vector<ArrayRef>& out) const override {
        operand_->collect_reads(out);
    }
    void print(std::ostream& os) const override;
    [[nodiscard]] ExprPtr clone() const override {
        return std::make_unique<UnaryExpr>(operand_->clone());
    }
    [[nodiscard]] ExprPtr shifted(const Vec2& delta) const override {
        return std::make_unique<UnaryExpr>(operand_->shifted(delta));
    }
    [[nodiscard]] const Expr& operand() const { return *operand_; }

  private:
    ExprPtr operand_;
};

class BinaryExpr final : public Expr {
  public:
    BinaryExpr(char op, ExprPtr lhs, ExprPtr rhs)
        : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
    [[nodiscard]] double eval(const ValueSource& src, std::int64_t i,
                              std::int64_t j) const override {
        const double a = lhs_->eval(src, i, j);
        const double b = rhs_->eval(src, i, j);
        switch (op_) {
            case '+': return a + b;
            case '-': return a - b;
            case '*': return a * b;
            default: return a / b;
        }
    }
    void collect_reads(std::vector<ArrayRef>& out) const override {
        lhs_->collect_reads(out);
        rhs_->collect_reads(out);
    }
    void print(std::ostream& os) const override;
    [[nodiscard]] ExprPtr clone() const override {
        return std::make_unique<BinaryExpr>(op_, lhs_->clone(), rhs_->clone());
    }
    [[nodiscard]] ExprPtr shifted(const Vec2& delta) const override {
        return std::make_unique<BinaryExpr>(op_, lhs_->shifted(delta), rhs_->shifted(delta));
    }
    [[nodiscard]] char op() const { return op_; }
    [[nodiscard]] const Expr& lhs() const { return *lhs_; }
    [[nodiscard]] const Expr& rhs() const { return *rhs_; }

  private:
    char op_;
    ExprPtr lhs_;
    ExprPtr rhs_;
};

/// One assignment `target = value;` inside a loop body.
struct Statement {
    ArrayRef target;
    ExprPtr value;

    Statement() = default;
    Statement(ArrayRef t, ExprPtr v) : target(std::move(t)), value(std::move(v)) {}
    Statement(const Statement& o) : target(o.target), value(o.value ? o.value->clone() : nullptr) {}
    Statement& operator=(const Statement& o) {
        if (this != &o) {
            target = o.target;
            value = o.value ? o.value->clone() : nullptr;
        }
        return *this;
    }
    Statement(Statement&&) = default;
    Statement& operator=(Statement&&) = default;

    /// Executes the instance at iteration (i, j): evaluate and return the
    /// stored value plus the target cell (the caller performs the store).
    [[nodiscard]] double eval(const ValueSource& src, std::int64_t i, std::int64_t j) const {
        return value->eval(src, i, j);
    }

    [[nodiscard]] std::vector<ArrayRef> reads() const {
        std::vector<ArrayRef> out;
        value->collect_reads(out);
        return out;
    }

    /// A copy with all subscripts (target and reads) shifted by `delta`.
    [[nodiscard]] Statement shifted(const Vec2& delta) const {
        Statement s;
        s.target = target;
        s.target.offset += delta;
        s.value = value->shifted(delta);
        return s;
    }

    [[nodiscard]] std::string str() const;
};

/// One innermost DOALL loop ("loop A { ... }").
struct LoopNest {
    std::string label;
    std::vector<Statement> body;
    SourceLoc loc;

    /// Abstract per-iteration cost: one unit per statement plus one per read
    /// (consumed by the multiprocessor cost model).
    [[nodiscard]] std::int64_t body_cost() const;
};

/// A whole program: DO i { DOALL j ... } per Figure 1.
struct Program {
    std::string name;
    std::vector<LoopNest> loops;

    /// All array names, writes first then reads, deduplicated, in order of
    /// first appearance.
    [[nodiscard]] std::vector<std::string> arrays() const;

    /// Arrays written by some loop.
    [[nodiscard]] std::vector<std::string> written_arrays() const;

    /// Largest absolute subscript offset component, for halo sizing.
    [[nodiscard]] std::int64_t max_offset() const;

    [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Expr& e);

}  // namespace lf::ir
