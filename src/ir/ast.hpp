#pragma once
// AST of the loop DSL, mirroring the paper's program model (Figure 1):
// a single sequential outer loop over `i` containing a sequence of labelled
// innermost DOALL loops over `j`. Array subscripts are `i+c` / `j+c` with
// constant c (constant-distance dependences, as the paper requires).
//
// Forwarding shim: these are the depth-2 instantiations of the unified
// dimension-generic AST in front/ast.hpp (the N-D aliases live in
// mdir/ast.hpp). Printers, str() layouts and evaluation semantics are
// byte-compatible with the historical 2-D AST.

#include "front/ast.hpp"
#include "ir/token.hpp"
#include "support/lexvec.hpp"

namespace lf::ir {

using ValueSource = front::BasicValueSource<Vec2>;
using ArrayRef = front::BasicArrayRef<Vec2>;
using Expr = front::BasicExpr<Vec2>;
using ExprPtr = front::BasicExprPtr<Vec2>;
using LiteralExpr = front::BasicLiteral<Vec2>;
using ReadExpr = front::BasicRead<Vec2>;
using UnaryExpr = front::BasicUnary<Vec2>;
using BinaryExpr = front::BasicBinary<Vec2>;
using Statement = front::BasicStatement<Vec2>;
using LoopNest = front::BasicLoopNest<Vec2>;
using Program = front::BasicProgram<Vec2>;

using front::operator<<;

}  // namespace lf::ir
