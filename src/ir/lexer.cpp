#include "ir/lexer.hpp"

#include <cctype>
#include <charconv>

#include "support/diagnostics.hpp"

namespace lf::ir {

std::string to_string(TokenKind kind) {
    switch (kind) {
        case TokenKind::Identifier: return "identifier";
        case TokenKind::Number: return "number";
        case TokenKind::Integer: return "integer";
        case TokenKind::LBrace: return "'{'";
        case TokenKind::RBrace: return "'}'";
        case TokenKind::LBracket: return "'['";
        case TokenKind::RBracket: return "']'";
        case TokenKind::LParen: return "'('";
        case TokenKind::RParen: return "')'";
        case TokenKind::Assign: return "'='";
        case TokenKind::Plus: return "'+'";
        case TokenKind::Minus: return "'-'";
        case TokenKind::Star: return "'*'";
        case TokenKind::Slash: return "'/'";
        case TokenKind::Semicolon: return "';'";
        case TokenKind::Comma: return "','";
        case TokenKind::End: return "end of input";
    }
    return "?";
}

namespace {

class Cursor {
  public:
    explicit Cursor(std::string_view s) : src_(s) {}

    [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek() const { return done() ? '\0' : src_[pos_]; }

    char advance() {
        const char c = src_[pos_++];
        if (c == '\n') {
            ++loc_.line;
            loc_.column = 1;
        } else {
            ++loc_.column;
        }
        return c;
    }

    [[nodiscard]] SourceLoc loc() const { return loc_; }

  private:
    std::string_view src_;
    std::size_t pos_ = 0;
    SourceLoc loc_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
    std::vector<Token> tokens;
    Cursor cur(source);

    auto push = [&tokens](TokenKind kind, std::string text, SourceLoc loc) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.loc = loc;
        tokens.push_back(std::move(t));
    };

    while (!cur.done()) {
        const SourceLoc loc = cur.loc();
        const char c = cur.peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        if (c == '#') {
            while (!cur.done() && cur.peek() != '\n') cur.advance();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident;
            while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                                   cur.peek() == '_')) {
                ident += cur.advance();
            }
            push(TokenKind::Identifier, std::move(ident), loc);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string digits;
            bool is_float = false;
            while (!cur.done()) {
                const char d = cur.peek();
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    digits += cur.advance();
                } else if (d == '.' && !is_float) {
                    is_float = true;
                    digits += cur.advance();
                } else if ((d == 'e' || d == 'E') && !digits.empty()) {
                    is_float = true;
                    digits += cur.advance();
                    if (cur.peek() == '+' || cur.peek() == '-') digits += cur.advance();
                } else {
                    break;
                }
            }
            Token t;
            t.text = digits;
            t.loc = loc;
            if (is_float) {
                t.kind = TokenKind::Number;
                try {
                    t.number = std::stod(digits);
                } catch (const std::exception&) {
                    // Out-of-range exponents ("1e999999") and malformed
                    // mantissas surface as a located diagnostic, not std::.
                    throw Error("lexer: bad number '" + digits + "' at " + loc.str());
                }
            } else {
                t.kind = TokenKind::Integer;
                std::int64_t value = 0;
                const auto [ptr, ec] =
                    std::from_chars(digits.data(), digits.data() + digits.size(), value);
                check(ec == std::errc() && ptr == digits.data() + digits.size(),
                      "lexer: bad integer '" + digits + "' at " + loc.str());
                t.integer = value;
                t.number = static_cast<double>(value);
            }
            tokens.push_back(std::move(t));
            continue;
        }
        TokenKind kind;
        switch (c) {
            case '{': kind = TokenKind::LBrace; break;
            case '}': kind = TokenKind::RBrace; break;
            case '[': kind = TokenKind::LBracket; break;
            case ']': kind = TokenKind::RBracket; break;
            case '(': kind = TokenKind::LParen; break;
            case ')': kind = TokenKind::RParen; break;
            case '=': kind = TokenKind::Assign; break;
            case '+': kind = TokenKind::Plus; break;
            case '-': kind = TokenKind::Minus; break;
            case '*': kind = TokenKind::Star; break;
            case '/': kind = TokenKind::Slash; break;
            case ';': kind = TokenKind::Semicolon; break;
            case ',': kind = TokenKind::Comma; break;
            default:
                throw Error("lexer: unexpected character '" + std::string(1, c) + "' at " +
                            loc.str());
        }
        cur.advance();
        push(kind, std::string(1, c), loc);
    }
    push(TokenKind::End, "", cur.loc());
    return tokens;
}

}  // namespace lf::ir
