#pragma once
// Hand-written lexer for the loop DSL. `#` starts a to-end-of-line comment.
// Numeric literals with a '.' or exponent become Number tokens; bare digit
// runs become Integer tokens (subscript offsets).

#include <string_view>
#include <vector>

#include "ir/token.hpp"

namespace lf::ir {

/// Tokenizes `source`; throws lf::Error with location info on bad input.
/// The result always ends with a TokenKind::End token.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace lf::ir
