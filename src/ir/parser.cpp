#include "ir/parser.hpp"

#include "ir/lexer.hpp"
#include "ir/sema.hpp"
#include "support/diagnostics.hpp"

namespace lf::ir {

namespace {

class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program parse() {
        Program p;
        expect_keyword("program");
        p.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) {
            p.loops.push_back(parse_loop());
        }
        expect(TokenKind::RBrace);
        expect(TokenKind::End);
        return p;
    }

  private:
    [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
    [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }

    const Token& advance() { return tokens_[pos_++]; }

    const Token& expect(TokenKind kind) {
        if (!at(kind)) {
            throw Error("parse error at " + peek().loc.str() + ": expected " + to_string(kind) +
                        ", found " + to_string(peek().kind) +
                        (peek().text.empty() ? "" : " '" + peek().text + "'"));
        }
        return advance();
    }

    void expect_keyword(const std::string& kw) {
        const Token& t = expect(TokenKind::Identifier);
        check(t.text == kw,
              "parse error at " + t.loc.str() + ": expected '" + kw + "', found '" + t.text + "'");
    }

    bool accept(TokenKind kind) {
        if (at(kind)) {
            ++pos_;
            return true;
        }
        return false;
    }

    LoopNest parse_loop() {
        LoopNest loop;
        loop.loc = peek().loc;
        expect_keyword("loop");
        loop.label = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) {
            loop.body.push_back(parse_statement());
        }
        expect(TokenKind::RBrace);
        check(!loop.body.empty(),
              "parse error: loop " + loop.label + " at " + loop.loc.str() + " has an empty body");
        return loop;
    }

    Statement parse_statement() {
        ArrayRef target = parse_array_ref();
        expect(TokenKind::Assign);
        ExprPtr value = parse_expr();
        expect(TokenKind::Semicolon);
        return Statement(std::move(target), std::move(value));
    }

    ArrayRef parse_array_ref() {
        ArrayRef ref;
        const Token& name = expect(TokenKind::Identifier);
        ref.array = name.text;
        ref.loc = name.loc;
        expect(TokenKind::LBracket);
        ref.offset.x = parse_index('i');
        expect(TokenKind::RBracket);
        expect(TokenKind::LBracket);
        ref.offset.y = parse_index('j');
        expect(TokenKind::RBracket);
        return ref;
    }

    std::int64_t parse_index(char var) {
        const Token& v = expect(TokenKind::Identifier);
        check(v.text.size() == 1 && v.text[0] == var,
              "parse error at " + v.loc.str() + ": subscript must use '" + std::string(1, var) +
                  "' (the paper's constant-distance model), found '" + v.text + "'");
        if (accept(TokenKind::Plus)) return expect(TokenKind::Integer).integer;
        if (accept(TokenKind::Minus)) return -expect(TokenKind::Integer).integer;
        return 0;
    }

    ExprPtr parse_expr() {
        ExprPtr lhs = parse_term();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            const char op = advance().text[0];
            lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parse_term());
        }
        return lhs;
    }

    ExprPtr parse_term() {
        ExprPtr lhs = parse_factor();
        while (at(TokenKind::Star) || at(TokenKind::Slash)) {
            const char op = advance().text[0];
            lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parse_factor());
        }
        return lhs;
    }

    ExprPtr parse_factor() {
        if (at(TokenKind::Number) || at(TokenKind::Integer)) {
            return std::make_unique<LiteralExpr>(advance().number);
        }
        if (accept(TokenKind::Minus)) {
            return std::make_unique<UnaryExpr>(parse_factor());
        }
        if (accept(TokenKind::LParen)) {
            ExprPtr e = parse_expr();
            expect(TokenKind::RParen);
            return e;
        }
        if (at(TokenKind::Identifier)) {
            return std::make_unique<ReadExpr>(parse_array_ref());
        }
        throw Error("parse error at " + peek().loc.str() + ": expected an expression, found " +
                    to_string(peek().kind));
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Program parse_program_unchecked(std::string_view source) {
    return Parser(tokenize(source)).parse();
}

Program parse_program(std::string_view source) {
    Program p = parse_program_unchecked(source);
    validate_program(p);
    return p;
}

}  // namespace lf::ir
