#pragma once
// Recursive-descent parser for the 2-D loop DSL -- the depth-2 case of the
// unified grammar in front/parse.hpp:
//
//   program   := "program" IDENT "{" loop+ "}"
//   loop      := "loop" IDENT "{" statement+ "}"
//   statement := arrayref "=" expr ";"
//   arrayref  := IDENT "[" index("i") "]" "[" index("j") "]"
//   index(v)  := v (("+" | "-") INTEGER)?
//   expr      := term  (("+" | "-") term)*
//   term      := factor (("*" | "/") factor)*
//   factor    := NUMBER | INTEGER | arrayref | "(" expr ")" | "-" factor
//
// Subscripts are restricted to `i + constant` / `j + constant` -- the
// constant-distance dependence model of the paper. Errors carry line:column.

#include <string_view>

#include "front/parse.hpp"
#include "ir/ast.hpp"

namespace lf::ir {

/// Parses and semantically validates a program (see sema.hpp for the checks).
/// Throws lf::Error on any lexical, syntactic or semantic problem.
[[nodiscard]] inline Program parse_program(std::string_view source) {
    return front::parse_basic_program<Vec2>(source);
}

/// Parse without semantic validation (used by tests that target sema itself).
[[nodiscard]] inline Program parse_program_unchecked(std::string_view source) {
    return front::parse_basic_program_unchecked<Vec2>(source);
}

}  // namespace lf::ir
