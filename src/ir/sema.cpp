#include "ir/sema.hpp"

#include <set>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf::ir {

namespace {

struct Access {
    ArrayRef ref;
    bool is_write = false;
};

std::vector<Access> loop_accesses(const LoopNest& loop) {
    std::vector<Access> out;
    for (const Statement& s : loop.body) {
        out.push_back({s.target, true});
        for (const ArrayRef& r : s.reads()) out.push_back({r, false});
    }
    return out;
}

}  // namespace

void validate_program(const Program& p) {
    check(!p.loops.empty(), "sema: program '" + p.name + "' has no loops");

    std::set<std::string> labels;
    for (const LoopNest& loop : p.loops) {
        check(labels.insert(loop.label).second,
              "sema: duplicate loop label '" + loop.label + "' at " + loop.loc.str());
    }

    // DOALL check per loop: two accesses to the same array with at least one
    // write touch the same cell from instances (i, j1) != (i, j2) exactly
    // when their offsets differ by (0, k), k != 0.
    for (const LoopNest& loop : p.loops) {
        const std::vector<Access> accesses = loop_accesses(loop);
        for (std::size_t a = 0; a < accesses.size(); ++a) {
            for (std::size_t b = a + 1; b < accesses.size(); ++b) {
                const Access& p1 = accesses[a];
                const Access& p2 = accesses[b];
                if (!p1.is_write && !p2.is_write) continue;
                if (p1.ref.array != p2.ref.array) continue;
                const Vec2 d = p1.ref.offset - p2.ref.offset;
                if (d.x == 0 && d.y != 0) {
                    throw Error("sema: loop " + loop.label + " is not DOALL: accesses " +
                                p1.ref.str() + " and " + p2.ref.str() +
                                " conflict across j within one outer iteration");
                }
            }
        }
    }
}

}  // namespace lf::ir
