#pragma once
// Semantic validation of parsed programs against the paper's program model
// (Figure 1):
//   * loop labels are unique (bodies are non-empty by construction);
//   * every innermost loop is genuinely DOALL: no pair of accesses within
//     one loop (at least one a write, same array) may touch the same cell
//     from different j's of the same outer iteration, i.e. no access-pair
//     cell distance (0, k) with k != 0.
// Anti- and output dependences *across* loops are allowed -- the dependence
// analyzer models them as MLDG edges just like flow dependences.
//
// Forwarding shim over the dimension-generic checks in front/parse.hpp.

#include "front/parse.hpp"
#include "ir/ast.hpp"

namespace lf::ir {

/// Throws lf::Error describing the first violation found.
inline void validate_program(const Program& p) { front::validate_basic_program<Vec2>(p); }

}  // namespace lf::ir
