#pragma once
// Tokens and source locations for the loop DSL.

#include <cstdint>
#include <string>

namespace lf::ir {

struct SourceLoc {
    int line = 1;
    int column = 1;

    [[nodiscard]] std::string str() const {
        return std::to_string(line) + ":" + std::to_string(column);
    }
};

enum class TokenKind {
    Identifier,  // program, loop, array and index names
    Number,      // floating-point literal
    Integer,     // integer literal inside subscripts
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Semicolon,
    Comma,
    End,
};

[[nodiscard]] std::string to_string(TokenKind kind);

struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;
    double number = 0.0;        // valid for Number
    std::int64_t integer = 0;   // valid for Integer
    SourceLoc loc;
};

}  // namespace lf::ir
