#pragma once
// The multi-dimensional loop dependence graph (MLDG) of Definition 2.2 and
// retimings (Section 2.3), dimension-generic over the lexicographic weight
// type: `BasicMldg<Vec2>` is the paper's elaborated 2-D case ("2LDG"),
// `BasicMldg<VecN>` the general depth-d graph. `ldg/mldg.hpp`,
// `ldg/mldg_nd.hpp` and `ldg/retiming.hpp` are alias shims over this header.
//
// One node per innermost DOALL loop (in program order), one edge per ordered
// pair of loops with at least one dependence, annotated with the full set of
// loop dependence vectors D_L (Definition 2.1). The minimal vector delta_L is
// the lexicographic minimum of D_L; an edge is a *hard edge* ("parallelism
// hard", Section 2.2) when two of its vectors agree on every component
// except the last -- no retiming of the outer dimensions can separate them.
//
// Convention: component 0 is the outermost loop, component dim-1 the
// innermost (DOALL) loop, matching the 2-D (x, y) = (outer, inner) pair.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/diagnostics.hpp"
#include "support/lexvec.hpp"

namespace lf {

/// A node of the MLDG: one innermost DOALL loop.
struct LoopNode {
    std::string name;
    /// Position of the loop in the original program text (0-based). Determines
    /// statement order inside the fused body and therefore which edges are
    /// "backward" (from a later loop to an earlier one).
    int order = 0;
    /// Abstract per-iteration cost of the loop body, consumed by the
    /// multiprocessor cost model. Purely descriptive for the algorithms.
    std::int64_t body_cost = 1;
};

/// An edge of the MLDG: all dependences from one loop to another.
template <typename V>
struct BasicDependenceEdge {
    int from = -1;
    int to = -1;
    /// D_L(from, to): sorted ascending (lexicographically), deduplicated,
    /// never empty. vectors.front() is delta_L.
    std::vector<V> vectors;

    /// delta_L(e): the minimal loop dependence vector (Definition 2.2).
    [[nodiscard]] const V& delta() const { return vectors.front(); }

    /// Hard edge: two vectors agreeing on every component except the last
    /// (Section 2.2). Hard edges constrain full inner parallelism.
    [[nodiscard]] bool is_hard() const {
        const int d = vectors.front().dim();
        // Sorted order puts equal-prefix vectors adjacent.
        for (std::size_t a = 1; a < vectors.size(); ++a) {
            bool same_prefix = true;
            for (int k = 0; k + 1 < d; ++k) {
                if (vectors[a][k] != vectors[a - 1][k]) {
                    same_prefix = false;
                    break;
                }
            }
            if (same_prefix && vectors[a][d - 1] != vectors[a - 1][d - 1]) return true;
        }
        return false;
    }
};

template <typename V>
class BasicMldg {
  public:
    static constexpr bool kIs2d = std::same_as<V, Vec2>;

    /// 2-D graphs are always dimension 2; the N-D instantiation requires an
    /// explicit dimension (dim 1 is allowed: Definition 2.2 admits n >= 1).
    BasicMldg()
        requires kIs2d
    = default;
    explicit BasicMldg(int dim) : dim_(dim) {}

    [[nodiscard]] int dim() const { return dim_; }

    /// Appends a loop node; program order is insertion order.
    int add_node(std::string name, std::int64_t body_cost = 1) {
        const int id = static_cast<int>(nodes_.size());
        nodes_.push_back(LoopNode{std::move(name), id, body_cost});
        return id;
    }

    /// Adds dependence vectors from `from` to `to`. If the edge already
    /// exists the vectors are merged (the MLDG keeps at most one edge per
    /// ordered node pair, per Definition 2.2). Vectors are validated to be
    /// non-empty and of the graph's dimension. Returns the edge id.
    int add_edge(int from, int to, std::vector<V> vectors) {
        check(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
              std::string(kClassName) + "::add_edge: node id out of range");
        check(!vectors.empty(), std::string(kClassName) + "::add_edge: empty dependence vector set");
        if constexpr (!kIs2d) {
            for (const V& v : vectors) {
                check(v.dim() == dim_, std::string(kClassName) + "::add_edge: vector dimension mismatch");
            }
        }
        if (auto existing = find_edge(from, to)) {
            auto& vs = edges_[static_cast<std::size_t>(*existing)].vectors;
            vs.insert(vs.end(), vectors.begin(), vectors.end());
            std::sort(vs.begin(), vs.end());
            vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
            return *existing;
        }
        std::sort(vectors.begin(), vectors.end());
        vectors.erase(std::unique(vectors.begin(), vectors.end()), vectors.end());
        edges_.push_back(BasicDependenceEdge<V>{from, to, std::move(vectors)});
        const int id = static_cast<int>(edges_.size()) - 1;
        edge_index_.emplace(endpoint_key(from, to), id);
        return id;
    }

    [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
    [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
    [[nodiscard]] const LoopNode& node(int id) const {
        return nodes_.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] LoopNode& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] const BasicDependenceEdge<V>& edge(int id) const {
        return edges_.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const std::vector<BasicDependenceEdge<V>>& edges() const { return edges_; }

    /// Unchecked accessors for solver-facing loops whose ids come from the
    /// graph itself (0 <= id < num_nodes()/num_edges(), validated at
    /// insertion). The checked node()/edge() remain the public API.
    [[nodiscard]] const LoopNode& node_ref(int id) const noexcept {
        return nodes_[static_cast<std::size_t>(id)];
    }
    [[nodiscard]] const BasicDependenceEdge<V>& edge_ref(int id) const noexcept {
        return edges_[static_cast<std::size_t>(id)];
    }

    /// Node id by name; nullopt if absent.
    [[nodiscard]] std::optional<int> find_node(std::string_view name) const {
        for (int i = 0; i < num_nodes(); ++i) {
            if (nodes_[static_cast<std::size_t>(i)].name == name) return i;
        }
        return std::nullopt;
    }

    /// Edge id for the ordered pair (from, to); nullopt if absent. O(1)
    /// expected via the endpoint index (kept in lockstep by add_edge).
    [[nodiscard]] std::optional<int> find_edge(int from, int to) const {
        const auto it = edge_index_.find(endpoint_key(from, to));
        if (it == edge_index_.end()) return std::nullopt;
        return it->second;
    }

    /// True when the edge runs from a later loop to an earlier one in program
    /// order. Backward edges are necessarily outer-loop-carried in a legal
    /// graph, and require the strengthened (0,1) bound during retiming (see
    /// DESIGN.md, "Fidelity notes").
    [[nodiscard]] bool is_backward_edge(int edge_id) const {
        const auto& e = edge(edge_id);
        return node(e.from).order > node(e.to).order;
    }

    [[nodiscard]] bool is_self_edge(int edge_id) const {
        const auto& e = edge(edge_id);
        return e.from == e.to;
    }

    /// Successor adjacency over node ids.
    [[nodiscard]] Adjacency adjacency() const {
        Adjacency adj(static_cast<std::size_t>(num_nodes()));
        for (const auto& e : edges_) adj[static_cast<std::size_t>(e.from)].push_back(e.to);
        return adj;
    }

    /// True when the MLDG contains no cycle (self-loops count as cycles).
    [[nodiscard]] bool is_acyclic() const { return lf::is_acyclic(adjacency()); }

    /// Sum of delta_L along a sequence of edge ids (a path or cycle).
    [[nodiscard]] V path_weight(std::span<const int> edge_ids) const {
        V w = zero_weight();
        for (int id : edge_ids) w += edge(id).delta();
        return w;
    }

    /// Total number of dependence vectors across all edges.
    [[nodiscard]] std::size_t total_vectors() const {
        std::size_t n = 0;
        for (const auto& e : edges_) n += e.vectors.size();
        return n;
    }

    /// Graphviz rendering (delta, full D_L, hard-edge marker `*`).
    [[nodiscard]] std::string to_dot(const std::string& title = "mldg") const {
        std::ostringstream os;
        os << "digraph \"" << title << "\" {\n  rankdir=TB;\n";
        for (int i = 0; i < num_nodes(); ++i) {
            os << "  n" << i << " [label=\"" << node(i).name << "\"];\n";
        }
        for (const auto& e : edges_) {
            os << "  n" << e.from << " -> n" << e.to << " [label=\"";
            for (std::size_t k = 0; k < e.vectors.size(); ++k) {
                if (k) os << ' ';
                os << e.vectors[k].str();
            }
            if (e.is_hard()) os << " *";
            os << "\"";
            if (e.is_hard()) os << ", style=bold";
            os << "];\n";
        }
        os << "}\n";
        return os.str();
    }

    /// One-line-per-edge textual summary, used by reports and examples.
    /// (Each instantiation keeps its historical byte format.)
    [[nodiscard]] std::string summary() const {
        std::ostringstream os;
        if constexpr (kIs2d) {
            os << num_nodes() << " loops, " << num_edges() << " dependence edges ("
               << (is_acyclic() ? "acyclic" : "cyclic") << ")\n";
        } else {
            os << num_nodes() << " loops (dim " << dim_ << "), " << num_edges() << " edges\n";
        }
        for (const auto& e : edges_) {
            os << "  " << node(e.from).name << " -> " << node(e.to).name << "  D_L = {";
            for (std::size_t k = 0; k < e.vectors.size(); ++k) {
                if (k) os << ", ";
                os << e.vectors[k].str();
            }
            if constexpr (kIs2d) {
                os << "}  delta = " << e.delta().str();
            } else {
                os << '}';
            }
            if (e.is_hard()) os << "  [hard]";
            os << '\n';
        }
        return os.str();
    }

  private:
    static constexpr const char* kClassName = kIs2d ? "Mldg" : "MldgN";

    [[nodiscard]] static std::uint64_t endpoint_key(int from, int to) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
    }

    [[nodiscard]] V zero_weight() const {
        if constexpr (kIs2d) {
            return V{0, 0};
        } else {
            return V::zeros(dim_);
        }
    }

    int dim_ = 2;
    std::vector<LoopNode> nodes_;
    std::vector<BasicDependenceEdge<V>> edges_;
    /// (from, to) -> edge id, kept in lockstep with edges_ by add_edge so
    /// find_edge -- and with it every retiming apply, which merges through
    /// it -- is O(1) expected instead of a linear scan.
    std::unordered_map<std::uint64_t, int> edge_index_;
};

/// A retiming r (Section 2.3, after Passos & Sha): one offset of the
/// iteration space per loop node. Dependence vectors transform as
/// d_r = d + r(u) - r(v) along an edge u -> v; cycle weights are invariant.
/// A node's instance originally at iteration q executes at fused point
/// q - r(u) after retiming + fusion.
template <typename V>
class BasicRetiming {
  public:
    static constexpr bool kIs2d = std::same_as<V, Vec2>;

    BasicRetiming() = default;
    explicit BasicRetiming(int num_nodes)
        requires kIs2d
        : r_(static_cast<std::size_t>(num_nodes)) {}
    BasicRetiming(int num_nodes, int dim)
        requires(!kIs2d)
        : r_(static_cast<std::size_t>(num_nodes), V::zeros(dim)) {}
    explicit BasicRetiming(std::vector<V> values) : r_(std::move(values)) {}

    [[nodiscard]] int num_nodes() const { return static_cast<int>(r_.size()); }
    [[nodiscard]] const V& of(int node) const { return r_.at(static_cast<std::size_t>(node)); }
    [[nodiscard]] V& of(int node) { return r_.at(static_cast<std::size_t>(node)); }
    [[nodiscard]] const std::vector<V>& values() const { return r_; }

    /// Retimed weight of an edge:  delta_r(e) = delta(e) + r(from) - r(to).
    /// Saturating: out-of-range inputs clamp to the int64 extremes instead of
    /// wrapping (callers that pre-validate magnitudes never saturate).
    [[nodiscard]] V retimed(const BasicDependenceEdge<V>& e, const V& v) const
        requires kIs2d
    {
        return sat_sub(sat_add(v, of(e.from)), of(e.to));
    }
    [[nodiscard]] V retimed_delta(const BasicDependenceEdge<V>& e) const
        requires kIs2d
    {
        return retimed(e, e.delta());
    }

    /// Builds the retimed graph G_r: every vector of every edge is shifted by
    /// r(from) - r(to). Node order and costs are preserved. (The 2-D
    /// instantiation saturates like `retimed`; the N-D one assumes
    /// pre-validated magnitudes, as its planners guarantee.)
    [[nodiscard]] BasicMldg<V> apply(const BasicMldg<V>& g) const {
        check(num_nodes() == g.num_nodes(),
              std::string(kIs2d ? "Retiming" : "RetimingN") + "::apply: size mismatch");
        BasicMldg<V> out = make_like(g);
        for (int v = 0; v < g.num_nodes(); ++v) {
            out.add_node(g.node(v).name, g.node(v).body_cost);
        }
        for (const auto& e : g.edges()) {
            std::vector<V> shifted;
            shifted.reserve(e.vectors.size());
            if constexpr (kIs2d) {
                const V shift = sat_sub(of(e.from), of(e.to));
                for (const V& v : e.vectors) shifted.push_back(sat_add(v, shift));
            } else {
                const V shift = of(e.from) - of(e.to);
                for (const V& v : e.vectors) shifted.push_back(v + shift);
            }
            out.add_edge(e.from, e.to, std::move(shifted));
        }
        return out;
    }

    /// Normalizes so that min component over nodes is zero in each dimension
    /// (retimings are equivalence classes modulo a global translation).
    void normalize() {
        if (r_.empty()) return;
        V lo = r_.front();
        for (const V& v : r_) {
            for (int k = 0; k < lo.dim(); ++k) lo[k] = std::min(lo[k], v[k]);
        }
        for (V& v : r_) v -= lo;
    }

    [[nodiscard]] std::string str(const BasicMldg<V>& g) const {
        std::ostringstream os;
        for (int i = 0; i < num_nodes(); ++i) {
            if (i) os << ", ";
            os << "r(" << g.node(i).name << ")=" << of(i).str();
        }
        return os.str();
    }

    friend bool operator==(const BasicRetiming&, const BasicRetiming&) = default;

  private:
    [[nodiscard]] static BasicMldg<V> make_like(const BasicMldg<V>& g) {
        if constexpr (kIs2d) {
            (void)g;
            return BasicMldg<V>{};
        } else {
            return BasicMldg<V>(g.dim());
        }
    }

    std::vector<V> r_;
};

}  // namespace lf
