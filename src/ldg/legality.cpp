#include "ldg/legality.hpp"

#include "ldg/mldg_nd.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "graph/bellman_ford.hpp"

namespace lf {

namespace {

std::string edge_desc(const Mldg& g, const DependenceEdge& e, const Vec2& d) {
    std::ostringstream os;
    os << g.node(e.from).name << " -> " << g.node(e.to).name << " " << d.str();
    return os.str();
}

/// Renders a cycle witness (edge indices into `edge_nodes`) as "A -> B -> A".
std::string describe_cycle(const Mldg& g, const std::vector<std::pair<int, int>>& edge_nodes,
                           const std::vector<int>& cycle_edges) {
    std::ostringstream os;
    for (std::size_t k = 0; k < cycle_edges.size(); ++k) {
        const auto& [from, to] = edge_nodes[static_cast<std::size_t>(cycle_edges[k])];
        if (k == 0) os << g.node(from).name;
        os << " -> " << g.node(to).name;
    }
    return os.str();
}

/// Multiplies with saturation instead of UB; the scaled weights feed a solver
/// whose additions are themselves overflow-checked, so saturation here can
/// only turn into an explicit Overflow status, never a wrong verdict.
std::int64_t sat_mul_i64(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (!__builtin_mul_overflow(a, b, &out)) return out;
    const bool negative = (a < 0) != (b < 0);
    return negative ? std::numeric_limits<std::int64_t>::min()
                    : std::numeric_limits<std::int64_t>::max();
}

/// When some cycle of `edges` (1-D weights) has total weight <= 0, returns
/// its edge-index witness. Standard scaling trick: replace w by w*K - 1 with
/// K > number of edges; a cycle of length L <= |E| < K then has negative
/// scaled weight iff its original weight is <= 0. Sets `status` when the
/// underlying solve aborts (witness is then meaningless).
std::optional<std::vector<int>> cycle_weight_leq_zero(
    int num_nodes, const std::vector<WeightedEdge<std::int64_t>>& edges,
    ResourceGuard* guard, SolverStats* stats, SolverWorkspace<std::int64_t>* ws,
    StatusCode& status) {
    if (edges.empty()) return std::nullopt;
    const std::int64_t K = static_cast<std::int64_t>(edges.size()) + 1;
    std::vector<WeightedEdge<std::int64_t>> scaled;
    scaled.reserve(edges.size());
    for (const auto& e : edges) {
        const std::int64_t wk = sat_mul_i64(e.weight, K);
        scaled.push_back(
            {e.from, e.to,
             wk == std::numeric_limits<std::int64_t>::min() ? wk : wk - 1});
    }
    auto sp = bellman_ford_all_sources<std::int64_t>(num_nodes, scaled, guard, stats, {}, ws);
    if (sp.status != StatusCode::Ok) {
        status = sp.status;
        return std::nullopt;
    }
    if (!sp.has_negative_cycle) return std::nullopt;
    return std::move(sp.negative_cycle);
}

/// Witness of a cycle with negative x-weight (over deltas), if any. Sets
/// `status` when the underlying solve aborts.
std::optional<std::vector<int>> negative_x_cycle(const Mldg& g, ResourceGuard* guard,
                                                 SolverStats* stats,
                                                 SolverWorkspace<std::int64_t>* ws,
                                                 StatusCode& status) {
    std::vector<WeightedEdge<std::int64_t>> edges;
    edges.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) edges.push_back({e.from, e.to, e.delta().x});
    auto sp = bellman_ford_all_sources<std::int64_t>(g.num_nodes(), edges, guard, stats, {}, ws);
    if (sp.status != StatusCode::Ok) {
        status = sp.status;
        return std::nullopt;
    }
    if (!sp.has_negative_cycle) return std::nullopt;
    return std::move(sp.negative_cycle);
}

/// (L0)/(S0): every dependence component within kMaxDependenceMagnitude.
/// Written without std::abs so INT64_MIN (whose absolute value is not
/// representable) is rejected rather than UB.
bool check_magnitudes(const Mldg& g, std::vector<std::string>& violations) {
    bool ok = true;
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            const bool in_range = d.x <= kMaxDependenceMagnitude && d.x >= -kMaxDependenceMagnitude &&
                                  d.y <= kMaxDependenceMagnitude && d.y >= -kMaxDependenceMagnitude;
            if (!in_range) {
                violations.push_back("dependence vector component exceeds 2^39 in magnitude: " +
                                     edge_desc(g, e, d));
                ok = false;
            }
        }
    }
    return ok;
}

}  // namespace

LegalityReport check_mldg_legality(const Mldg& g) {
    LegalityReport report;
    auto fail = [&report](const std::string& msg) {
        report.legal = false;
        report.violations.push_back(msg);
    };

    if (!check_magnitudes(g, report.violations)) {
        report.legal = false;
        return report;
    }

    for (int eid = 0; eid < g.num_edges(); ++eid) {
        const auto& e = g.edge_ref(eid);
        const bool self = g.is_self_edge(eid);
        const bool backward = g.is_backward_edge(eid);
        for (const Vec2& d : e.vectors) {
            if (d.x < 0) {
                fail("dependence flows to an earlier outer iteration: " + edge_desc(g, e, d));
                continue;
            }
            if (d.x == 0) {
                if (self) {
                    fail((d.y == 0 ? std::string("degenerate (0,0) self-dependence: ")
                                   : std::string("inner loop is not DOALL (self-dependence "
                                                 "within one outer iteration): ")) +
                         edge_desc(g, e, d));
                } else if (backward) {
                    fail("same-outer-iteration dependence against program order: " +
                         edge_desc(g, e, d));
                }
            }
        }
    }
    return report;
}

bool is_legal_mldg(const Mldg& g) { return check_mldg_legality(g).legal; }

LegalityReport check_schedulable(const Mldg& g, ResourceGuard* guard, SolverStats* stats,
                                 SolverWorkspace<std::int64_t>* ws) {
    LegalityReport report;
    auto fail = [&report](const std::string& msg) {
        report.legal = false;
        report.violations.push_back(msg);
    };

    if (!check_magnitudes(g, report.violations)) {
        report.legal = false;
        return report;
    }

    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.x < 0) {
                fail("dependence flows to an earlier outer iteration: " + edge_desc(g, e, d));
            }
        }
    }
    if (!report.legal) return report;

    // (S2) split by first coordinate. Since every delta.x >= 0, a cycle with
    // x-weight zero consists solely of zero-x edges.
    StatusCode solver_status = StatusCode::Ok;
    {
        std::vector<std::pair<int, int>> edge_nodes;
        for (const auto& e : g.edges()) edge_nodes.emplace_back(e.from, e.to);
        const auto witness = negative_x_cycle(g, guard, stats, ws, solver_status);
        if (solver_status != StatusCode::Ok) {
            report.status = solver_status;
            report.legal = false;  // conservative: verdict undetermined
            report.violations.push_back("schedulability check aborted: " +
                                        to_string(solver_status));
            return report;
        }
        if (witness) {
            fail("cycle with negative x-weight: " + describe_cycle(g, edge_nodes, *witness));
            return report;
        }
    }
    std::vector<WeightedEdge<std::int64_t>> zero_x_edges;
    std::vector<std::pair<int, int>> zero_x_nodes;
    for (const auto& e : g.edges()) {
        if (e.delta().x == 0) {
            zero_x_edges.push_back({e.from, e.to, e.delta().y});
            zero_x_nodes.emplace_back(e.from, e.to);
        }
    }
    const auto witness =
        cycle_weight_leq_zero(g.num_nodes(), zero_x_edges, guard, stats, ws, solver_status);
    if (solver_status != StatusCode::Ok) {
        report.status = solver_status;
        report.legal = false;
        report.violations.push_back("schedulability check aborted: " + to_string(solver_status));
        return report;
    }
    if (witness) {
        fail("cycle with weight <= (0,0), no execution order exists (Theorem 4.4 "
             "hypothesis violated): " +
             describe_cycle(g, zero_x_nodes, *witness));
    }
    return report;
}

bool is_schedulable(const Mldg& g) { return check_schedulable(g).legal; }

namespace {

std::vector<int> position_of(const std::vector<int>& body_order) {
    std::vector<int> pos(body_order.size());
    for (std::size_t k = 0; k < body_order.size(); ++k) {
        pos[static_cast<std::size_t>(body_order[k])] = static_cast<int>(k);
    }
    return pos;
}

std::vector<int> program_order(const Mldg& g) {
    std::vector<int> order(static_cast<std::size_t>(g.num_nodes()));
    for (int i = 0; i < g.num_nodes(); ++i) {
        order[static_cast<std::size_t>(g.node_ref(i).order)] = i;
    }
    return order;
}

}  // namespace

bool is_fusion_legal(const Mldg& g, const std::vector<int>& body_order) {
    const auto pos = position_of(body_order);
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d < Vec2{0, 0}) return false;
            if (d.is_zero() &&
                pos[static_cast<std::size_t>(e.from)] >= pos[static_cast<std::size_t>(e.to)]) {
                return false;
            }
        }
    }
    return true;
}

bool is_fusion_legal(const Mldg& g) { return is_fusion_legal(g, program_order(g)); }

bool is_fused_inner_doall(const Mldg& g, const std::vector<int>& body_order) {
    const auto pos = position_of(body_order);
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.x >= 1) continue;
            if (d.is_zero() &&
                pos[static_cast<std::size_t>(e.from)] < pos[static_cast<std::size_t>(e.to)]) {
                continue;
            }
            return false;
        }
    }
    return true;
}

bool is_fused_inner_doall(const Mldg& g) { return is_fused_inner_doall(g, program_order(g)); }

std::optional<std::vector<int>> fused_body_order(const Mldg& retimed) {
    // Depth-first emission over the (0,0)-dependence subgraph: walk the loops
    // in program order, hoisting each loop's not-yet-emitted (0,0)
    // predecessors (themselves in program order) ahead of it. This yields a
    // topological order that perturbs the original statement order as little
    // as possible.
    const int n = retimed.num_nodes();
    std::vector<std::vector<int>> pred(static_cast<std::size_t>(n));
    for (const auto& e : retimed.edges()) {
        if (e.from == e.to) continue;
        const bool same_point =
            std::any_of(e.vectors.begin(), e.vectors.end(), [](const Vec2& d) { return d.is_zero(); });
        if (!same_point) continue;
        pred[static_cast<std::size_t>(e.to)].push_back(e.from);
    }
    for (auto& ps : pred) {
        std::sort(ps.begin(), ps.end(), [&retimed](int a, int b) {
            return retimed.node_ref(a).order < retimed.node_ref(b).order;
        });
    }

    std::vector<int> by_program_order(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
        by_program_order[static_cast<std::size_t>(retimed.node_ref(v).order)] = v;
    }

    enum class Mark : unsigned char { Unseen, InProgress, Done };
    std::vector<Mark> mark(static_cast<std::size_t>(n), Mark::Unseen);
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));

    // Iterative DFS; frame = (node, next predecessor index).
    for (int root : by_program_order) {
        if (mark[static_cast<std::size_t>(root)] != Mark::Unseen) continue;
        std::vector<std::pair<int, std::size_t>> frames{{root, 0}};
        mark[static_cast<std::size_t>(root)] = Mark::InProgress;
        while (!frames.empty()) {
            auto& [v, next] = frames.back();
            const auto& ps = pred[static_cast<std::size_t>(v)];
            if (next < ps.size()) {
                const int p = ps[next++];
                if (mark[static_cast<std::size_t>(p)] == Mark::InProgress) {
                    return std::nullopt;  // (0,0)-dependence cycle
                }
                if (mark[static_cast<std::size_t>(p)] == Mark::Unseen) {
                    mark[static_cast<std::size_t>(p)] = Mark::InProgress;
                    frames.emplace_back(p, 0);
                }
            } else {
                mark[static_cast<std::size_t>(v)] = Mark::Done;
                order.push_back(v);
                frames.pop_back();
            }
        }
    }
    return order;
}

bool is_strict_schedule_vector(const Mldg& g, const Vec2& s) {
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (!d.is_zero() && s.dot(d) <= 0) return false;
        }
    }
    return true;
}

// --- N-D schedulability (shared with the 2-D checks above; see
// ldg/mldg_nd.hpp for the contract). ---

namespace {

/// Lexicographic comparison of the first dim-1 components against zero.
bool prefix_nonnegative(const VecN& v) {
    for (int k = 0; k + 1 < v.dim(); ++k) {
        if (v[k] > 0) return true;
        if (v[k] < 0) return false;
    }
    return true;
}

}  // namespace

bool is_schedulable_nd(const MldgN& g, ResourceGuard* guard, SolverStats* stats,
                       SolverWorkspace<VecN>* ws) {
    // (S1') outer prefixes must be lexicographically non-negative: nothing
    // may flow backwards at the sequential levels.
    for (const auto& e : g.edges()) {
        for (const VecN& d : e.vectors) {
            if (!prefix_nonnegative(d)) return false;
        }
    }
    // (S2') no cycle with weight <= 0. Detect with the unified lexicographic
    // Bellman-Ford over epsilon-adjusted vectors: scale the last component by
    // K > |E| and subtract one, so a cycle's adjusted weight is
    // lexicographically negative exactly when its true weight is <= 0.
    if (g.num_edges() == 0) return true;
    const std::int64_t K = g.num_edges() + 1;
    std::vector<WeightedEdge<VecN>> edges;
    edges.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        VecN v = e.delta();
        v[v.dim() - 1] = v[v.dim() - 1] * K - 1;
        edges.push_back(WeightedEdge<VecN>{e.from, e.to, std::move(v)});
    }
    const auto sp = bellman_ford_all_sources<VecN>(g.num_nodes(), edges, guard, stats,
                                                   WeightTraits<VecN>(g.dim()), ws);
    // A cut-short solve (fault, budget, overflow) cannot certify the cycle
    // condition: answer conservatively.
    if (sp.status != StatusCode::Ok) return false;
    return !sp.has_negative_cycle;
}

}  // namespace lf
