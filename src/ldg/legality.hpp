#pragma once
// Legality of an MLDG (Section 2.2) and of fusion (Section 3.1).
//
// Two tiers (see DESIGN.md, "Fidelity notes"):
//
// *Program-model legality* (check_mldg_legality): the graph describes an
// executable Figure-1 program -- loops run in program order, each innermost
// loop is DOALL. Concretely:
//   (L1) every dependence vector d has d.x >= 0;
//   (L2) a vector with d.x == 0 appears only on a *forward* edge (an
//        earlier loop feeding a later one) -- a same-outer-iteration
//        dependence cannot flow against statement order;
//   (L3) self-edges carry no vector with d.x == 0.
// (L2)+(L3) imply every cycle has x-weight >= 1, the condition Lemma 2.1 /
// Theorem 3.2 rely on. Dependence analysis of a real program always produces
// a graph satisfying L1-L3.
//
// *Schedulability* (check_schedulable): the weaker condition under which the
// paper's algorithms apply (the hypothesis of Theorem 4.4, satisfied by the
// paper's Figure 14, which is NOT program-model legal):
//   (S1) every dependence vector d has d.x >= 0;
//   (S2) every cycle has weight > (0,0) (strictly, lexicographically).
// (S2) guarantees both LLOFRA feasibility (constraint cycles >= (0,0)) and
// the existence of a valid fused body order: the retimed (0,0)-dependence
// subgraph is acyclic, so its topological order serializes same-point
// dependences correctly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ldg/mldg.hpp"
#include "support/status.hpp"

namespace lf {

template <typename W>
class SolverWorkspace;

/// Largest |component| a dependence vector may carry. Both legality tiers
/// reject vectors beyond this bound up front, which keeps every downstream
/// sum (retiming offsets, constraint bounds, cycle weights scaled by |E|+1)
/// comfortably inside int64 for any graph that fits in memory. 2^39 leaves
/// 2^24 of headroom for the scaling factor before the checked adders would
/// have to saturate.
inline constexpr std::int64_t kMaxDependenceMagnitude = std::int64_t{1} << 39;

struct LegalityReport {
    bool legal = true;
    std::vector<std::string> violations;
    /// Ok when the check ran to completion (legal/violations are then the
    /// verdict). ResourceExhausted / Overflow / Internal when a solver-backed
    /// check was aborted; `legal` is then conservatively false.
    StatusCode status = StatusCode::Ok;

    explicit operator bool() const { return legal; }
};

/// Program-model legality: checks (L1)-(L3). Solver-free; always completes.
[[nodiscard]] LegalityReport check_mldg_legality(const Mldg& g);

/// True iff `g` satisfies (L1)-(L3).
[[nodiscard]] bool is_legal_mldg(const Mldg& g);

/// Schedulability: checks (S1)-(S2). Program-model legality implies this.
/// The optional guard bounds the Bellman-Ford cycle checks; on exhaustion the
/// report carries status != Ok and legal == false (conservative). The
/// optional workspace makes the two cycle-check solves allocation-free when
/// reused across calls.
[[nodiscard]] LegalityReport check_schedulable(const Mldg& g, ResourceGuard* guard = nullptr,
                                               SolverStats* stats = nullptr,
                                               SolverWorkspace<std::int64_t>* ws = nullptr);

[[nodiscard]] bool is_schedulable(const Mldg& g);

/// Theorem 3.1 under a given fused-body statement order (body_order[k] = node
/// executed k-th inside the fused body): fusion is legal iff every dependence
/// vector is >= (0,0), with equality (0,0) permitted only when the source
/// node precedes the sink node in `body_order`.
[[nodiscard]] bool is_fusion_legal(const Mldg& g, const std::vector<int>& body_order);

/// Same with body order = program order (what *direct* fusion without
/// retiming would produce; used by the naive baseline).
[[nodiscard]] bool is_fusion_legal(const Mldg& g);

/// Would the *fused* innermost loop be DOALL under `body_order`? True iff
/// every dependence vector either has x >= 1 or is exactly (0,0) respecting
/// the body order. This is the operative content of Property 4.2 (the
/// paper's "d >= (1,-1)" is shorthand for d.x >= 1; see DESIGN.md).
[[nodiscard]] bool is_fused_inner_doall(const Mldg& g, const std::vector<int>& body_order);

[[nodiscard]] bool is_fused_inner_doall(const Mldg& g);

/// Topological order of the (0,0)-dependence subgraph of a *retimed* graph,
/// with ties broken by program order (so unconstrained loops keep their
/// original relative position). nullopt when that subgraph is cyclic, i.e.
/// the retimed graph cannot be fused at all (a same-point dependence cycle).
[[nodiscard]] std::optional<std::vector<int>> fused_body_order(const Mldg& retimed);

/// Strict schedule vector test (Section 2.3): s . d > 0 for every nonzero
/// dependence vector in the graph.
[[nodiscard]] bool is_strict_schedule_vector(const Mldg& g, const Vec2& s);

}  // namespace lf
