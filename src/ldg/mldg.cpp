#include "ldg/mldg.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"

namespace lf {

bool DependenceEdge::is_hard() const {
    // vectors are sorted lexicographically, so equal-x vectors are adjacent.
    for (std::size_t k = 1; k < vectors.size(); ++k) {
        if (vectors[k].x == vectors[k - 1].x && vectors[k].y != vectors[k - 1].y) return true;
    }
    return false;
}

int Mldg::add_node(std::string name, std::int64_t body_cost) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(LoopNode{std::move(name), id, body_cost});
    return id;
}

namespace {

std::uint64_t endpoint_key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
}

}  // namespace

int Mldg::add_edge(int from, int to, std::vector<Vec2> vectors) {
    check(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
          "Mldg::add_edge: node id out of range");
    check(!vectors.empty(), "Mldg::add_edge: empty dependence vector set");
    if (auto existing = find_edge(from, to)) {
        auto& vs = edges_[static_cast<std::size_t>(*existing)].vectors;
        vs.insert(vs.end(), vectors.begin(), vectors.end());
        std::sort(vs.begin(), vs.end());
        vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
        return *existing;
    }
    std::sort(vectors.begin(), vectors.end());
    vectors.erase(std::unique(vectors.begin(), vectors.end()), vectors.end());
    edges_.push_back(DependenceEdge{from, to, std::move(vectors)});
    const int id = static_cast<int>(edges_.size()) - 1;
    edge_index_.emplace(endpoint_key(from, to), id);
    return id;
}

const LoopNode& Mldg::node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
LoopNode& Mldg::node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
const DependenceEdge& Mldg::edge(int id) const { return edges_.at(static_cast<std::size_t>(id)); }

std::optional<int> Mldg::find_node(std::string_view name) const {
    for (int i = 0; i < num_nodes(); ++i) {
        if (nodes_[static_cast<std::size_t>(i)].name == name) return i;
    }
    return std::nullopt;
}

std::optional<int> Mldg::find_edge(int from, int to) const {
    const auto it = edge_index_.find(endpoint_key(from, to));
    if (it == edge_index_.end()) return std::nullopt;
    return it->second;
}

bool Mldg::is_backward_edge(int edge_id) const {
    const auto& e = edge(edge_id);
    return node(e.from).order > node(e.to).order;
}

bool Mldg::is_self_edge(int edge_id) const {
    const auto& e = edge(edge_id);
    return e.from == e.to;
}

Adjacency Mldg::adjacency() const {
    Adjacency adj(static_cast<std::size_t>(num_nodes()));
    for (const auto& e : edges_) adj[static_cast<std::size_t>(e.from)].push_back(e.to);
    return adj;
}

bool Mldg::is_acyclic() const { return lf::is_acyclic(adjacency()); }

Vec2 Mldg::path_weight(std::span<const int> edge_ids) const {
    Vec2 w{0, 0};
    for (int id : edge_ids) w += edge(id).delta();
    return w;
}

std::size_t Mldg::total_vectors() const {
    std::size_t n = 0;
    for (const auto& e : edges_) n += e.vectors.size();
    return n;
}

std::string Mldg::to_dot(const std::string& title) const {
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n  rankdir=TB;\n";
    for (int i = 0; i < num_nodes(); ++i) {
        os << "  n" << i << " [label=\"" << node(i).name << "\"];\n";
    }
    for (const auto& e : edges_) {
        os << "  n" << e.from << " -> n" << e.to << " [label=\"";
        for (std::size_t k = 0; k < e.vectors.size(); ++k) {
            if (k) os << ' ';
            os << e.vectors[k].str();
        }
        if (e.is_hard()) os << " *";
        os << "\"";
        if (e.is_hard()) os << ", style=bold";
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

std::string Mldg::summary() const {
    std::ostringstream os;
    os << num_nodes() << " loops, " << num_edges() << " dependence edges ("
       << (is_acyclic() ? "acyclic" : "cyclic") << ")\n";
    for (const auto& e : edges_) {
        os << "  " << node(e.from).name << " -> " << node(e.to).name << "  D_L = {";
        for (std::size_t k = 0; k < e.vectors.size(); ++k) {
            if (k) os << ", ";
            os << e.vectors[k].str();
        }
        os << "}  delta = " << e.delta().str();
        if (e.is_hard()) os << "  [hard]";
        os << '\n';
    }
    return os.str();
}

}  // namespace lf
