#pragma once
// The multi-dimensional loop dependence graph (MLDG) of Definition 2.2,
// specialized to two dimensions (a "2LDG").
//
// Forwarding shim: `Mldg` is the `Vec2` instantiation of the
// dimension-generic `BasicMldg` in ldg/basic_mldg.hpp (the N-D aliases live
// in ldg/mldg_nd.hpp). Summary/to_dot byte formats, merge semantics and the
// O(1) endpoint index are unchanged from the historical 2-D class.

#include "ldg/basic_mldg.hpp"
#include "support/lexvec.hpp"

namespace lf {

using DependenceEdge = BasicDependenceEdge<Vec2>;
using Mldg = BasicMldg<Vec2>;

}  // namespace lf
