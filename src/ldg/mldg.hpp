#pragma once
// The multi-dimensional loop dependence graph (MLDG) of Definition 2.2,
// specialized to two dimensions (a "2LDG").
//
// One node per innermost DOALL loop (in program order), one edge per ordered
// pair of loops with at least one dependence, annotated with the full set of
// loop dependence vectors D_L (Definition 2.1). The minimal vector delta_L is
// the lexicographic minimum of D_L; an edge is a *hard edge* ("parallelism
// hard", Section 2.2) when two of its vectors share a first coordinate but
// differ in the second.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/vec2.hpp"

namespace lf {

/// A node of the MLDG: one innermost DOALL loop.
struct LoopNode {
    std::string name;
    /// Position of the loop in the original program text (0-based). Determines
    /// statement order inside the fused body and therefore which edges are
    /// "backward" (from a later loop to an earlier one).
    int order = 0;
    /// Abstract per-iteration cost of the loop body, consumed by the
    /// multiprocessor cost model. Purely descriptive for the algorithms.
    std::int64_t body_cost = 1;
};

/// An edge of the MLDG: all dependences from one loop to another.
struct DependenceEdge {
    int from = -1;
    int to = -1;
    /// D_L(from, to): sorted ascending (lexicographically), deduplicated,
    /// never empty. vectors.front() is delta_L.
    std::vector<Vec2> vectors;

    /// delta_L(e): the minimal loop dependence vector (Definition 2.2).
    [[nodiscard]] Vec2 delta() const { return vectors.front(); }

    /// Hard edge: two vectors with equal first but different second
    /// coordinates (Section 2.2). Hard edges constrain full inner parallelism.
    [[nodiscard]] bool is_hard() const;
};

class Mldg {
  public:
    /// Appends a loop node; program order is insertion order.
    int add_node(std::string name, std::int64_t body_cost = 1);

    /// Adds dependence vectors from `from` to `to`. If the edge already
    /// exists the vectors are merged (the MLDG keeps at most one edge per
    /// ordered node pair, per Definition 2.2). Vectors are validated to be
    /// non-empty. Returns the edge id.
    int add_edge(int from, int to, std::vector<Vec2> vectors);

    [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
    [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
    [[nodiscard]] const LoopNode& node(int id) const;
    [[nodiscard]] LoopNode& node(int id);
    [[nodiscard]] const DependenceEdge& edge(int id) const;
    [[nodiscard]] const std::vector<DependenceEdge>& edges() const { return edges_; }

    /// Unchecked accessors for solver-facing loops whose ids come from the
    /// graph itself (0 <= id < num_nodes()/num_edges(), validated at
    /// insertion). The checked node()/edge() remain the public API.
    [[nodiscard]] const LoopNode& node_ref(int id) const noexcept {
        return nodes_[static_cast<std::size_t>(id)];
    }
    [[nodiscard]] const DependenceEdge& edge_ref(int id) const noexcept {
        return edges_[static_cast<std::size_t>(id)];
    }

    /// Node id by name; nullopt if absent.
    [[nodiscard]] std::optional<int> find_node(std::string_view name) const;

    /// Edge id for the ordered pair (from, to); nullopt if absent.
    [[nodiscard]] std::optional<int> find_edge(int from, int to) const;

    /// True when the edge runs from a later loop to an earlier one in program
    /// order. Backward edges are necessarily outer-loop-carried in a legal
    /// graph, and require the strengthened (0,1) bound during retiming (see
    /// DESIGN.md, "Fidelity notes").
    [[nodiscard]] bool is_backward_edge(int edge_id) const;

    [[nodiscard]] bool is_self_edge(int edge_id) const;

    /// Successor adjacency over node ids.
    [[nodiscard]] Adjacency adjacency() const;

    /// True when the MLDG contains no cycle (self-loops count as cycles).
    [[nodiscard]] bool is_acyclic() const;

    /// Sum of delta_L along a sequence of edge ids (a path or cycle).
    [[nodiscard]] Vec2 path_weight(std::span<const int> edge_ids) const;

    /// Total number of dependence vectors across all edges.
    [[nodiscard]] std::size_t total_vectors() const;

    /// Graphviz rendering (delta, full D_L, hard-edge marker `*`).
    [[nodiscard]] std::string to_dot(const std::string& title = "mldg") const;

    /// One-line-per-edge textual summary, used by reports and examples.
    [[nodiscard]] std::string summary() const;

  private:
    std::vector<LoopNode> nodes_;
    std::vector<DependenceEdge> edges_;
    /// (from, to) -> edge id, kept in lockstep with edges_ by add_edge so
    /// find_edge -- and with it every retiming apply, which merges through
    /// it -- is O(1) expected instead of a linear scan.
    std::unordered_map<std::uint64_t, int> edge_index_;
};

}  // namespace lf
