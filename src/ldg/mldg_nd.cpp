#include "ldg/mldg_nd.hpp"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/bellman_ford.hpp"
#include "support/diagnostics.hpp"

namespace lf {

bool DependenceEdgeN::is_hard() const {
    const int d = vectors.front().dim();
    for (std::size_t a = 1; a < vectors.size(); ++a) {
        bool same_prefix = true;
        for (int k = 0; k + 1 < d; ++k) {
            if (vectors[a][k] != vectors[a - 1][k]) {
                same_prefix = false;
                break;
            }
        }
        // Sorted order puts equal-prefix vectors adjacent.
        if (same_prefix && vectors[a][d - 1] != vectors[a - 1][d - 1]) return true;
    }
    return false;
}

int MldgN::add_node(std::string name, std::int64_t body_cost) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(LoopNodeN{std::move(name), id, body_cost});
    return id;
}

int MldgN::add_edge(int from, int to, std::vector<VecN> vectors) {
    check(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
          "MldgN::add_edge: node id out of range");
    check(!vectors.empty(), "MldgN::add_edge: empty dependence vector set");
    for (const VecN& v : vectors) {
        check(v.dim() == dim_, "MldgN::add_edge: vector dimension mismatch");
    }
    if (auto existing = find_edge(from, to)) {
        auto& vs = edges_[static_cast<std::size_t>(*existing)].vectors;
        vs.insert(vs.end(), vectors.begin(), vectors.end());
        std::sort(vs.begin(), vs.end());
        vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
        return *existing;
    }
    std::sort(vectors.begin(), vectors.end());
    vectors.erase(std::unique(vectors.begin(), vectors.end()), vectors.end());
    edges_.push_back(DependenceEdgeN{from, to, std::move(vectors)});
    return static_cast<int>(edges_.size()) - 1;
}

const LoopNodeN& MldgN::node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
const DependenceEdgeN& MldgN::edge(int id) const { return edges_.at(static_cast<std::size_t>(id)); }

std::optional<int> MldgN::find_edge(int from, int to) const {
    for (int e = 0; e < num_edges(); ++e) {
        if (edges_[static_cast<std::size_t>(e)].from == from &&
            edges_[static_cast<std::size_t>(e)].to == to)
            return e;
    }
    return std::nullopt;
}

bool MldgN::is_acyclic() const {
    Adjacency adj(static_cast<std::size_t>(num_nodes()));
    for (const auto& e : edges_) adj[static_cast<std::size_t>(e.from)].push_back(e.to);
    return lf::is_acyclic(adj);
}

std::string MldgN::summary() const {
    std::ostringstream os;
    os << num_nodes() << " loops (dim " << dim_ << "), " << num_edges() << " edges\n";
    for (const auto& e : edges_) {
        os << "  " << node(e.from).name << " -> " << node(e.to).name << "  D_L = {";
        for (std::size_t k = 0; k < e.vectors.size(); ++k) {
            if (k) os << ", ";
            os << e.vectors[k].str();
        }
        os << '}';
        if (e.is_hard()) os << "  [hard]";
        os << '\n';
    }
    return os.str();
}

MldgN RetimingN::apply(const MldgN& g) const {
    check(num_nodes() == g.num_nodes(), "RetimingN::apply: size mismatch");
    MldgN out(g.dim());
    for (int v = 0; v < g.num_nodes(); ++v) out.add_node(g.node(v).name, g.node(v).body_cost);
    for (const auto& e : g.edges()) {
        const VecN shift = of(e.from) - of(e.to);
        std::vector<VecN> shifted;
        shifted.reserve(e.vectors.size());
        for (const VecN& v : e.vectors) shifted.push_back(v + shift);
        out.add_edge(e.from, e.to, std::move(shifted));
    }
    return out;
}

namespace {

/// Lexicographic comparison of the first dim-1 components against zero.
bool prefix_nonnegative(const VecN& v) {
    for (int k = 0; k + 1 < v.dim(); ++k) {
        if (v[k] > 0) return true;
        if (v[k] < 0) return false;
    }
    return true;
}

}  // namespace

bool is_schedulable_nd(const MldgN& g, ResourceGuard* guard, SolverStats* stats,
                       SolverWorkspace<VecN>* ws) {
    // (S1') outer prefixes must be lexicographically non-negative: nothing
    // may flow backwards at the sequential levels.
    for (const auto& e : g.edges()) {
        for (const VecN& d : e.vectors) {
            if (!prefix_nonnegative(d)) return false;
        }
    }
    // (S2') no cycle with weight <= 0. Detect with the unified lexicographic
    // Bellman-Ford over epsilon-adjusted vectors: scale the last component by
    // K > |E| and subtract one, so a cycle's adjusted weight is
    // lexicographically negative exactly when its true weight is <= 0.
    if (g.num_edges() == 0) return true;
    const std::int64_t K = g.num_edges() + 1;
    std::vector<WeightedEdge<VecN>> edges;
    edges.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const auto& e : g.edges()) {
        VecN v = e.delta();
        v[v.dim() - 1] = v[v.dim() - 1] * K - 1;
        edges.push_back(WeightedEdge<VecN>{e.from, e.to, std::move(v)});
    }
    const auto sp = bellman_ford_all_sources<VecN>(g.num_nodes(), edges, guard, stats,
                                                   WeightTraits<VecN>(g.dim()), ws);
    // A cut-short solve (fault, budget, overflow) cannot certify the cycle
    // condition: answer conservatively.
    if (sp.status != StatusCode::Ok) return false;
    return !sp.has_negative_cycle;
}

}  // namespace lf
