#pragma once
// The general multi-dimensional loop dependence graph of Definition 2.2
// (dimension n >= 1), and n-dimensional retimings (Section 2.3). The paper's
// elaborated algorithms are two-dimensional (ldg/mldg.hpp); this model backs
// the n-D generalizations in fusion/multidim.hpp.
//
// Convention: component 0 is the outermost loop, component n-1 the innermost
// (DOALL) loop, matching the 2-D (x, y) = (outer, inner) convention.

#include <optional>
#include <string>
#include <vector>

#include "support/solver_stats.hpp"
#include "support/status.hpp"
#include "support/vecn.hpp"

namespace lf {

template <typename W>
class SolverWorkspace;

struct LoopNodeN {
    std::string name;
    int order = 0;
    std::int64_t body_cost = 1;
};

struct DependenceEdgeN {
    int from = -1;
    int to = -1;
    /// Sorted ascending (lexicographically), deduplicated, non-empty.
    std::vector<VecN> vectors;

    [[nodiscard]] const VecN& delta() const { return vectors.front(); }

    /// Generalized hard edge: two vectors agree on every component except
    /// the last -- no retiming of the outer dimensions can separate them,
    /// so full innermost parallelism requires carrying the edge outward.
    [[nodiscard]] bool is_hard() const;
};

class MldgN {
  public:
    explicit MldgN(int dim) : dim_(dim) {}

    [[nodiscard]] int dim() const { return dim_; }

    int add_node(std::string name, std::int64_t body_cost = 1);
    int add_edge(int from, int to, std::vector<VecN> vectors);

    [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
    [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
    [[nodiscard]] const LoopNodeN& node(int id) const;
    [[nodiscard]] const DependenceEdgeN& edge(int id) const;
    [[nodiscard]] const std::vector<DependenceEdgeN>& edges() const { return edges_; }
    [[nodiscard]] std::optional<int> find_edge(int from, int to) const;

    [[nodiscard]] bool is_acyclic() const;

    [[nodiscard]] std::string summary() const;

  private:
    int dim_;
    std::vector<LoopNodeN> nodes_;
    std::vector<DependenceEdgeN> edges_;
};

/// An n-dimensional retiming: r(u) in Z^n per node; dependence vectors
/// transform as d_r = d + r(u) - r(v) along an edge u -> v.
class RetimingN {
  public:
    RetimingN() = default;
    RetimingN(int num_nodes, int dim)
        : r_(static_cast<std::size_t>(num_nodes), VecN::zeros(dim)) {}
    explicit RetimingN(std::vector<VecN> values) : r_(std::move(values)) {}

    [[nodiscard]] int num_nodes() const { return static_cast<int>(r_.size()); }
    [[nodiscard]] const VecN& of(int node) const { return r_.at(static_cast<std::size_t>(node)); }
    [[nodiscard]] VecN& of(int node) { return r_.at(static_cast<std::size_t>(node)); }

    [[nodiscard]] MldgN apply(const MldgN& g) const;

  private:
    std::vector<VecN> r_;
};

/// Schedulability in n dimensions (Theorem 4.4's hypothesis, generalized):
/// every dependence vector >= the zero vector would be too strong; the
/// operative condition is that every *cycle* weighs lexicographically more
/// than zero, and no vector has a negative leading (outermost) component.
/// The cycle test runs on the unified lexicographic Bellman-Ford; a solve
/// cut short by the optional guard (or a solver fault) answers false
/// conservatively. Optional stats account the solve's telemetry.
[[nodiscard]] bool is_schedulable_nd(const MldgN& g, ResourceGuard* guard = nullptr,
                                     SolverStats* stats = nullptr,
                                     SolverWorkspace<VecN>* ws = nullptr);

}  // namespace lf
