#pragma once
// The general multi-dimensional loop dependence graph of Definition 2.2
// (dimension n >= 1), and n-dimensional retimings (Section 2.3).
//
// Forwarding shim: `MldgN` / `MldgNd` and `RetimingN` are the `VecN`
// instantiations of the dimension-generic `BasicMldg` / `BasicRetiming` in
// ldg/basic_mldg.hpp; the 2-D aliases live in ldg/mldg.hpp and
// ldg/retiming.hpp. The schedulability check shares ldg/legality.cpp with
// the 2-D stack.
//
// Convention: component 0 is the outermost loop, component n-1 the innermost
// (DOALL) loop, matching the 2-D (x, y) = (outer, inner) convention.

#include "ldg/basic_mldg.hpp"
#include "support/solver_stats.hpp"
#include "support/status.hpp"
#include "support/lexvec.hpp"

namespace lf {

template <typename W>
class SolverWorkspace;

using LoopNodeN = LoopNode;
using DependenceEdgeN = BasicDependenceEdge<VecN>;
using MldgN = BasicMldg<VecN>;
using MldgNd = BasicMldg<VecN>;
using RetimingN = BasicRetiming<VecN>;

/// Schedulability in n dimensions (Theorem 4.4's hypothesis, generalized):
/// every dependence vector >= the zero vector would be too strong; the
/// operative condition is that every *cycle* weighs lexicographically more
/// than zero, and no vector has a negative leading (outermost) component.
/// The cycle test runs on the unified lexicographic Bellman-Ford; a solve
/// cut short by the optional guard (or a solver fault) answers false
/// conservatively. Optional stats account the solve's telemetry.
[[nodiscard]] bool is_schedulable_nd(const MldgN& g, ResourceGuard* guard = nullptr,
                                     SolverStats* stats = nullptr,
                                     SolverWorkspace<VecN>* ws = nullptr);

}  // namespace lf
