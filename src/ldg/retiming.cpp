#include "ldg/retiming.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"

namespace lf {

Mldg Retiming::apply(const Mldg& g) const {
    check(num_nodes() == g.num_nodes(), "Retiming::apply: size mismatch");
    Mldg out;
    for (int i = 0; i < g.num_nodes(); ++i) {
        out.add_node(g.node(i).name, g.node(i).body_cost);
    }
    for (const auto& e : g.edges()) {
        std::vector<Vec2> shifted;
        shifted.reserve(e.vectors.size());
        const Vec2 shift = sat_sub(of(e.from), of(e.to));
        for (const Vec2& v : e.vectors) shifted.push_back(sat_add(v, shift));
        out.add_edge(e.from, e.to, std::move(shifted));
    }
    return out;
}

void Retiming::normalize() {
    if (r_.empty()) return;
    Vec2 lo = r_.front();
    for (const Vec2& v : r_) {
        lo.x = std::min(lo.x, v.x);
        lo.y = std::min(lo.y, v.y);
    }
    for (Vec2& v : r_) v -= lo;
}

std::string Retiming::str(const Mldg& g) const {
    std::ostringstream os;
    for (int i = 0; i < num_nodes(); ++i) {
        if (i) os << ", ";
        os << "r(" << g.node(i).name << ")=" << of(i).str();
    }
    return os.str();
}

}  // namespace lf
