#pragma once
// Two-dimensional retiming (Section 2.3, after Passos & Sha).
//
// Forwarding shim: `Retiming` is the `Vec2` instantiation of the
// dimension-generic `BasicRetiming` in ldg/basic_mldg.hpp (the N-D alias
// `RetimingN` lives in ldg/mldg_nd.hpp). The 2-D instantiation keeps the
// historical saturating arithmetic in `retimed`/`apply`.

#include "ldg/basic_mldg.hpp"
#include "ldg/mldg.hpp"
#include "support/lexvec.hpp"

namespace lf {

using Retiming = BasicRetiming<Vec2>;

}  // namespace lf
