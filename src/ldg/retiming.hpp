#pragma once
// Two-dimensional retiming (Section 2.3, after Passos & Sha).
//
// A retiming r maps each loop node to a Vec2 offset of its iteration space.
// Dependence vectors transform as  d_r = d + r(u) - r(v)  for an edge
// e : u -> v; cycle weights are invariant. A node's instance originally at
// iteration q executes at fused point q - r(u) after retiming + fusion.

#include <string>
#include <vector>

#include "ldg/mldg.hpp"
#include "support/vec2.hpp"

namespace lf {

class Retiming {
  public:
    Retiming() = default;
    explicit Retiming(int num_nodes) : r_(static_cast<std::size_t>(num_nodes)) {}
    explicit Retiming(std::vector<Vec2> values) : r_(std::move(values)) {}

    [[nodiscard]] int num_nodes() const { return static_cast<int>(r_.size()); }
    [[nodiscard]] const Vec2& of(int node) const { return r_.at(static_cast<std::size_t>(node)); }
    [[nodiscard]] Vec2& of(int node) { return r_.at(static_cast<std::size_t>(node)); }
    [[nodiscard]] const std::vector<Vec2>& values() const { return r_; }

    /// Retimed weight of an edge:  delta_r(e) = delta(e) + r(from) - r(to).
    /// Saturating: out-of-range inputs clamp to the int64 extremes instead of
    /// wrapping (callers that pre-validate magnitudes never saturate).
    [[nodiscard]] Vec2 retimed(const DependenceEdge& e, const Vec2& v) const {
        return sat_sub(sat_add(v, of(e.from)), of(e.to));
    }
    [[nodiscard]] Vec2 retimed_delta(const DependenceEdge& e) const {
        return retimed(e, e.delta());
    }

    /// Builds the retimed graph G_r: every vector of every edge is shifted by
    /// r(from) - r(to). Node order and costs are preserved.
    [[nodiscard]] Mldg apply(const Mldg& g) const;

    /// Normalizes so that min component over nodes is zero in each dimension
    /// (retimings are equivalence classes modulo a global translation).
    void normalize();

    [[nodiscard]] std::string str(const Mldg& g) const;

    friend bool operator==(const Retiming&, const Retiming&) = default;

  private:
    std::vector<Vec2> r_;
};

}  // namespace lf
