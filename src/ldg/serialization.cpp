#include "ldg/serialization.hpp"

#include <sstream>

#include "ir/lexer.hpp"
#include "support/diagnostics.hpp"

namespace lf {

std::string serialize_mldg(const Mldg& g, const std::string& name) {
    std::ostringstream os;
    os << "mldg " << name << " {\n";
    for (int v = 0; v < g.num_nodes(); ++v) {
        os << "  node " << g.node(v).name;
        if (g.node(v).body_cost != 1) os << " cost " << g.node(v).body_cost;
        os << ";\n";
    }
    for (const auto& e : g.edges()) {
        os << "  edge " << g.node(e.from).name << ' ' << g.node(e.to).name << " {";
        for (const Vec2& d : e.vectors) os << ' ' << d.str();
        os << " };\n";
    }
    os << "}\n";
    return os.str();
}

namespace {

using ir::Token;
using ir::TokenKind;

class GraphParser {
  public:
    explicit GraphParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Mldg parse() {
        Mldg g;
        expect_keyword("mldg");
        expect(TokenKind::Identifier);  // graph name (informational)
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) {
            const Token& kw = expect(TokenKind::Identifier);
            if (kw.text == "node") {
                parse_node(g);
            } else if (kw.text == "edge") {
                parse_edge(g);
            } else {
                throw Error("parse error at " + kw.loc.str() + ": expected 'node' or 'edge', found '" +
                            kw.text + "'");
            }
        }
        expect(TokenKind::RBrace);
        expect(TokenKind::End);
        return g;
    }

  private:
    [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
    [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
    const Token& advance() { return tokens_[pos_++]; }

    const Token& expect(TokenKind kind) {
        check(at(kind), "parse error at " + peek().loc.str() + ": expected " +
                            ir::to_string(kind) + ", found " + ir::to_string(peek().kind));
        return advance();
    }

    void expect_keyword(const std::string& kw) {
        const Token& t = expect(TokenKind::Identifier);
        check(t.text == kw, "parse error at " + t.loc.str() + ": expected '" + kw + "'");
    }

    void parse_node(Mldg& g) {
        const Token& name = expect(TokenKind::Identifier);
        check(!g.find_node(name.text).has_value(),
              "parse error at " + name.loc.str() + ": duplicate node '" + name.text + "'");
        std::int64_t cost = 1;
        if (at(TokenKind::Identifier) && peek().text == "cost") {
            advance();
            cost = parse_integer();
        }
        expect(TokenKind::Semicolon);
        g.add_node(name.text, cost);
    }

    void parse_edge(Mldg& g) {
        const int from = node_id(g, expect(TokenKind::Identifier));
        const int to = node_id(g, expect(TokenKind::Identifier));
        expect(TokenKind::LBrace);
        std::vector<Vec2> vectors;
        while (!at(TokenKind::RBrace)) {
            expect(TokenKind::LParen);
            const std::int64_t x = parse_integer();
            expect(TokenKind::Comma);
            const std::int64_t y = parse_integer();
            expect(TokenKind::RParen);
            vectors.push_back(Vec2{x, y});
        }
        expect(TokenKind::RBrace);
        expect(TokenKind::Semicolon);
        check(!vectors.empty(), "parse error: edge with no dependence vectors");
        g.add_edge(from, to, std::move(vectors));
    }

    int node_id(const Mldg& g, const Token& name) {
        const auto id = g.find_node(name.text);
        check(id.has_value(),
              "parse error at " + name.loc.str() + ": unknown node '" + name.text + "'");
        return *id;
    }

    std::int64_t parse_integer() {
        bool negative = false;
        if (at(TokenKind::Minus)) {
            advance();
            negative = true;
        }
        const Token& t = expect(TokenKind::Integer);
        return negative ? -t.integer : t.integer;
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Mldg parse_mldg(std::string_view source) { return GraphParser(ir::tokenize(source)).parse(); }

}  // namespace lf
