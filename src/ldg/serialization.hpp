#pragma once
// Textual MLDG serialization, for workloads that exist only as dependence
// graphs (like the paper's Figure 14) and for tooling interchange:
//
//   # comment
//   mldg fig14 {
//     node A cost 2;
//     node B;
//     edge A B { (0,1) (1,1) };   # dependence vectors from A to B
//   }
//
// Round-trip stable: parse_mldg(serialize_mldg(g)) reproduces g exactly.

#include <string>
#include <string_view>

#include "ldg/mldg.hpp"

namespace lf {

[[nodiscard]] std::string serialize_mldg(const Mldg& g, const std::string& name = "mldg");

/// Parses the format above; throws lf::Error with location info on problems
/// (unknown node names, empty vector sets, duplicate nodes).
[[nodiscard]] Mldg parse_mldg(std::string_view source);

}  // namespace lf
