#include "mdir/analysis.hpp"

#include "support/diagnostics.hpp"

namespace lf::mdir {

namespace {

struct Access {
    int loop = 0;
    MdArrayRef ref;
    bool is_write = false;
};

/// +1 when the u-instance executes before the v-instance displaced by d
/// (instance_v = instance_u + d), -1 for the converse, 0 when unordered or
/// identical.
int order_of(int u, int v, const VecN& d) {
    // Compare the sequential prefix lexicographically.
    for (int k = 0; k + 1 < d.dim(); ++k) {
        if (d[k] > 0) return +1;
        if (d[k] < 0) return -1;
    }
    if (u < v) return +1;
    if (u > v) return -1;
    return 0;
}

}  // namespace

MldgN build_mldg_nd(const MdProgram& p) {
    MldgN g(p.dim);
    for (const MdLoopNest& loop : p.loops) g.add_node(loop.label, loop.body_cost());

    std::vector<Access> writes;
    std::vector<Access> reads;
    for (int k = 0; k < static_cast<int>(p.loops.size()); ++k) {
        for (const MdStatement& s : p.loops[static_cast<std::size_t>(k)].body) {
            writes.push_back({k, s.target, true});
            for (const MdArrayRef& r : s.reads()) reads.push_back({k, r, false});
        }
    }

    auto record = [&g, &p](int from, int to, VecN vector) {
        if (from == to && vector.is_zero()) return;  // intra-instance
        if (from == to) {
            bool prefix_zero = true;
            for (int k = 0; k + 1 < vector.dim(); ++k) prefix_zero &= vector[k] == 0;
            check(!prefix_zero, "build_mldg_nd: loop " +
                                    p.loops[static_cast<std::size_t>(from)].label +
                                    " is not DOALL (vector " + vector.str() + ")");
        }
        g.add_edge(from, to, {std::move(vector)});
    };

    for (const Access& w : writes) {
        for (const Access& r : reads) {
            if (w.ref.array != r.ref.array) continue;
            const VecN d = w.ref.offset - r.ref.offset;  // read = write + d
            const int ord = order_of(w.loop, r.loop, d);
            if (ord > 0) {
                record(w.loop, r.loop, d);  // flow
            } else if (ord < 0) {
                record(r.loop, w.loop, -d);  // anti
            } else {
                check(d.is_zero(), "build_mldg_nd: loop " +
                                       p.loops[static_cast<std::size_t>(w.loop)].label +
                                       " is not DOALL (vector " + d.str() + ")");
            }
        }
    }
    for (std::size_t a = 0; a < writes.size(); ++a) {
        for (std::size_t b = a + 1; b < writes.size(); ++b) {
            if (writes[a].ref.array != writes[b].ref.array) continue;
            const VecN d = writes[a].ref.offset - writes[b].ref.offset;
            const int ord = order_of(writes[a].loop, writes[b].loop, d);
            if (ord > 0) {
                record(writes[a].loop, writes[b].loop, d);  // output
            } else if (ord < 0) {
                record(writes[b].loop, writes[a].loop, -d);
            } else {
                check(d.is_zero(), "build_mldg_nd: non-DOALL output dependence");
            }
        }
    }
    return g;
}

}  // namespace lf::mdir
