#pragma once
// DEPRECATED shim: the N-D dependence analyzer now lives in
// analysis/dependence (one dimension-generic core serves both the 2-D and
// the depth-d program model). Include "analysis/dependence.hpp" and call
// lf::analysis::build_mldg_nd directly in new code; this header only keeps
// historical `lf::mdir::build_mldg_nd` call sites compiling.

#include "analysis/dependence.hpp"
#include "mdir/ast.hpp"

namespace lf::mdir {

using analysis::build_mldg_nd;

}  // namespace lf::mdir
