#pragma once
// Dependence analysis for the multi-dimensional program model: produces the
// general MLDG of Definition 2.2 (an MldgN). The execution-order rule
// generalizes the 2-D case: the sequential prefix (all levels but the
// innermost) orders instances lexicographically; within one prefix point the
// loops run in program order with a barrier after each DOALL loop.

#include "ldg/mldg_nd.hpp"
#include "mdir/ast.hpp"

namespace lf::mdir {

/// Builds the MldgN for a validated program (flow, anti and output
/// dependences). Throws lf::Error on model violations.
[[nodiscard]] MldgN build_mldg_nd(const MdProgram& p);

}  // namespace lf::mdir
