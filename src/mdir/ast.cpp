#include "mdir/ast.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace lf::mdir {

namespace {

/// Index variable name for level k of d: i1..i{d-1} for the sequential
/// levels, j for the innermost DOALL level.
std::string index_var(int level, int dim) {
    if (level == dim - 1) return "j";
    return "i" + std::to_string(level + 1);
}

}  // namespace

std::string MdArrayRef::str() const {
    std::ostringstream os;
    os << array;
    for (int k = 0; k < offset.dim(); ++k) {
        os << '[' << index_var(k, offset.dim());
        if (offset[k] > 0) os << '+' << offset[k];
        if (offset[k] < 0) os << offset[k];
        os << ']';
    }
    return os.str();
}

void MdLiteral::print(std::ostream& os) const {
    if (value_ == std::floor(value_) && std::abs(value_) < 1e15) {
        os << static_cast<std::int64_t>(value_) << ".0";
    } else {
        os << value_;
    }
}

void MdRead::print(std::ostream& os) const { os << ref_.str(); }

void MdBinary::print(std::ostream& os) const {
    os << '(';
    lhs_->print(os);
    os << ' ' << op_ << ' ';
    rhs_->print(os);
    os << ')';
}

void MdUnary::print(std::ostream& os) const {
    os << "(-";
    operand_->print(os);
    os << ')';
}

std::string MdStatement::str() const {
    std::ostringstream os;
    os << target.str() << " = ";
    value->print(os);
    os << ';';
    return os.str();
}

std::int64_t MdLoopNest::body_cost() const {
    std::int64_t cost = 0;
    for (const MdStatement& s : body) cost += 1 + static_cast<std::int64_t>(s.reads().size());
    return std::max<std::int64_t>(cost, 1);
}

std::vector<std::string> MdProgram::arrays() const {
    std::vector<std::string> out = written_arrays();
    auto add = [&out](const std::string& name) {
        if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
    };
    for (const MdLoopNest& loop : loops) {
        for (const MdStatement& s : loop.body) {
            for (const MdArrayRef& r : s.reads()) add(r.array);
        }
    }
    return out;
}

std::vector<std::string> MdProgram::written_arrays() const {
    std::vector<std::string> out;
    for (const MdLoopNest& loop : loops) {
        for (const MdStatement& s : loop.body) {
            if (std::find(out.begin(), out.end(), s.target.array) == out.end()) {
                out.push_back(s.target.array);
            }
        }
    }
    return out;
}

std::int64_t MdProgram::max_offset() const {
    std::int64_t m = 0;
    auto update = [&m](const MdArrayRef& r) {
        for (int k = 0; k < r.offset.dim(); ++k) m = std::max(m, std::abs(r.offset[k]));
    };
    for (const MdLoopNest& loop : loops) {
        for (const MdStatement& s : loop.body) {
            update(s.target);
            for (const MdArrayRef& r : s.reads()) update(r);
        }
    }
    return m;
}

std::string MdProgram::str() const {
    std::ostringstream os;
    os << "program " << name << " dim " << dim << " {\n";
    for (const MdLoopNest& loop : loops) {
        os << "  loop " << loop.label << " {\n";
        for (const MdStatement& s : loop.body) os << "    " << s.str() << '\n';
        os << "  }\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace lf::mdir
