#pragma once
// The multi-dimensional program model: the Figure-1 pattern generalized to
// depth d -- (d-1) nested sequential loops around a sequence of innermost
// DOALL loops:
//
//   DO i1 { DO i2 { ... { DOALL j {A}; DOALL j {B}; ... } } }
//
// Subscripts are constant-distance: array[i1 + c1][i2 + c2]...[j + cd].
//
// DEPRECATED shim: the N-D AST is now the `VecN` instantiation of the
// unified dimension-generic front end in front/ast.hpp; include that (or
// ir/ast.hpp for the 2-D case) in new code. These aliases keep historical
// mdir:: spellings compiling and will be retired with the rest of mdir/.

#include "front/ast.hpp"
#include "ir/token.hpp"
#include "support/vecn.hpp"

namespace lf::mdir {

using MdValueSource = front::BasicValueSource<VecN>;
using MdArrayRef = front::BasicArrayRef<VecN>;
using MdExpr = front::BasicExpr<VecN>;
using MdExprPtr = front::BasicExprPtr<VecN>;
using MdLiteral = front::BasicLiteral<VecN>;
using MdRead = front::BasicRead<VecN>;
using MdUnary = front::BasicUnary<VecN>;
using MdBinary = front::BasicBinary<VecN>;
using MdStatement = front::BasicStatement<VecN>;
using MdLoopNest = front::BasicLoopNest<VecN>;
using MdProgram = front::BasicProgram<VecN>;

}  // namespace lf::mdir
