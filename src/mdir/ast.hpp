#pragma once
// The multi-dimensional program model: the Figure-1 pattern generalized to
// depth d -- (d-1) nested sequential loops around a sequence of innermost
// DOALL loops:
//
//   DO i1 { DO i2 { ... { DOALL j {A}; DOALL j {B}; ... } } }
//
// Subscripts are constant-distance: array[i1 + c1][i2 + c2]...[j + cd].
// This module is self-contained (its own AST/parser/analysis/executor) so
// the 2-D pipeline in ir/ stays exactly the paper's elaborated case.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/token.hpp"
#include "support/vecn.hpp"

namespace lf::mdir {

/// Abstract value source for interpretation (the n-D ArrayStore implements it).
class MdValueSource {
  public:
    virtual ~MdValueSource() = default;
    [[nodiscard]] virtual double load(const std::string& array, const VecN& cell) const = 0;
};

struct MdArrayRef {
    std::string array;
    VecN offset;  // one component per nesting level; innermost last
    ir::SourceLoc loc;

    [[nodiscard]] VecN cell(const VecN& iteration) const { return iteration + offset; }
    [[nodiscard]] std::string str() const;
};

class MdExpr;
using MdExprPtr = std::unique_ptr<MdExpr>;

class MdExpr {
  public:
    virtual ~MdExpr() = default;
    [[nodiscard]] virtual double eval(const MdValueSource& src, const VecN& it) const = 0;
    virtual void collect_reads(std::vector<MdArrayRef>& out) const = 0;
    virtual void print(std::ostream& os) const = 0;
    [[nodiscard]] virtual MdExprPtr clone() const = 0;
};

class MdLiteral final : public MdExpr {
  public:
    explicit MdLiteral(double v) : value_(v) {}
    [[nodiscard]] double eval(const MdValueSource&, const VecN&) const override { return value_; }
    void collect_reads(std::vector<MdArrayRef>&) const override {}
    void print(std::ostream& os) const override;
    [[nodiscard]] MdExprPtr clone() const override { return std::make_unique<MdLiteral>(value_); }
    [[nodiscard]] double value() const { return value_; }

  private:
    double value_;
};

class MdRead final : public MdExpr {
  public:
    explicit MdRead(MdArrayRef ref) : ref_(std::move(ref)) {}
    [[nodiscard]] double eval(const MdValueSource& src, const VecN& it) const override {
        return src.load(ref_.array, ref_.cell(it));
    }
    void collect_reads(std::vector<MdArrayRef>& out) const override { out.push_back(ref_); }
    void print(std::ostream& os) const override;
    [[nodiscard]] MdExprPtr clone() const override { return std::make_unique<MdRead>(ref_); }
    [[nodiscard]] const MdArrayRef& ref() const { return ref_; }

  private:
    MdArrayRef ref_;
};

class MdBinary final : public MdExpr {
  public:
    MdBinary(char op, MdExprPtr lhs, MdExprPtr rhs)
        : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
    [[nodiscard]] double eval(const MdValueSource& src, const VecN& it) const override {
        const double a = lhs_->eval(src, it);
        const double b = rhs_->eval(src, it);
        switch (op_) {
            case '+': return a + b;
            case '-': return a - b;
            case '*': return a * b;
            default: return a / b;
        }
    }
    void collect_reads(std::vector<MdArrayRef>& out) const override {
        lhs_->collect_reads(out);
        rhs_->collect_reads(out);
    }
    void print(std::ostream& os) const override;
    [[nodiscard]] MdExprPtr clone() const override {
        return std::make_unique<MdBinary>(op_, lhs_->clone(), rhs_->clone());
    }
    [[nodiscard]] char op() const { return op_; }
    [[nodiscard]] const MdExpr& lhs() const { return *lhs_; }
    [[nodiscard]] const MdExpr& rhs() const { return *rhs_; }

  private:
    char op_;
    MdExprPtr lhs_;
    MdExprPtr rhs_;
};

class MdUnary final : public MdExpr {
  public:
    explicit MdUnary(MdExprPtr operand) : operand_(std::move(operand)) {}
    [[nodiscard]] double eval(const MdValueSource& src, const VecN& it) const override {
        return -operand_->eval(src, it);
    }
    void collect_reads(std::vector<MdArrayRef>& out) const override {
        operand_->collect_reads(out);
    }
    void print(std::ostream& os) const override;
    [[nodiscard]] MdExprPtr clone() const override {
        return std::make_unique<MdUnary>(operand_->clone());
    }
    [[nodiscard]] const MdExpr& operand() const { return *operand_; }

  private:
    MdExprPtr operand_;
};

struct MdStatement {
    MdArrayRef target;
    MdExprPtr value;

    MdStatement() = default;
    MdStatement(MdArrayRef t, MdExprPtr v) : target(std::move(t)), value(std::move(v)) {}
    MdStatement(const MdStatement& o)
        : target(o.target), value(o.value ? o.value->clone() : nullptr) {}
    MdStatement& operator=(const MdStatement& o) {
        if (this != &o) {
            target = o.target;
            value = o.value ? o.value->clone() : nullptr;
        }
        return *this;
    }
    MdStatement(MdStatement&&) = default;
    MdStatement& operator=(MdStatement&&) = default;

    [[nodiscard]] std::vector<MdArrayRef> reads() const {
        std::vector<MdArrayRef> out;
        value->collect_reads(out);
        return out;
    }
    [[nodiscard]] std::string str() const;
};

struct MdLoopNest {
    std::string label;
    std::vector<MdStatement> body;

    [[nodiscard]] std::int64_t body_cost() const;
};

struct MdProgram {
    std::string name;
    int dim = 2;
    std::vector<MdLoopNest> loops;

    [[nodiscard]] std::vector<std::string> arrays() const;
    [[nodiscard]] std::vector<std::string> written_arrays() const;
    [[nodiscard]] std::int64_t max_offset() const;
    [[nodiscard]] std::string str() const;
};

}  // namespace lf::mdir
