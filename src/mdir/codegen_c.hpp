#pragma once
// Self-verifying C output for the multi-dimensional program model: the
// emitted C99 program contains the original nested schedule and the retimed,
// fused lexicographic scan (valid because every retimed dependence is
// lexicographically non-negative and the body order serializes the (0..0)
// dependences), compares every produced cell and prints "OK <checksum>".

#include <string>

#include "fusion/multidim.hpp"
#include "mdir/ast.hpp"
#include "mdir/exec.hpp"

namespace lf::mdir {

/// The complete self-verifying C program for `p` under `plan` over `dom`.
[[nodiscard]] std::string emit_md_c_program(const MdProgram& p, const NdFusionPlan& plan,
                                            const MdDomain& dom);

/// The "OK <checksum>" checksum the emitted program prints, computed by the
/// interpreter (cells outer, arrays inner, matching the C accumulation
/// order).
[[nodiscard]] std::string expected_md_c_checksum(const MdProgram& p, const MdDomain& dom);

}  // namespace lf::mdir
