#pragma once
// DEPRECATED shim: the self-verifying N-D C emitter now lives in
// transform/codegen_nd.hpp, next to the 2-D emitters. Include that directly
// in new code; this header only keeps historical `lf::mdir::...` call sites
// compiling.

#include "mdir/exec.hpp"
#include "transform/codegen_nd.hpp"

namespace lf::mdir {

using transform::emit_md_c_program;
using transform::expected_md_c_checksum;

}  // namespace lf::mdir
