#include "mdir/exec.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "mdir/analysis.hpp"
#include "support/diagnostics.hpp"

namespace lf::mdir {

namespace {

/// Calls fn(p) for every integer point with lo[k] <= p[k] <= hi[k].
void for_each_point(const std::vector<std::int64_t>& lo, const std::vector<std::int64_t>& hi,
                    const std::function<void(const VecN&)>& fn) {
    const int dim = static_cast<int>(lo.size());
    std::vector<std::int64_t> start = lo;
    VecN p(std::move(start));
    if (dim == 0) {
        fn(p);
        return;
    }
    for (int k = 0; k < dim; ++k) {
        if (lo[static_cast<std::size_t>(k)] > hi[static_cast<std::size_t>(k)]) return;
    }
    while (true) {
        fn(p);
        int k = dim - 1;
        while (k >= 0) {
            if (++p[k] <= hi[static_cast<std::size_t>(k)]) break;
            p[k] = lo[static_cast<std::size_t>(k)];
            --k;
        }
        if (k < 0) return;
    }
}

}  // namespace

std::optional<std::vector<int>> md_body_order(const MldgN& retimed) {
    const int n = retimed.num_nodes();
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    for (const auto& e : retimed.edges()) {
        if (e.from == e.to) continue;
        const bool same_point = std::any_of(e.vectors.begin(), e.vectors.end(),
                                            [](const VecN& d) { return d.is_zero(); });
        if (!same_point) continue;
        succ[static_cast<std::size_t>(e.from)].push_back(e.to);
        ++indegree[static_cast<std::size_t>(e.to)];
    }
    std::vector<int> order;
    std::vector<bool> done(static_cast<std::size_t>(n), false);
    for (int step = 0; step < n; ++step) {
        int pick = -1;
        for (int v = 0; v < n; ++v) {
            if (!done[static_cast<std::size_t>(v)] && indegree[static_cast<std::size_t>(v)] == 0) {
                pick = v;
                break;
            }
        }
        if (pick < 0) return std::nullopt;
        done[static_cast<std::size_t>(pick)] = true;
        order.push_back(pick);
        for (int w : succ[static_cast<std::size_t>(pick)]) --indegree[static_cast<std::size_t>(w)];
    }
    return order;
}

namespace {

std::int64_t run_loop_instance(const MdLoopNest& loop, const VecN& q, MdArrayStore& store) {
    for (const MdStatement& s : loop.body) {
        const double value = s.value->eval(store, q);
        store.store(s.target.array, s.target.cell(q), value);
    }
    return static_cast<std::int64_t>(loop.body.size());
}

}  // namespace

MdArrayStore::MdArrayStore(const MdProgram& p, const MdDomain& dom,
                           std::optional<std::int64_t> halo_opt) {
    check(dom.dim() == p.dim, "MdArrayStore: domain dimension mismatch");
    const std::int64_t halo = halo_opt.value_or(p.max_offset());
    for (const std::string& name : p.arrays()) {
        Slot s;
        s.lo.assign(static_cast<std::size_t>(p.dim), -halo);
        s.hi.resize(static_cast<std::size_t>(p.dim));
        for (int k = 0; k < p.dim; ++k) {
            s.hi[static_cast<std::size_t>(k)] = dom.ext[static_cast<std::size_t>(k)] + halo;
        }
        s.stride.assign(static_cast<std::size_t>(p.dim), 1);
        for (int k = p.dim - 2; k >= 0; --k) {
            s.stride[static_cast<std::size_t>(k)] =
                s.stride[static_cast<std::size_t>(k + 1)] *
                (s.hi[static_cast<std::size_t>(k + 1)] - s.lo[static_cast<std::size_t>(k + 1)] + 1);
        }
        const std::int64_t total =
            s.stride[0] * (s.hi[0] - s.lo[0] + 1);
        s.data.resize(static_cast<std::size_t>(total));
        for_each_point(s.lo, s.hi, [&](const VecN& cell) {
            s.data[index(s, cell)] = boundary_value(name, cell);
        });
        slots_.emplace(name, std::move(s));
    }
}

double MdArrayStore::boundary_value(const std::string& array, const VecN& cell) {
    std::uint64_t h = std::hash<std::string>{}(array);
    for (int k = 0; k < cell.dim(); ++k) {
        h ^= static_cast<std::uint64_t>(cell[k]) * 0x9e3779b97f4a7c15ULL;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    }
    h ^= h >> 31;
    return static_cast<double>(h % 2000001ULL) / 1000000.0 - 1.0;
}

std::size_t MdArrayStore::index(const Slot& s, const VecN& cell) const {
    std::int64_t idx = 0;
    for (int k = 0; k < cell.dim(); ++k) {
        check(cell[k] >= s.lo[static_cast<std::size_t>(k)] &&
                  cell[k] <= s.hi[static_cast<std::size_t>(k)],
              "MdArrayStore: cell out of bounds (halo too small?)");
        idx += (cell[k] - s.lo[static_cast<std::size_t>(k)]) * s.stride[static_cast<std::size_t>(k)];
    }
    return static_cast<std::size_t>(idx);
}

const MdArrayStore::Slot& MdArrayStore::slot(const std::string& name) const {
    const auto it = slots_.find(name);
    check(it != slots_.end(), "MdArrayStore: unknown array '" + name + "'");
    return it->second;
}

double MdArrayStore::load(const std::string& array, const VecN& cell) const {
    const Slot& s = slot(array);
    return s.data[index(s, cell)];
}

void MdArrayStore::store(const std::string& array, const VecN& cell, double value) {
    Slot& s = const_cast<Slot&>(slot(array));
    s.data[index(s, cell)] = value;
}

MdExecStats run_original_md(const MdProgram& p, const MdDomain& dom, MdArrayStore& store) {
    MdExecStats stats;
    std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim - 1), 0);
    std::vector<std::int64_t> hi(dom.ext.begin(), dom.ext.end() - 1);
    const std::int64_t inner_hi = dom.ext.back();
    for_each_point(lo, hi, [&](const VecN& prefix) {
        for (const MdLoopNest& loop : p.loops) {
            VecN q(p.dim);
            for (int k = 0; k < p.dim - 1; ++k) q[k] = prefix[k];
            for (std::int64_t j = 0; j <= inner_hi; ++j) {
                q[p.dim - 1] = j;
                stats.instances += run_loop_instance(loop, q, store);
            }
            ++stats.barriers;
        }
    });
    return stats;
}

MdExecStats run_wavefront_md(const MdProgram& p, const NdFusionPlan& plan, const MdDomain& dom,
                             MdArrayStore& store) {
    MdExecStats stats;
    check(static_cast<int>(p.loops.size()) == plan.retimed.num_nodes(),
          "run_wavefront_md: plan/program mismatch");
    const auto order = md_body_order(plan.retimed);
    check(order.has_value(), "run_wavefront_md: zero-dependence cycle in the retimed graph");

    // Fused point bounding box: body u active at p with p + r(u) in domain.
    std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim));
    std::vector<std::int64_t> hi(static_cast<std::size_t>(p.dim));
    for (int k = 0; k < p.dim; ++k) {
        std::int64_t l = -plan.retiming.of(0)[k];
        std::int64_t h = dom.ext[static_cast<std::size_t>(k)] - plan.retiming.of(0)[k];
        for (int v = 1; v < plan.retimed.num_nodes(); ++v) {
            l = std::min(l, -plan.retiming.of(v)[k]);
            h = std::max(h, dom.ext[static_cast<std::size_t>(k)] - plan.retiming.of(v)[k]);
        }
        lo[static_cast<std::size_t>(k)] = l;
        hi[static_cast<std::size_t>(k)] = h;
    }

    // Bucket active fused points by t = s . p.
    std::map<std::int64_t, std::vector<VecN>> buckets;
    for_each_point(lo, hi, [&](const VecN& point) {
        bool active = false;
        for (int v = 0; v < plan.retimed.num_nodes() && !active; ++v) {
            active = dom.contains(point + plan.retiming.of(v));
        }
        if (active) buckets[plan.schedule.dot(point)].push_back(point);
    });

    for (const auto& [t, points] : buckets) {
        for (const VecN& point : points) {
            for (const int v : *order) {
                const VecN q = point + plan.retiming.of(v);
                if (dom.contains(q)) {
                    stats.instances +=
                        run_loop_instance(p.loops[static_cast<std::size_t>(v)], q, store);
                }
            }
        }
        ++stats.barriers;
    }
    return stats;
}

MdVerification verify_md_fusion(const MdProgram& p, const MdDomain& dom) {
    const MldgN g = build_mldg_nd(p);
    const NdFusionPlan plan = plan_fusion_nd(g);

    MdArrayStore golden(p, dom);
    MdArrayStore subject(p, dom);

    MdVerification result;
    result.original = run_original_md(p, dom, golden);
    result.transformed = run_wavefront_md(p, plan, dom, subject);

    std::vector<std::int64_t> lo(static_cast<std::size_t>(p.dim), 0);
    std::vector<std::int64_t> hi(dom.ext);
    result.equivalent = true;
    for (const std::string& name : p.written_arrays()) {
        for_each_point(lo, hi, [&](const VecN& cell) {
            if (!result.equivalent) return;
            const double a = golden.load(name, cell);
            const double b = subject.load(name, cell);
            if (a != b) {
                std::ostringstream os;
                os << name << cell.str() << ": " << a << " != " << b;
                result.detail = os.str();
                result.equivalent = false;
            }
        });
        if (!result.equivalent) break;
    }
    return result;
}

}  // namespace lf::mdir
