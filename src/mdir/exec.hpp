#pragma once
// DEPRECATED shim: the N-D execution engines and array store now live in
// exec/store_nd.hpp and exec/engines_nd.hpp, next to their 2-D siblings.
// Include those directly in new code; this header only keeps historical
// `lf::mdir::...` call sites compiling.

#include "exec/engines_nd.hpp"
#include "exec/store_nd.hpp"

namespace lf::mdir {

using exec::MdArrayStore;
using exec::md_body_order;
using exec::MdDomain;
using exec::MdExecStats;
using exec::MdVerification;
using exec::run_original_md;
using exec::run_wavefront_md;
using exec::verify_md_fusion;

}  // namespace lf::mdir
