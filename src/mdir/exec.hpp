#pragma once
// Execution engines for the multi-dimensional program model, with golden
// verification: the reference (loop-by-loop) schedule, and the retimed +
// fused wavefront schedule over hyperplanes of an n-D strict schedule
// vector.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fusion/multidim.hpp"
#include "mdir/ast.hpp"

namespace lf::mdir {

/// Inclusive iteration extents per level: level k ranges over [0, ext[k]].
struct MdDomain {
    std::vector<std::int64_t> ext;

    [[nodiscard]] int dim() const { return static_cast<int>(ext.size()); }
    [[nodiscard]] bool contains(const VecN& q) const {
        for (int k = 0; k < dim(); ++k) {
            if (q[k] < 0 || q[k] > ext[k]) return false;
        }
        return true;
    }
    [[nodiscard]] std::int64_t points() const {
        std::int64_t n = 1;
        for (const std::int64_t e : ext) n *= e + 1;
        return n;
    }
};

/// Dense n-D array store with a halo of `halo` cells on every side of every
/// level, pre-filled with the same deterministic boundary values as the 2-D
/// store (hash of name and flattened coordinates).
class MdArrayStore final : public MdValueSource {
  public:
    MdArrayStore(const MdProgram& p, const MdDomain& dom,
                 std::optional<std::int64_t> halo = std::nullopt);

    [[nodiscard]] double load(const std::string& array, const VecN& cell) const override;
    void store(const std::string& array, const VecN& cell, double value);

    [[nodiscard]] static double boundary_value(const std::string& array, const VecN& cell);

  private:
    struct Slot {
        std::vector<double> data;
        std::vector<std::int64_t> lo, hi, stride;
    };
    [[nodiscard]] std::size_t index(const Slot& s, const VecN& cell) const;
    [[nodiscard]] const Slot& slot(const std::string& name) const;

    std::map<std::string, Slot> slots_;
};

/// Topological order of the zero-vector dependence subgraph of a *retimed*
/// MldgN (ties by node id / program order); nullopt when cyclic. Public so
/// code generators can reproduce the executor's body order.
[[nodiscard]] std::optional<std::vector<int>> md_body_order(const MldgN& retimed);

struct MdExecStats {
    std::int64_t barriers = 0;
    std::int64_t instances = 0;
};

/// Reference schedule: sequential sweep of the prefix levels; per prefix
/// point, each loop's DOALL sweep ends in a barrier.
[[nodiscard]] MdExecStats run_original_md(const MdProgram& p, const MdDomain& dom,
                                          MdArrayStore& store);

/// Retimed + fused wavefront schedule: all bodies at fused point q + r(u),
/// points grouped by t = s . p (one barrier per non-empty hyperplane),
/// bodies at one point in the (0..0)-dependence topological order.
[[nodiscard]] MdExecStats run_wavefront_md(const MdProgram& p, const NdFusionPlan& plan,
                                           const MdDomain& dom, MdArrayStore& store);

struct MdVerification {
    bool equivalent = false;
    std::string detail;
    MdExecStats original;
    MdExecStats transformed;
};

/// Plans fusion for `p` (plan_fusion_nd), executes both schedules and
/// compares every written cell over the domain bit-for-bit.
[[nodiscard]] MdVerification verify_md_fusion(const MdProgram& p, const MdDomain& dom);

}  // namespace lf::mdir
