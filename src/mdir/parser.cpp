#include "mdir/parser.hpp"

#include "ir/lexer.hpp"
#include "support/diagnostics.hpp"

#include <set>

namespace lf::mdir {

namespace {

using ir::Token;
using ir::TokenKind;

class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    MdProgram parse() {
        MdProgram p;
        expect_keyword("program");
        p.name = expect(TokenKind::Identifier).text;
        expect_keyword("dim");
        p.dim = static_cast<int>(expect(TokenKind::Integer).integer);
        check(p.dim >= 2 && p.dim <= 8, "parse error: dim must be in [2, 8]");
        dim_ = p.dim;
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) p.loops.push_back(parse_loop());
        expect(TokenKind::RBrace);
        expect(TokenKind::End);
        return p;
    }

  private:
    [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
    [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
    const Token& advance() { return tokens_[pos_++]; }

    const Token& expect(TokenKind kind) {
        check(at(kind), "parse error at " + peek().loc.str() + ": expected " +
                            ir::to_string(kind) + ", found " + ir::to_string(peek().kind));
        return advance();
    }

    void expect_keyword(const std::string& kw) {
        const Token& t = expect(TokenKind::Identifier);
        check(t.text == kw, "parse error at " + t.loc.str() + ": expected '" + kw + "'");
    }

    bool accept(TokenKind kind) {
        if (at(kind)) {
            ++pos_;
            return true;
        }
        return false;
    }

    MdLoopNest parse_loop() {
        MdLoopNest loop;
        expect_keyword("loop");
        loop.label = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBrace);
        while (!at(TokenKind::RBrace)) loop.body.push_back(parse_statement());
        expect(TokenKind::RBrace);
        check(!loop.body.empty(), "parse error: loop " + loop.label + " has an empty body");
        return loop;
    }

    MdStatement parse_statement() {
        MdArrayRef target = parse_array_ref();
        expect(TokenKind::Assign);
        MdExprPtr value = parse_expr();
        expect(TokenKind::Semicolon);
        return MdStatement(std::move(target), std::move(value));
    }

    MdArrayRef parse_array_ref() {
        MdArrayRef ref;
        const Token& name = expect(TokenKind::Identifier);
        ref.array = name.text;
        ref.loc = name.loc;
        ref.offset = VecN::zeros(dim_);
        for (int level = 0; level < dim_; ++level) {
            expect(TokenKind::LBracket);
            ref.offset[level] = parse_index(level);
            expect(TokenKind::RBracket);
        }
        return ref;
    }

    std::int64_t parse_index(int level) {
        const std::string want =
            level == dim_ - 1 ? "j" : "i" + std::to_string(level + 1);
        const Token& v = expect(TokenKind::Identifier);
        check(v.text == want, "parse error at " + v.loc.str() + ": level-" +
                                  std::to_string(level) + " subscript must use '" + want +
                                  "', found '" + v.text + "'");
        if (accept(TokenKind::Plus)) return expect(TokenKind::Integer).integer;
        if (accept(TokenKind::Minus)) return -expect(TokenKind::Integer).integer;
        return 0;
    }

    MdExprPtr parse_expr() {
        MdExprPtr lhs = parse_term();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            const char op = advance().text[0];
            lhs = std::make_unique<MdBinary>(op, std::move(lhs), parse_term());
        }
        return lhs;
    }

    MdExprPtr parse_term() {
        MdExprPtr lhs = parse_factor();
        while (at(TokenKind::Star) || at(TokenKind::Slash)) {
            const char op = advance().text[0];
            lhs = std::make_unique<MdBinary>(op, std::move(lhs), parse_factor());
        }
        return lhs;
    }

    MdExprPtr parse_factor() {
        if (at(TokenKind::Number) || at(TokenKind::Integer)) {
            return std::make_unique<MdLiteral>(advance().number);
        }
        if (accept(TokenKind::Minus)) return std::make_unique<MdUnary>(parse_factor());
        if (accept(TokenKind::LParen)) {
            MdExprPtr e = parse_expr();
            expect(TokenKind::RParen);
            return e;
        }
        if (at(TokenKind::Identifier)) return std::make_unique<MdRead>(parse_array_ref());
        throw Error("parse error at " + peek().loc.str() + ": expected an expression");
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    int dim_ = 2;
};

bool same_prefix(const VecN& a, const VecN& b) {
    for (int k = 0; k + 1 < a.dim(); ++k) {
        if (a[k] != b[k]) return false;
    }
    return true;
}

}  // namespace

void validate_md_program(const MdProgram& p) {
    check(!p.loops.empty(), "sema: program '" + p.name + "' has no loops");
    std::set<std::string> labels;
    for (const MdLoopNest& loop : p.loops) {
        check(labels.insert(loop.label).second, "sema: duplicate loop label '" + loop.label + "'");
    }
    // DOALL check: within one loop, two accesses to the same array (one a
    // write) whose offsets differ only in the innermost component conflict
    // across j within one sequential iteration.
    for (const MdLoopNest& loop : p.loops) {
        std::vector<std::pair<MdArrayRef, bool>> accesses;
        for (const MdStatement& s : loop.body) {
            accesses.emplace_back(s.target, true);
            for (const MdArrayRef& r : s.reads()) accesses.emplace_back(r, false);
        }
        for (std::size_t a = 0; a < accesses.size(); ++a) {
            for (std::size_t b = a + 1; b < accesses.size(); ++b) {
                if (!accesses[a].second && !accesses[b].second) continue;
                if (accesses[a].first.array != accesses[b].first.array) continue;
                const VecN& oa = accesses[a].first.offset;
                const VecN& ob = accesses[b].first.offset;
                if (same_prefix(oa, ob) && oa[oa.dim() - 1] != ob[ob.dim() - 1]) {
                    throw Error("sema: loop " + loop.label + " is not DOALL: " +
                                accesses[a].first.str() + " conflicts with " +
                                accesses[b].first.str());
                }
            }
        }
    }
}

MdProgram parse_md_program(std::string_view source) {
    MdProgram p = Parser(ir::tokenize(source)).parse();
    validate_md_program(p);
    return p;
}

}  // namespace lf::mdir
