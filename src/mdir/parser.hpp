#pragma once
// Parser for the multi-dimensional loop DSL:
//
//   program  := "program" IDENT "dim" INTEGER "{" loop+ "}"
//   loop     := "loop" IDENT "{" statement+ "}"
//   arrayref := IDENT ("[" index(k) "]"){dim}
//   index(k) := var_k (("+" | "-") INTEGER)?
//
// where var_k is "i1".."i{dim-1}" for the sequential levels and "j" for the
// innermost DOALL level. Expressions are as in the 2-D DSL. Semantic checks:
// unique labels, and every loop genuinely DOALL (no same-prefix cross-j
// access conflict).

#include <string_view>

#include "mdir/ast.hpp"

namespace lf::mdir {

[[nodiscard]] MdProgram parse_md_program(std::string_view source);

/// Validation only (parse_md_program already calls it).
void validate_md_program(const MdProgram& p);

}  // namespace lf::mdir
