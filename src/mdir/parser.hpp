#pragma once
// Parser for the multi-dimensional loop DSL:
//
//   program  := "program" IDENT "dim" INTEGER "{" loop+ "}"
//   loop     := "loop" IDENT "{" statement+ "}"
//   arrayref := IDENT ("[" index(k) "]"){dim}
//   index(k) := var_k (("+" | "-") INTEGER)?
//
// where var_k is "i1".."i{dim-1}" for the sequential levels and "j" for the
// innermost DOALL level. Expressions are as in the 2-D DSL.
//
// DEPRECATED shim: the depth-d grammar is parsed by the unified front end
// (front/parse.hpp, `VecN` instantiation); diagnostics now carry line:col
// locations like the 2-D parser's always did. Prefer
// `front::parse_basic_program<VecN>` or `front::parse_any_program`.

#include <string_view>

#include "front/parse.hpp"
#include "mdir/ast.hpp"

namespace lf::mdir {

[[nodiscard]] inline MdProgram parse_md_program(std::string_view source) {
    return front::parse_basic_program<VecN>(source);
}

/// Validation only (parse_md_program already calls it).
inline void validate_md_program(const MdProgram& p) {
    front::validate_basic_program<VecN>(p);
}

}  // namespace lf::mdir
