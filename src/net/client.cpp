#include "net/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lf::net {

namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
    return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

std::string to_string(BlockingClient::RecvStatus s) {
    switch (s) {
        case BlockingClient::RecvStatus::Ok: return "ok";
        case BlockingClient::RecvStatus::Closed: return "closed";
        case BlockingClient::RecvStatus::Torn: return "torn";
        case BlockingClient::RecvStatus::Timeout: return "timeout";
        case BlockingClient::RecvStatus::Malformed: return "malformed";
        case BlockingClient::RecvStatus::NotConnected: return "not connected";
    }
    return "unknown";
}

BlockingClient::~BlockingClient() { close(); }

void BlockingClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_ = FrameDecoder{};
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port, int timeout_ms) {
    close();
    last_error_.clear();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        last_error_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        last_error_ = "bad host '" + host + "' (numeric IPv4 expected)";
        close();
        return false;
    }
    // Nonblocking connect so the timeout is honored even against a
    // blackholed address, then back to blocking for send/recv.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        last_error_ = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    if (rc != 0) {
        pollfd pfd{fd_, POLLOUT, 0};
        rc = ::poll(&pfd, 1, timeout_ms);
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (rc <= 0 ||
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
            last_error_ = rc <= 0 ? "connect: timed out"
                                  : std::string("connect: ") + std::strerror(soerr);
            close();
            return false;
        }
    }
    (void)::fcntl(fd_, F_SETFL, flags);
    return true;
}

bool BlockingClient::send(const Frame& f) {
    if (fd_ < 0) {
        last_error_ = "not connected";
        return false;
    }
    const std::string bytes = encode_frame(f);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            last_error_ = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

BlockingClient::Recv BlockingClient::recv(int timeout_ms) {
    Recv result;
    if (fd_ < 0) return result;
    const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    char buf[4096];
    for (;;) {
        // Drain whatever is already buffered before touching the socket.
        switch (decoder_.poll(result.frame)) {
            case FrameDecoder::Status::Ready:
                result.status = RecvStatus::Ok;
                return result;
            case FrameDecoder::Status::Error:
                result.status = RecvStatus::Malformed;
                result.wire_error = decoder_.error();
                last_error_ = decoder_.detail();
                return result;
            case FrameDecoder::Status::NeedMore: break;
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, ms_left(deadline));
        if (rc == 0) {
            result.status = RecvStatus::Timeout;
            return result;
        }
        if (rc < 0) {
            if (errno == EINTR) continue;
            result.status = RecvStatus::Torn;
            last_error_ = std::string("poll: ") + std::strerror(errno);
            return result;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            result.status = RecvStatus::Torn;
            last_error_ = std::string("recv: ") + std::strerror(errno);
            return result;
        }
        if (n == 0) {
            // Clean close between frames vs. mid-frame truncation: the
            // decoder knows whether a header was pending.
            result.status = decoder_.mid_frame() || decoder_.buffered() > 0 ? RecvStatus::Torn
                                                                            : RecvStatus::Closed;
            return result;
        }
        decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
}

}  // namespace lf::net
