#pragma once
// Minimal blocking client for the fusion-service wire protocol
// (net/frame.hpp). Used by the storm-load driver (examples/storm_client.cpp)
// and the loopback tests; it is intentionally a thin, synchronous
// one-connection wrapper -- all concurrency lives on the server side.
//
// Every call reports failure through return values, never exceptions:
// a load driver's whole point is to keep going when the server misbehaves
// (torn responses, slammed connections, injected faults).

#include <cstdint>
#include <string>

#include "net/frame.hpp"

namespace lf::net {

class BlockingClient {
  public:
    BlockingClient() = default;
    ~BlockingClient();

    BlockingClient(const BlockingClient&) = delete;
    BlockingClient& operator=(const BlockingClient&) = delete;

    /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1") with a
    /// connect timeout. Returns false (with `last_error()` set) on failure.
    [[nodiscard]] bool connect(const std::string& host, std::uint16_t port, int timeout_ms = 2000);

    [[nodiscard]] bool connected() const { return fd_ >= 0; }
    void close();

    /// Writes one frame (handling short writes). False on any send failure.
    [[nodiscard]] bool send(const Frame& f);

    enum class RecvStatus {
        Ok,        // a complete frame arrived
        Closed,    // peer closed cleanly between frames
        Torn,      // peer closed mid-frame (truncated response)
        Timeout,   // nothing (or not a full frame) within the deadline
        Malformed, // peer sent bytes the decoder rejected (wire_error set)
        NotConnected,
    };

    struct Recv {
        RecvStatus status = RecvStatus::NotConnected;
        Frame frame;
        WireError wire_error = WireError::None;
    };

    /// Blocks until one complete frame arrives, the peer closes, the stream
    /// turns out malformed, or `timeout_ms` elapses.
    [[nodiscard]] Recv recv(int timeout_ms = 5000);

    [[nodiscard]] const std::string& last_error() const { return last_error_; }

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
    std::string last_error_;
};

[[nodiscard]] std::string to_string(BlockingClient::RecvStatus s);

}  // namespace lf::net
