#include "net/frame.hpp"

#include <cstring>

namespace lf::net {

std::string to_string(WireError e) {
    switch (e) {
        case WireError::None: return "none";
        case WireError::BadMagic: return "bad magic";
        case WireError::BadVersion: return "unsupported version";
        case WireError::BadType: return "unknown frame type";
        case WireError::OversizedTenant: return "tenant id too long";
        case WireError::OversizedPayload: return "payload too large";
        case WireError::Truncated: return "truncated frame";
        case WireError::BadPayload: return "malformed payload";
        case WireError::Internal: return "internal server error";
    }
    return "unknown wire error";
}

std::string to_string(ShedReason r) {
    switch (r) {
        case ShedReason::None: return "none";
        case ShedReason::QuotaExceeded: return "tenant quota exceeded";
        case ShedReason::QueueFull: return "job queue full";
        case ShedReason::TooManyConnections: return "connection limit reached";
    }
    return "unknown shed reason";
}

namespace {

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const char* p) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::uint64_t get_u64(const char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

bool valid_type(std::uint16_t t) {
    return t >= static_cast<std::uint16_t>(FrameType::Request) &&
           t <= static_cast<std::uint16_t>(FrameType::Pong);
}

}  // namespace

std::string encode_frame(const Frame& f) {
    const std::size_t tenant_len = f.tenant.size() > kMaxTenantLen ? kMaxTenantLen : f.tenant.size();
    const std::size_t payload_len =
        f.payload.size() > kMaxPayloadLen ? kMaxPayloadLen : f.payload.size();
    std::string out;
    out.reserve(kHeaderSize + tenant_len + payload_len);
    out.append(kWireMagic, sizeof(kWireMagic));
    put_u16(out, kWireVersion);
    put_u16(out, static_cast<std::uint16_t>(f.type));
    put_u64(out, f.request_id);
    put_u64(out, static_cast<std::uint64_t>(f.deadline_ms));
    put_u16(out, f.aux);
    put_u16(out, static_cast<std::uint16_t>(tenant_len));
    put_u32(out, static_cast<std::uint32_t>(payload_len));
    out.append(f.tenant.data(), tenant_len);
    out.append(f.payload.data(), payload_len);
    return out;
}

void FrameDecoder::feed(std::string_view bytes) {
    if (error_ != WireError::None) return;  // dead stream: drop everything
    buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Status FrameDecoder::fail(WireError e, std::string detail) {
    error_ = e;
    detail_ = std::move(detail);
    buffer_.clear();
    buffer_.shrink_to_fit();
    have_header_ = false;
    return Status::Error;
}

FrameDecoder::Status FrameDecoder::poll(Frame& out) {
    if (error_ != WireError::None) return Status::Error;
    if (!have_header_) {
        if (buffer_.size() < kHeaderSize) return Status::NeedMore;
        const char* p = buffer_.data();
        // Validate everything the header claims before buffering any body
        // byte: a garbage header must not coerce the decoder into waiting
        // for (or allocating) a body that will never legitimately arrive.
        if (std::memcmp(p, kWireMagic, sizeof(kWireMagic)) != 0) {
            return fail(WireError::BadMagic, "first bytes are not LFNP");
        }
        const std::uint16_t version = get_u16(p + 4);
        if (version != kWireVersion) {
            return fail(WireError::BadVersion,
                        "version " + std::to_string(version) + " (expected " +
                            std::to_string(kWireVersion) + ")");
        }
        const std::uint16_t type = get_u16(p + 6);
        if (!valid_type(type)) {
            return fail(WireError::BadType, "frame type " + std::to_string(type));
        }
        const std::uint16_t tenant_len = get_u16(p + 26);
        if (tenant_len > kMaxTenantLen) {
            return fail(WireError::OversizedTenant,
                        "tenant_len " + std::to_string(tenant_len) + " > " +
                            std::to_string(kMaxTenantLen));
        }
        const std::uint32_t payload_len = get_u32(p + 28);
        if (payload_len > kMaxPayloadLen) {
            return fail(WireError::OversizedPayload,
                        "payload_len " + std::to_string(payload_len) + " > " +
                            std::to_string(kMaxPayloadLen));
        }
        pending_ = Frame{};
        pending_.type = static_cast<FrameType>(type);
        pending_.request_id = get_u64(p + 8);
        pending_.deadline_ms = static_cast<std::int64_t>(get_u64(p + 16));
        pending_.aux = get_u16(p + 24);
        tenant_len_ = tenant_len;
        body_len_ = static_cast<std::size_t>(tenant_len) + payload_len;
        have_header_ = true;
    }
    if (buffer_.size() < kHeaderSize + body_len_) return Status::NeedMore;
    pending_.tenant.assign(buffer_, kHeaderSize, tenant_len_);
    pending_.payload.assign(buffer_, kHeaderSize + tenant_len_, body_len_ - tenant_len_);
    out = std::move(pending_);
    pending_ = Frame{};
    buffer_.erase(0, kHeaderSize + body_len_);
    have_header_ = false;
    body_len_ = 0;
    tenant_len_ = 0;
    return Status::Ready;
}

}  // namespace lf::net
