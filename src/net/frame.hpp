#pragma once
// Wire protocol for the fusion service (net/server.hpp): a hand-rolled,
// dependency-free, length-prefixed binary framing over TCP.
//
// Every message is one frame: a fixed 32-byte little-endian header followed
// by the tenant id and the payload bytes.
//
//   offset  size  field
//        0     4  magic "LFNP"
//        4     2  version (kWireVersion)
//        6     2  type (FrameType)
//        8     8  request_id  (echoed verbatim in the reply)
//       16     8  deadline_ms (i64; Request: job deadline, <0 = none;
//                              Shed: retry-after hint in ms)
//       24     2  aux         (type-dependent: PayloadKind / WireError /
//                              ShedReason / response verdict)
//       26     2  tenant_len  (<= kMaxTenantLen)
//       28     4  payload_len (<= kMaxPayloadLen)
//       32     -  tenant bytes, then payload bytes
//
// Decoding is strict and bounds-checked end to end: a frame with a bad
// magic, unknown version, out-of-range type, oversized tenant or payload is
// rejected with a typed WireError before a single body byte is buffered,
// and arbitrary garbage can never make the decoder crash, throw, or
// allocate unboundedly (fuzzed over random and truncated byte streams in
// tests/test_net.cpp). After an error the stream has lost frame sync, so
// the decoder goes sticky-dead and the connection must be closed -- there
// is deliberately no resynchronization heuristic to exploit.

#include <cstdint>
#include <string>
#include <string_view>

namespace lf::net {

inline constexpr char kWireMagic[4] = {'L', 'F', 'N', 'P'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kMaxTenantLen = 256;
inline constexpr std::size_t kMaxPayloadLen = 1u << 20;  // 1 MiB

enum class FrameType : std::uint16_t {
    Request = 1,   // client -> server: plan this payload
    Response = 2,  // server -> client: terminal job verdict (aux: 1 =
                   // Verified, 2 = Quarantined; payload: JSON detail)
    Error = 3,     // server -> client: request rejected (aux: WireError)
    Shed = 4,      // server -> client: admission refused (aux: ShedReason;
                   // deadline_ms field carries the retry-after hint)
    Ping = 5,      // client -> server: liveness probe
    Pong = 6,      // server -> client: liveness echo
};

/// Request payload encodings (Frame::aux on a Request).
enum class PayloadKind : std::uint16_t {
    Dsl = 1,   // DSL program source (replayable job)
    Mldg = 2,  // ldg/serialization MLDG text (graph-only job)
};

/// Typed decode/validation failures (Frame::aux on an Error frame).
enum class WireError : std::uint16_t {
    None = 0,
    BadMagic = 1,         // first four bytes are not "LFNP"
    BadVersion = 2,       // version field != kWireVersion
    BadType = 3,          // type field outside FrameType
    OversizedTenant = 4,  // tenant_len > kMaxTenantLen
    OversizedPayload = 5, // payload_len > kMaxPayloadLen
    Truncated = 6,        // peer closed mid-frame
    BadPayload = 7,       // frame was well-formed but the payload was not
                          // (unparseable DSL/MLDG, unknown payload kind)
    Internal = 8,         // server-side failure while handling the request
};
[[nodiscard]] std::string to_string(WireError e);

/// Why the server refused admission (Frame::aux on a Shed frame).
enum class ShedReason : std::uint16_t {
    None = 0,
    QuotaExceeded = 1,      // per-tenant token bucket empty
    QueueFull = 2,          // in-flight job queue at max_inflight
    TooManyConnections = 3, // connection cap reached (sent pre-close)
};
[[nodiscard]] std::string to_string(ShedReason r);

/// One decoded wire message (either direction).
struct Frame {
    FrameType type = FrameType::Request;
    std::uint16_t aux = 0;
    std::uint64_t request_id = 0;
    std::int64_t deadline_ms = -1;
    std::string tenant;
    std::string payload;
};

/// Serializes `f` into the on-wire byte image. Oversized tenant/payload
/// fields are truncated to their limits (the encoder cannot produce a
/// frame the decoder would reject).
[[nodiscard]] std::string encode_frame(const Frame& f);

/// Incremental, bounds-checked frame decoder over an arbitrary byte
/// stream. Feed bytes as they arrive; poll() yields complete frames.
/// Never throws; never buffers more than one frame beyond the header.
class FrameDecoder {
  public:
    enum class Status {
        NeedMore,  // no complete frame buffered yet
        Ready,     // one frame decoded into `out`
        Error,     // stream is malformed; error()/detail() say how.
                   // Sticky: every later poll() returns Error too.
    };

    /// Appends raw bytes from the stream. Cheap; validation happens in
    /// poll(). Bytes fed after an error are dropped.
    void feed(std::string_view bytes);

    /// Decodes the next frame into `out` if fully buffered.
    [[nodiscard]] Status poll(Frame& out);

    [[nodiscard]] WireError error() const { return error_; }
    [[nodiscard]] const std::string& detail() const { return detail_; }

    /// True when a frame header has been accepted but its body has not
    /// fully arrived -- the slow-read (slow-loris) window the server's
    /// read timeout guards.
    [[nodiscard]] bool mid_frame() const { return have_header_ && error_ == WireError::None; }

    /// Bytes buffered and not yet consumed by a decoded frame.
    [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  private:
    Status fail(WireError e, std::string detail);

    std::string buffer_;
    bool have_header_ = false;
    Frame pending_;           // header fields of the frame being assembled
    std::size_t body_len_ = 0;  // tenant_len + payload_len of pending_
    std::size_t tenant_len_ = 0;
    WireError error_ = WireError::None;
    std::string detail_;
};

}  // namespace lf::net
