#include "net/server.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/json.hpp"
#include "svc/manifest.hpp"

namespace lf::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Reader-thread poll slice: small enough that stop() and the idle/slow
/// timeouts are honored promptly, large enough to stay off the profile.
constexpr int kPollSliceMs = 50;

std::int64_t ms_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

/// Raw best-effort frame write used where no Connection exists yet (the
/// over-capacity shed goes out on a socket we are about to close anyway).
void write_all_best_effort(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      boot_tag_(static_cast<std::uint64_t>(::getpid())) {
    if (config_.max_connections < 1) config_.max_connections = 1;
    if (config_.max_inflight < 1) config_.max_inflight = 1;
    if (config_.batch_max < 1) config_.batch_max = 1;
    if (config_.batch_wait_ms < 0) config_.batch_wait_ms = 0;
    if (config_.shed_retry_after_ms < 1) config_.shed_retry_after_ms = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
    auto fail = [&](const std::string& msg) {
        if (error != nullptr) *error = msg + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("bad host '" + config_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        return fail("bind " + config_.host + ":" + std::to_string(config_.port));
    }
    if (::listen(listen_fd_, 64) != 0) return fail("listen");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        return fail("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    stop_.store(false);
    started_.store(true);
    acceptor_ = std::thread(&Server::accept_loop, this);
    batcher_ = std::thread(&Server::batch_loop, this);
    return true;
}

void Server::stop() {
    if (!started_.exchange(false)) return;
    stop_.store(true);
    // 1. Kill the intake: no new connections.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    // 2. Wake and drain every reader (shutdown unblocks their poll/recv;
    //    readers own and close their fds).
    {
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const auto& weak : conns_) {
            if (const auto conn = weak.lock()) {
                const std::lock_guard<std::mutex> wlock(conn->write_mutex);
                if (!conn->closed) ::shutdown(conn->fd, SHUT_RDWR);
            }
        }
    }
    for (;;) {
        std::vector<std::thread> reap;
        {
            const std::lock_guard<std::mutex> lock(conns_mutex_);
            reap.swap(conn_threads_);
        }
        if (reap.empty()) break;
        for (auto& t : reap) t.join();
    }
    // 3. The batcher drains every already-admitted job, then exits (its
    //    responses go nowhere -- the connections are gone -- but the jobs
    //    still reach the checkpoint and the persistent plan tier).
    batch_cv_.notify_all();
    if (batcher_.joinable()) batcher_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

ServerStats Server::stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

svc::PlanCacheStats Server::plancache_stats() const { return service_.plancache_stats(); }

void Server::accept_loop() {
    while (!stop_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, kPollSliceMs);
        if (stop_.load()) return;
        if (rc <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.accepted;
        }
        if (faultpoint::triggered("net.accept")) {
            // Simulated accept-time resource failure: the connection is
            // gone before a single byte is exchanged. Clients must treat
            // it like any other transport flap and reconnect.
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.accept_faults;
            ::close(fd);
            continue;
        }
        if (active_connections_.load() >= config_.max_connections) {
            Frame f;
            f.type = FrameType::Shed;
            f.aux = static_cast<std::uint16_t>(ShedReason::TooManyConnections);
            f.deadline_ms = config_.shed_retry_after_ms;
            write_all_best_effort(fd, encode_frame(f));
            ::close(fd);
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.rejected_connections;
            continue;
        }
        active_connections_.fetch_add(1);
        auto conn = std::make_shared<Connection>(fd);
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.push_back(conn);
        // Readers occasionally leave stale weak_ptrs behind; prune so a
        // long-lived server's list stays bounded by live connections.
        conns_.remove_if([](const std::weak_ptr<Connection>& w) { return w.expired(); });
        conn_threads_.emplace_back(&Server::serve_connection, this, std::move(conn));
    }
}

void Server::serve_connection(std::shared_ptr<Connection> conn) {
    FrameDecoder decoder;
    Clock::time_point last_byte = Clock::now();
    char buf[8192];
    bool open = true;
    while (open && !stop_.load()) {
        pollfd pfd{conn->fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, kPollSliceMs);
        {
            const std::lock_guard<std::mutex> lock(conn->write_mutex);
            if (conn->closed) break;
        }
        if (rc == 0) {
            const std::int64_t quiet = ms_between(last_byte, Clock::now());
            if (decoder.mid_frame() && quiet > config_.read_timeout_ms) {
                // Slow-loris: a started frame is trickling in too slowly to
                // be anything but hostile or hopeless.
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.read_timeouts;
                break;
            }
            if (!decoder.mid_frame() && quiet > config_.idle_timeout_ms) {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.idle_timeouts;
                break;
            }
            continue;
        }
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;  // peer closed
        if (faultpoint::triggered("net.read")) {
            // Simulated partial-read failure: drop the connection exactly
            // as a real torn read would.
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.read_faults;
            break;
        }
        last_byte = Clock::now();
        decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        for (;;) {
            Frame frame;
            const FrameDecoder::Status st = decoder.poll(frame);
            if (st == FrameDecoder::Status::NeedMore) break;
            if (st == FrameDecoder::Status::Error) {
                {
                    const std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.wire_errors;
                }
                Frame err;
                err.type = FrameType::Error;
                err.aux = static_cast<std::uint16_t>(decoder.error());
                err.payload = decoder.detail();
                (void)send_frame(conn, err);
                open = false;  // stream lost frame sync; nothing to salvage
                break;
            }
            {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.frames_in;
            }
            handle_frame(conn, std::move(frame));
            const std::lock_guard<std::mutex> lock(conn->write_mutex);
            if (conn->closed) {
                open = false;
                break;
            }
        }
    }
    {
        const std::lock_guard<std::mutex> lock(conn->write_mutex);
        conn->closed = true;
    }
    ::close(conn->fd);
    active_connections_.fetch_sub(1);
}

bool Server::take_token(const std::string& tenant, std::int64_t& retry_after_ms) {
    if (config_.quota.refill_per_sec <= 0) return true;
    const double burst = config_.quota.burst < 1 ? 1.0 : static_cast<double>(config_.quota.burst);
    const Clock::time_point now = Clock::now();
    const std::lock_guard<std::mutex> lock(quota_mutex_);
    Bucket& b = buckets_[tenant];
    if (!b.initialized) {
        b.tokens = burst;
        b.last = now;
        b.initialized = true;
    }
    const double elapsed_s =
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(now - b.last)
                                .count()) /
        1e6;
    b.tokens = std::min(burst, b.tokens + elapsed_s * config_.quota.refill_per_sec);
    b.last = now;
    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        return true;
    }
    const double wait_s = (1.0 - b.tokens) / config_.quota.refill_per_sec;
    retry_after_ms = std::max<std::int64_t>(static_cast<std::int64_t>(wait_s * 1000.0) + 1,
                                            config_.shed_retry_after_ms);
    return false;
}

void Server::shed(const std::shared_ptr<Connection>& conn, std::uint64_t request_id,
                  ShedReason reason, std::int64_t retry_after_ms) {
    Frame f;
    f.type = FrameType::Shed;
    f.aux = static_cast<std::uint16_t>(reason);
    f.request_id = request_id;
    f.deadline_ms = retry_after_ms;  // the Shed frame reuses this field as
                                     // the retry-after hint
    f.payload = to_string(reason);
    (void)send_frame(conn, f);
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn, Frame frame) {
    switch (frame.type) {
        case FrameType::Ping: {
            {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.pings;
            }
            Frame pong;
            pong.type = FrameType::Pong;
            pong.request_id = frame.request_id;
            pong.tenant = frame.tenant;
            (void)send_frame(conn, pong);
            return;
        }
        case FrameType::Request: break;
        default:
            // Server-to-client frame types arriving at the server are a
            // client bug, not an attack surface: ignore them.
            return;
    }
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
    }

    // ---- Admission gate, cheapest checks first. ----
    std::int64_t retry_after_ms = config_.shed_retry_after_ms;
    if (!take_token(frame.tenant, retry_after_ms)) {
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.shed_quota;
        }
        shed(conn, frame.request_id, ShedReason::QuotaExceeded, retry_after_ms);
        return;
    }
    if (inflight_.load() >= config_.max_inflight) {
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.shed_queue;
        }
        shed(conn, frame.request_id, ShedReason::QueueFull, config_.shed_retry_after_ms);
        return;
    }

    // ---- Parse the payload into a JobSpec. ----
    const std::string job_id =
        "net-" + std::to_string(boot_tag_) + "-" + std::to_string(next_job_seq_.fetch_add(1));
    svc::JobSpec spec;
    try {
        switch (static_cast<PayloadKind>(frame.aux)) {
            case PayloadKind::Dsl:
                spec = svc::job_from_dsl_text(job_id, frame.payload,
                                              frame.tenant.empty() ? "net" : frame.tenant);
                break;
            case PayloadKind::Mldg:
                spec = svc::job_from_mldg_text(job_id, frame.payload,
                                               frame.tenant.empty() ? "net" : frame.tenant);
                break;
            default: throw Error("unknown payload kind " + std::to_string(frame.aux));
        }
    } catch (const std::exception& e) {
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.bad_payloads;
        }
        Frame err;
        err.type = FrameType::Error;
        err.aux = static_cast<std::uint16_t>(WireError::BadPayload);
        err.request_id = frame.request_id;
        err.payload = e.what();
        (void)send_frame(conn, err);
        return;
    }
    spec.tenant = frame.tenant;
    spec.deadline_ms = frame.deadline_ms >= 0 ? frame.deadline_ms : -1;

    PendingJob job;
    job.conn = conn;
    job.request_id = frame.request_id;
    job.spec = std::move(spec);
    inflight_.fetch_add(1);
    {
        const std::lock_guard<std::mutex> lock(batch_mutex_);
        queue_.push_back(std::move(job));
    }
    batch_cv_.notify_one();
}

void Server::batch_loop() {
    for (;;) {
        std::vector<PendingJob> batch;
        {
            std::unique_lock<std::mutex> lock(batch_mutex_);
            batch_cv_.wait(lock, [&] { return stop_.load() || !queue_.empty(); });
            if (queue_.empty()) return;  // stop requested, fully drained
            if (config_.batch_wait_ms > 0 &&
                queue_.size() < static_cast<std::size_t>(config_.batch_max) && !stop_.load()) {
                // Brief top-up window: tiny batches amortize badly over the
                // per-run() pool spin-up.
                batch_cv_.wait_for(lock, std::chrono::milliseconds(config_.batch_wait_ms), [&] {
                    return stop_.load() ||
                           queue_.size() >= static_cast<std::size_t>(config_.batch_max);
                });
            }
            const std::size_t take =
                std::min(queue_.size(), static_cast<std::size_t>(config_.batch_max));
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        run_batch(std::move(batch));
    }
}

void Server::run_batch(std::vector<PendingJob> batch) {
    std::vector<svc::JobSpec> specs;
    specs.reserve(batch.size());
    for (const auto& j : batch) specs.push_back(j.spec);

    svc::RunReport report;
    bool ran = false;
    std::string run_error;
    try {
        report = service_.run(specs);
        ran = true;
    } catch (const std::exception& e) {
        // run() throws only for manifest bugs (duplicate ids); the server
        // generates unique ids, so this is belt-and-braces: answer every
        // request rather than leaving clients to time out.
        run_error = e.what();
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const PendingJob& job = batch[i];
        if (!ran) {
            Frame err;
            err.type = FrameType::Error;
            err.aux = static_cast<std::uint16_t>(WireError::Internal);
            err.request_id = job.request_id;
            err.payload = run_error;
            (void)send_frame(job.conn, err);
            continue;
        }
        const svc::JobRecord& rec = report.jobs[i];  // run() preserves order
        const bool verified = rec.status == svc::JobStatus::Verified;
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            if (verified) {
                ++stats_.jobs_verified;
            } else {
                ++stats_.jobs_quarantined;
            }
        }
        json::Writer w;
        w.begin_object();
        w.kv("id", rec.id);
        w.kv("status", svc::to_string(rec.status));
        w.kv("algorithm", rec.algorithm);
        w.kv("level", rec.level);
        w.kv("cache", svc::to_string(rec.cache));
        w.kv("attempts", static_cast<int>(rec.attempts.size()));
        w.kv("quarantine_reason", rec.quarantine_reason);
        // Echo of the deadline the job actually ran under, so clients (and
        // tests) can verify wire-to-worker propagation.
        w.kv("deadline_ms", job.spec.deadline_ms);
        w.kv("tenant", rec.tenant);
        w.end_object();

        Frame resp;
        resp.type = FrameType::Response;
        resp.aux = verified ? 1 : 2;
        resp.request_id = job.request_id;
        resp.deadline_ms = job.spec.deadline_ms;
        resp.tenant = job.spec.tenant;
        resp.payload = w.str();
        if (send_frame(job.conn, resp)) {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.responses_sent;
        }
    }
    inflight_.fetch_sub(static_cast<int>(batch.size()));
}

bool Server::send_frame(const std::shared_ptr<Connection>& conn, const Frame& f) {
    const std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->closed) return false;
    if (faultpoint::triggered("net.write")) {
        // Simulated dead peer at write time: the response is lost whole.
        // Shut down so the reader thread notices and reaps the connection.
        const std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.write_faults;
        conn->closed = true;
        ::shutdown(conn->fd, SHUT_RDWR);
        return false;
    }
    std::string bytes = encode_frame(f);
    std::size_t limit = bytes.size();
    bool torn = false;
    if (faultpoint::triggered("net.torn_response")) {
        // Write half the frame, then slam the connection: the client-side
        // decoder must classify this as Torn, never misparse it.
        limit = bytes.size() / 2;
        torn = true;
        const std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.torn_responses;
    }
    std::size_t off = 0;
    bool ok = true;
    while (off < limit) {
        const ssize_t n = ::send(conn->fd, bytes.data() + off, limit - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    if (torn || !ok) {
        conn->closed = true;
        ::shutdown(conn->fd, SHUT_RDWR);
        return false;
    }
    return true;
}

}  // namespace lf::net
