#pragma once
// TCP front end for the fusion service: the network edge of the claim that
// polynomial-time planning is cheap enough to run as an always-on service.
//
// One acceptor thread owns the listening socket; each accepted connection
// gets a reader thread that drives the strict frame decoder (net/frame.hpp)
// and a shared batcher thread turns admitted requests into `svc::JobSpec`
// batches for the existing worker pool (svc/service.hpp) -- the service
// keeps its own retry / breaker / gate / cache machinery; the server only
// feeds and answers it.
//
// Every edge is defended, and every defense is observable in stats():
//
//   * bounded connection count -- over the cap, the client gets a typed
//     Shed frame (TooManyConnections + retry-after) and the socket closes;
//   * per-tenant token-bucket quotas -- an empty bucket sheds the request
//     (QuotaExceeded) with a retry-after hint derived from the refill rate;
//   * queue-depth load shedding -- more than `max_inflight` admitted jobs
//     sheds new requests (QueueFull) instead of letting latency collapse;
//   * wire-to-worker deadline propagation -- a Request's deadline_ms lands
//     in JobSpec::deadline_ms, where it combines (tighter wins) with the
//     service-wide RetryPolicy::deadline_ms;
//   * slow-loris defense -- connections idle longer than `idle_timeout_ms`,
//     or feeding a started frame slower than `read_timeout_ms`, are closed;
//   * malformed bytes -- the decoder's typed WireError goes back in an
//     Error frame and the (unsynchronizable) connection closes.
//
// Fault points (support/faultpoint.hpp), all storm-drill covered:
//   net.accept        accepted connection dropped immediately
//   net.read          connection read fails mid-stream
//   net.write         response write fails; connection closes
//   net.torn_response response cut off mid-frame; connection closes
//
// stop() is graceful: the acceptor dies first, connections drain, the
// batcher finishes every admitted job (responses go to still-open
// connections), and only then do the threads join. A SIGKILL instead of
// stop() is the crash the persistent plan tier and the checkpoint manifest
// exist for (svc/plancache.hpp, svc/report.hpp).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "svc/service.hpp"

namespace lf::net {

/// Per-tenant token bucket. refill_per_sec <= 0 disables quotas entirely.
struct TenantQuota {
    double refill_per_sec = 0.0;
    /// Bucket size: how many requests a tenant may burst before the refill
    /// rate governs.
    int burst = 8;
};

struct ServerConfig {
    /// Numeric IPv4 address to bind ("127.0.0.1" keeps the server loopback-
    /// only, which is the supported deployment for drills and tests).
    std::string host = "127.0.0.1";
    /// 0 = let the kernel pick; the bound port is Server::port().
    std::uint16_t port = 0;
    int max_connections = 64;
    /// Admitted-but-unanswered job cap; above it new requests shed.
    int max_inflight = 256;
    /// Jobs per svc::FusionService::run() batch.
    int batch_max = 16;
    /// How long the batcher waits for more requests before running a
    /// partial batch (latency/throughput knob).
    int batch_wait_ms = 2;
    /// Close connections with no bytes for this long between frames.
    int idle_timeout_ms = 5000;
    /// Close connections that started a frame but feed it slower than this
    /// (slow-loris defense).
    int read_timeout_ms = 2000;
    /// Minimum retry-after hint carried by Shed frames.
    int shed_retry_after_ms = 50;
    TenantQuota quota;
    /// Configuration of the embedded fusion service (workers, retries,
    /// breakers, checkpoint path, plan cache + persistent tier).
    svc::ServiceConfig service;
};

/// Monotonic counters since start(). Plain values; read via stats().
struct ServerStats {
    std::uint64_t accepted = 0;
    std::uint64_t accept_faults = 0;        // net.accept fired
    std::uint64_t rejected_connections = 0; // over max_connections
    std::uint64_t frames_in = 0;
    std::uint64_t pings = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t wire_errors = 0;     // decoder rejected the stream
    std::uint64_t bad_payloads = 0;    // frame fine, payload unparseable
    std::uint64_t shed_quota = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t idle_timeouts = 0;
    std::uint64_t read_timeouts = 0;   // slow-loris closes
    std::uint64_t read_faults = 0;     // net.read fired
    std::uint64_t write_faults = 0;    // net.write fired
    std::uint64_t torn_responses = 0;  // net.torn_response fired
    std::uint64_t jobs_verified = 0;
    std::uint64_t jobs_quarantined = 0;
};

class Server {
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds, listens, and spawns the acceptor + batcher threads. False
    /// (with *error set) if the socket cannot be set up.
    [[nodiscard]] bool start(std::string* error = nullptr);

    /// The bound port (useful with config.port = 0). 0 before start().
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Graceful shutdown; idempotent. See the file comment for ordering.
    void stop();

    [[nodiscard]] ServerStats stats() const;

    /// Cumulative plan-cache counters of the embedded service (exposes the
    /// persistent tier's disk_* counters for drills).
    [[nodiscard]] svc::PlanCacheStats plancache_stats() const;

  private:
    struct Connection {
        explicit Connection(int fd_in) : fd(fd_in) {}
        const int fd;
        std::mutex write_mutex;
        bool closed = false;  // guarded by write_mutex
    };

    struct PendingJob {
        std::shared_ptr<Connection> conn;
        std::uint64_t request_id = 0;
        svc::JobSpec spec;
    };

    void accept_loop();
    void serve_connection(std::shared_ptr<Connection> conn);
    void handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
    void batch_loop();
    void run_batch(std::vector<PendingJob> batch);

    /// Serializes and writes `f` on `conn`, honoring the net.write /
    /// net.torn_response fault points; a failed or torn write closes the
    /// connection. Thread-safe per connection.
    bool send_frame(const std::shared_ptr<Connection>& conn, const Frame& f);
    void shed(const std::shared_ptr<Connection>& conn, std::uint64_t request_id,
              ShedReason reason, std::int64_t retry_after_ms);

    /// Takes one token from `tenant`'s bucket. On refusal returns false and
    /// sets `retry_after_ms` to when a token will exist.
    bool take_token(const std::string& tenant, std::int64_t& retry_after_ms);

    ServerConfig config_;
    svc::FusionService service_;
    mutable std::mutex stats_mutex_;
    ServerStats stats_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> started_{false};
    std::atomic<int> active_connections_{0};
    std::atomic<std::uint64_t> next_job_seq_{1};
    /// Disambiguates job ids across server incarnations: checkpoint
    /// manifests key by job id, and "net-1" from a previous boot must never
    /// alias "net-1" of this one (the content-addressed plan store, not the
    /// checkpoint, is what carries warm state across restarts).
    const std::uint64_t boot_tag_;

    std::thread acceptor_;
    std::thread batcher_;
    std::mutex conns_mutex_;
    std::vector<std::thread> conn_threads_;
    std::list<std::weak_ptr<Connection>> conns_;

    std::mutex batch_mutex_;
    std::condition_variable batch_cv_;
    std::deque<PendingJob> queue_;
    std::atomic<int> inflight_{0};

    std::mutex quota_mutex_;
    struct Bucket {
        double tokens = 0;
        std::chrono::steady_clock::time_point last{};
        bool initialized = false;
    };
    std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace lf::net
