#include "sim/cache.hpp"

#include <limits>

#include "support/diagnostics.hpp"
#include "support/math_util.hpp"

namespace lf::sim {

namespace {
// Sentinel for an empty cache line; no real line tag can take this value
// (it would require an address near the bottom of the 64-bit range).
constexpr std::int64_t kEmptyTag = std::numeric_limits<std::int64_t>::min();
}  // namespace

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
    check(config.line_elements >= 1 && config.num_sets >= 1 && config.ways >= 1 &&
              config.ways <= 127,
          "CacheSim: bad configuration");
    reset();
}

void CacheSim::reset() {
    stats_ = CacheStats{};
    tags_.assign(static_cast<std::size_t>(config_.num_sets) * static_cast<std::size_t>(config_.ways),
                 kEmptyTag);
    lru_.assign(tags_.size(), 0);
    for (int set = 0; set < config_.num_sets; ++set) {
        for (int way = 0; way < config_.ways; ++way) {
            lru_[static_cast<std::size_t>(set * config_.ways + way)] = static_cast<std::int8_t>(way);
        }
    }
}

bool CacheSim::access(std::int64_t address) {
    ++stats_.accesses;
    const std::int64_t line = floor_div(address, config_.line_elements);
    const int set = static_cast<int>(((line % config_.num_sets) + config_.num_sets) %
                                     config_.num_sets);
    const std::int64_t tag = line;
    const std::size_t base = static_cast<std::size_t>(set * config_.ways);

    int hit_way = -1;
    for (int way = 0; way < config_.ways; ++way) {
        if (tags_[base + static_cast<std::size_t>(way)] == tag) {
            hit_way = way;
            break;
        }
    }

    bool miss = hit_way < 0;
    if (miss) {
        ++stats_.misses;
        // Victim = least recently used = last entry of the LRU order.
        hit_way = lru_[base + static_cast<std::size_t>(config_.ways - 1)];
        tags_[base + static_cast<std::size_t>(hit_way)] = tag;
    }
    // Move hit_way to the front of the LRU order.
    int k = 0;
    while (lru_[base + static_cast<std::size_t>(k)] != hit_way) ++k;
    for (; k > 0; --k) {
        lru_[base + static_cast<std::size_t>(k)] = lru_[base + static_cast<std::size_t>(k - 1)];
    }
    lru_[base] = static_cast<std::int8_t>(hit_way);
    return miss;
}

void CacheSim::access_trace(const std::vector<exec::TraceEntry>& trace) {
    for (const exec::TraceEntry& e : trace) (void)access(e.address);
}

std::vector<CacheStats> simulate_private_caches(const std::vector<exec::TraceEntry>& trace,
                                                int processors, const CacheConfig& config) {
    check(processors >= 1, "simulate_private_caches: need at least one processor");
    std::vector<CacheSim> caches(static_cast<std::size_t>(processors), CacheSim(config));
    for (const exec::TraceEntry& e : trace) {
        const int proc = e.processor >= 0 && e.processor < processors ? e.processor : 0;
        (void)caches[static_cast<std::size_t>(proc)].access(e.address);
    }
    std::vector<CacheStats> stats;
    stats.reserve(caches.size());
    for (const CacheSim& c : caches) stats.push_back(c.stats());
    return stats;
}

std::int64_t total_misses(const std::vector<CacheStats>& stats) {
    std::int64_t total = 0;
    for (const CacheStats& s : stats) total += s.misses;
    return total;
}

}  // namespace lf::sim
