#pragma once
// A set-associative LRU cache simulator for the data-locality claims:
// fusion shortens producer-consumer reuse distances, so the fused program
// should miss less on the same trace volume. Feed it the address traces
// recorded by exec::ArrayStore.

#include <cstdint>
#include <vector>

#include "exec/store.hpp"

namespace lf::sim {

struct CacheConfig {
    /// Line size in array *elements* (doubles).
    std::int64_t line_elements = 8;
    int num_sets = 64;
    int ways = 4;

    [[nodiscard]] std::int64_t capacity_elements() const {
        return line_elements * num_sets * ways;
    }
};

struct CacheStats {
    std::int64_t accesses = 0;
    std::int64_t misses = 0;

    [[nodiscard]] double miss_rate() const {
        return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/// Replays a processor-tagged trace (from the *_blocked engines) through
/// `processors` private caches; entry k goes to the cache of its tag
/// (untagged entries to cache 0). Returns per-processor stats.
[[nodiscard]] std::vector<CacheStats> simulate_private_caches(
    const std::vector<exec::TraceEntry>& trace, int processors, const CacheConfig& config);

/// Sum of misses across all private caches.
[[nodiscard]] std::int64_t total_misses(const std::vector<CacheStats>& stats);

class CacheSim {
  public:
    explicit CacheSim(const CacheConfig& config);

    /// Accesses one element address; returns true on miss.
    bool access(std::int64_t address);

    void access_trace(const std::vector<exec::TraceEntry>& trace);

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    void reset();

  private:
    CacheConfig config_;
    CacheStats stats_;
    /// tags_[set * ways + way]: line tag, kEmptyTag sentinel when empty.
    std::vector<std::int64_t> tags_;
    /// LRU ordering per set: lru_[set * ways + k] is the way index of the
    /// k-th most recently used line.
    std::vector<std::int8_t> lru_;
};

}  // namespace lf::sim
