#include "sim/communication.hpp"

#include <algorithm>
#include <set>

#include "support/diagnostics.hpp"
#include "support/math_util.hpp"

namespace lf::sim {

namespace {

/// Elements of one dependence crossing each internal boundary: the |dy|
/// cells on the far side of the cut, clamped to the block width.
std::int64_t crossing_per_boundary(const Vec2& d, std::int64_t block) {
    return std::min<std::int64_t>(std::abs(d.y), block);
}

}  // namespace

CommunicationEstimate estimate_communication_original(const Mldg& g, const Domain& dom,
                                                      int processors) {
    check(processors >= 1, "estimate_communication_original: need at least one processor");
    CommunicationEstimate est;
    if (processors == 1) return est;
    const std::int64_t boundaries = processors - 1;
    const std::int64_t block = ceil_div(dom.cols(), processors);

    // Volume: every dependence's inner distance crosses every boundary once
    // per outer iteration (the producing row is distributed, the consuming
    // instance may sit across the cut).
    std::set<int> loops_with_outgoing;
    for (const auto& e : g.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.y == 0) continue;  // aligned: owner already has the value
            est.volume += boundaries * crossing_per_boundary(d, block);
        }
        loops_with_outgoing.insert(e.from);
    }
    // Messages: one per boundary (each direction folded into one) per loop
    // that produces data some other loop consumes.
    est.messages = boundaries * static_cast<std::int64_t>(loops_with_outgoing.size());
    return est;
}

CommunicationEstimate estimate_communication_fused(const Mldg& g, const FusionPlan& plan,
                                                   const Domain& dom, int processors) {
    check(processors >= 1, "estimate_communication_fused: need at least one processor");
    CommunicationEstimate est;
    if (processors == 1) return est;
    const std::int64_t boundaries = processors - 1;
    const std::int64_t block = ceil_div(dom.cols(), processors);

    bool any_cross = false;
    for (const auto& e : plan.retimed.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.y == 0) continue;
            est.volume += boundaries * crossing_per_boundary(d, block);
            any_cross = true;
        }
    }
    (void)g;
    // One aggregated message per boundary per fused synchronization phase.
    est.messages = any_cross ? boundaries : 0;
    return est;
}

}  // namespace lf::sim
