#pragma once
// Inter-processor communication model under block partitioning of the
// innermost (DOALL) dimension -- the "synchronization between processors"
// cost the paper's introduction motivates.
//
// The j-range [0, m] is split into P contiguous blocks, owner-computes.
// A dependence with inner distance dy makes min(|dy|, block) elements cross
// each internal block boundary, once per outer iteration. Messages are
// aggregated per synchronization phase: the original program sends one
// message per boundary per *loop* (it must be delivered before the next
// loop starts), the fused program one per boundary per *fused row*. Fusion
// therefore divides the message count by ~|V| while keeping the volume, and
// messages are what synchronization-latency-bound machines pay for.
//
// The same model prices shift-and-peel: its peeled iterations near each
// boundary execute redundantly/serially, which is the inefficiency the
// paper cites "when the number of peeled iterations exceeds the number of
// iterations per processor".

#include <cstdint>

#include "fusion/driver.hpp"
#include "ldg/mldg.hpp"
#include "support/domain.hpp"

namespace lf::sim {

struct CommunicationEstimate {
    /// Messages per outer iteration (boundaries x phases).
    std::int64_t messages = 0;
    /// Elements crossing boundaries per outer iteration.
    std::int64_t volume = 0;
};

/// Original schedule: one communication phase per loop per outer iteration.
[[nodiscard]] CommunicationEstimate estimate_communication_original(const Mldg& g,
                                                                    const Domain& dom,
                                                                    int processors);

/// Fused schedule: one communication phase per outer iteration; volume is
/// computed from the *retimed* dependence vectors (retiming does not change
/// inner distances of carried dependences but can eliminate same-row ones).
[[nodiscard]] CommunicationEstimate estimate_communication_fused(const Mldg& g,
                                                                 const FusionPlan& plan,
                                                                 const Domain& dom,
                                                                 int processors);

}  // namespace lf::sim
