#include "sim/machine.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"
#include "support/math_util.hpp"

namespace lf::sim {

namespace {

std::int64_t phase_time(std::int64_t work, const MachineConfig& machine) {
    return ceil_div(work, machine.processors) + machine.barrier_cost;
}

}  // namespace

ScheduleEstimate estimate_original(const Mldg& g, const Domain& dom,
                                   const MachineConfig& machine) {
    check(machine.processors >= 1, "estimate_original: need at least one processor");
    ScheduleEstimate est;
    for (std::int64_t i = 0; i <= dom.n; ++i) {
        for (int v = 0; v < g.num_nodes(); ++v) {
            const std::int64_t work = dom.cols() * g.node(v).body_cost;
            est.total_time += phase_time(work, machine);
            est.work += work;
            ++est.barriers;
        }
    }
    return est;
}

ScheduleEstimate estimate_fused(const Mldg& g, const FusionPlan& plan, const Domain& dom,
                                const MachineConfig& machine) {
    check(machine.processors >= 1, "estimate_fused: need at least one processor");
    ScheduleEstimate est;

    // Activity ranges per node in fused-point space.
    struct Range {
        std::int64_t ilo, ihi, jlo, jhi;
        std::int64_t cost;
    };
    std::vector<Range> ranges;
    ranges.reserve(static_cast<std::size_t>(g.num_nodes()));
    for (int v = 0; v < g.num_nodes(); ++v) {
        const Vec2 r = plan.retiming.of(v);
        ranges.push_back(Range{-r.x, dom.n - r.x, -r.y, dom.m - r.y, g.node(v).body_cost});
    }

    if (plan.level == ParallelismLevel::InnerDoall) {
        const std::int64_t ilo =
            std::min_element(ranges.begin(), ranges.end(),
                             [](const Range& a, const Range& b) { return a.ilo < b.ilo; })
                ->ilo;
        const std::int64_t ihi =
            std::max_element(ranges.begin(), ranges.end(),
                             [](const Range& a, const Range& b) { return a.ihi < b.ihi; })
                ->ihi;
        for (std::int64_t pi = ilo; pi <= ihi; ++pi) {
            std::int64_t work = 0;
            for (const Range& r : ranges) {
                if (pi >= r.ilo && pi <= r.ihi) work += (r.jhi - r.jlo + 1) * r.cost;
            }
            if (work == 0) continue;
            est.total_time += phase_time(work, machine);
            est.work += work;
            ++est.barriers;
        }
        return est;
    }

    // Hyperplane schedule: bucket work by t = s . p.
    const Vec2 s = plan.schedule;
    std::map<std::int64_t, std::int64_t> work_by_t;
    for (const Range& r : ranges) {
        for (std::int64_t pi = r.ilo; pi <= r.ihi; ++pi) {
            for (std::int64_t pj = r.jlo; pj <= r.jhi; ++pj) {
                work_by_t[s.x * pi + s.y * pj] += r.cost;
            }
        }
    }
    for (const auto& [t, work] : work_by_t) {
        est.total_time += phase_time(work, machine);
        est.work += work;
        ++est.barriers;
    }
    return est;
}

ScheduleEstimate estimate_grouped(const Mldg& g, const std::vector<std::vector<int>>& groups,
                                  const std::vector<bool>& group_is_doall, const Domain& dom,
                                  const MachineConfig& machine) {
    check(groups.size() == group_is_doall.size(), "estimate_grouped: size mismatch");
    ScheduleEstimate est;
    for (std::int64_t i = 0; i <= dom.n; ++i) {
        for (std::size_t k = 0; k < groups.size(); ++k) {
            std::int64_t work = 0;
            for (int v : groups[k]) work += dom.cols() * g.node(v).body_cost;
            est.work += work;
            if (group_is_doall[k]) {
                est.total_time += phase_time(work, machine);
            } else {
                // Serial row: the group's inner loop cannot be spread over
                // processors.
                est.total_time += work + machine.barrier_cost;
            }
            ++est.barriers;
        }
    }
    return est;
}

ScheduleEstimate estimate_shift_and_peel(const Mldg& g, std::int64_t peel, const Domain& dom,
                                         const MachineConfig& machine) {
    check(machine.processors >= 1, "estimate_shift_and_peel: need at least one processor");
    ScheduleEstimate est;
    std::int64_t cost_per_point = 0;
    for (int v = 0; v < g.num_nodes(); ++v) cost_per_point += g.node(v).body_cost;
    const std::int64_t row_work = dom.cols() * cost_per_point;
    for (std::int64_t i = 0; i <= dom.n; ++i) {
        const std::int64_t parallel = ceil_div(row_work, machine.processors);
        // Peeled boundary iterations execute serially at each internal cut
        // (they carry the unshifted dependences across processors).
        const std::int64_t serial_peel =
            machine.processors > 1 ? peel * cost_per_point : 0;
        est.total_time += parallel + serial_peel + machine.barrier_cost;
        est.work += row_work;
        ++est.barriers;
    }
    return est;
}

}  // namespace lf::sim
