#pragma once
// Deterministic multiprocessor cost model (the substitution for the paper's
// parallel hardware -- see DESIGN.md "Substitutions").
//
// Execution is a sequence of *phases*; a phase runs a set of independent
// instance groups in parallel on P processors and ends with one barrier:
//
//   time(phase) = ceil(work / P) + sigma
//
// where `work` is the total instance cost in the phase and `sigma` the
// barrier cost. This captures exactly what the paper argues about: fusion
// removes barriers (|V| per outer iteration -> 1) and enlarges phases
// (better processor utilization); hyperplane schedules pay one barrier per
// wavefront.

#include <cstdint>

#include "fusion/driver.hpp"
#include "ldg/mldg.hpp"
#include "support/domain.hpp"

namespace lf::sim {

struct MachineConfig {
    int processors = 8;
    /// Barrier / synchronization cost in the same units as one unit of
    /// instance work.
    std::int64_t barrier_cost = 100;
};

struct ScheduleEstimate {
    std::int64_t total_time = 0;
    std::int64_t barriers = 0;
    std::int64_t work = 0;  // total instance cost (identical across schedules)

    [[nodiscard]] double speedup_over(const ScheduleEstimate& baseline) const {
        return static_cast<double>(baseline.total_time) / static_cast<double>(total_time);
    }
};

/// The original program: per outer iteration, one phase per loop
/// (m+1 iterations of that loop's body cost), each ending in a barrier.
[[nodiscard]] ScheduleEstimate estimate_original(const Mldg& g, const Domain& dom,
                                                 const MachineConfig& machine);

/// The fused program under `plan`:
///  * inner-DOALL plans: one phase per fused row (only rows with work);
///  * hyperplane plans: one phase per non-empty hyperplane t = s . p.
[[nodiscard]] ScheduleEstimate estimate_fused(const Mldg& g, const FusionPlan& plan,
                                              const Domain& dom, const MachineConfig& machine);

/// A partitioned schedule that fuses only within the given groups (the
/// Kennedy-McKinley baseline): per outer iteration, one phase per group.
/// Groups whose internal dependences serialize the inner loop execute their
/// row serially (work not divided by P).
[[nodiscard]] ScheduleEstimate estimate_grouped(const Mldg& g,
                                                const std::vector<std::vector<int>>& groups,
                                                const std::vector<bool>& group_is_doall,
                                                const Domain& dom, const MachineConfig& machine);

/// The shift-and-peel schedule (Manjikian-Abdelrahman baseline): one fused
/// phase per outer iteration, but each processor additionally executes the
/// `peel` boundary iterations of every loop body serially before its block
/// can proceed. The overhead term grows relative to the useful work as the
/// per-processor share m/P shrinks -- the paper's stated inefficiency
/// "when the number of peeled iterations exceeds the number of iterations
/// per processor".
[[nodiscard]] ScheduleEstimate estimate_shift_and_peel(const Mldg& g, std::int64_t peel,
                                                       const Domain& dom,
                                                       const MachineConfig& machine);

}  // namespace lf::sim
