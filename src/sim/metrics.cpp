#include "sim/metrics.hpp"

namespace lf::sim {

ForwardingReuse forwarding_reuse(const analysis::DependenceInfo& info, const Retiming& retiming,
                                 const Domain& dom) {
    ForwardingReuse out;
    for (const analysis::Dependence& d : info.dependences) {
        if (d.kind != analysis::DepKind::Flow) continue;
        const Vec2 retimed = d.vector + retiming.of(d.from_loop) - retiming.of(d.to_loop);
        if (retimed.is_zero()) {
            ++out.forwardable_dependences;
            out.forwardable_loads += dom.points();
        }
    }
    return out;
}

ForwardingReuse forwarding_reuse(const ir::Program& p, const analysis::DependenceInfo& info,
                                 const Retiming& retiming, const Domain& dom) {
    ForwardingReuse out = forwarding_reuse(info, retiming, dom);
    std::int64_t reads_per_point = 0;
    for (const ir::LoopNest& loop : p.loops) {
        for (const ir::Statement& s : loop.body) {
            reads_per_point += static_cast<std::int64_t>(s.reads().size());
        }
    }
    out.total_loads = reads_per_point * dom.points();
    return out;
}

}  // namespace lf::sim
