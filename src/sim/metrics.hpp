#pragma once
// Locality metrics beyond raw cache simulation.
//
// The paper's Section 2 locality argument -- "because of array reuse,
// [fusion] reduces the references to main memory" -- is strongest for
// dependences that fusion places at the *same* iteration point: a flow
// dependence retimed to (0,0) lets the consumer take the freshly computed
// value from a register instead of reloading the array element. Before
// fusion, every such value crosses a loop boundary (and a barrier) and must
// come from memory.

#include <cstdint>

#include "analysis/dependence.hpp"
#include "ldg/retiming.hpp"
#include "support/domain.hpp"

namespace lf::sim {

struct ForwardingReuse {
    /// Elementary flow dependences retimed to (0,0).
    std::int64_t forwardable_dependences = 0;
    /// Loads eliminable by same-point register forwarding over the domain
    /// (one per dependence per iteration point).
    std::int64_t forwardable_loads = 0;
    /// Total loads the original program issues over the domain.
    std::int64_t total_loads = 0;

    [[nodiscard]] double fraction() const {
        return total_loads == 0
                   ? 0.0
                   : static_cast<double>(forwardable_loads) / static_cast<double>(total_loads);
    }
};

/// Counts same-point forwarding opportunities created by `retiming` on the
/// analyzed program. The untransformed program has none across loops.
/// (total_loads is left zero by this overload.)
[[nodiscard]] ForwardingReuse forwarding_reuse(const analysis::DependenceInfo& info,
                                               const Retiming& retiming, const Domain& dom);

/// Same, plus total_loads computed from the program's reads.
[[nodiscard]] ForwardingReuse forwarding_reuse(const ir::Program& p,
                                               const analysis::DependenceInfo& info,
                                               const Retiming& retiming, const Domain& dom);

}  // namespace lf::sim
