#include "support/cemit.hpp"

#include <algorithm>
#include <cstdio>

namespace lf::cemit {

FringeBounds fringe_bounds(std::span<const std::int64_t> shifts, std::int64_t extent) {
    FringeBounds b;
    if (shifts.empty()) return b;
    b.lo = b.in_lo = -shifts[0];
    b.hi = b.in_hi = extent - shifts[0];
    for (std::size_t v = 1; v < shifts.size(); ++v) {
        b.lo = std::min(b.lo, -shifts[v]);
        b.in_lo = std::max(b.in_lo, -shifts[v]);
        b.hi = std::max(b.hi, extent - shifts[v]);
        b.in_hi = std::min(b.in_hi, extent - shifts[v]);
    }
    return b;
}

std::string c_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Ensure a floating literal: 17-digit integer values print without '.'.
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
    }
    return s;
}

std::string index_with_offset(const std::string& var, std::int64_t offset) {
    std::ostringstream os;
    os << var;
    if (offset > 0) os << " + " << offset;
    if (offset < 0) os << " - " << -offset;
    return os.str();
}

std::string format_checksum(double checksum) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", checksum);
    return buf;
}

std::string parallel_runtime_includes_c() {
    return "#include <pthread.h>\n#include <sched.h>\n#include <stdatomic.h>\n";
}

std::string parallel_runtime_c(bool with_div_helpers) {
    std::string os;
    os +=
        "/* ------------------------------------------------------------------\n"
        " * Thread-parallel runtime (kernel ABI v2). The fused scan decomposes\n"
        " * into rounds (a DOALL row, a wavefront diagonal, an outermost-\n"
        " * carried slab); within a round the lanes own tiles round-robin and\n"
        " * every lane crosses one barrier per round -- the same sync-count\n"
        " * model the host-side engines price. Thread count, tile size and the\n"
        " * serial cutoff are runtime state, so one compiled object serves\n"
        " * every configuration; lanes <= 1 degrades to the serial scan. */\n"
        "typedef struct {\n"
        "    int32_t threads;        /* lanes incl. the caller; <= 1: serial */\n"
        "    int32_t tile;           /* iterations per tile; <= 0: auto */\n"
        "    int64_t serial_cutoff;  /* rounds narrower than this stay serial */\n"
        "} lf_kernel_params;\n"
        "\n"
        "#define LF_MAX_LANES 64\n"
        "\n"
        "static int lf_lanes = 1;\n"
        "static int64_t lf_tile = 0;\n"
        "static int64_t lf_cutoff = 0;\n"
        "\n"
        "/* Sense-reversing barrier over C11 atomics: no syscalls on the fast\n"
        " * path, sched_yield() when oversubscribed, race-free under TSan. */\n"
        "static atomic_int lf_bar_arrived;\n"
        "static atomic_int lf_bar_sense;\n"
        "\n"
        "static void lf_barrier(int* my_sense) {\n"
        "    const int sense = 1 - *my_sense;\n"
        "    *my_sense = sense;\n"
        "    if (atomic_fetch_add_explicit(&lf_bar_arrived, 1, memory_order_acq_rel) ==\n"
        "        lf_lanes - 1) {\n"
        "        atomic_store_explicit(&lf_bar_arrived, 0, memory_order_relaxed);\n"
        "        atomic_store_explicit(&lf_bar_sense, sense, memory_order_release);\n"
        "    } else {\n"
        "        int spins = 0;\n"
        "        while (atomic_load_explicit(&lf_bar_sense, memory_order_acquire) !=\n"
        "               sense) {\n"
        "            if (++spins >= 256) {\n"
        "                spins = 0;\n"
        "                (void)sched_yield();\n"
        "            }\n"
        "        }\n"
        "    }\n"
        "}\n"
        "\n"
        "/* A contiguous span of one round at a fixed round index (the third\n"
        " * parameter is the row i / diagonal t / outermost iteration v0). */\n"
        "typedef void (*lf_range_fn)(int64_t lo, int64_t hi, int64_t arg);\n"
        "\n"
        "/* Lane `lane`'s share of round [lo, hi]: tiles round-robin by tile\n"
        " * index. Rounds narrower than the serial cutoff run whole on lane 0\n"
        " * (every lane still reaches the round's barrier in its caller). */\n"
        "static void lf_lane_round(int lane, int64_t lo, int64_t hi, int64_t arg,\n"
        "                          lf_range_fn range) {\n"
        "    if (hi < lo) return;\n"
        "    const int64_t trip = hi - lo + 1;\n"
        "    if (lf_lanes <= 1 || trip <= lf_cutoff) {\n"
        "        if (lane == 0) range(lo, hi, arg);\n"
        "        return;\n"
        "    }\n"
        "    int64_t tile = lf_tile;\n"
        "    if (tile <= 0) tile = (trip + lf_lanes - 1) / lf_lanes;\n"
        "    const int64_t tiles = (trip + tile - 1) / tile;\n"
        "    for (int64_t t = lane; t < tiles; t += lf_lanes) {\n"
        "        const int64_t s = lo + t * tile;\n"
        "        int64_t e = s + tile - 1;\n"
        "        if (e > hi) e = hi;\n"
        "        range(s, e, arg);\n"
        "    }\n"
        "}\n"
        "\n";
    if (with_div_helpers) {
        os +=
            "/* Floor/ceiling division for clamping wavefront lane ranges. */\n"
            "static int64_t lf_floor_div(int64_t a, int64_t b) {\n"
            "    int64_t q = a / b;\n"
            "    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;\n"
            "    return q;\n"
            "}\n"
            "\n"
            "static int64_t lf_ceil_div(int64_t a, int64_t b) {\n"
            "    return -lf_floor_div(-a, b);\n"
            "}\n"
            "\n";
    }
    os +=
        "/* Plan-specific lane body: all rounds of one fused run. */\n"
        "static void lf_fused_lane(int lane);\n"
        "\n"
        "/* Persistent pool: lf_pool_start() spawns the workers once, each\n"
        " * fused run is one generation dispatch, lf_pool_stop() joins. */\n"
        "static struct {\n"
        "    pthread_t tid[LF_MAX_LANES];\n"
        "    pthread_mutex_t mu;\n"
        "    pthread_cond_t work_cv;\n"
        "    pthread_cond_t done_cv;\n"
        "    int workers;\n"
        "    int done;\n"
        "    int shutdown;\n"
        "    long generation;\n"
        "} lf_pool;\n"
        "\n"
        "static void* lf_pool_worker(void* argp) {\n"
        "    const int lane = (int)(intptr_t)argp;\n"
        "    long seen = 0;\n"
        "    pthread_mutex_lock(&lf_pool.mu);\n"
        "    for (;;) {\n"
        "        while (!lf_pool.shutdown && lf_pool.generation == seen) {\n"
        "            pthread_cond_wait(&lf_pool.work_cv, &lf_pool.mu);\n"
        "        }\n"
        "        if (lf_pool.shutdown) break;\n"
        "        seen = lf_pool.generation;\n"
        "        pthread_mutex_unlock(&lf_pool.mu);\n"
        "        lf_fused_lane(lane);\n"
        "        pthread_mutex_lock(&lf_pool.mu);\n"
        "        if (++lf_pool.done == lf_pool.workers) {\n"
        "            pthread_cond_signal(&lf_pool.done_cv);\n"
        "        }\n"
        "    }\n"
        "    pthread_mutex_unlock(&lf_pool.mu);\n"
        "    return 0;\n"
        "}\n"
        "\n"
        "/* Spawns `threads - 1` workers; returns the lane count actually\n"
        " * running (creation failures degrade toward the serial scan). */\n"
        "static int lf_pool_start(int threads) {\n"
        "    if (threads > LF_MAX_LANES) threads = LF_MAX_LANES;\n"
        "    pthread_mutex_init(&lf_pool.mu, 0);\n"
        "    pthread_cond_init(&lf_pool.work_cv, 0);\n"
        "    pthread_cond_init(&lf_pool.done_cv, 0);\n"
        "    lf_pool.workers = 0;\n"
        "    lf_pool.done = 0;\n"
        "    lf_pool.shutdown = 0;\n"
        "    lf_pool.generation = 0;\n"
        "    for (int lane = 1; lane < threads; ++lane) {\n"
        "        if (pthread_create(&lf_pool.tid[lane], 0, lf_pool_worker,\n"
        "                           (void*)(intptr_t)lane) != 0) {\n"
        "            break;\n"
        "        }\n"
        "        ++lf_pool.workers;\n"
        "    }\n"
        "    lf_lanes = lf_pool.workers + 1;\n"
        "    return lf_lanes;\n"
        "}\n"
        "\n"
        "static void lf_pool_stop(void) {\n"
        "    pthread_mutex_lock(&lf_pool.mu);\n"
        "    lf_pool.shutdown = 1;\n"
        "    pthread_cond_broadcast(&lf_pool.work_cv);\n"
        "    pthread_mutex_unlock(&lf_pool.mu);\n"
        "    for (int lane = 1; lane <= lf_pool.workers; ++lane) {\n"
        "        (void)pthread_join(lf_pool.tid[lane], 0);\n"
        "    }\n"
        "    lf_pool.workers = 0;\n"
        "    lf_lanes = 1;\n"
        "    pthread_mutex_destroy(&lf_pool.mu);\n"
        "    pthread_cond_destroy(&lf_pool.work_cv);\n"
        "    pthread_cond_destroy(&lf_pool.done_cv);\n"
        "}\n"
        "\n"
        "/* One parallel fused run: reset the barrier, wake the workers for a\n"
        " * new generation, run lane 0 in the caller, wait for the rest. */\n"
        "static void lf_run_fused_par(void) {\n"
        "    if (lf_lanes <= 1) {\n"
        "        run_fused();\n"
        "        return;\n"
        "    }\n"
        "    atomic_store_explicit(&lf_bar_arrived, 0, memory_order_relaxed);\n"
        "    atomic_store_explicit(&lf_bar_sense, 0, memory_order_relaxed);\n"
        "    pthread_mutex_lock(&lf_pool.mu);\n"
        "    lf_pool.done = 0;\n"
        "    ++lf_pool.generation;\n"
        "    pthread_cond_broadcast(&lf_pool.work_cv);\n"
        "    pthread_mutex_unlock(&lf_pool.mu);\n"
        "    lf_fused_lane(0);\n"
        "    pthread_mutex_lock(&lf_pool.mu);\n"
        "    while (lf_pool.done != lf_pool.workers) {\n"
        "        pthread_cond_wait(&lf_pool.done_cv, &lf_pool.mu);\n"
        "    }\n"
        "    pthread_mutex_unlock(&lf_pool.mu);\n"
        "}\n"
        "\n";
    return os;
}

std::string timing_reps_c(const std::string& fused_call) {
    // Per-form wall time is the minimum over reps, each from a fresh init()
    // sweep, alternating which form runs first so time-varying machine load
    // cannot systematically favor one side.
    std::string os;
    os +=
        "    int64_t ns_original = 0;\n"
        "    int64_t ns_fused = 0;\n"
        "    for (int rep = 0; rep < 4; ++rep) {\n"
        "        init();\n"
        "        int64_t dt_original;\n"
        "        int64_t dt_fused;\n"
        "        if (rep % 2 == 0) {\n"
        "            const int64_t t0 = lf_now_ns();\n"
        "            run_original();\n"
        "            const int64_t t1 = lf_now_ns();\n"
        "            " + fused_call + "();\n"
        "            const int64_t t2 = lf_now_ns();\n"
        "            dt_original = t1 - t0;\n"
        "            dt_fused = t2 - t1;\n"
        "        } else {\n"
        "            const int64_t t0 = lf_now_ns();\n"
        "            " + fused_call + "();\n"
        "            const int64_t t1 = lf_now_ns();\n"
        "            run_original();\n"
        "            const int64_t t2 = lf_now_ns();\n"
        "            dt_fused = t1 - t0;\n"
        "            dt_original = t2 - t1;\n"
        "        }\n"
        "        if (rep == 0 || dt_original < ns_original) ns_original = dt_original;\n"
        "        if (rep == 0 || dt_fused < ns_fused) ns_fused = dt_fused;\n"
        "    }\n";
    return os;
}

}  // namespace lf::cemit
