#include "support/cemit.hpp"

#include <cstdio>

namespace lf::cemit {

std::string c_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Ensure a floating literal: 17-digit integer values print without '.'.
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
    }
    return s;
}

std::string index_with_offset(const std::string& var, std::int64_t offset) {
    std::ostringstream os;
    os << var;
    if (offset > 0) os << " + " << offset;
    if (offset < 0) os << " - " << -offset;
    return os.str();
}

std::string format_checksum(double checksum) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", checksum);
    return buf;
}

}  // namespace lf::cemit
