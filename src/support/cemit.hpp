#pragma once
// Shared C-emission helpers for the self-verifying code generators.
//
// transform/codegen_c.cpp (2-D Figure-1 programs) and mdir/codegen_c.cpp
// (N-D programs) emit the same C dialect: double literals that always parse
// as floating constants, "var +/- offset" index expressions, and a
// parenthesized recursive expression printer over a four-node AST
// (literal / read / unary minus / binary op). Those pieces live here once;
// each generator keeps only its genuinely dialect-specific parts (array
// reference syntax, loop structure).

#include <cstdint>
#include <span>
#include <sstream>
#include <string>

#include "support/diagnostics.hpp"

namespace lf::cemit {

/// One-dimensional fringe model of the fused scan, shared by the planner's
/// per-plan StageReport metrics and both code generators (so all three
/// agree on what "prologue" and "epilogue" mean). Along one dimension,
/// body v of the fused nest covers [-shift_v, extent - shift_v] (shift_v =
/// its retiming component): `lo..hi` is the union box the guarded scan
/// walks and `in_lo..in_hi` the steady-state interior where every body is
/// active with no guards. prologue()/epilogue() are the guarded fringe
/// widths on either side of the interior; both equal the shift spread, and
/// are independent of `extent`, whenever the interior is nonempty.
struct FringeBounds {
    std::int64_t lo = 0, hi = 0;        // union box, inclusive
    std::int64_t in_lo = 0, in_hi = 0;  // interior intersection, inclusive
    [[nodiscard]] std::int64_t prologue() const { return in_lo - lo; }
    [[nodiscard]] std::int64_t epilogue() const { return hi - in_hi; }
    [[nodiscard]] bool nonempty_interior() const { return in_lo <= in_hi; }
};

/// Fringe bounds for one dimension of the fused scan. `shifts` holds every
/// body's retiming component along that dimension; empty shifts yield the
/// zero bounds.
[[nodiscard]] FringeBounds fringe_bounds(std::span<const std::int64_t> shifts,
                                         std::int64_t extent);

/// `v` as a C double literal: %.17g round-trips every double, plus a ".0"
/// suffix when the result would otherwise parse as an integer constant.
[[nodiscard]] std::string c_double(double v);

/// "var", "var + k" or "var - k": an index expression with a constant offset.
[[nodiscard]] std::string index_with_offset(const std::string& var, std::int64_t offset);

/// Checksum value formatted exactly as the emitted C program prints it
/// (printf "%.17g"), so host-side expectations compare byte-for-byte.
[[nodiscard]] std::string format_checksum(double checksum);

/// The headers the thread-parallel runtime needs, emitted into the
/// prelude's include block (pthread, sched, stdatomic, stdint).
[[nodiscard]] std::string parallel_runtime_includes_c();

/// The generic half of the kernel ABI v2 parallel runtime, identical for
/// every plan shape and dialect: the `lf_kernel_params` struct, a
/// sense-reversing atomic barrier, the tiled round scheduler
/// (`lf_lane_round`), floor/ceil division helpers for wavefront clamping
/// (only when `with_div_helpers`), and a persistent pthread pool whose
/// workers park on a generation condvar between fused runs
/// (`lf_pool_start` / `lf_run_fused_par` / `lf_pool_stop`).
///
/// The including file must define `run_fused(void)` *before* this text and
/// a plan-specific `lf_fused_lane(int lane)` *after* it (a forward
/// declaration is emitted here). One dispatch = one fused run; rounds
/// inside a run (rows, diagonals, slabs) synchronize on the spin barrier,
/// one barrier per round -- the sync-count model priced by exec/engines.
[[nodiscard]] std::string parallel_runtime_c(bool with_div_helpers);

/// The alternating-order, min-over-reps timing loop shared by both kernel
/// entry points: times `run_original()` against `<fused_call>()`, leaving
/// `ns_original` / `ns_fused` in scope. Emitted inside a function body.
[[nodiscard]] std::string timing_reps_c(const std::string& fused_call);

/// Recursive C expression printer, generic over the IR dialect. `Dialect`
/// names the four node types; `ref_fn(os, read_node)` prints an array
/// reference in the dialect's syntax (the only part that differs between
/// the 2-D and N-D generators).
///
///   struct Dialect {
///     using Expr    = ...;  // abstract base
///     using Literal = ...;  // ->value() : double
///     using Read    = ...;  // passed to ref_fn
///     using Unary   = ...;  // ->operand() : Expr
///     using Binary  = ...;  // ->lhs()/->rhs() : Expr, ->op() : char
///   };
template <typename Dialect, typename RefFn>
void emit_expr(std::ostringstream& os, const typename Dialect::Expr& e, RefFn&& ref_fn) {
    if (const auto* lit = dynamic_cast<const typename Dialect::Literal*>(&e)) {
        os << c_double(lit->value());
        return;
    }
    if (const auto* read = dynamic_cast<const typename Dialect::Read*>(&e)) {
        ref_fn(os, *read);
        return;
    }
    if (const auto* unary = dynamic_cast<const typename Dialect::Unary*>(&e)) {
        os << "(-";
        emit_expr<Dialect>(os, unary->operand(), ref_fn);
        os << ')';
        return;
    }
    if (const auto* bin = dynamic_cast<const typename Dialect::Binary*>(&e)) {
        os << '(';
        emit_expr<Dialect>(os, bin->lhs(), ref_fn);
        os << ' ' << bin->op() << ' ';
        emit_expr<Dialect>(os, bin->rhs(), ref_fn);
        os << ')';
        return;
    }
    throw Error("cemit::emit_expr: unhandled expression node");
}

}  // namespace lf::cemit
