#pragma once
// Error-reporting primitives. The library throws `lf::Error` for invalid
// inputs (illegal graphs, malformed programs) so callers can distinguish
// "the algorithm reports infeasible" (a normal result) from "the input
// violates the model" (an exception).

#include <stdexcept>
#include <string>

namespace lf {

/// Exception type for all model violations detected by this library.
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws lf::Error(message) when `condition` is false.
inline void check(bool condition, const std::string& message) {
    if (!condition) throw Error(message);
}

}  // namespace lf
