#pragma once
// The rectangular iteration domain of the paper's program model:
// DO i = 0..n { DOALL j = 0..m } (bounds inclusive, as in the paper's code).

#include <cstdint>

namespace lf {

struct Domain {
    std::int64_t n = 0;  // outer index i ranges over [0, n]
    std::int64_t m = 0;  // inner index j ranges over [0, m]

    [[nodiscard]] constexpr std::int64_t rows() const { return n + 1; }
    [[nodiscard]] constexpr std::int64_t cols() const { return m + 1; }
    [[nodiscard]] constexpr std::int64_t points() const { return rows() * cols(); }
    [[nodiscard]] constexpr bool contains(std::int64_t i, std::int64_t j) const {
        return i >= 0 && i <= n && j >= 0 && j <= m;
    }
};

}  // namespace lf
