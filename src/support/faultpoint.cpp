#include "support/faultpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace lf::faultpoint {

namespace {

/// Every fault point compiled into the library. Keep in sync with the call
/// sites (grep for faultpoint::triggered) and the table in
/// docs/robustness.md -- tests/test_failure_injection.cpp asserts the doc
/// and this list never drift apart.
constexpr const char* kCompiledIn[] = {
    "acyclic_doall",         // Algorithm 3 rung of the ladder
    "cyclic_doall.phase1",   // Algorithm 4, first retiming component
    "cyclic_doall.phase2",   // Algorithm 4, second retiming component
    "forced_carry",          // Algorithm 4 all-hard variant rung
    "llofra",                // Algorithm 2 core
    "hyperplane",            // Algorithm 5 rung
    "distribution",          // unfused loop-distribution fallback rung
    "solver.bellman_ford",   // graph/bellman_ford.hpp (both entry points; the
                             // unified 1-D/2-D/N-D constraint systems all
                             // solve through here)
    "solver.spfa",           // graph/spfa.hpp
    "codegen.fuse",          // transform::fuse_program
    "codegen.emit",          // transform::emit_transformed
    "svc.plan",              // svc worker: planning attempt aborts (retryable)
    "svc.verify.certify",    // svc admission gate: certification fails
    "svc.verify.replay",     // svc admission gate: differential replay mismatch
    "svc.checkpoint",        // svc checkpoint append fails (run continues)
    "svc.plancache",         // svc plan cache: lookup bypassed (job plans cold)
    "svc.plancache.disk",    // persistent tier: disk reads miss, writes fail
    "net.accept",            // server: accepted connection dropped immediately
    "net.read",              // server: connection read fails mid-frame
    "net.write",             // server: response write fails (connection closed)
    "net.torn_response",     // server: response torn mid-frame, then closed
    "exec.compile",          // native backend: kernel compile fails outright
    "exec.spawn",            // native backend: sandbox worker cannot be spawned
    "exec.run",              // native backend drill: worker crashes (SIGSEGV)
    "exec.timeout",          // native backend drill: worker spins past wall_ms
    "exec.oom",              // native backend drill: worker exhausts RLIMIT_AS
};

bool known(const std::string& name) {
    for (const char* p : kCompiledIn) {
        if (name == p) return true;
    }
    return false;
}

struct PointState {
    bool armed = false;
    std::uint64_t hits = 0;
};

struct Registry {
    std::mutex mutex;
    std::unordered_map<std::string, PointState> points;

    Registry() {
        if (const char* spec = std::getenv("LF_FAULT")) (void)arm_locked(spec);
    }

    /// Arms every entry of `spec`; returns the entries that name no
    /// compiled-in point (misspellings), warning about each on stderr.
    std::vector<std::string> arm_locked(const std::string& spec) {
        std::vector<std::string> unknown;
        std::size_t begin = 0;
        while (begin <= spec.size()) {
            std::size_t end = spec.find(',', begin);
            if (end == std::string::npos) end = spec.size();
            std::string name = spec.substr(begin, end - begin);
            // Trim surrounding whitespace.
            const auto first = name.find_first_not_of(" \t");
            if (first != std::string::npos) {
                const auto last = name.find_last_not_of(" \t");
                name = name.substr(first, last - first + 1);
                if (!known(name)) {
                    std::fprintf(stderr,
                                 "LF_FAULT: warning: '%s' is not a compiled-in fault point "
                                 "(misspelled? see faultpoint::known_points()); armed anyway, "
                                 "but it will never fire\n",
                                 name.c_str());
                    unknown.push_back(name);
                }
                points[name].armed = true;
            }
            begin = end + 1;
        }
        return unknown;
    }
};

Registry& registry() {
    static Registry r;  // LF_FAULT is read exactly once, on first use
    return r;
}

}  // namespace

bool triggered(const char* name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(name);
    if (it == r.points.end() || !it->second.armed) return false;
    ++it->second.hits;
    return true;
}

void arm(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.points[name].armed = true;
}

void disarm(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(name);
    if (it != r.points.end()) it->second.armed = false;
}

void reset() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.points.clear();
}

bool is_armed(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(name);
    return it != r.points.end() && it->second.armed;
}

std::uint64_t hits(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(name);
    return it == r.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> arm_from_spec(const std::string& spec) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    return r.arm_locked(spec);
}

std::vector<std::string> armed_points() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    for (const auto& [name, state] : r.points) {
        if (state.armed) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool is_known_point(const std::string& name) { return known(name); }

std::vector<std::string> known_points() {
    std::vector<std::string> names(std::begin(kCompiledIn), std::end(kCompiledIn));
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace lf::faultpoint
