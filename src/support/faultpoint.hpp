#pragma once
// Named, registry-controlled fault-injection points.
//
// Every failure path in the fusion pipeline is guarded by a fault point so
// it can be exercised on demand -- a degradation ladder whose rungs cannot
// be made to break is untestable. A fault point is a named site in the code:
//
//     if (faultpoint::triggered("cyclic_doall.phase2")) { ...fail cleanly... }
//
// Arming:
//   * programmatically: faultpoint::arm("cyclic_doall.phase2") (tests);
//   * via the environment: LF_FAULT=cyclic_doall.phase2,solver.spfa
//     (comma-separated names, read once at first use).
//
// Semantics at the site depend on what failure the point simulates:
// algorithm-phase points (cyclic_doall.phase1/2, forced_carry) report a
// *normal* infeasible outcome; solver points (solver.*) abort the solve
// with StatusCode::Internal; codegen points throw lf::Error. Each firing is
// counted, so tests can assert a point was actually reached.
//
// The registry is mutex-protected (tests and batch drivers may probe from
// several threads); fault checks sit at phase granularity, never inside
// per-iteration loops, so the lock is not on any hot path.

#include <cstdint>
#include <string>
#include <vector>

namespace lf::faultpoint {

/// Fires the fault point `name`: returns true (and records a hit) when the
/// point is armed. The call site must then fail through its clean path.
[[nodiscard]] bool triggered(const char* name);

void arm(const std::string& name);
void disarm(const std::string& name);

/// Disarms every point (including LF_FAULT-armed ones) and zeroes all hit
/// counters. Tests call this in SetUp/TearDown.
void reset();

[[nodiscard]] bool is_armed(const std::string& name);

/// Times `triggered(name)` returned true since the last reset().
[[nodiscard]] std::uint64_t hits(const std::string& name);

/// Parses the LF_FAULT syntax ("name,name,..."; whitespace around names is
/// ignored, empty entries skipped) and arms each listed point. Every entry
/// is validated against the compiled-in registry: unknown names (almost
/// always misspellings -- an armed point that does not exist can never
/// fire, silently voiding the fault the caller thought they injected) are
/// still armed for forward compatibility but are reported back, in spec
/// order, and a warning is printed to stderr. The LF_FAULT environment
/// path performs the same validation at first use.
std::vector<std::string> arm_from_spec(const std::string& spec);

/// Snapshot of every currently armed point, sorted. The service layer uses
/// this to bypass its plan cache whenever any fault is armed (a faulted run
/// must exercise the real pipeline, and must never poison the cache).
[[nodiscard]] std::vector<std::string> armed_points();

/// True iff `name` is one of the compiled-in fault points.
[[nodiscard]] bool is_known_point(const std::string& name);

/// The compiled-in fault points, sorted. Arming a name outside this list
/// via arm() is allowed (it simply never fires) but tests iterate this
/// registry to prove every real site is reachable.
[[nodiscard]] std::vector<std::string> known_points();

}  // namespace lf::faultpoint
