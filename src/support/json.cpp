#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/diagnostics.hpp"

namespace lf::json {

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void Writer::newline_indent() {
    if (indent_ <= 0) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * stack_.size(), ' ');
}

void Writer::prepare_value() {
    if (stack_.empty()) {
        check(out_.empty(), "json::Writer: only one top-level value allowed");
        return;
    }
    Frame& top = stack_.back();
    if (top.is_array) {
        if (top.members++ > 0) out_ += ',';
        newline_indent();
    } else {
        check(key_pending_, "json::Writer: object member written without a key");
        key_pending_ = false;
    }
}

Writer& Writer::key(const std::string& name) {
    check(!stack_.empty() && !stack_.back().is_array,
          "json::Writer: key() outside an object");
    check(!key_pending_, "json::Writer: two keys in a row");
    if (stack_.back().members++ > 0) out_ += ',';
    newline_indent();
    out_ += '"';
    out_ += escape(name);
    out_ += indent_ > 0 ? "\": " : "\":";
    key_pending_ = true;
    return *this;
}

void Writer::open(char bracket) {
    prepare_value();
    out_ += bracket;
    stack_.push_back(Frame{bracket == '[', 0});
}

void Writer::close(char bracket) {
    check(!stack_.empty(), "json::Writer: unbalanced end");
    check(stack_.back().is_array == (bracket == ']'), "json::Writer: mismatched end");
    const bool had_members = stack_.back().members > 0;
    stack_.pop_back();
    if (had_members) newline_indent();
    out_ += bracket;
}

Writer& Writer::begin_object() { open('{'); return *this; }
Writer& Writer::end_object() { close('}'); return *this; }
Writer& Writer::begin_array() { open('['); return *this; }
Writer& Writer::end_array() { close(']'); return *this; }

Writer& Writer::value(const std::string& v) {
    prepare_value();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(std::int64_t v) {
    prepare_value();
    out_ += std::to_string(v);
    return *this;
}

Writer& Writer::value(std::uint64_t v) {
    prepare_value();
    out_ += std::to_string(v);
    return *this;
}

Writer& Writer::value(int v) { return value(static_cast<std::int64_t>(v)); }

Writer& Writer::value(double v) {
    prepare_value();
    if (!std::isfinite(v)) v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    out_ += buf;
    return *this;
}

Writer& Writer::value(bool v) {
    prepare_value();
    out_ += v ? "true" : "false";
    return *this;
}

std::string Writer::str() const {
    check(stack_.empty(), "json::Writer: str() with open scopes");
    return out_;
}

}  // namespace lf::json
