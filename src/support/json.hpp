#pragma once
// Minimal streaming JSON emission for machine-readable reports (the fusion
// service's run report, bench outputs). Writer only -- the repo's on-disk
// formats that need *parsing* (MLDG text, checkpoint manifests) are
// line-oriented precisely so no JSON parser is needed.
//
// The writer is purely syntactic: it tracks the begin/end nesting, inserts
// commas and indentation, and escapes strings; the caller is responsible
// for pairing begin_*/end_* calls (checked with lf::check) and for emitting
// a key before every value inside an object.

#include <cstdint>
#include <string>
#include <vector>

namespace lf::json {

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(const std::string& s);

class Writer {
  public:
    /// `indent` spaces per nesting level; 0 produces compact one-line JSON.
    explicit Writer(int indent = 2) : indent_(indent) {}

    Writer& begin_object();
    Writer& end_object();
    Writer& begin_array();
    Writer& end_array();

    /// Emits the key of the next object member.
    Writer& key(const std::string& name);

    Writer& value(const std::string& v);
    Writer& value(const char* v);
    Writer& value(std::int64_t v);
    Writer& value(std::uint64_t v);
    Writer& value(int v);
    /// Fixed notation with 3 fractional digits, locale-independent; NaN and
    /// infinity (not representable in JSON) are emitted as 0.000.
    Writer& value(double v);
    Writer& value(bool v);

    /// key + value in one call.
    template <typename T>
    Writer& kv(const std::string& name, T&& v) {
        key(name);
        return value(std::forward<T>(v));
    }

    /// The document text. Valid once every begin_* has been ended.
    [[nodiscard]] std::string str() const;

  private:
    void prepare_value();
    void open(char bracket);
    void close(char bracket);
    void newline_indent();

    struct Frame {
        bool is_array = false;
        int members = 0;
    };

    int indent_;
    std::string out_;
    std::vector<Frame> stack_;
    bool key_pending_ = false;
};

}  // namespace lf::json
