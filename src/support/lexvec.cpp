#include "support/lexvec.hpp"

#include <ostream>
#include <sstream>

namespace lf {

std::string LexVec<2>::str() const {
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    if (is_infinite(v)) return os << "(inf,inf)";
    return os << '(' << v.x << ',' << v.y << ')';
}

std::string LexVec<kDynamicExtent>::str() const {
    std::ostringstream os;
    os << '(';
    for (int k = 0; k < dim(); ++k) {
        if (k) os << ',';
        os << (*this)[k];
    }
    os << ')';
    return os.str();
}

}  // namespace lf
