#pragma once
// Dimension-generic integer vectors under lexicographic order: the single
// weight domain behind every solver in the repo.
//
// The paper works in iteration-distance space Z^n compared lexicographically;
// lexicographic order on Z^n is a translation-invariant total order for every
// n, so the classical Bellman-Ford correctness argument carries over in any
// dimension (Section 2.4). `LexVec<Extent>` captures that once:
//
//   * `LexVec<2>`  -- full specialization with named `x`/`y` members: exactly
//     the historical `Vec2` layout (two plain int64 fields, no indirection),
//     so the 2-D solver instantiations keep their codegen.
//   * `LexVec<N>`  -- compile-time extent over std::array, for callers that
//     know their dimension statically.
//   * `LexVec<kDynamicExtent>` -- runtime extent over std::vector: the
//     historical `VecN`, powering the n-D generalizations whose dimension is
//     only known when the MLDG is built.
//
// `Vec2` and `VecN` remain the canonical spellings (as aliases).

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf {

/// Extent tag selecting the runtime-dimension specialization.
inline constexpr int kDynamicExtent = -1;

/// Saturating int64 addition: clamps to the int64 range instead of invoking
/// signed-overflow UB. Deterministic on every platform.
[[nodiscard]] inline std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) {
    std::int64_t out;
    if (!__builtin_add_overflow(a, b, &out)) return out;
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
}

[[nodiscard]] inline std::int64_t sat_sub_i64(std::int64_t a, std::int64_t b) {
    std::int64_t out;
    if (!__builtin_sub_overflow(a, b, &out)) return out;
    return b < 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
}

/// Primary template: a point / distance in `Extent`-dimensional iteration
/// space, component 0 outermost. Ordered lexicographically (member order).
template <int Extent>
class LexVec {
    static_assert(Extent >= 1,
                  "LexVec extent must be >= 1 (use kDynamicExtent for runtime dimension)");

  public:
    constexpr LexVec() = default;
    template <typename... Ts>
        requires(sizeof...(Ts) == static_cast<std::size_t>(Extent) &&
                 (std::is_convertible_v<Ts, std::int64_t> && ...))
    constexpr LexVec(Ts... values) : c_{static_cast<std::int64_t>(values)...} {}

    [[nodiscard]] static constexpr int dim() { return Extent; }
    [[nodiscard]] constexpr std::int64_t operator[](int k) const {
        return c_[static_cast<std::size_t>(k)];
    }
    [[nodiscard]] constexpr std::int64_t& operator[](int k) {
        return c_[static_cast<std::size_t>(k)];
    }

    friend constexpr auto operator<=>(const LexVec&, const LexVec&) = default;

    constexpr LexVec operator+(const LexVec& o) const {
        LexVec r;
        for (int k = 0; k < Extent; ++k) r[k] = (*this)[k] + o[k];
        return r;
    }
    constexpr LexVec operator-(const LexVec& o) const {
        LexVec r;
        for (int k = 0; k < Extent; ++k) r[k] = (*this)[k] - o[k];
        return r;
    }
    constexpr LexVec operator-() const {
        LexVec r;
        for (int k = 0; k < Extent; ++k) r[k] = -(*this)[k];
        return r;
    }
    constexpr LexVec& operator+=(const LexVec& o) { return *this = *this + o; }
    constexpr LexVec operator*(std::int64_t m) const {
        LexVec r;
        for (int k = 0; k < Extent; ++k) r[k] = (*this)[k] * m;
        return r;
    }

    [[nodiscard]] constexpr std::int64_t dot(const LexVec& o) const {
        std::int64_t sum = 0;
        for (int k = 0; k < Extent; ++k) sum += (*this)[k] * o[k];
        return sum;
    }

    [[nodiscard]] constexpr bool is_zero() const {
        for (int k = 0; k < Extent; ++k) {
            if ((*this)[k] != 0) return false;
        }
        return true;
    }

    /// Index of the first nonzero component, or dim() when zero.
    [[nodiscard]] constexpr int leading_index() const {
        for (int k = 0; k < Extent; ++k) {
            if ((*this)[k] != 0) return k;
        }
        return Extent;
    }

    [[nodiscard]] static constexpr LexVec zeros() { return LexVec{}; }

    [[nodiscard]] std::string str() const;

  private:
    std::array<std::int64_t, static_cast<std::size_t>(Extent)> c_{};
};

/// 2-D specialization: the historical `Vec2`. `x` is the distance along the
/// outermost (sequential) loop, `y` along the innermost (DOALL) loop. Kept as
/// two named int64 members -- identical layout and codegen to the pre-unified
/// struct -- because the paper's main algorithms (and the hot solver paths)
/// are two-dimensional.
template <>
class LexVec<2> {
  public:
    std::int64_t x = 0;
    std::int64_t y = 0;

    constexpr LexVec() = default;
    constexpr LexVec(std::int64_t x_, std::int64_t y_) : x(x_), y(y_) {}

    /// Lexicographic comparison: member order (x, then y) is exactly the
    /// lexicographic order the paper uses throughout.
    friend constexpr auto operator<=>(const LexVec&, const LexVec&) = default;

    [[nodiscard]] static constexpr int dim() { return 2; }
    [[nodiscard]] constexpr std::int64_t operator[](int k) const { return k == 0 ? x : y; }
    [[nodiscard]] constexpr std::int64_t& operator[](int k) { return k == 0 ? x : y; }

    constexpr LexVec operator+(const LexVec& o) const { return {x + o.x, y + o.y}; }
    constexpr LexVec operator-(const LexVec& o) const { return {x - o.x, y - o.y}; }
    constexpr LexVec operator-() const { return {-x, -y}; }
    constexpr LexVec& operator+=(const LexVec& o) { x += o.x; y += o.y; return *this; }
    constexpr LexVec& operator-=(const LexVec& o) { x -= o.x; y -= o.y; return *this; }
    constexpr LexVec operator*(std::int64_t k) const { return {x * k, y * k}; }

    /// Inner product; used for schedule-vector tests `s . d > 0` (Lemma 4.3).
    [[nodiscard]] constexpr std::int64_t dot(const LexVec& o) const {
        return x * o.x + y * o.y;
    }

    [[nodiscard]] constexpr bool is_zero() const { return x == 0 && y == 0; }

    [[nodiscard]] constexpr int leading_index() const { return x != 0 ? 0 : (y != 0 ? 1 : 2); }

    [[nodiscard]] static constexpr LexVec zeros() { return {}; }

    [[nodiscard]] std::string str() const;
};

/// Runtime-extent specialization: the historical `VecN`. Dimension is carried
/// by the value (std::vector storage); mixed-dimension arithmetic throws.
template <>
class LexVec<kDynamicExtent> {
  public:
    LexVec() = default;
    explicit LexVec(int dim) : c_(static_cast<std::size_t>(dim), 0) {}
    LexVec(std::initializer_list<std::int64_t> values) : c_(values) {}
    explicit LexVec(std::vector<std::int64_t> values) : c_(std::move(values)) {}

    [[nodiscard]] int dim() const { return static_cast<int>(c_.size()); }
    [[nodiscard]] std::int64_t operator[](int k) const { return c_[static_cast<std::size_t>(k)]; }
    [[nodiscard]] std::int64_t& operator[](int k) { return c_[static_cast<std::size_t>(k)]; }

    /// Lexicographic comparison (std::vector's operator<=> is lexicographic).
    friend auto operator<=>(const LexVec&, const LexVec&) = default;

    LexVec operator+(const LexVec& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        LexVec r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = (*this)[k] + o[k];
        return r;
    }
    LexVec operator-(const LexVec& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        LexVec r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = (*this)[k] - o[k];
        return r;
    }
    LexVec operator-() const {
        LexVec r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = -(*this)[k];
        return r;
    }
    LexVec& operator+=(const LexVec& o) { return *this = *this + o; }

    [[nodiscard]] std::int64_t dot(const LexVec& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        std::int64_t sum = 0;
        for (int k = 0; k < dim(); ++k) sum += (*this)[k] * o[k];
        return sum;
    }

    [[nodiscard]] bool is_zero() const {
        for (int k = 0; k < dim(); ++k) {
            if ((*this)[k] != 0) return false;
        }
        return true;
    }

    /// Index of the first nonzero component, or dim() when zero.
    [[nodiscard]] int leading_index() const {
        for (int k = 0; k < dim(); ++k) {
            if ((*this)[k] != 0) return k;
        }
        return dim();
    }

    [[nodiscard]] static LexVec zeros(int dim) { return LexVec(dim); }

    [[nodiscard]] std::string str() const;

  private:
    std::vector<std::int64_t> c_;
};

/// The canonical spellings. `Vec2` backs the paper's elaborated 2-D
/// algorithms; `VecN` the n-D generalizations of fusion/multidim.hpp.
using Vec2 = LexVec<2>;
using VecN = LexVec<kDynamicExtent>;

std::ostream& operator<<(std::ostream& os, const Vec2& v);

/// Sentinel "plus infinity" for lexicographic shortest paths (paper writes
/// (inf, inf) when initializing Alg. 1). Large enough to never be reached by
/// sums over realistic graphs, small enough to never overflow when added to
/// real edge weights.
inline constexpr Vec2 kVecInfinity{std::int64_t{1} << 40, std::int64_t{1} << 40};

[[nodiscard]] inline constexpr bool is_infinite(const Vec2& v) {
    return v.x >= (std::int64_t{1} << 39) || v.y >= (std::int64_t{1} << 39);
}

/// Component-wise saturating Vec2 arithmetic, used where adversarial inputs
/// could otherwise drive dependence-vector sums past int64 (retiming
/// application). Legality checks reject out-of-range magnitudes up front
/// (kMaxDependenceMagnitude in ldg/legality.hpp), so saturation is a
/// defense-in-depth backstop, not a steady-state code path.
[[nodiscard]] inline Vec2 sat_add(const Vec2& a, const Vec2& b) {
    return {sat_add_i64(a.x, b.x), sat_add_i64(a.y, b.y)};
}

[[nodiscard]] inline Vec2 sat_sub(const Vec2& a, const Vec2& b) {
    return {sat_sub_i64(a.x, b.x), sat_sub_i64(a.y, b.y)};
}

/// Overflow-checked component-wise addition: false (and `out` saturated)
/// when either component overflows.
[[nodiscard]] inline bool checked_add(const Vec2& a, const Vec2& b, Vec2& out) {
    const bool ox = __builtin_add_overflow(a.x, b.x, &out.x);
    const bool oy = __builtin_add_overflow(a.y, b.y, &out.y);
    if (ox || oy) {
        out = sat_add(a, b);
        return false;
    }
    return true;
}

/// Overflow-checked component-wise addition for the runtime extent: false
/// when any component would overflow int64 (`out` then holds the wrapped
/// values; callers must treat the result as poisoned and surface
/// StatusCode::Overflow).
[[nodiscard]] inline bool checked_add(const VecN& a, const VecN& b, VecN& out) {
    check(a.dim() == b.dim(), "VecN: dimension mismatch");
    out = VecN(a.dim());
    bool overflowed = false;
    for (int k = 0; k < a.dim(); ++k) {
        std::int64_t sum = 0;
        overflowed |= __builtin_add_overflow(a[k], b[k], &sum);
        out[k] = sum;
    }
    return !overflowed;
}

/// Overflow-checked component-wise addition for static extents.
template <int Extent>
[[nodiscard]] bool checked_add(const LexVec<Extent>& a, const LexVec<Extent>& b,
                               LexVec<Extent>& out) {
    bool overflowed = false;
    for (int k = 0; k < Extent; ++k) {
        std::int64_t sum = 0;
        overflowed |= __builtin_add_overflow(a[k], b[k], &sum);
        out[k] = sum;
    }
    return !overflowed;
}

template <int Extent>
std::string LexVec<Extent>::str() const {
    std::string s = "(";
    for (int k = 0; k < Extent; ++k) {
        if (k) s += ',';
        s += std::to_string((*this)[k]);
    }
    s += ')';
    return s;
}

}  // namespace lf

template <>
struct std::hash<lf::Vec2> {
    std::size_t operator()(const lf::Vec2& v) const noexcept {
        const std::size_t hx = std::hash<std::int64_t>{}(v.x);
        const std::size_t hy = std::hash<std::int64_t>{}(v.y);
        return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
    }
};
