#pragma once
// Small integer-math helpers shared across the library.

#include <cstdint>

namespace lf {

/// Floor division (rounds toward negative infinity), as required by the
/// schedule-vector formula of Lemma 4.3: s[1] = max floor(-d[2]/d[1]) + 1.
/// C++ `/` truncates toward zero, which is wrong for negative operands.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
    const std::int64_t q = a / b;
    const std::int64_t r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Ceiling division, used by the multiprocessor cost model
/// (`ceil(iterations / processors)` time steps per DOALL phase).
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return -floor_div(-a, b);
}

}  // namespace lf
