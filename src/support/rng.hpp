#pragma once
// Deterministic random source for generators, property tests and benchmarks.
// All randomized components take an explicit `Rng&` so every experiment is
// reproducible from its seed.

#include <cstdint>
#include <random>

namespace lf {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Bernoulli trial with success probability p.
    [[nodiscard]] bool flip(double p) {
        return std::bernoulli_distribution(p)(engine_);
    }

    [[nodiscard]] std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace lf
