#pragma once
// Solver telemetry: counters every shortest-path solve can account into.
//
// The planners spend essentially all of their time in the lexicographic
// Bellman-Ford core; these counters make that cost observable per ladder
// rung (driver StageReport) and per job (svc run report) so perf work can be
// measured instead of guessed at. Collection is opt-in: solvers take a
// `SolverStats*` and skip all accounting -- including the wall-clock reads
// -- when it is null, keeping the stats-free hot path unchanged.

#include <cstdint>

namespace lf {

struct SolverStats {
    /// Solver invocations accounted into this struct (bellman_ford,
    /// bellman_ford_all_sources and spfa_all_sources each count one).
    std::uint64_t solves = 0;
    /// Edge-relaxation attempts (one per edge scanned per pass; this is the
    /// quantity the ResourceGuard meters).
    std::uint64_t edge_scans = 0;
    /// Successful relaxations: scans that actually lowered a distance.
    std::uint64_t relaxations = 0;
    /// Iterations to fixpoint: Bellman-Ford passes executed, or SPFA vertex
    /// dequeues. A solve that quiesces early reports fewer than |V| passes.
    std::uint64_t iterations = 0;
    /// SPFA queue operations (pushes; initial seeding included).
    std::uint64_t queue_pushes = 0;
    /// SPFA queue operations (pops == vertex dequeues).
    std::uint64_t queue_pops = 0;
    /// ResourceGuard steps consumed by metered scans (0 when no guard).
    std::uint64_t guard_steps = 0;
    /// Relaxations whose result came within 1/8 of the weight domain's
    /// overflow cap: early warning that inputs are drifting toward the
    /// Overflow hard stop.
    std::uint64_t overflow_near_misses = 0;
    /// All-sources solves that started from a caller-supplied previous
    /// fixpoint instead of the all-zero potential (incremental re-solve of a
    /// grown constraint system; see graph/bellman_ford.hpp).
    std::uint64_t warm_starts = 0;
    /// Solves that initialized from scratch (no usable warm hint). Every
    /// accounted solve is exactly one of warm_starts / cold_solves.
    std::uint64_t cold_solves = 0;
    /// Ladder rungs that reused the shared constraint-system core (edge
    /// arrays, cached schedulability verdict, previous-rung fixpoints)
    /// instead of rebuilding their system from the MLDG (fusion/ladder.hpp).
    std::uint64_t rungs_shared = 0;
    /// Solves executed by the batched all-sources kernel together with at
    /// least one other job over shared adjacency (one count per lane).
    std::uint64_t batch_solves = 0;
    /// Solves warm-started from a cached *neighbor's* feasible distances
    /// (plan-cache structural near-miss; see svc/plancache.hpp) rather than
    /// from this job's own previous rung.
    std::uint64_t delta_solves = 0;
    /// Wall time spent inside solver entry points, in nanoseconds. Only
    /// meaningful on the machine that produced it; report emission omits it
    /// under the determinism contract (include_timings=false).
    std::uint64_t wall_ns = 0;

    void merge(const SolverStats& o) {
        solves += o.solves;
        edge_scans += o.edge_scans;
        relaxations += o.relaxations;
        iterations += o.iterations;
        queue_pushes += o.queue_pushes;
        queue_pops += o.queue_pops;
        guard_steps += o.guard_steps;
        overflow_near_misses += o.overflow_near_misses;
        warm_starts += o.warm_starts;
        cold_solves += o.cold_solves;
        rungs_shared += o.rungs_shared;
        batch_solves += o.batch_solves;
        delta_solves += o.delta_solves;
        wall_ns += o.wall_ns;
    }

    /// True when any solver work was accounted (gates report emission).
    /// A rung can share the core without solving (fault-injected phases),
    /// so rungs_shared counts as work of its own.
    [[nodiscard]] bool any() const { return solves != 0 || rungs_shared != 0; }
};

}  // namespace lf
