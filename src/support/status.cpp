#include "support/status.hpp"

#include <sstream>

namespace lf {

std::string to_string(StatusCode code) {
    switch (code) {
        case StatusCode::Ok: return "ok";
        case StatusCode::IllegalInput: return "illegal-input";
        case StatusCode::Infeasible: return "infeasible";
        case StatusCode::ResourceExhausted: return "resource-exhausted";
        case StatusCode::Overflow: return "overflow";
        case StatusCode::Internal: return "internal";
    }
    return "?";
}

std::string StageReport::str() const {
    std::ostringstream os;
    os << stage << ": " << to_string(code);
    if (!detail.empty()) os << " (" << detail << ")";
    if (budget_consumed > 0) os << " [" << budget_consumed << " steps]";
    return os.str();
}

std::string Status::str() const {
    std::ostringstream os;
    os << to_string(code_);
    if (!message_.empty()) os << ": " << message_;
    for (const StageReport& s : stages) os << "\n  " << s.str();
    return os.str();
}

}  // namespace lf
