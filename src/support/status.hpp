#pragma once
// Status taxonomy for the hardened pipeline: typed, non-throwing error
// reporting plus resource budgeting.
//
// The library distinguishes two failure families. `lf::Error` (see
// diagnostics.hpp) remains the exception for *model violations* on the
// throwing API surface. The `Status`/`Result<T>` layer below is the
// never-throwing surface used by try_plan_fusion and the guarded solvers:
// every abnormal outcome is a value the caller can inspect, so one bad
// workload can never take down a batch run.
//
//   Ok                -- the operation completed (a normal result).
//   IllegalInput      -- the input violates the model (unschedulable MLDG,
//                        out-of-range dependence magnitudes, ...).
//   Infeasible        -- the algorithm correctly reports "no solution"
//                        (e.g. Algorithm 4 phase 1/2 negative cycle).
//   ResourceExhausted -- an iteration budget or wall-clock deadline from a
//                        ResourceGuard was hit before completion.
//   Overflow          -- weight arithmetic would have overflowed int64;
//                        detected, never undefined behavior.
//   Internal          -- a postcondition failed or a fault point fired.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/solver_stats.hpp"

namespace lf {

enum class StatusCode {
    Ok,
    IllegalInput,
    Infeasible,
    ResourceExhausted,
    Overflow,
    Internal,
};

[[nodiscard]] std::string to_string(StatusCode code);

/// One rung of a multi-stage operation (e.g. the fusion degradation ladder):
/// what was attempted, how it ended, and how much budget it consumed.
struct StageReport {
    std::string stage;
    StatusCode code = StatusCode::Ok;
    /// Failure or fallback reason; empty for a clean Ok.
    std::string detail;
    /// ResourceGuard steps consumed by this stage.
    std::uint64_t budget_consumed = 0;
    /// Solver telemetry accounted while this stage ran (zero/empty for
    /// solver-free stages such as validation or the distribution fallback).
    SolverStats solver;
    /// Per-plan code-shape metrics, filled by the planner on the stage that
    /// accepted a plan (zero everywhere else). The fringe widths follow the
    /// shared model in support/cemit.hpp (cemit::fringe_bounds): guarded
    /// iterations on either side of the steady-state interior, summed over
    /// dimensions -- the model is symmetric, so the two match and both equal
    /// the total retiming spread. `retiming_magnitude` is sum_v |r(v)|
    /// summed over components, the quantity PlanPolicy::SmallestCode
    /// minimizes.
    std::int64_t prologue_iters = 0;
    std::int64_t epilogue_iters = 0;
    std::int64_t retiming_magnitude = 0;

    [[nodiscard]] std::string str() const;
};

class Status {
  public:
    Status() = default;  // Ok
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    [[nodiscard]] bool ok() const { return code_ == StatusCode::Ok; }
    [[nodiscard]] StatusCode code() const { return code_; }
    [[nodiscard]] const std::string& message() const { return message_; }

    /// "<code>: <message>" plus one line per stage report.
    [[nodiscard]] std::string str() const;

    /// Per-stage trace of the operation that produced this status; populated
    /// by multi-stage operations (try_plan_fusion) on failure so callers see
    /// exactly which rungs were tried and why each one fell through.
    std::vector<StageReport> stages;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/// StatusOr-style value wrapper: either a value (and an Ok status) or a
/// non-Ok Status. Accessing value() on an error throws lf::Error -- callers
/// on the never-throwing surface must branch on ok() first.
template <typename T>
class Result {
  public:
    Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
    Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
        check(!status_.ok(), "Result: error construction requires a non-Ok status");
    }

    [[nodiscard]] bool ok() const { return value_.has_value(); }
    [[nodiscard]] const Status& status() const { return status_; }

    [[nodiscard]] const T& value() const& { require(); return *value_; }
    [[nodiscard]] T& value() & { require(); return *value_; }
    [[nodiscard]] T&& value() && { require(); return *std::move(value_); }

    const T* operator->() const { require(); return &*value_; }
    const T& operator*() const& { require(); return *value_; }

  private:
    void require() const {
        check(value_.has_value(), "Result: value() on error: " + status_.str());
    }

    Status status_;  // Ok iff value_ holds a value
    std::optional<T> value_;
};

/// Sentinel step budget meaning "no limit".
inline constexpr std::uint64_t kUnlimitedSteps = ~std::uint64_t{0};

struct ResourceLimits {
    /// Solver step budget. One step = one edge-relaxation attempt in a
    /// shortest-path solver; everything else the guarded pipeline does is
    /// linear in the input and is not metered.
    std::uint64_t max_steps = kUnlimitedSteps;
    /// Wall-clock budget in milliseconds; negative = unlimited. Zero means
    /// "already expired" (useful for tests).
    std::int64_t max_wall_ms = -1;
};

/// Carries an iteration budget and a wall-clock deadline through the
/// solvers. One guard is shared across all rungs of a degradation ladder, so
/// the budget bounds the *total* work of a try_plan_fusion call. Not
/// thread-safe: a guard belongs to one planning call.
class ResourceGuard {
  public:
    ResourceGuard() = default;  // unlimited
    explicit ResourceGuard(const ResourceLimits& limits) : max_steps_(limits.max_steps) {
        if (limits.max_wall_ms >= 0) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(limits.max_wall_ms);
        }
    }

    /// Consumes `steps`; returns false once the budget or the deadline is
    /// exceeded (and keeps returning false: exhaustion is sticky, so a
    /// ladder's later rungs fail fast instead of re-spinning).
    bool consume(std::uint64_t steps = 1) {
        if (exhausted_) return false;
        consumed_ += steps;
        if (consumed_ > max_steps_) {
            exhausted_ = true;
            return false;
        }
        if (deadline_) {
            since_deadline_check_ += steps;
            if (since_deadline_check_ >= kDeadlineStride) {
                since_deadline_check_ = 0;
                if (std::chrono::steady_clock::now() >= *deadline_) {
                    exhausted_ = true;
                    return false;
                }
            }
        }
        return true;
    }

    [[nodiscard]] bool exhausted() const { return exhausted_; }
    [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

  private:
    /// The deadline is checked every stride steps -- except the first
    /// consume() after construction, which always checks, so a zero budget
    /// expires immediately and deterministically.
    static constexpr std::uint64_t kDeadlineStride = 256;

    std::uint64_t max_steps_ = kUnlimitedSteps;
    std::uint64_t consumed_ = 0;
    std::uint64_t since_deadline_check_ = kDeadlineStride;
    std::optional<std::chrono::steady_clock::time_point> deadline_;
    bool exhausted_ = false;
};

}  // namespace lf
