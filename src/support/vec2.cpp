#include "support/vec2.hpp"

#include <ostream>
#include <sstream>

namespace lf {

std::string Vec2::str() const {
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    if (is_infinite(v)) return os << "(inf,inf)";
    return os << '(' << v.x << ',' << v.y << ')';
}

}  // namespace lf
