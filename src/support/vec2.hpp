#pragma once
// Historical header: `Vec2` is now the LexVec<2> specialization of the
// dimension-generic lexicographic vector in support/lexvec.hpp. Kept so the
// many 2-D call sites (and out-of-tree users) keep their include unchanged.

#include "support/lexvec.hpp"
