#pragma once
// Two-dimensional integer vectors ordered lexicographically.
//
// The entire paper works in (outer, inner) = (i, j) iteration-distance space,
// compared lexicographically: (a,b) < (x,y) iff a < x, or a == x and b < y.
// Lexicographic order on Z^2 is a translation-invariant total order, which is
// exactly what the two-dimensional Bellman-Ford solver (paper Alg. 1) needs.

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>

namespace lf {

/// A point / distance in two-dimensional iteration space. `x` is the distance
/// along the outermost (sequential) loop, `y` along the innermost (DOALL) loop.
struct Vec2 {
    std::int64_t x = 0;
    std::int64_t y = 0;

    constexpr Vec2() = default;
    constexpr Vec2(std::int64_t x_, std::int64_t y_) : x(x_), y(y_) {}

    /// Lexicographic comparison: member order (x, then y) is exactly the
    /// lexicographic order the paper uses throughout.
    friend constexpr auto operator<=>(const Vec2&, const Vec2&) = default;

    constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }
    constexpr Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
    constexpr Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }
    constexpr Vec2 operator*(std::int64_t k) const { return {x * k, y * k}; }

    /// Inner product; used for schedule-vector tests `s . d > 0` (Lemma 4.3).
    [[nodiscard]] constexpr std::int64_t dot(const Vec2& o) const {
        return x * o.x + y * o.y;
    }

    [[nodiscard]] constexpr bool is_zero() const { return x == 0 && y == 0; }

    [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Vec2& v);

/// Sentinel "plus infinity" for lexicographic shortest paths (paper writes
/// (inf, inf) when initializing Alg. 1). Large enough to never be reached by
/// sums over realistic graphs, small enough to never overflow when added to
/// real edge weights.
inline constexpr Vec2 kVecInfinity{std::int64_t{1} << 40, std::int64_t{1} << 40};

[[nodiscard]] inline constexpr bool is_infinite(const Vec2& v) {
    return v.x >= (std::int64_t{1} << 39) || v.y >= (std::int64_t{1} << 39);
}

/// Saturating int64 addition: clamps to the int64 range instead of invoking
/// signed-overflow UB. Deterministic on every platform.
[[nodiscard]] inline std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) {
    std::int64_t out;
    if (!__builtin_add_overflow(a, b, &out)) return out;
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
}

[[nodiscard]] inline std::int64_t sat_sub_i64(std::int64_t a, std::int64_t b) {
    std::int64_t out;
    if (!__builtin_sub_overflow(a, b, &out)) return out;
    return b < 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
}

/// Component-wise saturating Vec2 arithmetic, used where adversarial inputs
/// could otherwise drive dependence-vector sums past int64 (retiming
/// application). Legality checks reject out-of-range magnitudes up front
/// (kMaxDependenceMagnitude in ldg/legality.hpp), so saturation is a
/// defense-in-depth backstop, not a steady-state code path.
[[nodiscard]] inline Vec2 sat_add(const Vec2& a, const Vec2& b) {
    return {sat_add_i64(a.x, b.x), sat_add_i64(a.y, b.y)};
}

[[nodiscard]] inline Vec2 sat_sub(const Vec2& a, const Vec2& b) {
    return {sat_sub_i64(a.x, b.x), sat_sub_i64(a.y, b.y)};
}

/// Overflow-checked component-wise addition: false (and `out` saturated)
/// when either component overflows.
[[nodiscard]] inline bool checked_add(const Vec2& a, const Vec2& b, Vec2& out) {
    const bool ox = __builtin_add_overflow(a.x, b.x, &out.x);
    const bool oy = __builtin_add_overflow(a.y, b.y, &out.y);
    if (ox || oy) {
        out = sat_add(a, b);
        return false;
    }
    return true;
}

}  // namespace lf

template <>
struct std::hash<lf::Vec2> {
    std::size_t operator()(const lf::Vec2& v) const noexcept {
        const std::size_t hx = std::hash<std::int64_t>{}(v.x);
        const std::size_t hy = std::hash<std::int64_t>{}(v.y);
        return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
    }
};
