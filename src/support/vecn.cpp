#include "support/vecn.hpp"

#include <sstream>

namespace lf {

std::string VecN::str() const {
    std::ostringstream os;
    os << '(';
    for (int k = 0; k < dim(); ++k) {
        if (k) os << ',';
        os << (*this)[k];
    }
    os << ')';
    return os.str();
}

}  // namespace lf
