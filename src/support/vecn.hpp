#pragma once
// Historical header: `VecN` is now the LexVec<kDynamicExtent> specialization
// of the dimension-generic lexicographic vector in support/lexvec.hpp.

#include "support/lexvec.hpp"
