#pragma once
// n-dimensional integer vectors under lexicographic order, for the general
// multi-dimensional MLDG of Definition 2.2. The 2-D specialization (Vec2)
// stays a separate, lighter type because the paper's main algorithms are
// two-dimensional; VecN powers the n-D generalizations in fusion/multidim.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace lf {

class VecN {
  public:
    VecN() = default;
    explicit VecN(int dim) : c_(static_cast<std::size_t>(dim), 0) {}
    VecN(std::initializer_list<std::int64_t> values) : c_(values) {}
    explicit VecN(std::vector<std::int64_t> values) : c_(std::move(values)) {}

    [[nodiscard]] int dim() const { return static_cast<int>(c_.size()); }
    [[nodiscard]] std::int64_t operator[](int k) const { return c_[static_cast<std::size_t>(k)]; }
    [[nodiscard]] std::int64_t& operator[](int k) { return c_[static_cast<std::size_t>(k)]; }

    /// Lexicographic comparison (std::vector's operator<=> is lexicographic).
    friend auto operator<=>(const VecN&, const VecN&) = default;

    VecN operator+(const VecN& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        VecN r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = (*this)[k] + o[k];
        return r;
    }
    VecN operator-(const VecN& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        VecN r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = (*this)[k] - o[k];
        return r;
    }
    VecN operator-() const {
        VecN r(dim());
        for (int k = 0; k < dim(); ++k) r[k] = -(*this)[k];
        return r;
    }
    VecN& operator+=(const VecN& o) { return *this = *this + o; }

    [[nodiscard]] std::int64_t dot(const VecN& o) const {
        check(dim() == o.dim(), "VecN: dimension mismatch");
        std::int64_t sum = 0;
        for (int k = 0; k < dim(); ++k) sum += (*this)[k] * o[k];
        return sum;
    }

    [[nodiscard]] bool is_zero() const {
        for (int k = 0; k < dim(); ++k) {
            if ((*this)[k] != 0) return false;
        }
        return true;
    }

    /// Index of the first nonzero component, or dim() when zero.
    [[nodiscard]] int leading_index() const {
        for (int k = 0; k < dim(); ++k) {
            if ((*this)[k] != 0) return k;
        }
        return dim();
    }

    [[nodiscard]] static VecN zeros(int dim) { return VecN(dim); }

    [[nodiscard]] std::string str() const;

  private:
    std::vector<std::int64_t> c_;
};

/// Overflow-checked component-wise addition: false when any component would
/// overflow int64 (`out` then holds the wrapped values; callers must treat
/// the result as poisoned and surface StatusCode::Overflow).
[[nodiscard]] inline bool checked_add(const VecN& a, const VecN& b, VecN& out) {
    check(a.dim() == b.dim(), "VecN: dimension mismatch");
    out = VecN(a.dim());
    bool overflowed = false;
    for (int k = 0; k < a.dim(); ++k) {
        std::int64_t sum = 0;
        overflowed |= __builtin_add_overflow(a[k], b[k], &sum);
        out[k] = sum;
    }
    return !overflowed;
}

}  // namespace lf
