#include "svc/breaker.hpp"

namespace lf::svc {

std::string to_string(BreakerState state) {
    switch (state) {
        case BreakerState::Closed: return "closed";
        case BreakerState::Open: return "open";
        case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

std::string to_string(AdmitMode mode) {
    switch (mode) {
        case AdmitMode::Full: return "full";
        case AdmitMode::Fallback: return "fallback";
        case AdmitMode::Probe: return "probe";
    }
    return "?";
}

CircuitBreakerBank::CircuitBreakerBank(const BreakerConfig& config) : config_(config) {
    if (config_.probe_interval < 1) config_.probe_interval = 1;
}

AdmitMode CircuitBreakerBank::admit(const std::string& klass) {
    if (config_.failure_threshold <= 0) return AdmitMode::Full;
    const std::lock_guard<std::mutex> lock(mutex_);
    ClassState& st = classes_[klass];
    if (st.state == BreakerState::Closed) return AdmitMode::Full;
    // Open or HalfOpen: mostly fallback, periodically probe.
    ++st.since_open;
    if (st.since_open % static_cast<std::uint64_t>(config_.probe_interval) == 0) {
        st.state = BreakerState::HalfOpen;
        return AdmitMode::Probe;
    }
    ++st.short_circuited;
    return AdmitMode::Fallback;
}

bool CircuitBreakerBank::closed(const std::string& klass) const {
    if (config_.failure_threshold <= 0) return true;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = classes_.find(klass);
    return it == classes_.end() || it->second.state == BreakerState::Closed;
}

void CircuitBreakerBank::record(const std::string& klass, AdmitMode mode, bool verified) {
    if (config_.failure_threshold <= 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    ClassState& st = classes_[klass];
    switch (mode) {
        case AdmitMode::Full:
            if (verified) {
                st.consecutive_failures = 0;
            } else if (++st.consecutive_failures >= config_.failure_threshold &&
                       st.state == BreakerState::Closed) {
                st.state = BreakerState::Open;
                ++st.trips;
                st.since_open = 0;
            }
            break;
        case AdmitMode::Probe:
            if (verified) {
                st.state = BreakerState::Closed;
                st.consecutive_failures = 0;
                st.since_open = 0;
            } else {
                st.state = BreakerState::Open;  // reopen; probe cadence continues
            }
            break;
        case AdmitMode::Fallback:
            // Fallback outcomes say nothing about full-ladder health.
            break;
    }
}

std::vector<BreakerSnapshot> CircuitBreakerBank::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BreakerSnapshot> out;
    out.reserve(classes_.size());
    for (const auto& [klass, st] : classes_) {
        out.push_back(BreakerSnapshot{klass, st.state, st.consecutive_failures, st.trips,
                                      st.short_circuited});
    }
    return out;  // std::map iteration is already sorted by class
}

}  // namespace lf::svc
