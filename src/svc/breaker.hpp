#pragma once
// Per-workload-class circuit breaking for the fusion service.
//
// Rationale: a single malformed or adversarial workload *class* (one
// generator, one customer, one ingest pipeline) can otherwise burn the
// whole pool's budget re-running a ladder that always fails. The breaker
// watches consecutive failures per class and, once open, short-circuits
// that class straight to the loop-distribution fallback
// (TryPlanOptions::distribution_only) -- cheap, always legal for
// program-model inputs, and it keeps the queue draining.
//
// States (classic three-state breaker, probe-counted instead of timed so
// runs are deterministic):
//
//   Closed   -- normal operation; failure_threshold consecutive full-ladder
//               failures trip it to Open.
//   Open     -- jobs of the class are admitted in Fallback mode; every
//               probe_interval-th admission is a Probe instead.
//   HalfOpen -- a probe is in flight at full ladder strength. A verified
//               probe closes the breaker; a failed one reopens it.
//
// Fallback-mode successes deliberately do NOT close the breaker: verifying
// the unfused fallback proves nothing about the full ladder's health.
//
// Thread-safe; one bank instance is shared by all service workers. Under
// concurrency the admit/record pair is not atomic (another worker may
// observe HalfOpen while a probe runs) -- the breaker is a load-shedding
// heuristic, not a lock, so approximate state transitions are acceptable.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace lf::svc {

struct BreakerConfig {
    /// Consecutive full-strength failures of one class that open its
    /// breaker; <= 0 disables circuit breaking entirely.
    int failure_threshold = 3;
    /// When open, every probe_interval-th admission of the class goes
    /// through at full strength to test recovery (minimum 1: every
    /// admission probes).
    int probe_interval = 4;
};

enum class BreakerState { Closed, Open, HalfOpen };
[[nodiscard]] std::string to_string(BreakerState state);

/// What the breaker tells a worker to do with one planning attempt.
enum class AdmitMode {
    Full,      // run the whole degradation ladder
    Fallback,  // short-circuit: distribution_only
    Probe,     // full ladder; the outcome decides whether the breaker closes
};
[[nodiscard]] std::string to_string(AdmitMode mode);

struct BreakerSnapshot {
    std::string klass;
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    /// Times the breaker tripped Closed -> Open.
    std::uint64_t trips = 0;
    /// Attempts short-circuited to the fallback while open.
    std::uint64_t short_circuited = 0;
};

class CircuitBreakerBank {
  public:
    explicit CircuitBreakerBank(const BreakerConfig& config = {});

    /// Called when a worker is about to run one planning attempt for a job
    /// of `klass`; the returned mode must be fed back through record().
    [[nodiscard]] AdmitMode admit(const std::string& klass);

    /// Reports the outcome of an attempt admitted with `mode`. `verified`
    /// means the attempt ended with an admitted (gate-passed) plan.
    void record(const std::string& klass, AdmitMode mode, bool verified);

    /// Non-mutating preview: whether the class's breaker is currently closed
    /// (a subsequent admit() would run the full ladder). Advances no probe
    /// counters and records nothing -- the service's batch prepass uses it
    /// to decide which jobs are worth planning ahead of their admit().
    [[nodiscard]] bool closed(const std::string& klass) const;

    /// Per-class states, sorted by class name (deterministic for reports).
    [[nodiscard]] std::vector<BreakerSnapshot> snapshot() const;

  private:
    struct ClassState {
        BreakerState state = BreakerState::Closed;
        int consecutive_failures = 0;
        std::uint64_t trips = 0;
        std::uint64_t short_circuited = 0;
        /// Admissions since the breaker opened (drives probe cadence).
        std::uint64_t since_open = 0;
    };

    BreakerConfig config_;
    mutable std::mutex mutex_;
    std::map<std::string, ClassState> classes_;
};

}  // namespace lf::svc
