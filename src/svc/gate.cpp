#include "svc/gate.hpp"

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/engines_nd.hpp"
#include "exec/equivalence.hpp"
#include "exec/store_nd.hpp"
#include "fusion/certify.hpp"
#include "ir/parser.hpp"
#include "front/parse.hpp"
#include "support/faultpoint.hpp"
#include "transform/distribution.hpp"
#include "transform/fused_program.hpp"

namespace lf::svc {

namespace {

void push_stage(GateResult& res, const char* stage, StatusCode code, std::string detail) {
    StageReport r;
    r.stage = stage;
    r.code = code;
    r.detail = std::move(detail);
    res.stages.push_back(std::move(r));
}

}  // namespace

GateResult admit_plan(const JobSpec& job, const FusionPlan& plan) {
    GateResult res;

    // ---- Check 1: independent certification. ----
    bool cert_ok = false;
    std::string cert_detail;
    try {
        const PlanCertificate cert = certify_plan(job.graph, plan);
        cert_ok = cert.valid;
        if (!cert.valid && !cert.violations.empty()) cert_detail = cert.violations.front();
    } catch (const std::exception& e) {
        cert_detail = std::string("certifier aborted: ") + e.what();
    }
    if (faultpoint::triggered("svc.verify.certify")) {
        cert_ok = false;
        cert_detail = "fault injected";
    }
    if (!cert_ok) {
        push_stage(res, "admit.certify", StatusCode::Internal, cert_detail);
        res.detail = "certification failed: " + cert_detail;
        return res;  // wrong plan: not retryable
    }
    res.certified = true;
    push_stage(res, "admit.certify", StatusCode::Ok, {});

    // ---- Check 2: differential replay. ----
    if (job.dsl_source.empty()) {
        res.replay = ReplayOutcome::Skipped;
        push_stage(res, "admit.replay", StatusCode::Ok, "graph-only job: nothing to replay");
        res.admitted = true;
        return res;
    }

    try {
        const ir::Program p = ir::parse_program(job.dsl_source);
        const Mldg derived = analysis::build_mldg(p);
        if (derived.num_nodes() != job.graph.num_nodes()) {
            res.replay = ReplayOutcome::Error;
            const std::string why = "job program does not match job graph (" +
                                    std::to_string(derived.num_nodes()) + " vs " +
                                    std::to_string(job.graph.num_nodes()) + " loops)";
            push_stage(res, "admit.replay", StatusCode::IllegalInput, why);
            res.detail = "replay impossible: " + why;
            return res;  // a manifest bug, not a transient fault
        }

        exec::ArrayStore golden(p, job.domain);
        (void)exec::run_original(p, job.domain, golden);

        std::optional<std::string> diff;
        if (plan.algorithm == AlgorithmUsed::DistributionFallback) {
            // The fallback's meaning is "run the program unfused"; replay
            // the maximally distributed form, which must be value-identical.
            const ir::Program distributed = transform::distribute_program(p);
            exec::ArrayStore subject(distributed, job.domain);
            (void)exec::run_original(distributed, job.domain, subject);
            diff = exec::first_difference(p, job.domain, golden, subject);
        } else {
            const transform::FusedProgram fp = transform::fuse_program(p, plan);
            exec::ArrayStore subject(p, job.domain);
            // Rowwise execution is valid for every plan level (sequential
            // lexicographic order respects all dependences >= (0,0)).
            (void)exec::run_fused_rowwise(fp, job.domain, subject);
            diff = exec::first_difference(p, job.domain, golden, subject);
        }

        bool mismatch = diff.has_value();
        std::string mismatch_detail = diff.value_or("");
        if (faultpoint::triggered("svc.verify.replay")) {
            mismatch = true;
            mismatch_detail = "fault injected: forced replay mismatch";
        }
        if (mismatch) {
            res.replay = ReplayOutcome::Mismatch;
            push_stage(res, "admit.replay", StatusCode::Internal, mismatch_detail);
            res.detail = "differential replay mismatch: " + mismatch_detail;
            return res;  // wrong plan: not retryable
        }

        res.replay = ReplayOutcome::Ok;
        push_stage(res, "admit.replay", StatusCode::Ok, {});
        res.admitted = true;
        return res;
    } catch (const std::exception& e) {
        // Parse/codegen/execution aborted (including injected codegen
        // faults): transient as far as the service knows.
        res.replay = ReplayOutcome::Error;
        res.retryable = true;
        push_stage(res, "admit.replay", StatusCode::Internal, e.what());
        res.detail = std::string("replay aborted: ") + e.what();
        return res;
    }
}

GateResult admit_plan_nd(const JobSpec& job, const NdFusionPlan& plan) {
    GateResult res;

    // ---- Check 1: independent certification (N1-N5). ----
    bool cert_ok = false;
    std::string cert_detail;
    try {
        const PlanCertificate cert = certify_plan(job.graph_nd, plan);
        cert_ok = cert.valid;
        if (!cert.valid && !cert.violations.empty()) cert_detail = cert.violations.front();
    } catch (const std::exception& e) {
        cert_detail = std::string("certifier aborted: ") + e.what();
    }
    if (faultpoint::triggered("svc.verify.certify")) {
        cert_ok = false;
        cert_detail = "fault injected";
    }
    if (!cert_ok) {
        push_stage(res, "admit.certify", StatusCode::Internal, cert_detail);
        res.detail = "certification failed: " + cert_detail;
        return res;  // wrong plan: not retryable
    }
    res.certified = true;
    push_stage(res, "admit.certify", StatusCode::Ok, {});

    // ---- Check 2: differential replay over the depth-d executors. ----
    if (job.dsl_source.empty()) {
        res.replay = ReplayOutcome::Skipped;
        push_stage(res, "admit.replay", StatusCode::Ok, "graph-only job: nothing to replay");
        res.admitted = true;
        return res;
    }

    try {
        const auto p = front::parse_basic_program<VecN>(job.dsl_source);
        const MldgN derived = analysis::build_mldg_nd(p);
        if (derived.num_nodes() != job.graph_nd.num_nodes()) {
            res.replay = ReplayOutcome::Error;
            const std::string why = "job program does not match job graph (" +
                                    std::to_string(derived.num_nodes()) + " vs " +
                                    std::to_string(job.graph_nd.num_nodes()) + " loops)";
            push_stage(res, "admit.replay", StatusCode::IllegalInput, why);
            res.detail = "replay impossible: " + why;
            return res;  // a manifest bug, not a transient fault
        }

        const exec::MdDomain dom{job.extents_nd};
        exec::MdArrayStore golden(p, dom);
        (void)exec::run_original_md(p, dom, golden);

        exec::MdArrayStore subject(p, dom);
        (void)exec::run_wavefront_md(p, plan, dom, subject);
        std::optional<std::string> diff = exec::first_difference_md(p, dom, golden, subject);

        bool mismatch = diff.has_value();
        std::string mismatch_detail = diff.value_or("");
        if (faultpoint::triggered("svc.verify.replay")) {
            mismatch = true;
            mismatch_detail = "fault injected: forced replay mismatch";
        }
        if (mismatch) {
            res.replay = ReplayOutcome::Mismatch;
            push_stage(res, "admit.replay", StatusCode::Internal, mismatch_detail);
            res.detail = "differential replay mismatch: " + mismatch_detail;
            return res;  // wrong plan: not retryable
        }

        res.replay = ReplayOutcome::Ok;
        push_stage(res, "admit.replay", StatusCode::Ok, {});
        res.admitted = true;
        return res;
    } catch (const std::exception& e) {
        res.replay = ReplayOutcome::Error;
        res.retryable = true;
        push_stage(res, "admit.replay", StatusCode::Internal, e.what());
        res.detail = std::string("replay aborted: ") + e.what();
        return res;
    }
}

}  // namespace lf::svc
