#pragma once
// The admission gate: no plan leaves the service marked Verified on the
// planner's word alone. Two independent checks must both pass:
//
//   1. fusion/certify re-derives every paper condition (C1-C6 / U1-U4)
//      from first principles against the *original* graph.
//   2. For jobs with an executable program, a differential replay: the
//      original program and the transformed one (fused nest, or the
//      distributed original for fallback plans) run on independently
//      initialized stores and must agree bit for bit
//      (exec/equivalence.hpp).
//
// A mismatch is treated as a wrong plan -- the job is quarantined
// immediately, never retried (retrying cannot make a wrong plan right,
// and the silent-wrong-plan failure mode is the one this gate exists to
// kill; cf. the baselines in src/baselines/ we compare against). A replay
// that *aborts* (exception, injected codegen fault) is transient and
// reported retryable.
//
// Fault points: "svc.verify.certify" forces the certification verdict to
// fail; "svc.verify.replay" forces a replay mismatch.

#include <string>
#include <vector>

#include "fusion/driver.hpp"
#include "svc/job.hpp"

namespace lf::svc {

struct GateResult {
    /// Both checks passed; the job may be marked Verified.
    bool admitted = false;
    bool certified = false;
    ReplayOutcome replay = ReplayOutcome::NotRun;
    /// The failure looks transient (replay aborted) rather than a wrong
    /// plan; the service may retry the attempt.
    bool retryable = false;
    /// Failure description; empty when admitted.
    std::string detail;
    /// Gate trace ("admit.certify", "admit.replay"), appended to the
    /// attempt's ladder stages.
    std::vector<StageReport> stages;
};

/// Runs the gate for `plan` against `job`. Never throws.
[[nodiscard]] GateResult admit_plan(const JobSpec& job, const FusionPlan& plan);

/// Depth-d analogue: certification via the N-D certifier, replay via the
/// N-D reference and wavefront executors over `job.extents_nd`. Same fault
/// points, stage names and outcome taxonomy as admit_plan. Never throws.
[[nodiscard]] GateResult admit_plan_nd(const JobSpec& job, const NdFusionPlan& plan);

}  // namespace lf::svc
