#include "svc/job.hpp"

namespace lf::svc {

std::string to_string(JobStatus status) {
    switch (status) {
        case JobStatus::Pending: return "pending";
        case JobStatus::Running: return "running";
        case JobStatus::Verified: return "verified";
        case JobStatus::Quarantined: return "quarantined";
    }
    return "?";
}

std::string to_string(ReplayOutcome outcome) {
    switch (outcome) {
        case ReplayOutcome::NotRun: return "not-run";
        case ReplayOutcome::Ok: return "ok";
        case ReplayOutcome::Skipped: return "skipped";
        case ReplayOutcome::Mismatch: return "mismatch";
        case ReplayOutcome::Error: return "error";
    }
    return "?";
}

const std::vector<StageReport>& JobRecord::final_trace() const {
    static const std::vector<StageReport> kEmpty;
    return attempts.empty() ? kEmpty : attempts.back().stages;
}

}  // namespace lf::svc
