#pragma once
// Job model for the concurrent fusion service (svc/service.hpp).
//
// A job is a named MLDG to plan fusion for -- from the workloads gallery,
// an ldg/serialization text, or the IR front end (svc/manifest.hpp builds
// all three). Jobs carry a workload *class* (the circuit-breaker bucket)
// and, when the MLDG came from an executable program, the DSL source that
// lets the admission gate replay original-vs-fused differentially.
//
// Every job ends in exactly one of two terminal states:
//
//   Verified    -- a plan was produced AND independently certified
//                  (fusion/certify) AND -- for executable jobs -- the
//                  differential replay agreed bit for bit.
//   Quarantined -- no admissible plan; the record keeps the full per-rung
//                  StageReport trace of the last attempt so the failure is
//                  diagnosable offline.

#include <cstdint>
#include <string>
#include <vector>

#include "exec/native.hpp"
#include "ldg/mldg.hpp"
#include "ldg/mldg_nd.hpp"
#include "support/domain.hpp"
#include "support/status.hpp"
#include "svc/plancache.hpp"

namespace lf::svc {

/// One unit of service work.
struct JobSpec {
    /// Unique within a run; also the checkpoint key, so it must not contain
    /// whitespace (manifest builders enforce this).
    std::string id;
    /// Workload class: the circuit breaker trips per class, so one poisoned
    /// family of inputs cannot drag every other job onto the fallback path.
    std::string klass = "default";
    Mldg graph;
    /// DSL source of the equivalent program; empty for graph-only jobs (the
    /// admission gate then certifies the plan but skips the replay).
    std::string dsl_source;
    /// Iteration domain for the differential replay.
    Domain domain{12, 12};
    /// Program depth (loop-nest dimension). 2 selects the classic pipeline
    /// on `graph`/`domain`; > 2 selects the N-D pipeline on `graph_nd` /
    /// `extents_nd` (svc/manifest.hpp fills these from depth-d DSL sources).
    int depth = 2;
    /// Depth-d MLDG; meaningful only when depth > 2.
    MldgN graph_nd{2};
    /// Inclusive per-level extents for the depth-d differential replay
    /// (size == depth); meaningful only when depth > 2.
    std::vector<std::int64_t> extents_nd;
    /// Per-job wall-clock deadline in milliseconds; negative = none. The
    /// network edge (net/server.hpp) fills this from the request frame.
    /// When both this and RetryPolicy::deadline_ms are set, the tighter
    /// one governs the job.
    std::int64_t deadline_ms = -1;
    /// Originating tenant; empty for local batch runs. Carried into the
    /// record so per-tenant accounting survives into the report.
    std::string tenant;
};

enum class JobStatus {
    Pending,
    Running,
    Verified,
    Quarantined,
};
[[nodiscard]] std::string to_string(JobStatus status);

/// How the admission gate's differential replay ended.
enum class ReplayOutcome {
    NotRun,    // gate never reached the replay (certification failed first)
    Ok,        // original and transformed programs agree bit for bit
    Skipped,   // nothing to replay: graph-only job, or a plan-cache hit
               // (the replay already ran when the entry was admitted; the
               // hit re-runs only the certify check)
    Mismatch,  // the stores differ -- the plan is wrong; quarantine
    Error,     // replay aborted (exception / injected fault); retryable
};
[[nodiscard]] std::string to_string(ReplayOutcome outcome);

/// One planning attempt of one job (a job makes up to
/// RetryPolicy::max_attempts of these).
struct AttemptRecord {
    int number = 1;  // 1-based
    /// Step budget this attempt ran under (escalates per retry).
    std::uint64_t max_steps = 0;
    /// Ok when the attempt produced an admitted plan; otherwise the failure
    /// class (ladder failure code, or Internal for gate rejections).
    StatusCode code = StatusCode::Ok;
    std::string detail;
    /// The circuit breaker sent this attempt straight to the
    /// loop-distribution fallback.
    bool short_circuited = false;
    /// Ladder trace of the attempt plus the admission-gate stages
    /// ("admit.certify", "admit.replay").
    std::vector<StageReport> stages;
    /// ResourceGuard steps the attempt consumed.
    std::uint64_t budget_spent = 0;
};

/// Final per-job record of a service run.
struct JobRecord {
    std::string id;
    std::string klass;
    /// Tenant the job arrived under (JobSpec::tenant); empty for local runs.
    std::string tenant;
    /// Program depth the job planned at (JobSpec::depth), for the report:
    /// plans of different dimension are never comparable or conflatable.
    int depth = 2;
    JobStatus status = JobStatus::Pending;
    std::vector<AttemptRecord> attempts;
    /// Rung that produced the last plan (lf::to_string(AlgorithmUsed));
    /// empty when no rung ever produced one.
    std::string algorithm;
    std::string level;
    bool certified = false;
    ReplayOutcome replay = ReplayOutcome::NotRun;
    /// Why the job was quarantined; empty for verified jobs.
    std::string quarantine_reason;
    /// Steps across all attempts.
    std::uint64_t total_budget_spent = 0;
    std::int64_t wall_ms = 0;
    /// Restored from a checkpoint manifest; no work was redone.
    bool from_checkpoint = false;
    /// How the plan cache served this job (svc/plancache.hpp): a hit skips
    /// the ladder (certify-only admission), a miss plans cold and may
    /// insert, a bypass never consults the cache (disabled / fault armed /
    /// distribution-only / checkpoint-restored).
    CacheOutcome cache = CacheOutcome::Bypass;
    /// Native-execution admission (exec/native.hpp): how the sandboxed
    /// compile-and-run differential check ended. NotRun unless the service
    /// ran with ServiceConfig::native_exec; a failure outcome quarantines
    /// the job even when the interpreter-level gate admitted the plan.
    exec::NativeOutcome native = exec::NativeOutcome::NotRun;
    std::string native_detail;
    /// Kernel-reported wall times (ns) when the native kernel completed.
    std::int64_t native_ns_original = 0;
    std::int64_t native_ns_fused = 0;
    /// The kernel object was served from the content-addressed compile cache.
    bool native_from_cache = false;
    /// ABI v2 parallel admission (ServiceConfig::exec_threads > 1): the
    /// lane count and tile the parallel entry verified with (0 threads =
    /// no parallel run), and its fused wall time.
    std::int32_t native_par_threads = 0;
    std::int32_t native_par_tile = 0;
    std::int64_t native_ns_fused_par = 0;
    /// Code-size observables (exec::NativeCheck): bytes of the emitted C
    /// translation unit (deterministic for a given plan + domain) and the
    /// wall time of the kernel compile call (a timing, so the JSON report
    /// gates it behind include_timings).
    std::int64_t native_source_bytes = 0;
    std::int64_t native_compile_ns = 0;

    /// The last attempt's trace -- what a quarantined job is diagnosed
    /// from. Empty only for checkpoint-restored records.
    [[nodiscard]] const std::vector<StageReport>& final_trace() const;
};

}  // namespace lf::svc
