#include "svc/manifest.hpp"

#include <iterator>

#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "ir/parser.hpp"
#include "ldg/serialization.hpp"
#include "support/diagnostics.hpp"
#include "workloads/extra.hpp"
#include "workloads/gallery.hpp"
#include "workloads/sources.hpp"

namespace lf::svc {

namespace {

void validate_id(const std::string& id) {
    check(!id.empty(), "svc manifest: job id must not be empty");
    check(id.find_first_of(" \t\n\r") == std::string::npos,
          "svc manifest: job id '" + id + "' must not contain whitespace");
}

}  // namespace

std::vector<JobSpec> gallery_jobs(const Domain& domain) {
    std::vector<JobSpec> jobs;
    for (const auto& w : workloads::paper_workloads()) {
        JobSpec job;
        job.id = w.id;
        job.klass = "paper";
        job.graph = w.graph;
        job.dsl_source = w.dsl_source;
        job.domain = domain;
        validate_id(job.id);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<JobSpec> extra_jobs(const Domain& domain) {
    std::vector<JobSpec> jobs;
    for (const auto& w : workloads::extra_workloads()) {
        JobSpec job;
        job.id = w.id;
        job.klass = "extra";
        job.graph = analysis::build_mldg(ir::parse_program(w.dsl_source));
        job.dsl_source = w.dsl_source;
        job.domain = domain;
        validate_id(job.id);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<JobSpec> full_gallery_jobs(const Domain& domain) {
    std::vector<JobSpec> jobs = gallery_jobs(domain);
    std::vector<JobSpec> extra = extra_jobs(domain);
    jobs.insert(jobs.end(), std::make_move_iterator(extra.begin()),
                std::make_move_iterator(extra.end()));
    return jobs;
}

std::vector<JobSpec> nd_jobs() {
    std::vector<JobSpec> jobs;
    const auto add = [&jobs](const char* id, std::string_view source,
                             std::vector<std::int64_t> extents) {
        JobSpec job;
        job.id = id;
        job.klass = "nd";
        const auto p = front::parse_basic_program<VecN>(source);
        job.depth = p.dim;
        job.graph_nd = analysis::build_mldg_nd(p);
        job.dsl_source = std::string(source);
        job.extents_nd = std::move(extents);
        validate_id(job.id);
        jobs.push_back(std::move(job));
    };
    add("volume3d", workloads::sources::kVolume3d, {6, 5, 7});
    add("hyper4d", workloads::sources::kHyper4d, {3, 3, 3, 4});
    return jobs;
}

JobSpec job_from_mldg_text(const std::string& id, std::string_view text,
                           const std::string& klass) {
    validate_id(id);
    JobSpec job;
    job.id = id;
    job.klass = klass;
    job.graph = parse_mldg(text);
    return job;
}

JobSpec job_from_dsl_text(const std::string& id, const std::string& source,
                          const std::string& klass, const Domain& domain) {
    validate_id(id);
    JobSpec job;
    job.id = id;
    job.klass = klass;
    // The unified front end accepts any depth: a 2-D source fills the
    // classic fields, a depth-d source the N-D ones (small default extents
    // keep the replay cheap).
    const front::AnyProgram any = front::parse_any_program(source);
    if (any.is_2d()) {
        job.graph = analysis::build_mldg(*any.p2);
        job.domain = domain;
    } else {
        job.depth = any.pn->dim;
        job.graph_nd = analysis::build_mldg_nd(*any.pn);
        job.extents_nd.assign(static_cast<std::size_t>(any.pn->dim), 6);
    }
    job.dsl_source = source;
    return job;
}

}  // namespace lf::svc
