#pragma once
// Job-manifest builders: every way an MLDG enters the repo becomes a
// service job through one of these.
//
//   * the workloads gallery (paper Section-5 set, class "paper");
//   * the extended workload set (workloads/extra.hpp, class "extra");
//   * an ldg/serialization text ("mldg name { ... }"), graph-only;
//   * a DSL program text (the IR front end), replayable.
//
// Builders validate what the service assumes: non-empty ids without
// whitespace (ids key the checkpoint manifest) and, for DSL jobs, that the
// program parses. Problems throw lf::Error -- manifest construction is
// caller input validation, not a job failure.

#include <string>
#include <string_view>
#include <vector>

#include "svc/job.hpp"

namespace lf::svc {

/// The five Section-5 paper workloads (class "paper"; fig14 is graph-only).
[[nodiscard]] std::vector<JobSpec> gallery_jobs(const Domain& domain = Domain{12, 12});

/// The extended workload set (class "extra"; all replayable).
[[nodiscard]] std::vector<JobSpec> extra_jobs(const Domain& domain = Domain{12, 12});

/// gallery_jobs + extra_jobs: the full gallery a batch run drives.
[[nodiscard]] std::vector<JobSpec> full_gallery_jobs(const Domain& domain = Domain{12, 12});

/// Depth-d jobs (class "nd"): the depth-3 volume pipeline and the depth-4
/// feedback pipeline from workloads/sources.hpp, replayable over small
/// fixed extents through the N-D executors.
[[nodiscard]] std::vector<JobSpec> nd_jobs();

/// Graph-only job from serialized MLDG text (ldg/serialization.hpp).
[[nodiscard]] JobSpec job_from_mldg_text(const std::string& id, std::string_view text,
                                         const std::string& klass = "mldg");

/// Replayable job from DSL program source (parsed + analyzed here so a
/// syntax error surfaces at manifest build time).
[[nodiscard]] JobSpec job_from_dsl_text(const std::string& id, const std::string& source,
                                        const std::string& klass = "dsl",
                                        const Domain& domain = Domain{12, 12});

}  // namespace lf::svc
