#include "svc/plancache.hpp"

namespace lf::svc {

std::string to_string(CacheOutcome outcome) {
    switch (outcome) {
        case CacheOutcome::Hit: return "hit";
        case CacheOutcome::Miss: return "miss";
        case CacheOutcome::Bypass: return "bypass";
    }
    return "unknown";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

std::uint64_t PlanCache::key_of(const Mldg& graph, const PlanOptions& options,
                                bool allow_distribution_fallback) {
    // Structural FNV-1a: exactly the information the canonical text
    // serialization (ldg/serialization.hpp) would carry -- nodes in id order
    // (name, order, body_cost), then edges in id order (endpoints + sorted
    // vector sets) -- hashed directly, without materializing the text. The
    // per-field length/count prefixes keep the encoding prefix-free, so two
    // graphs collide only if they are structurally identical (or on a true
    // 64-bit hash collision, which the certify re-check absorbs).
    std::uint64_t h = fnv1a_u64(kFnvOffset, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const Vec2& d : e.vectors) {
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.x));
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.y));
        }
    }
    // Fold in every option that changes what the ladder can produce.
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    return fnv1a(h, opts, sizeof(opts));
}

std::uint64_t PlanCache::key_of_nd(const MldgN& graph, const PlanOptions& options,
                                   bool allow_distribution_fallback) {
    // Same structural FNV-1a as key_of, prefixed with a distinct tag and the
    // graph dimension so no depth-d key can ever equal a 2-D key (whose hash
    // starts directly from the node count) or a key of another dimension.
    std::uint64_t h = fnv1a_u64(kFnvOffset, 0x6e642d706c616e00ull);  // "nd-plan" tag
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.dim()));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const VecN& d : e.vectors) {
            for (int k = 0; k < d.dim(); ++k) {
                h = fnv1a_u64(h, static_cast<std::uint64_t>(d[k]));
            }
        }
    }
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    return fnv1a(h, opts, sizeof(opts));
}

std::optional<FusionPlan> PlanCache::lookup(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->plan;
}

void PlanCache::insert(std::uint64_t key, const FusionPlan& plan) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Same content re-admitted (e.g. two identical jobs racing on
        // different workers): refresh the entry, keep one copy.
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
    Entry e;
    e.key = key;
    e.plan = plan;
    e.plan.stages.clear();  // the ladder trace belongs to the planning job
    entries_.push_front(std::move(e));
    index_[key] = entries_.begin();
    ++stats_.insertions;
}

std::optional<NdFusionPlan> PlanCache::lookup_nd(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end() || !it->second->nd_plan.has_value()) {
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->nd_plan;
}

void PlanCache::insert_nd(std::uint64_t key, const NdFusionPlan& plan) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
    Entry e;
    e.key = key;
    e.nd_plan = plan;
    entries_.push_front(std::move(e));
    index_[key] = entries_.begin();
    ++stats_.insertions;
}

void PlanCache::invalidate(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
}

PlanCacheStats PlanCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t PlanCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::uint64_t> PlanCache::lru_keys() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) keys.push_back(it->key);
    return keys;
}

}  // namespace lf::svc
