#include "svc/plancache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "support/faultpoint.hpp"
#include "svc/planstore.hpp"

namespace lf::svc {

std::string to_string(CacheOutcome outcome) {
    switch (outcome) {
        case CacheOutcome::Hit: return "hit";
        case CacheOutcome::Miss: return "miss";
        case CacheOutcome::Bypass: return "bypass";
    }
    return "unknown";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

std::string key_hex(std::uint64_t key) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
    return std::string(buf, 16);
}

/// Moves a defective plan file aside as `<name>.quarantined` (replacing any
/// previous quarantine of the same slot) so it can be inspected offline and
/// can never be served again. Best-effort: if even the rename fails, fall
/// back to removal -- a corrupt entry must not survive under its own name.
void quarantine_file(const std::string& path) {
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec) std::filesystem::remove(path, ec);
}

/// Atomic whole-file write: temp file in the same directory, flush + fsync,
/// then rename over the final name. Returns false on any failure (the temp
/// file is cleaned up; the final name is never left half-written).
bool write_file_atomic(const std::string& path, const std::string& bytes) {
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = ok && std::fflush(f) == 0;
    ok = ok && ::fsync(::fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
    }
    return ok;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return in.good() || in.eof();
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity, std::string persist_dir)
    : capacity_(capacity), persist_dir_(std::move(persist_dir)) {
    if (persist_dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    if (ec) {
        std::fprintf(stderr,
                     "svc: warning: cannot create plan store '%s' (%s); "
                     "running with the in-memory cache only\n",
                     persist_dir_.c_str(), ec.message().c_str());
        persist_dir_.clear();
    }
}

std::string PlanCache::plan_path(std::uint64_t key) const {
    return persist_dir_ + "/" + key_hex(key) + ".plan";
}

std::list<PlanCache::Entry>::iterator PlanCache::promote_locked(Entry e) {
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
    entries_.push_front(std::move(e));
    index_[entries_.front().key] = entries_.begin();
    return entries_.begin();
}

std::list<PlanCache::Entry>::iterator PlanCache::disk_load_locked(std::uint64_t key,
                                                                  bool want_nd) {
    if (persist_dir_.empty() || capacity_ == 0) return entries_.end();
    ++stats_.disk_misses;  // provisional; rolled back on a clean load below
    if (faultpoint::triggered("svc.plancache.disk")) return entries_.end();
    const std::string path = plan_path(key);
    std::string bytes;
    if (!read_file(path, bytes)) return entries_.end();  // absent: clean miss
    const planstore::DecodeResult decoded = planstore::decode_file(key, bytes);
    if (!decoded.ok || decoded.plan.has_value() == want_nd) {
        // Torn write survivor, bit flip, copy under the wrong key, or a
        // flavor that cannot serve this lookup: quarantine, never serve.
        quarantine_file(path);
        ++stats_.disk_quarantined;
        return entries_.end();
    }
    --stats_.disk_misses;
    ++stats_.disk_hits;
    Entry e;
    e.key = key;
    if (decoded.plan.has_value()) {
        e.plan = *decoded.plan;
    } else {
        e.nd_plan = *decoded.nd_plan;
    }
    return promote_locked(std::move(e));
}

void PlanCache::disk_write_locked(const Entry& e) {
    if (persist_dir_.empty()) return;
    const std::string path = plan_path(e.key);
    std::error_code ec;
    // Content-addressed and deterministic: an existing file already holds
    // these bytes, so skip the write (a quarantined slot has been renamed
    // away and takes this path's rebuild branch).
    if (std::filesystem::exists(path, ec)) return;
    if (faultpoint::triggered("svc.plancache.disk")) {
        ++stats_.disk_write_failures;
        return;
    }
    const std::string bytes = e.nd_plan.has_value()
                                  ? planstore::encode_file_nd(e.key, *e.nd_plan)
                                  : planstore::encode_file(e.key, e.plan);
    if (write_file_atomic(path, bytes)) {
        ++stats_.disk_writes;
    } else {
        ++stats_.disk_write_failures;
    }
}

std::uint64_t PlanCache::key_of(const Mldg& graph, const PlanOptions& options,
                                bool allow_distribution_fallback) {
    // Structural FNV-1a: exactly the information the canonical text
    // serialization (ldg/serialization.hpp) would carry -- nodes in id order
    // (name, order, body_cost), then edges in id order (endpoints + sorted
    // vector sets) -- hashed directly, without materializing the text. The
    // per-field length/count prefixes keep the encoding prefix-free, so two
    // graphs collide only if they are structurally identical (or on a true
    // 64-bit hash collision, which the certify re-check absorbs).
    std::uint64_t h = fnv1a_u64(kFnvOffset, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const Vec2& d : e.vectors) {
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.x));
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.y));
        }
    }
    // Fold in every option that changes what the ladder can produce.
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    return fnv1a(h, opts, sizeof(opts));
}

std::uint64_t PlanCache::key_of_nd(const MldgN& graph, const PlanOptions& options,
                                   bool allow_distribution_fallback) {
    // Same structural FNV-1a as key_of, prefixed with a distinct tag and the
    // graph dimension so no depth-d key can ever equal a 2-D key (whose hash
    // starts directly from the node count) or a key of another dimension.
    std::uint64_t h = fnv1a_u64(kFnvOffset, 0x6e642d706c616e00ull);  // "nd-plan" tag
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.dim()));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const VecN& d : e.vectors) {
            for (int k = 0; k < d.dim(); ++k) {
                h = fnv1a_u64(h, static_cast<std::uint64_t>(d[k]));
            }
        }
    }
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    return fnv1a(h, opts, sizeof(opts));
}

std::optional<FusionPlan> PlanCache::lookup(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        // Memory miss: the disk tier may still hold the plan (written by a
        // previous process, or evicted from the LRU since).
        const auto loaded = disk_load_locked(key, /*want_nd=*/false);
        if (loaded != entries_.end()) {
            ++stats_.hits;
            return loaded->plan;
        }
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->plan;
}

void PlanCache::insert(std::uint64_t key, const FusionPlan& plan) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Same content re-admitted (e.g. two identical jobs racing on
        // different workers): refresh the entry, keep one copy. The disk
        // write still runs -- it is what rebuilds a quarantined slot.
        entries_.splice(entries_.begin(), entries_, it->second);
        disk_write_locked(*it->second);
        return;
    }
    Entry e;
    e.key = key;
    e.plan = plan;
    e.plan.stages.clear();  // the ladder trace belongs to the planning job
    const auto pos = promote_locked(std::move(e));
    ++stats_.insertions;
    disk_write_locked(*pos);
}

std::optional<NdFusionPlan> PlanCache::lookup_nd(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end() || !it->second->nd_plan.has_value()) {
        if (it == index_.end()) {
            const auto loaded = disk_load_locked(key, /*want_nd=*/true);
            if (loaded != entries_.end()) {
                ++stats_.hits;
                return loaded->nd_plan;
            }
        }
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->nd_plan;
}

void PlanCache::insert_nd(std::uint64_t key, const NdFusionPlan& plan) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        entries_.splice(entries_.begin(), entries_, it->second);
        disk_write_locked(*it->second);
        return;
    }
    Entry e;
    e.key = key;
    e.nd_plan = plan;
    const auto pos = promote_locked(std::move(e));
    ++stats_.insertions;
    disk_write_locked(*pos);
}

void PlanCache::invalidate(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
    // A certify-failing entry must not resurrect from disk on the next miss.
    if (!persist_dir_.empty()) {
        std::error_code ec;
        const std::string path = plan_path(key);
        if (std::filesystem::exists(path, ec)) {
            quarantine_file(path);
            ++stats_.disk_quarantined;
        }
    }
}

PlanCacheStats PlanCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t PlanCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::uint64_t> PlanCache::lru_keys() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) keys.push_back(it->key);
    return keys;
}

}  // namespace lf::svc
