#include "svc/plancache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "support/faultpoint.hpp"
#include "svc/planstore.hpp"

namespace lf::svc {

std::string to_string(CacheOutcome outcome) {
    switch (outcome) {
        case CacheOutcome::Hit: return "hit";
        case CacheOutcome::Miss: return "miss";
        case CacheOutcome::Bypass: return "bypass";
    }
    return "unknown";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

std::string key_hex(std::uint64_t key) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
    return std::string(buf, 16);
}

/// Moves a defective plan file aside as `<name>.quarantined` (replacing any
/// previous quarantine of the same slot) so it can be inspected offline and
/// can never be served again. Best-effort: if even the rename fails, fall
/// back to removal -- a corrupt entry must not survive under its own name.
void quarantine_file(const std::string& path) {
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec) std::filesystem::remove(path, ec);
}

/// Atomic whole-file write: temp file in the same directory, flush + fsync,
/// then rename over the final name. Returns false on any failure (the temp
/// file is cleaned up; the final name is never left half-written).
bool write_file_atomic(const std::string& path, const std::string& bytes) {
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = ok && std::fflush(f) == 0;
    ok = ok && ::fsync(::fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
    }
    return ok;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return in.good() || in.eof();
}

// ---- Distance-vector sidecar codec ----
//
// Text format, one record per line, checksummed (FNV-1a 64 over everything
// before the trailing `sum` line, including its newline):
//
//   lfdist v1 <16-hex-key>
//   n <num_nodes> <num_edges>
//   e <from> <to> <nvectors> <x> <y> ...        (one line per edge)
//   phase1 <count> <v> ...                      (count 0 = never solved)
//   acyclic <count> <x> <y> ...
//   llofra <count> <x> <y> ...
//   sum <16-hex-checksum>
//
// Strict decoding: wrong magic, wrong key, count mismatches, trailing
// garbage or a checksum mismatch all reject the file (the caller then
// quarantines it). Losing a sidecar only costs a warm-start opportunity,
// never a plan.

std::string encode_dist(std::uint64_t key, const PlanSignature& sig,
                        const LadderArtifacts& art) {
    std::ostringstream os;
    os << "lfdist v1 " << key_hex(key) << '\n';
    os << "n " << sig.num_nodes << ' ' << sig.efrom.size() << '\n';
    for (std::size_t e = 0; e < sig.efrom.size(); ++e) {
        os << "e " << sig.efrom[e] << ' ' << sig.eto[e] << ' ' << sig.edge_vectors[e].size();
        for (const Vec2& d : sig.edge_vectors[e]) os << ' ' << d.x << ' ' << d.y;
        os << '\n';
    }
    os << "phase1 " << art.phase1.size();
    for (std::int64_t v : art.phase1) os << ' ' << v;
    os << '\n';
    os << "acyclic " << art.acyclic.size();
    for (const Vec2& v : art.acyclic) os << ' ' << v.x << ' ' << v.y;
    os << '\n';
    os << "llofra " << art.llofra.size();
    for (const Vec2& v : art.llofra) os << ' ' << v.x << ' ' << v.y;
    os << '\n';
    const std::string body = os.str();
    return body + "sum " + key_hex(fnv1a(kFnvOffset, body.data(), body.size())) + "\n";
}

bool decode_dist(std::uint64_t key, const std::string& bytes, PlanSignature& sig,
                 LadderArtifacts& art) {
    const std::size_t sum_at = bytes.rfind("sum ");
    if (sum_at == std::string::npos || sum_at == 0 || bytes[sum_at - 1] != '\n') return false;
    const std::string body = bytes.substr(0, sum_at);
    if (bytes.compare(sum_at, std::string::npos,
                      "sum " + key_hex(fnv1a(kFnvOffset, body.data(), body.size())) + "\n") !=
        0) {
        return false;
    }
    std::istringstream is(body);
    std::string word;
    std::string hex;
    if (!(is >> word >> hex) || word != "lfdist" || hex != "v1") return false;
    if (!(is >> hex) || hex != key_hex(key)) return false;
    std::size_t ne = 0;
    if (!(is >> word >> sig.num_nodes >> ne) || word != "n" || sig.num_nodes < 0) return false;
    const auto node_ok = [&](std::int64_t v) {
        return v >= 0 && v < static_cast<std::int64_t>(sig.num_nodes);
    };
    sig.efrom.resize(ne);
    sig.eto.resize(ne);
    sig.edge_vectors.resize(ne);
    for (std::size_t e = 0; e < ne; ++e) {
        std::size_t nv = 0;
        if (!(is >> word >> sig.efrom[e] >> sig.eto[e] >> nv) || word != "e" ||
            !node_ok(sig.efrom[e]) || !node_ok(sig.eto[e])) {
            return false;
        }
        sig.edge_vectors[e].resize(nv);
        for (Vec2& d : sig.edge_vectors[e]) {
            if (!(is >> d.x >> d.y)) return false;
        }
    }
    const auto read_scalars = [&](const char* tag, std::vector<std::int64_t>& out) {
        std::size_t count = 0;
        if (!(is >> word >> count) || word != tag) return false;
        if (count != 0 && count != static_cast<std::size_t>(sig.num_nodes)) return false;
        out.resize(count);
        for (std::int64_t& v : out) {
            if (!(is >> v)) return false;
        }
        return true;
    };
    const auto read_vecs = [&](const char* tag, std::vector<Vec2>& out) {
        std::size_t count = 0;
        if (!(is >> word >> count) || word != tag) return false;
        if (count != 0 && count != static_cast<std::size_t>(sig.num_nodes)) return false;
        out.resize(count);
        for (Vec2& v : out) {
            if (!(is >> v.x >> v.y)) return false;
        }
        return true;
    };
    if (!read_scalars("phase1", art.phase1) || !read_vecs("acyclic", art.acyclic) ||
        !read_vecs("llofra", art.llofra)) {
        return false;
    }
    return !(is >> word);  // trailing garbage rejects
}

}  // namespace

PlanSignature PlanSignature::of(const Mldg& graph) {
    PlanSignature sig;
    sig.num_nodes = graph.num_nodes();
    const std::size_t ne = graph.edges().size();
    sig.efrom.reserve(ne);
    sig.eto.reserve(ne);
    sig.edge_vectors.reserve(ne);
    for (const auto& e : graph.edges()) {
        sig.efrom.push_back(e.from);
        sig.eto.push_back(e.to);
        sig.edge_vectors.push_back(e.vectors);
    }
    return sig;
}

std::uint64_t PlanSignature::skeleton_hash() const {
    std::uint64_t h = fnv1a_u64(kFnvOffset, static_cast<std::uint64_t>(num_nodes));
    h = fnv1a_u64(h, efrom.size());
    for (std::size_t e = 0; e < efrom.size(); ++e) {
        h = fnv1a_u64(h, static_cast<std::uint64_t>(efrom[e]));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(eto[e]));
    }
    return h;
}

PlanCache::PlanCache(std::size_t capacity, std::string persist_dir)
    : capacity_(capacity), persist_dir_(std::move(persist_dir)) {
    if (persist_dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    if (ec) {
        std::fprintf(stderr,
                     "svc: warning: cannot create plan store '%s' (%s); "
                     "running with the in-memory cache only\n",
                     persist_dir_.c_str(), ec.message().c_str());
        persist_dir_.clear();
    }
}

std::string PlanCache::plan_path(std::uint64_t key) const {
    return persist_dir_ + "/" + key_hex(key) + ".plan";
}

std::string PlanCache::dist_path(std::uint64_t key) const {
    return persist_dir_ + "/" + key_hex(key) + ".dist";
}

std::list<PlanCache::Entry>::iterator PlanCache::promote_locked(Entry e) {
    if (entries_.size() >= capacity_) {
        unindex_skeleton_locked(entries_.back());
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
    entries_.push_front(std::move(e));
    index_[entries_.front().key] = entries_.begin();
    return entries_.begin();
}

void PlanCache::index_skeleton_locked(const Entry& e) {
    if (!e.delta_capable()) return;
    std::vector<std::uint64_t>& bucket = skeletons_[e.sig.skeleton_hash()];
    if (std::find(bucket.begin(), bucket.end(), e.key) == bucket.end()) bucket.push_back(e.key);
}

void PlanCache::unindex_skeleton_locked(const Entry& e) {
    if (!e.delta_capable()) return;
    const auto it = skeletons_.find(e.sig.skeleton_hash());
    if (it == skeletons_.end()) return;
    std::erase(it->second, e.key);
    if (it->second.empty()) skeletons_.erase(it);
}

void PlanCache::load_dist_locked(Entry& e) {
    if (persist_dir_.empty()) return;
    if (faultpoint::triggered("svc.plancache.disk")) return;
    const std::string path = dist_path(e.key);
    std::string bytes;
    if (!read_file(path, bytes)) return;  // no sidecar: entry just stays cold
    PlanSignature sig;
    LadderArtifacts art;
    if (!decode_dist(e.key, bytes, sig, art) || art.empty()) {
        quarantine_file(path);
        ++stats_.dist_quarantined;
        return;
    }
    e.sig = std::move(sig);
    e.artifacts = std::move(art);
    ++stats_.dist_loads;
}

std::list<PlanCache::Entry>::iterator PlanCache::disk_load_locked(std::uint64_t key,
                                                                  bool want_nd) {
    if (persist_dir_.empty() || capacity_ == 0) return entries_.end();
    ++stats_.disk_misses;  // provisional; rolled back on a clean load below
    if (faultpoint::triggered("svc.plancache.disk")) return entries_.end();
    const std::string path = plan_path(key);
    std::string bytes;
    if (!read_file(path, bytes)) return entries_.end();  // absent: clean miss
    const planstore::DecodeResult decoded = planstore::decode_file(key, bytes);
    if (!decoded.ok || decoded.plan.has_value() == want_nd) {
        // Torn write survivor, bit flip, copy under the wrong key, or a
        // flavor that cannot serve this lookup: quarantine, never serve.
        quarantine_file(path);
        ++stats_.disk_quarantined;
        return entries_.end();
    }
    --stats_.disk_misses;
    ++stats_.disk_hits;
    Entry e;
    e.key = key;
    if (decoded.plan.has_value()) {
        e.plan = *decoded.plan;
        // A 2-D plan may have a distance-vector sidecar next to it; reloading
        // it restores the entry's delta-solve capability across restarts.
        load_dist_locked(e);
    } else {
        e.nd_plan = *decoded.nd_plan;
    }
    const auto pos = promote_locked(std::move(e));
    index_skeleton_locked(*pos);
    return pos;
}

void PlanCache::disk_write_locked(const Entry& e) {
    if (persist_dir_.empty()) return;
    // Delta-capable entries also carry a sidecar of feasible distances next
    // to the plan file. Pure optimization state: its failure costs a counter,
    // never the entry. Content-addressed like the plan, so an existing file
    // already holds these bytes and is left alone.
    const auto write_dist = [&] {
        if (!e.delta_capable()) return;
        const std::string dpath = dist_path(e.key);
        std::error_code dec;
        if (std::filesystem::exists(dpath, dec)) return;
        if (write_file_atomic(dpath, encode_dist(e.key, e.sig, e.artifacts))) {
            ++stats_.dist_writes;
        } else {
            ++stats_.disk_write_failures;
        }
    };
    const std::string path = plan_path(e.key);
    std::error_code ec;
    // Content-addressed and deterministic: an existing file already holds
    // these bytes, so skip the write (a quarantined slot has been renamed
    // away and takes this path's rebuild branch). The sidecar may still be
    // missing (entry re-admitted with artifacts it lacked before).
    if (std::filesystem::exists(path, ec)) {
        if (!faultpoint::triggered("svc.plancache.disk")) write_dist();
        return;
    }
    if (faultpoint::triggered("svc.plancache.disk")) {
        ++stats_.disk_write_failures;
        return;
    }
    const std::string bytes = e.nd_plan.has_value()
                                  ? planstore::encode_file_nd(e.key, *e.nd_plan)
                                  : planstore::encode_file(e.key, e.plan);
    if (write_file_atomic(path, bytes)) {
        ++stats_.disk_writes;
    } else {
        ++stats_.disk_write_failures;
        return;
    }
    write_dist();
}

std::uint64_t PlanCache::key_of(const Mldg& graph, const PlanOptions& options,
                                bool allow_distribution_fallback) {
    // Structural FNV-1a: exactly the information the canonical text
    // serialization (ldg/serialization.hpp) would carry -- nodes in id order
    // (name, order, body_cost), then edges in id order (endpoints + sorted
    // vector sets) -- hashed directly, without materializing the text. The
    // per-field length/count prefixes keep the encoding prefix-free, so two
    // graphs collide only if they are structurally identical (or on a true
    // 64-bit hash collision, which the certify re-check absorbs).
    std::uint64_t h = fnv1a_u64(kFnvOffset, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const Vec2& d : e.vectors) {
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.x));
            h = fnv1a_u64(h, static_cast<std::uint64_t>(d.y));
        }
    }
    // Fold in every option that changes what the ladder can produce. The
    // plan policy is folded only when it differs from the default, so every
    // FastestSchedule key is bit-identical to the pre-policy cache key (old
    // persistent tiers stay warm); a non-default policy gets its own key
    // space and can never conflate with the default's entries.
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    h = fnv1a(h, opts, sizeof(opts));
    if (options.policy != PlanPolicy::FastestSchedule) {
        h = fnv1a_u64(h, static_cast<std::uint64_t>(options.policy));
    }
    return h;
}

std::uint64_t PlanCache::key_of_nd(const MldgN& graph, const PlanOptions& options,
                                   bool allow_distribution_fallback) {
    // Same structural FNV-1a as key_of, prefixed with a distinct tag and the
    // graph dimension so no depth-d key can ever equal a 2-D key (whose hash
    // starts directly from the node count) or a key of another dimension.
    std::uint64_t h = fnv1a_u64(kFnvOffset, 0x6e642d706c616e00ull);  // "nd-plan" tag
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.dim()));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_nodes()));
    for (int v = 0; v < graph.num_nodes(); ++v) {
        const auto& node = graph.node_ref(v);
        h = fnv1a_u64(h, node.name.size());
        h = fnv1a(h, node.name.data(), node.name.size());
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.order));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(node.body_cost));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(graph.num_edges()));
    for (int eid = 0; eid < graph.num_edges(); ++eid) {
        const auto& e = graph.edge_ref(eid);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.from));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(e.to));
        h = fnv1a_u64(h, e.vectors.size());
        for (const VecN& d : e.vectors) {
            for (int k = 0; k < d.dim(); ++k) {
                h = fnv1a_u64(h, static_cast<std::uint64_t>(d[k]));
            }
        }
    }
    const char opts[2] = {options.compact_prologue ? '\1' : '\0',
                          allow_distribution_fallback ? '\1' : '\0'};
    h = fnv1a(h, opts, sizeof(opts));
    if (options.policy != PlanPolicy::FastestSchedule) {
        // Same default-transparent policy fold as key_of.
        h = fnv1a_u64(h, static_cast<std::uint64_t>(options.policy));
    }
    return h;
}

std::optional<FusionPlan> PlanCache::lookup(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        // Memory miss: the disk tier may still hold the plan (written by a
        // previous process, or evicted from the LRU since).
        const auto loaded = disk_load_locked(key, /*want_nd=*/false);
        if (loaded != entries_.end()) {
            ++stats_.hits;
            return loaded->plan;
        }
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->plan;
}

void PlanCache::insert(std::uint64_t key, const FusionPlan& plan, const Mldg* graph,
                       const LadderArtifacts* artifacts) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Same content re-admitted (e.g. two identical jobs racing on
        // different workers): refresh the entry, keep one copy. The disk
        // write still runs -- it is what rebuilds a quarantined slot. If this
        // admission brought delta-solve material the entry lacked, keep it.
        Entry& held = *it->second;
        if (!held.delta_capable() && graph != nullptr && artifacts != nullptr &&
            !artifacts->empty()) {
            held.sig = PlanSignature::of(*graph);
            held.artifacts = *artifacts;
            index_skeleton_locked(held);
        }
        entries_.splice(entries_.begin(), entries_, it->second);
        disk_write_locked(held);
        return;
    }
    Entry e;
    e.key = key;
    e.plan = plan;
    e.plan.stages.clear();  // the ladder trace belongs to the planning job
    if (graph != nullptr && artifacts != nullptr && !artifacts->empty()) {
        e.sig = PlanSignature::of(*graph);
        e.artifacts = *artifacts;
    }
    const auto pos = promote_locked(std::move(e));
    index_skeleton_locked(*pos);
    ++stats_.insertions;
    disk_write_locked(*pos);
}

bool PlanCache::contains(std::uint64_t key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(key) != index_.end();
}

std::optional<LadderWarmHints> PlanCache::near_miss_hints(const Mldg& graph, int max_edge_diff) {
    if (capacity_ == 0 || max_edge_diff <= 0) return std::nullopt;
    const PlanSignature want = PlanSignature::of(graph);
    if (want.empty()) return std::nullopt;
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* best = nullptr;
    std::vector<std::size_t> best_diff;  // edge ids whose vector sets differ
    const auto bucket = skeletons_.find(want.skeleton_hash());
    if (bucket != skeletons_.end()) {
        for (const std::uint64_t key : bucket->second) {
            const auto it = index_.find(key);
            if (it == index_.end() || !it->second->delta_capable()) continue;
            const Entry& cand = *it->second;
            // Exact-skeleton guard: the bucket hash can collide.
            if (cand.sig.num_nodes != want.num_nodes || cand.sig.efrom != want.efrom ||
                cand.sig.eto != want.eto) {
                continue;
            }
            std::vector<std::size_t> diff;
            for (std::size_t e = 0; e < want.efrom.size(); ++e) {
                if (cand.sig.edge_vectors[e] != want.edge_vectors[e]) {
                    diff.push_back(e);
                    if (diff.size() > static_cast<std::size_t>(max_edge_diff)) break;
                }
            }
            if (diff.empty()) continue;  // exact match: that is a cache hit, not a near miss
            if (diff.size() > static_cast<std::size_t>(max_edge_diff)) continue;
            // Fewest differing edges wins; insertion order breaks ties (the
            // bucket preserves it), keeping the choice deterministic.
            if (best == nullptr || diff.size() < best_diff.size()) {
                best = &cand;
                best_diff = std::move(diff);
            }
        }
    }
    if (best == nullptr) {
        ++stats_.near_miss_misses;
        return std::nullopt;
    }
    // Reset region R: vertices reachable (along constraint edges, from -> to)
    // from a differing edge's head. For v outside R every path of the new
    // system avoids the differing edges entirely, so the neighbor's fixpoint
    // distance is exactly the new fixpoint there; inside R, 0 is a legal
    // over-estimate (every fixpoint of these all-zero-source systems is
    // <= 0). Either way F_new <= d0 <= 0 holds pointwise, which is the
    // solver's warm-start legality condition -- the re-plan lands on the
    // canonical fixpoint and is bit-identical to a cold plan.
    const int n = want.num_nodes;
    std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
    for (std::size_t e = 0; e < want.efrom.size(); ++e) {
        out[static_cast<std::size_t>(want.efrom[e])].push_back(want.eto[e]);
    }
    std::vector<unsigned char> reset(static_cast<std::size_t>(n), 0);
    std::vector<int> frontier;
    for (const std::size_t e : best_diff) {
        const int head = want.eto[e];
        if (reset[static_cast<std::size_t>(head)] == 0) {
            reset[static_cast<std::size_t>(head)] = 1;
            frontier.push_back(head);
        }
    }
    for (std::size_t q = 0; q < frontier.size(); ++q) {
        for (const int v : out[static_cast<std::size_t>(frontier[q])]) {
            if (reset[static_cast<std::size_t>(v)] == 0) {
                reset[static_cast<std::size_t>(v)] = 1;
                frontier.push_back(v);
            }
        }
    }
    LadderWarmHints hints;
    const LadderArtifacts& art = best->artifacts;
    if (art.phase1.size() == static_cast<std::size_t>(n)) {
        hints.phase1.resize(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            hints.phase1[static_cast<std::size_t>(v)] =
                reset[static_cast<std::size_t>(v)] ? 0 : art.phase1[static_cast<std::size_t>(v)];
        }
    }
    if (art.acyclic.size() == static_cast<std::size_t>(n)) {
        hints.acyclic.resize(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            hints.acyclic[static_cast<std::size_t>(v)] =
                reset[static_cast<std::size_t>(v)] ? Vec2{0, 0}
                                                   : art.acyclic[static_cast<std::size_t>(v)];
        }
    }
    if (art.llofra.size() == static_cast<std::size_t>(n)) {
        hints.llofra.resize(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
            hints.llofra[static_cast<std::size_t>(v)] =
                reset[static_cast<std::size_t>(v)] ? Vec2{0, 0}
                                                   : art.llofra[static_cast<std::size_t>(v)];
        }
    }
    if (hints.empty()) {
        ++stats_.near_miss_misses;
        return std::nullopt;
    }
    ++stats_.near_miss_hits;
    return hints;
}

std::optional<NdFusionPlan> PlanCache::lookup_nd(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end() || !it->second->nd_plan.has_value()) {
        if (it == index_.end()) {
            const auto loaded = disk_load_locked(key, /*want_nd=*/true);
            if (loaded != entries_.end()) {
                ++stats_.hits;
                return loaded->nd_plan;
            }
        }
        ++stats_.misses;
        return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->nd_plan;
}

void PlanCache::insert_nd(std::uint64_t key, const NdFusionPlan& plan) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        entries_.splice(entries_.begin(), entries_, it->second);
        disk_write_locked(*it->second);
        return;
    }
    Entry e;
    e.key = key;
    e.nd_plan = plan;
    const auto pos = promote_locked(std::move(e));
    ++stats_.insertions;
    disk_write_locked(*pos);
}

void PlanCache::invalidate(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    unindex_skeleton_locked(*it->second);
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
    // A certify-failing entry must not resurrect from disk on the next miss,
    // and its sidecar is equally suspect: neither may seed future plans.
    if (!persist_dir_.empty()) {
        std::error_code ec;
        const std::string path = plan_path(key);
        if (std::filesystem::exists(path, ec)) {
            quarantine_file(path);
            ++stats_.disk_quarantined;
        }
        const std::string dpath = dist_path(key);
        if (std::filesystem::exists(dpath, ec)) {
            quarantine_file(dpath);
            ++stats_.dist_quarantined;
        }
    }
}

PlanCacheStats PlanCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t PlanCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::uint64_t> PlanCache::lru_keys() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) keys.push_back(it->key);
    return keys;
}

}  // namespace lf::svc
