#pragma once
// Content-addressed plan cache for the fusion service.
//
// The degradation ladder is deterministic: the same MLDG under the same
// PlanOptions always yields the same plan. Batch traffic (--storm-scale
// runs, recompilations of a hot workload) therefore re-pays the full
// ladder for content it has already planned. The cache closes that gap:
//
//   canonical MLDG content (the same node/edge fields the text
//   serialization carries, hashed structurally) + the planning options
//   -> 64-bit FNV-1a content hash -> memoized plan.
//
// Only plans that the admission gate fully admitted (job ended Verified)
// are ever inserted, and a hit does NOT shortcut admission entirely: the
// service re-runs the gate's cheap certify check (fusion/certify) against
// the job's own graph, so a corrupted or colliding entry can never turn
// into a silently-wrong Verified job -- it is dropped and the job replans
// cold. The differential replay is not repeated on a hit; it already ran
// when the entry was admitted, and the certify check pins the plan to the
// *current* job's graph.
//
// Bypass rules (callers, see service.cpp): jobs running with any fault
// point armed, and jobs short-circuited to distribution_only, never read
// or write the cache -- a faulted run must exercise the real pipeline, and
// its outcome must never poison future unfaulted runs. The
// "svc.plancache" fault point forces a bypass on demand.
//
// Eviction is strict LRU over a bounded capacity; both lookup hits and
// insertions refresh recency, so the eviction order for a fixed access
// sequence is deterministic (pinned by tests/test_plancache.cpp).
// All entry points are thread-safe (one mutex; the cache sits well off the
// solver hot path -- one lookup/insert per job, not per solve).
//
// Persistent tier (optional, `persist_dir` non-empty): every inserted plan
// is also written to `<dir>/<16-hex-key>.plan` -- a checksummed text image
// (svc/planstore.hpp) written *atomically* (temp file, flush, fsync,
// rename), so a kill -9 can leave at worst a stale temp file, never a torn
// `.plan`. A memory miss consults the disk tier lazily: a file that decodes
// cleanly (magic, key, checksum, strict fields) is promoted back into the
// LRU and served as a hit; anything else -- truncated, bit-flipped, renamed
// under the wrong key -- is *quarantined* (renamed to `<name>.quarantined`)
// and counted, and the job replans cold, which rewrites the entry: corrupt
// state heals instead of wedging. Eviction from the memory LRU leaves the
// disk file in place -- that is the tier's point: warm state survives both
// eviction and process death. The "svc.plancache.disk" fault point makes
// disk reads miss and disk writes fail on demand.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "fusion/driver.hpp"
#include "fusion/ladder.hpp"
#include "fusion/multidim.hpp"

namespace lf::svc {

/// Structural signature of a cached 2-D job's constraint system: the edge
/// skeleton (node count + endpoints) plus every edge's dependence-vector
/// set. This is exactly the information the planning ladder's constraint
/// systems depend on -- node names, order and body costs are irrelevant and
/// deliberately not stored -- so it is enough both to find structural
/// near-misses and to BFS the region a differing edge can affect when
/// deriving a delta warm-start.
struct PlanSignature {
    int num_nodes = 0;
    std::vector<int> efrom;
    std::vector<int> eto;
    /// Per-edge sorted vector sets, as the MLDG stores them.
    std::vector<std::vector<Vec2>> edge_vectors;

    [[nodiscard]] static PlanSignature of(const Mldg& graph);
    /// Hash of (num_nodes, efrom, eto) only -- buckets graphs that can share
    /// a lockstep ladder (same skeleton, any bounds).
    [[nodiscard]] std::uint64_t skeleton_hash() const;
    [[nodiscard]] bool empty() const { return num_nodes == 0; }
};

/// Where a job's plan came from, for the run report.
enum class CacheOutcome {
    Hit,     // plan served from the cache (ladder skipped)
    Miss,    // cache consulted, no entry; job planned cold and may insert
    Bypass,  // cache not consulted (disabled, fault armed, distribution-only)
};
[[nodiscard]] std::string to_string(CacheOutcome outcome);

/// Monotonic counters since construction. Snapshot via PlanCache::stats().
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Hits whose entry failed the certify re-check and was dropped (the
    /// job then replans cold). Nonzero only under memory corruption, a
    /// 64-bit content-hash collision, or an injected certify fault.
    std::uint64_t invalidated = 0;
    /// Persistent tier (all zero when no persist_dir is configured).
    /// Memory misses served by a cleanly-decoded disk entry (also counted
    /// in `hits`: the cache as a whole served the plan).
    std::uint64_t disk_hits = 0;
    /// Memory misses the disk tier could not serve either.
    std::uint64_t disk_misses = 0;
    /// Plan files atomically written (insertions and corrupt-entry rebuilds).
    std::uint64_t disk_writes = 0;
    /// Atomic writes that failed (IO error or injected svc.plancache.disk
    /// fault); the in-memory entry stays valid, only persistence is lost.
    std::uint64_t disk_write_failures = 0;
    /// Corrupt/truncated/mis-keyed entries detected, renamed to
    /// `*.quarantined`, and left for offline inspection; the slot rebuilds
    /// on the next insert.
    std::uint64_t disk_quarantined = 0;
    /// Delta re-planning (near_miss_hints): queries that found a cached
    /// structural neighbor within the edge-diff budget and derived a
    /// warm-start, vs. queries that found none.
    std::uint64_t near_miss_hits = 0;
    std::uint64_t near_miss_misses = 0;
    /// Distance-vector sidecars (`<key>.dist`) atomically written alongside
    /// plan files (failures count into disk_write_failures).
    std::uint64_t dist_writes = 0;
    /// Sidecars reloaded from disk when a plan file was promoted back into
    /// the LRU (restores the entry's delta-solve capability after restart).
    std::uint64_t dist_loads = 0;
    /// Sidecars renamed to `*.quarantined` -- corrupt on load, or belonging
    /// to an invalidated entry; the plan tier stays independent, the slot
    /// just cannot seed delta re-plans until re-admitted.
    std::uint64_t dist_quarantined = 0;
};

class PlanCache {
  public:
    /// `capacity` = maximum resident plans; 0 disables the cache entirely
    /// (lookup always misses, insert is a no-op, and the persistent tier is
    /// not consulted). `persist_dir` non-empty enables the disk tier under
    /// that directory (created if absent; creation failure degrades to a
    /// memory-only cache with a stderr warning -- persistence is an
    /// optimization, never a reason to fail a run).
    explicit PlanCache(std::size_t capacity, std::string persist_dir = {});

    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /// Content hash of (graph, planning options). FNV-1a 64 over the
    /// canonical node/edge content (what the text serialization would emit,
    /// hashed without building the text) -- structurally identical jobs
    /// share a key regardless of job id.
    [[nodiscard]] static std::uint64_t key_of(const Mldg& graph, const PlanOptions& options,
                                              bool allow_distribution_fallback);

    /// Depth-d analogue of key_of. The hash starts from a distinct tag and
    /// folds in the graph dimension before any content, so a depth-d graph
    /// can never share a key with a structurally-similar 2-D graph (or with
    /// a depth-d' graph of another dimension) -- plans of different
    /// dimension are never conflated.
    [[nodiscard]] static std::uint64_t key_of_nd(const MldgN& graph, const PlanOptions& options,
                                                 bool allow_distribution_fallback);

    /// Returns a copy of the cached plan and refreshes its recency; counts
    /// a hit or a miss. The returned plan's `stages` is empty (the original
    /// ladder trace belongs to the job that planned it; the hitting job
    /// records its own cache-path trace).
    [[nodiscard]] std::optional<FusionPlan> lookup(std::uint64_t key);

    /// Inserts (or refreshes) the plan under `key`, evicting the least
    /// recently used entry when at capacity. The stored copy drops the
    /// per-rung `stages` trace. No-op at capacity 0.
    ///
    /// `graph` + `artifacts` (both or neither) additionally store the job's
    /// structural signature and the ladder's feasible distance vectors, which
    /// makes the entry a candidate seed for near_miss_hints and writes the
    /// `<key>.dist` sidecar on the persistent tier.
    void insert(std::uint64_t key, const FusionPlan& plan, const Mldg* graph = nullptr,
                const LadderArtifacts* artifacts = nullptr);

    /// Non-mutating membership peek: no recency refresh, no stats, no disk
    /// consultation. The service's batch prepass uses it to skip jobs whose
    /// upcoming lookup() will be served from memory anyway.
    [[nodiscard]] bool contains(std::uint64_t key) const;

    /// Delta re-planning: finds a cached entry whose graph shares `graph`'s
    /// constraint skeleton and differs on at most `max_edge_diff` edges'
    /// dependence-vector sets, and derives ladder warm-start potentials from
    /// its stored fixpoints: every vertex reachable (along constraint edges,
    /// from -> to) from a differing edge's head is reset to zero, the rest
    /// keep the neighbor's distances -- provably equal to the target
    /// fixpoint there, so the re-plan is bit-identical to a cold plan (see
    /// graph/bellman_ford.hpp on warm-start legality). Exact matches are
    /// skipped (those are cache hits, not near misses); candidates with the
    /// fewest differing edges win, ties broken by insertion order.
    [[nodiscard]] std::optional<LadderWarmHints> near_miss_hints(const Mldg& graph,
                                                                 int max_edge_diff);

    /// Depth-d lookup: returns the cached N-D plan (recency refreshed) or
    /// nullopt. An entry that holds a 2-D plan under the key (impossible
    /// short of a hash collision) counts as a miss.
    [[nodiscard]] std::optional<NdFusionPlan> lookup_nd(std::uint64_t key);

    /// Depth-d insert: same LRU/eviction/stats behavior as insert.
    void insert_nd(std::uint64_t key, const NdFusionPlan& plan);

    /// Drops the entry (a hit that failed the certify re-check).
    void invalidate(std::uint64_t key);

    [[nodiscard]] PlanCacheStats stats() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const std::string& persist_dir() const { return persist_dir_; }

    /// Path the persistent tier uses for `key` (valid only with a persist
    /// dir). Exposed so tests and drills can corrupt entries on purpose.
    [[nodiscard]] std::string plan_path(std::uint64_t key) const;

    /// Path of `key`'s distance-vector sidecar (`<16-hex-key>.dist`): the
    /// checksummed text image of the entry's PlanSignature and
    /// LadderArtifacts, written atomically next to the plan file and
    /// quarantined (renamed `*.quarantined`) when it fails to decode.
    [[nodiscard]] std::string dist_path(std::uint64_t key) const;

    /// Keys in eviction order (least recently used first). For tests.
    [[nodiscard]] std::vector<std::uint64_t> lru_keys() const;

  private:
    struct Entry {
        std::uint64_t key = 0;
        FusionPlan plan;
        /// Set for depth-d entries; `plan` is then unused.
        std::optional<NdFusionPlan> nd_plan;
        /// Delta-solve seed material (2-D entries inserted with a graph and
        /// ladder artifacts only; empty otherwise).
        PlanSignature sig;
        LadderArtifacts artifacts;

        [[nodiscard]] bool delta_capable() const {
            return !nd_plan.has_value() && !sig.empty() && !artifacts.empty();
        }
    };

    /// Memory-miss path: consults the disk tier (when configured), promotes
    /// a cleanly-decoded entry into the LRU and returns its iterator, or
    /// returns entries_.end() after counting the miss / quarantining the
    /// corrupt file. Caller holds mutex_.
    std::list<Entry>::iterator disk_load_locked(std::uint64_t key, bool want_nd);
    /// Atomically writes `e` to the disk tier unless a valid-looking file is
    /// already present. Caller holds mutex_.
    void disk_write_locked(const Entry& e);
    /// Promotes `e` to the front of the LRU, evicting at capacity. Caller
    /// holds mutex_.
    std::list<Entry>::iterator promote_locked(Entry e);
    /// Adds/removes a delta-capable entry to/from the skeleton index.
    /// Callers hold mutex_.
    void index_skeleton_locked(const Entry& e);
    void unindex_skeleton_locked(const Entry& e);
    /// Loads `e.key`'s `.dist` sidecar into `e` (after a disk plan
    /// promotion); quarantines a corrupt sidecar. Caller holds mutex_.
    void load_dist_locked(Entry& e);

    const std::size_t capacity_;
    std::string persist_dir_;
    mutable std::mutex mutex_;
    // Most recently used at the front; map values point into the list.
    std::list<Entry> entries_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    /// skeleton_hash -> cache keys of delta-capable entries, in insertion
    /// order (drives near_miss_hints' deterministic tie-break).
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> skeletons_;
    PlanCacheStats stats_;
};

}  // namespace lf::svc
